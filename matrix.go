package repro

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/simulate"
)

// PolicyStats is the per-policy headline of a matrix run: the
// co-analysis quantities that answer "did the allocation policy change
// the interruption outcome?" on the shared fault-candidate stream.
type PolicyStats struct {
	// Jobs is the total job count (resubmissions shift it per policy).
	Jobs int
	// Interruptions is the co-analysis interruption-event count.
	Interruptions int
	// DistinctInterrupted counts distinct interrupted jobs.
	DistinctInterrupted int
	// SystemInterruptions and AppInterruptions split interruptions by
	// identified cause class.
	SystemInterruptions int
	AppInterruptions    int
	// MTBFHours is the post-filter mean time between failures in hours.
	MTBFHours float64
	// SamePartResub is the same-location resubmission fraction (the
	// paper measured 57.44% under Intrepid's affinity).
	SamePartResub float64
	// IdleFaultFraction is the oracle fraction of interrupting-capable
	// faults that struck idle midplanes — the placement-dependent
	// vulnerability the policies trade against each other.
	IdleFaultFraction float64
}

// PolicyOutcome bundles one policy's analyzed campaign from RunMatrix.
type PolicyOutcome struct {
	// Policy is the sched registry name.
	Policy string
	// Report is the full co-analysis of that policy's logs.
	Report *Report
	// Stats is the comparison headline.
	Stats PolicyStats
}

// RunMatrix simulates one campaign per registered scheduling policy —
// identical workload, identical pre-drawn ground-truth fault-candidate
// stream — and runs the paper's co-analysis over each, in sorted
// policy-name order. This is the counterfactual experiment the paper
// could not run on the real machine.
func RunMatrix(cfg Config) ([]PolicyOutcome, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("repro: non-positive Days %d", cfg.Days)
	}
	runs, err := simulate.RunMatrix(simConfig(cfg), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]PolicyOutcome, 0, len(runs))
	for _, run := range runs {
		rep, err := analyzeStores(cfg, run.Campaign.RAS, run.Campaign.Jobs)
		if err != nil {
			return nil, fmt.Errorf("repro: policy %s: %w", run.Policy, err)
		}
		rep.truth = &run.Campaign.Result.Truth
		out = append(out, PolicyOutcome{Policy: run.Policy, Report: rep, Stats: rep.PolicyStats()})
	}
	return out, nil
}

// PolicyStats extracts the cross-policy comparison headline from an
// analyzed campaign. IdleFaultFraction is zero without an oracle
// (externally loaded logs).
func (r *Report) PolicyStats() PolicyStats {
	a := r.analysis
	s := PolicyStats{
		Jobs:                r.jobs.Len(),
		Interruptions:       len(a.Interruptions),
		DistinctInterrupted: a.DistinctInterruptedJobs(),
	}
	cc := a.ClassificationCensus()
	s.SystemInterruptions = cc.SystemInterruptions
	s.AppInterruptions = cc.ApplicationInterruptions
	if fc, err := a.FailureCharacteristics(); err == nil {
		s.MTBFHours = fc.After.SampleMean / 3600
	}
	s.SamePartResub = a.JobFilter().SameLocationResubmitFraction
	if r.truth != nil {
		s.IdleFaultFraction = r.truth.IdleFaultFraction()
	}
	return s
}

// RenderPolicyComparison writes the cross-policy table of a matrix
// run: one row per policy, directly comparable because every row faced
// the identical workload and fault-candidate stream.
func RenderPolicyComparison(w io.Writer, outcomes []PolicyOutcome) error {
	t := report.NewTable(
		"Policy matrix: co-analysis outcomes on the identical workload and fault-candidate stream",
		"Policy", "Jobs", "Interruptions", "Distinct", "System", "App",
		"MTBF(h)", "SamePartResub", "IdleFaultFrac")
	for _, o := range outcomes {
		s := o.Stats
		t.AddRow(o.Policy, s.Jobs, s.Interruptions, s.DistinctInterrupted,
			s.SystemInterruptions, s.AppInterruptions,
			s.MTBFHours, s.SamePartResub, s.IdleFaultFraction)
	}
	return t.Render(w)
}
