package repro

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/stats"
)

// PredictorStudy evaluates the §VII failure-prediction extension over
// the campaign's filtered event stream: a null baseline, an
// alarm-everything baseline, the repeat-location chain predictor, and
// decayed-rate predictors at two thresholds.
func (r *Report) PredictorStudy() ([]predict.Result, error) {
	ps := []predict.Predictor{
		predict.NeverPredictor{},
		predict.AlwaysPredictor{},
		predict.NewChainPredictor(12 * time.Hour),
		predict.NewRatePredictor(24*time.Hour, 1.5),
		predict.NewRatePredictor(24*time.Hour, 0.75),
	}
	return predict.Compare(ps, r.analysis.Events, r.jobs)
}

// RenderPrediction writes the failure-prediction study (extension of
// §VII recommendation 1).
func (r *Report) RenderPrediction(w io.Writer) error {
	results, err := r.PredictorStudy()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: location-aware failure prediction (§VII)",
		"Predictor", "Recall", "Alarm mp-hours", "Hits/alarm-day", "Avoidable actions")
	for _, res := range results {
		t.AddRow(res.Predictor,
			fmt.Sprintf("%.1f%%", 100*res.Recall),
			fmt.Sprintf("%.0f", res.AlarmMidplaneHours),
			res.HitsPerAlarmDay,
			fmt.Sprintf("%.1f%%", 100*res.AvoidableActionFraction))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"(\"avoidable actions\" = correctly predicted failures striking idle hardware: with\n"+
			" location information the proactive action can be skipped entirely — Obs. 7)")
	return err
}

// CheckpointStudy runs the checkpoint-policy simulation (extension of
// §VII recommendation 2) under the campaign's fitted failure model,
// for a job of the given length and checkpoint cost.
func (r *Report) CheckpointStudy(jobLength, ckptCost time.Duration, runs int) ([]checkpoint.Result, error) {
	fc, err := r.analysis.FailureCharacteristics()
	if err != nil {
		return nil, err
	}
	w := fc.After.Weibull
	mtbf := time.Duration(w.Mean() * float64(time.Second))
	cfg := checkpoint.Config{
		JobLength:      jobLength,
		CheckpointCost: ckptCost,
		RestartCost:    10 * time.Minute,
		Failures:       w,
		BugProb:        0.05,
		BugMean:        20 * time.Minute,
		BugFixDelay:    2 * time.Hour,
	}
	pols := []checkpoint.Policy{
		checkpoint.None(),
		checkpoint.Young(ckptCost, mtbf),
		checkpoint.Periodic(mtbf / 10),
		checkpoint.DelayedFirstHour(mtbf / 10),
	}
	return checkpoint.Sweep(cfg, pols, runs, 1)
}

// RenderCheckpointStudy writes the checkpoint-policy comparison.
func (r *Report) RenderCheckpointStudy(w io.Writer) error {
	results, err := r.CheckpointStudy(24*time.Hour, 5*time.Minute, 300)
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: checkpoint policies under the fitted failure model (§VII)",
		"Policy", "Efficiency", "Failures/run", "Checkpoints/run", "Lost work", "Wasted ckpts")
	for _, res := range results {
		t.AddRow(res.Policy,
			fmt.Sprintf("%.3f", res.Efficiency),
			fmt.Sprintf("%.2f", res.MeanFailures),
			fmt.Sprintf("%.1f", res.MeanCheckpoints),
			res.MeanLostWork.Round(time.Minute).String(),
			fmt.Sprintf("%.2f", res.WastedCheckpoints))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"(24 h job, 5 min checkpoints, failure process = the campaign's after-filtering Weibull\n"+
			" fit; \"delayed\" applies Obs. 11: no checkpoint before the first hour of work)")
	return err
}

// RenderModelComparison writes an AIC-ranked comparison of the three
// classic failure-interarrival models (exponential, Weibull, lognormal)
// on the filtered event stream — extending the paper's two-model
// likelihood-ratio test.
func (r *Report) RenderModelComparison(w io.Writer) error {
	before, after := r.analysis.InterarrivalSamples()
	t := report.NewTable("Extension: interarrival model selection by AIC (lower is better)",
		"Sample", "Model", "AIC", "KS", "Fitted mean (h)")
	add := func(name string, xs []float64) {
		for _, mf := range stats.CompareModels(xs) {
			t.AddRow(name, mf.Dist.Name(), mf.AIC, mf.KS, mf.Dist.Mean()/3600)
			name = ""
		}
	}
	add("before job filtering", before)
	add("after job filtering", after)
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"(the paper's LRT compares exponential vs Weibull only; AIC adds the lognormal,\n"+
			" the third standard failure model — the exponential should rank last on both samples)")
	return err
}

// RenderEventTypes writes the ERRCODE inventory: per-type event volume,
// three-case evidence, verdict and inferred class, descending by volume.
func (r *Report) RenderEventTypes(w io.Writer) error {
	a := r.analysis
	type row struct {
		code string
		id   core.Identification
		cl   core.Classification
	}
	rows := make([]row, 0, len(a.Identification))
	for code, id := range a.Identification {
		rows = append(rows, row{a.Syms.Errcodes.Name(code), id, a.Classification[code]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].id.Events != rows[j].id.Events {
			return rows[i].id.Events > rows[j].id.Events
		}
		return rows[i].code < rows[j].code
	})
	t := report.NewTable("Extension: fatal event-type inventory",
		"ERRCODE", "Events", "C1", "C2", "C3", "Verdict", "Class", "Rule")
	max := 20
	if len(rows) < max {
		max = len(rows)
	}
	for _, rw := range rows[:max] {
		t.AddRow(rw.code, rw.id.Events, rw.id.Case1, rw.id.Case2, rw.id.Case3,
			rw.id.Verdict.String(), rw.cl.Class.String(), rw.cl.Rule.String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "(%d further types omitted; C1/C2/C3 are the three-case rule counts of §IV-A)\n",
		len(rows)-max)
	return err
}

// SensitivityPoint is one row of the filter-threshold sensitivity
// ablation.
type SensitivityPoint struct {
	// Window is the temporal/spatial threshold used.
	Window time.Duration
	// Events is the number of independent events the cascade leaves.
	Events int
	// Interruptions is the number of matched job interruptions.
	Interruptions int
}

// FilterSensitivity re-runs the analysis at several temporal/spatial
// window settings — the ablation behind the choice of the 5-minute
// threshold the paper inherits from Liang et al.
func (r *Report) FilterSensitivity(windows []time.Duration) ([]SensitivityPoint, error) {
	if r.ras == nil {
		return nil, fmt.Errorf("repro: the sensitivity ablation re-runs the cascade over the raw RAS store, which streaming reports do not retain")
	}
	if len(windows) == 0 {
		windows = []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour}
	}
	out := make([]SensitivityPoint, 0, len(windows))
	for _, win := range windows {
		cfg := core.DefaultConfig()
		cfg.Filter.TemporalWindow = win
		cfg.Filter.SpatialWindow = win
		a, err := core.Analyze(cfg, r.ras, r.jobs)
		if err != nil {
			return nil, err
		}
		out = append(out, SensitivityPoint{
			Window:        win,
			Events:        len(a.Events),
			Interruptions: len(a.Interruptions),
		})
	}
	return out, nil
}

// RenderSensitivity writes the filter-threshold ablation.
func (r *Report) RenderSensitivity(w io.Writer) error {
	points, err := r.FilterSensitivity(nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: temporal/spatial window sensitivity",
		"Window", "Events", "Interruptions")
	for _, p := range points {
		t.AddRow(p.Window.String(), p.Events, p.Interruptions)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"(larger windows merge more records into fewer events; the 5-minute setting is the\n"+
			" Liang et al. threshold the paper adopts)")
	return err
}
