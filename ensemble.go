package repro

import (
	"context"
	"fmt"
	"io"
	"math"
	"reflect"

	"repro/internal/parallel"
	"repro/internal/report"
)

// EnsembleStat summarizes one Summary quantity across the seeds of an
// ensemble run.
type EnsembleStat struct {
	// Mean and Std are the across-seed sample mean and (unbiased)
	// standard deviation.
	Mean, Std float64
	// Min and Max delimit the observed range.
	Min, Max float64
}

// HalfWidth95 returns the half-width of a normal-approximation 95%
// confidence interval on the mean (1.96 std errors); zero for a single
// seed.
func (s EnsembleStat) HalfWidth95(n int) float64 {
	if n < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(n))
}

// Ensemble is the result of RunEnsemble: per-seed summaries plus
// across-seed statistics for every numeric observation of the paper.
type Ensemble struct {
	// Seeds lists the campaign seeds, in run order.
	Seeds []int64
	// PerSeed holds each campaign's summary, aligned with Seeds.
	PerSeed []Summary
	// Quantities lists the numeric Summary field names in declaration
	// order (the paper's observation order).
	Quantities []string
	// Stats maps each quantity to its across-seed statistics.
	Stats map[string]EnsembleStat
}

// RunEnsemble simulates and analyzes cfg.Seeds campaigns at seeds
// cfg.Seed..cfg.Seed+cfg.Seeds-1, fanning the runs out over the worker
// pool (cfg.Parallelism), and aggregates every numeric observation
// into across-seed mean, deviation and range — the confidence interval
// companion to Run's single-seed point estimates. Campaign i is
// byte-identical to Run at that seed regardless of worker count.
func RunEnsemble(cfg Config) (*Ensemble, error) {
	n := cfg.Seeds
	if n <= 0 {
		n = 1
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("repro: non-positive Days %d", cfg.Days)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	// One worker per campaign at the outer level; each campaign's own
	// fan-outs still honor cfg.Parallelism, so a sequential request
	// (Parallelism 1) stays fully sequential.
	summaries, err := parallel.Map(context.Background(), cfg.Parallelism, n, func(i int) (Summary, error) {
		c := cfg
		c.Seed = seeds[i]
		rep, err := Run(c)
		if err != nil {
			return Summary{}, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		return rep.Summary(), nil
	})
	if err != nil {
		return nil, err
	}
	e := &Ensemble{Seeds: seeds, PerSeed: summaries}
	e.Quantities, e.Stats = aggregateSummaries(summaries)
	return e, nil
}

// aggregateSummaries folds per-seed summaries into across-seed
// statistics, walking Summary's numeric fields in declaration order.
func aggregateSummaries(summaries []Summary) ([]string, map[string]EnsembleStat) {
	var names []string
	stats := make(map[string]EnsembleStat)
	st := reflect.TypeOf(Summary{})
	for f := 0; f < st.NumField(); f++ {
		field := st.Field(f)
		var get func(Summary) (float64, bool)
		switch field.Type.Kind() {
		case reflect.Int:
			get = func(s Summary) (float64, bool) {
				return float64(reflect.ValueOf(s).Field(f).Int()), true
			}
		case reflect.Float64:
			get = func(s Summary) (float64, bool) {
				return reflect.ValueOf(s).Field(f).Float(), true
			}
		default:
			continue // non-numeric observations (feature names) have no CI
		}
		var xs []float64
		for _, s := range summaries {
			if v, ok := get(s); ok {
				xs = append(xs, v)
			}
		}
		names = append(names, field.Name)
		stats[field.Name] = statOf(xs)
	}
	return names, stats
}

func statOf(xs []float64) EnsembleStat {
	if len(xs) == 0 {
		return EnsembleStat{}
	}
	st := EnsembleStat{Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		st.Mean += x
		st.Min = math.Min(st.Min, x)
		st.Max = math.Max(st.Max, x)
	}
	st.Mean /= float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - st.Mean
			ss += d * d
		}
		st.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return st
}

// Render writes the across-seed table: every numeric observation with
// its mean ± 95% CI half-width and observed range.
func (e *Ensemble) Render(w io.Writer) error {
	n := len(e.Seeds)
	t := report.NewTable(
		fmt.Sprintf("Ensemble over %d seeds (%d..%d): mean ± 95%% CI, range", n, e.Seeds[0], e.Seeds[n-1]),
		"Quantity", "Mean", "±95% CI", "Min", "Max")
	for _, name := range e.Quantities {
		s := e.Stats[name]
		t.AddRow(name,
			fmt.Sprintf("%.4g", s.Mean),
			fmt.Sprintf("%.3g", s.HalfWidth95(n)),
			fmt.Sprintf("%.4g", s.Min),
			fmt.Sprintf("%.4g", s.Max))
	}
	return t.Render(w)
}
