module repro

go 1.22

// The bgplint analyzers (internal/lint) are written against the
// golang.org/x/tools/go/analysis API. The intended pin is
// golang.org/x/tools v0.24.0, but this module builds in an offline
// environment with no module proxy, so internal/lint/analysis vendors
// the needed source-compatible subset (Analyzer/Pass/Diagnostic/
// SuggestedFix + an analysistest-style harness) instead of requiring
// it here. If network access becomes available, replace the vendored
// subset with the real dependency and this note with a require line.
