package repro

import (
	"time"

	"repro/internal/core"
)

// Summary carries the headline quantities of the reproduction, one per
// observation of the paper, as plain numbers.
type Summary struct {
	// Campaign volume (Table I).
	Days            int
	TotalRecords    int
	FatalRecords    int
	TotalJobs       int
	DistinctJobs    int
	ResubmittedJobs int

	// Methodology (Figure 1, Obs. 1-3).
	EventsAfterFiltering      int
	FilterCompression         float64 // paper: 98.35%
	Interruptions             int     // paper: 308
	DistinctInterrupted       int     // paper: 167
	NonImpactingEventFraction float64 // Obs. 1; paper: 20.84%
	SystemTypes               int     // Obs. 2; paper: 72
	ApplicationTypes          int     // Obs. 2; paper: 8
	ApplicationEventFraction  float64 // Obs. 2; paper: 17.73%
	JobRedundantRemoved       int     // Obs. 3; paper: 72
	JobFilterCompression      float64 // Obs. 3; paper: 13.1%
	SameLocationResubmits     float64 // Obs. 3/8; paper: 57.4%

	// Failure characteristics (Obs. 4-5).
	WeibullShapeBefore, WeibullShapeAfter float64 // Table IV: 0.387 / 0.573
	MTBFRatio                             float64 // paper: ~3x
	BandFatalShare                        float64 // Obs. 5 (midplanes 32-63)
	CorrWorkload, CorrWideWorkload        float64 // Obs. 5

	// Job interruption characteristics (Obs. 6-12).
	InterruptedJobFraction float64 // paper: 0.45%
	DistinctJobFraction    float64 // paper: 1.73%
	MaxJobsPerEvent        int     // paper: 28
	SystemInterruptions    int     // paper: 206
	AppInterruptions       int     // paper: 102
	MTTIOverMTBF           float64 // Obs. 7; paper: 4.07
	SpatialFraction        float64 // Obs. 8; paper: 7.22%
	ResubRiskSystemK1      float64 // Fig. 7
	ResubRiskSystemK2      float64 // paper: 53% peak
	ResubRiskAppK3         float64 // paper: 60%
	EarlyAppFraction       float64 // Obs. 11; paper: 74.5% within 1 h
	TopCat1Feature         string  // Obs. 10; paper: size
	TopCat2Feature         string  // Obs. 11; paper: exectime
	MaxUserFailFraction    float64 // Obs. 12; paper: < 1%
}

// Summary computes the headline quantities. Artifacts whose fits fail
// (e.g. too few interruptions in a tiny campaign) leave zero values.
func (r *Report) Summary() Summary {
	a := r.analysis
	ls := r.logStats()
	s := Summary{
		Days:         r.days,
		TotalRecords: ls.RASRecords,
		FatalRecords: ls.FatalRecords,
		TotalJobs:    r.jobs.Len(),
	}
	s.DistinctJobs, s.ResubmittedJobs = r.jobs.DistinctExecutables()

	s.EventsAfterFiltering = len(a.Events)
	s.FilterCompression = a.FilterStats.CompressionRatio()
	s.Interruptions = len(a.Interruptions)
	s.DistinctInterrupted = a.DistinctInterruptedJobs()

	census := a.Census()
	s.NonImpactingEventFraction = census.NonImpactingEventFraction

	cc := a.ClassificationCensus()
	s.SystemTypes = cc.SystemTypes
	s.ApplicationTypes = cc.ApplicationTypes
	s.ApplicationEventFraction = cc.ApplicationEventFraction
	s.SystemInterruptions = cc.SystemInterruptions
	s.AppInterruptions = cc.ApplicationInterruptions

	jf := a.JobFilter()
	s.JobRedundantRemoved = jf.Removed
	s.JobFilterCompression = jf.CompressionRatio
	s.SameLocationResubmits = jf.SameLocationResubmitFraction

	if fc, err := a.FailureCharacteristics(); err == nil {
		s.WeibullShapeBefore = fc.Before.Weibull.Shape
		s.WeibullShapeAfter = fc.After.Weibull.Shape
		s.MTBFRatio = fc.MTBFRatio
	}
	mc := a.MidplaneCharacteristics(32)
	s.BandFatalShare = mc.RegionFatalShare(32, 64)
	s.CorrWorkload = mc.CorrWorkload
	s.CorrWideWorkload = mc.CorrWideWorkload

	bs := a.Bursts(0)
	s.InterruptedJobFraction = bs.InterruptedJobFraction
	s.DistinctJobFraction = bs.DistinctJobFraction
	s.MaxJobsPerEvent = bs.MaxJobsPerEvent

	if ir, err := a.InterruptionRates(); err == nil {
		s.MTTIOverMTBF = ir.MTTIOverMTBF
	}
	s.SpatialFraction = a.Propagation().SpatialFraction

	rs := a.Resubmissions(3)
	if rs.MaxK >= 2 {
		s.ResubRiskSystemK1 = rs.System[1]
		s.ResubRiskSystemK2 = rs.System[2]
	}
	if rs.MaxK >= 3 {
		s.ResubRiskAppK3 = rs.Application[3]
	}
	s.EarlyAppFraction = a.EarlyInterruptionFraction(core.ClassApplication, time.Hour)

	fr := a.Features(12)
	if len(fr.System) > 0 {
		s.TopCat1Feature = fr.System[0].Name
	}
	if len(fr.Application) > 0 {
		s.TopCat2Feature = fr.Application[0].Name
	}
	s.MaxUserFailFraction = fr.MaxFailedJobFraction
	return s
}
