package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// SchemaV1 identifies the escape-report JSON layout. Bump only with a
// new reader in the CI gate; old baselines must stay loadable.
const SchemaV1 = "repro/bgpescape/v1"

// Report is the machine-readable escape-analysis report the CI gate
// diffs. It is deliberately line-free: escapes are multisets keyed by
// (file, function, message) and inlining is keyed by function name, so
// unrelated edits that shift code up or down a file never churn the
// committed baseline.
type Report struct {
	Schema string `json:"schema"`
	// GeneratedWith pins the toolchain: escape analysis and inlining
	// budgets change between compiler minors, so cross-minor (or
	// cross-GOOS/GOARCH) comparisons are skipped, visibly.
	GeneratedWith Host      `json:"generated_with"`
	Packages      []Package `json:"packages"`
}

// Host is the metadata that must match for an escape comparison to be
// meaningful. Unlike bgpbench, CPU count is irrelevant: the compiler's
// escape verdicts do not depend on parallelism.
type Host struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

func currentHost() Host {
	return Host{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
}

// goMinor reduces "go1.24.3" to "go1.24": escape analysis is stable
// across patch releases but not assumed so across minors.
func goMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// Comparable reports whether escape verdicts from the two hosts can be
// gated against each other, with a reason when they cannot.
func (h Host) Comparable(o Host) (bool, string) {
	switch {
	case goMinor(h.Go) != goMinor(o.Go):
		return false, fmt.Sprintf("go version %s vs %s", h.Go, o.Go)
	case h.GOOS != o.GOOS:
		return false, fmt.Sprintf("GOOS %s vs %s", h.GOOS, o.GOOS)
	case h.GOARCH != o.GOARCH:
		return false, fmt.Sprintf("GOARCH %s vs %s", h.GOARCH, o.GOARCH)
	}
	return true, ""
}

// Package is one gated package's escape and inlining inventory.
// Escapes is sorted by (File, Func, Message); the name lists are
// sorted and deduplicated. Generic instantiations can surface a
// function under a source file from another package (e.g. a symtab
// dictionary instantiated into filter); they are inventoried where the
// compiler charges them.
type Package struct {
	ImportPath string   `json:"import_path"`
	Escapes    []Escape `json:"escapes,omitempty"`
	// Inlinable and NotInlinable record the compiler's verdict per
	// function; a name moving from the former to the latter is a lost
	// inlining and fails the gate.
	Inlinable    []string `json:"inlinable,omitempty"`
	NotInlinable []string `json:"not_inlinable,omitempty"`
}

// Escape is one distinct heap-escape site: a (file, function, message)
// triple with a multiset count, line-free so baselines survive
// unrelated edits. Func is "Recv.Name" for methods, "Name" for
// functions; package-scope escapes (var initializers, init-time only)
// are excluded from reports entirely.
type Escape struct {
	File    string `json:"file"`
	Func    string `json:"func"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func (e Escape) key() string { return e.File + "|" + e.Func + "|" + e.Message }

// diagLine is one line of the compiler's -json=0 diagnostics stream
// (LSP-shaped). The first line of each file is a header carrying the
// package path and source file instead.
type diagLine struct {
	Version *int   `json:"version"`
	Package string `json:"package"`
	File    string `json:"file"`
	Code    string `json:"code"`
	Range   struct {
		Start struct {
			Line int `json:"line"`
		} `json:"start"`
	} `json:"range"`
	Message string `json:"message"`
}

// funcSpan maps a line range of a source file to the declaration that
// covers it, so positional diagnostics can be attributed to functions.
type funcSpan struct {
	start, end int
	name       string
}

// funcSpans parses src (no type-checking) and returns the line spans of
// its top-level function declarations, sorted by start line.
func funcSpans(src string) ([]funcSpan, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var spans []funcSpan
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		spans = append(spans, funcSpan{
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
			name:  declName(fd),
		})
	}
	return spans, nil
}

// declName renders a FuncDecl as "Recv.Name" or "Name", stripping
// pointers and type parameters from the receiver — the same shape
// hotpath's root table uses after its package qualifier.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// owner returns the name of the declaration covering line, or "" for
// package scope.
func owner(spans []funcSpan, line int) string {
	for _, s := range spans {
		if s.start <= line && line <= s.end {
			return s.name
		}
	}
	return ""
}

// parseDiagDir walks the -json output directory (one url-escaped
// subdirectory per package, one .json file per source file) into
// Package inventories. root is the directory source paths are made
// relative to in the report.
func parseDiagDir(dir, root string) ([]Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []Package
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		importPath, err := url.PathUnescape(e.Name())
		if err != nil {
			importPath = e.Name()
		}
		pkg, err := parsePackageDir(filepath.Join(dir, e.Name()), importPath, root)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, *pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func parsePackageDir(dir, importPath, root string) (*Package, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]*Escape)
	canInline := make(map[string]bool)
	cannotInline := make(map[string]bool)
	for _, fe := range files {
		if fe.IsDir() || !strings.HasSuffix(fe.Name(), ".json") {
			continue
		}
		if err := parseDiagFile(filepath.Join(dir, fe.Name()), root, counts, canInline, cannotInline); err != nil {
			return nil, err
		}
	}
	pkg := &Package{ImportPath: importPath}
	for _, e := range counts {
		pkg.Escapes = append(pkg.Escapes, *e)
	}
	sort.Slice(pkg.Escapes, func(i, j int) bool { return pkg.Escapes[i].key() < pkg.Escapes[j].key() })
	pkg.Inlinable = sortedKeys(canInline)
	pkg.NotInlinable = sortedKeys(cannotInline)
	return pkg, nil
}

func parseDiagFile(path, root string, counts map[string]*Escape, canInline, cannotInline map[string]bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 {
		return nil
	}
	var hdr diagLine
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Version == nil {
		return fmt.Errorf("%s: missing diagnostics header", path)
	}
	src := hdr.File
	if src == "" || strings.Contains(src, "<autogenerated>") {
		return nil // synthesized wrappers: nothing attributable
	}
	spans, err := funcSpans(src)
	if err != nil {
		return fmt.Errorf("parsing %s: %v", src, err)
	}
	rel := src
	if r, err := filepath.Rel(root, src); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
	}
	for _, l := range lines[1:] {
		if strings.TrimSpace(l) == "" {
			continue
		}
		var d diagLine
		if err := json.Unmarshal([]byte(l), &d); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		fn := owner(spans, d.Range.Start.Line)
		switch d.Code {
		case "escapes":
			if fn == "" {
				continue // package-scope initializer: init-time only
			}
			e := Escape{File: rel, Func: fn, Message: d.Message}
			if prev, ok := counts[e.key()]; ok {
				prev.Count++
			} else {
				e.Count = 1
				counts[e.key()] = &e
			}
		case "canInlineFunction":
			if fn != "" {
				canInline[fn] = true
			}
		case "cannotInlineFunction":
			if fn != "" {
				cannotInline[fn] = true
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func readReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != SchemaV1 {
		return nil, fmt.Errorf("unsupported schema %q (want %q)", rep.Schema, SchemaV1)
	}
	return &rep, nil
}
