// Command bgpescape is the compiler-escape-analysis budget gate behind
// CI: it rebuilds the hot packages with the gc compiler's JSON
// diagnostics enabled (-gcflags=-json=0,DIR), parses the escape and
// inlining verdicts into a machine-readable report (schema
// repro/bgpescape/v1, see escape.baseline.json at the repo root), and
// compares a fresh report against the committed baseline.
//
// Usage:
//
//	bgpescape run -out escape.baseline.json       # collect a report
//	bgpescape run -C /path/to/module -pkgs ./...  # other module/packages
//	bgpescape compare -baseline escape.baseline.json -current esc.json
//
// Exit codes: 0 pass (or comparison skipped on toolchain mismatch),
// 1 budget violation, 2 harness failure.
//
// The gate has three rules:
//
//  1. New heap escapes: an (file, function, message) escape site whose
//     multiset count exceeds the baseline's fails. Reports are
//     line-free, so unrelated edits never churn the baseline.
//  2. Lost inlining: a function the baseline records as inlinable that
//     the current compiler can no longer inline fails — inlining is
//     what lets the escape analyzer stack-allocate across the small
//     helpers of the hot paths.
//  3. Zero-escape ingest codec: the per-event ingest roots declared in
//     internal/lint/hotpath (raslog/joblog unmarshalers, appenders and
//     readers) must have no escape sites at all, baseline or not. PR 4
//     made ingest zero-alloc; this is that result, pinned.
//
// When the current toolchain differs from the baseline's (Go minor,
// GOOS or GOARCH), rules 1-2 are skipped with a warning — escape
// verdicts move between compiler minors — but rule 3 still runs: it is
// a claim about the current compiler's output, not a diff.
//
// Each run builds into a fresh scratch directory. The diagnostics
// directory is part of the compiler's cache key, so a fresh directory
// forces the gated packages (only) to recompile and re-emit their
// verdicts; reusing one would silently yield empty output on cache
// hits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint/hotpath"
)

// escapePackages is the gated hot set: every package that declares a
// hotpath root (see internal/lint/hotpath's rootList; the main_test
// asserts the two stay aligned).
var escapePackages = []string{
	"./internal/core",
	"./internal/filter",
	"./internal/joblog",
	"./internal/raslog",
	"./internal/serve",
	"./internal/store",
	"./internal/symtab",
}

// codecPackages are the ingest codec packages whose per-event roots
// carry the zero-escape hard assertion (rule 3). The cascade's
// per-event roots are excluded deliberately: inlined interner
// initialization (filter.Incremental.Feed) and cold reject-path error
// values (store.Segment.AppendRow) escape by design and are governed
// by the baseline diff instead.
var codecPackages = map[string]bool{"raslog": true, "joblog": true}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "bgpescape: want subcommand: run | compare")
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "bgpescape: unknown subcommand %q (want run | compare)\n", args[0])
		return 2
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgpescape run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out   = fs.String("out", "", "write the JSON report here (default stdout)")
		chdir = fs.String("C", "", "run go build from this directory (default: current)")
		pkgs  = fs.String("pkgs", "", "comma-separated packages to gate (default: the hot set)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	list := escapePackages
	if *pkgs != "" {
		list = strings.Split(*pkgs, ",")
	}
	rep, buildOut, err := collect(*chdir, list)
	if err != nil {
		fmt.Fprintf(stderr, "bgpescape: %v\n", err)
		if len(buildOut) > 0 {
			stderr.Write(buildOut)
		}
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bgpescape: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := writeReport(w, rep); err != nil {
		fmt.Fprintf(stderr, "bgpescape: %v\n", err)
		return 2
	}
	nEsc, nFns := 0, 0
	for _, p := range rep.Packages {
		for _, e := range p.Escapes {
			nEsc += e.Count
		}
		nFns += len(p.Inlinable) + len(p.NotInlinable)
	}
	fmt.Fprintf(stderr, "bgpescape: %d packages, %d escape sites, %d functions with inline verdicts\n",
		len(rep.Packages), nEsc, nFns)
	return 0
}

// collect rebuilds the packages with JSON diagnostics into a fresh
// scratch directory and parses the result. The raw go build output is
// returned for diagnostics when the build fails.
func collect(dir string, pkgs []string) (*Report, []byte, error) {
	tmp, err := os.MkdirTemp("", "bgpescape-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(tmp)
	// -gcflags with no pattern applies only to the packages named on
	// the command line — dependencies build normally and stay cached.
	goArgs := append([]string{"build", "-gcflags=-json=0," + tmp}, pkgs...)
	cmd := exec.Command("go", goArgs...)
	cmd.Dir = dir
	if buildOut, err := cmd.CombinedOutput(); err != nil {
		return nil, buildOut, fmt.Errorf("go build: %w", err)
	}
	root := dir
	if root == "" {
		root = "."
	}
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	packages, err := parseDiagDir(tmp, root)
	if err != nil {
		return nil, nil, err
	}
	if len(packages) == 0 {
		return nil, nil, fmt.Errorf("no diagnostics emitted (packages already built with identical flags?)")
	}
	return &Report{Schema: SchemaV1, GeneratedWith: currentHost(), Packages: packages}, nil, nil
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgpescape compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath = fs.String("baseline", "escape.baseline.json", "committed baseline report")
		curPath  = fs.String("current", "", "fresh report to gate (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *curPath == "" {
		fmt.Fprintln(stderr, "bgpescape compare: -current is required")
		return 2
	}
	baseline, err := readReportFile(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "bgpescape: baseline: %v\n", err)
		return 2
	}
	current, err := readReportFile(*curPath)
	if err != nil {
		fmt.Fprintf(stderr, "bgpescape: current: %v\n", err)
		return 2
	}

	// Rule 3 first: it gates the current report alone, so a toolchain
	// mismatch never hides a codec-path escape.
	failures := codecEscapes(current)

	if ok, why := baseline.GeneratedWith.Comparable(current.GeneratedWith); !ok {
		fmt.Fprintf(stdout, "bgpescape: SKIP baseline comparison: toolchain differs (%s); escape verdicts move between compiler minors\n", why)
		fmt.Fprintf(stdout, "bgpescape: regenerate the baseline with `make escape-baseline` to enable gating\n")
		// Surface the skipped gate in the CI run summary, not only the log.
		if os.Getenv("GITHUB_ACTIONS") == "true" {
			fmt.Fprintf(stdout, "::warning title=bgpescape gate skipped::escape baseline comparison skipped, toolchain differs (%s); regenerate the baseline with the CI toolchain\n", why)
		}
	} else {
		failures = append(failures, diffReports(baseline, current)...)
	}

	if len(failures) == 0 {
		fmt.Fprintf(stdout, "bgpescape: OK — no new escapes, no lost inlining, ingest codec roots escape-free\n")
		return 0
	}
	fmt.Fprintf(stdout, "bgpescape: %d budget violation(s) vs %s:\n", len(failures), *basePath)
	for _, f := range failures {
		fmt.Fprintf(stdout, "  FAIL %s\n", f)
	}
	fmt.Fprintf(stdout, "bgpescape: if intentional, regenerate with `make escape-baseline` and review the diff like code\n")
	return 1
}

// codecEscapes enforces rule 3: the per-event hotpath roots of the
// ingest codec packages must have zero escape sites.
func codecEscapes(rep *Report) []string {
	// Root syms are "pkgname.Recv.Name"; index the per-event ones of
	// the codec packages by (pkgname, Recv.Name).
	protected := make(map[string]bool)
	for _, r := range hotpath.Roots() {
		pkg, fn, ok := strings.Cut(r.Sym, ".")
		if ok && r.Kind == hotpath.PerEvent && codecPackages[pkg] {
			protected[pkg+"."+fn] = true
		}
	}
	var failures []string
	for _, p := range rep.Packages {
		base := p.ImportPath[strings.LastIndex(p.ImportPath, "/")+1:]
		if !codecPackages[base] {
			continue
		}
		for _, e := range p.Escapes {
			if protected[base+"."+e.Func] {
				failures = append(failures, fmt.Sprintf("%s: per-event codec root %s escapes: %s (%s)",
					p.ImportPath, e.Func, e.Message, e.File))
			}
		}
	}
	return failures
}

// diffReports enforces rules 1 and 2: no escape multiset growth, no
// inlinable function turning non-inlinable.
func diffReports(baseline, current *Report) []string {
	basePkgs := make(map[string]*Package, len(baseline.Packages))
	for i := range baseline.Packages {
		basePkgs[baseline.Packages[i].ImportPath] = &baseline.Packages[i]
	}
	var failures []string
	for i := range current.Packages {
		cur := &current.Packages[i]
		base, known := basePkgs[cur.ImportPath]
		if !known {
			base = &Package{} // new package: every site is new
		}
		baseCounts := make(map[string]int, len(base.Escapes))
		for _, e := range base.Escapes {
			baseCounts[e.key()] = e.Count
		}
		for _, e := range cur.Escapes {
			if grew := e.Count - baseCounts[e.key()]; grew > 0 {
				failures = append(failures, fmt.Sprintf("%s: new heap escape ×%d in %s: %s (%s)",
					cur.ImportPath, grew, e.Func, e.Message, e.File))
			}
		}
		stillInlinable := toSet(cur.Inlinable)
		wasInlinable := toSet(base.Inlinable)
		for _, fn := range cur.NotInlinable {
			if wasInlinable[fn] && !stillInlinable[fn] {
				failures = append(failures, fmt.Sprintf("%s: %s lost inlining (was inlinable in the baseline)",
					cur.ImportPath, fn))
			}
		}
	}
	return failures
}

func toSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func readReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readReport(f)
}
