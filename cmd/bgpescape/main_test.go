package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/hotpath"
)

// TestEscapePackagesCoverHotpathRoots pins the coupling between the
// two halves of the hot-path gate: every package that declares a
// hotpath root must be rebuilt under the escape gate, or its compiler
// verdicts silently go unwatched.
func TestEscapePackagesCoverHotpathRoots(t *testing.T) {
	gated := make(map[string]bool)
	for _, p := range escapePackages {
		gated[p[strings.LastIndex(p, "/")+1:]] = true
	}
	for _, r := range hotpath.Roots() {
		pkg, _, ok := strings.Cut(r.Sym, ".")
		if !ok {
			t.Fatalf("malformed root sym %q", r.Sym)
		}
		if !gated[pkg] {
			t.Errorf("hotpath root %s lives in package %q, which escapePackages does not gate", r.Sym, pkg)
		}
	}
}

func TestFuncSpansAndOwner(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "x.go")
	code := `package x

var m = map[string]int{}

func Top() int {
	return 1
}

type R struct{}

func (r *R) Method() {
	_ = m
}

func (r R) Value() {}

type G[T any] struct{}

func (g *G[T]) Gen() {}
`
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	spans, err := funcSpans(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line int
		want string
	}{
		{3, ""}, // package-level var
		{6, "Top"},
		{12, "R.Method"},
		{15, "R.Value"},
		{19, "G.Gen"},
	}
	for _, c := range cases {
		if got := owner(spans, c.line); got != c.want {
			t.Errorf("owner(line %d) = %q, want %q", c.line, got, c.want)
		}
	}
}

// writeDiagFile lays out a package diagnostics dir the way the
// compiler does: header line naming the source file, then one JSON
// diagnostic per line.
func writeDiagFile(t *testing.T, dir, name, srcFile string, diags ...string) {
	t.Helper()
	lines := append([]string{`{"version":0,"package":"p","file":"` + srcFile + `"}`}, diags...)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseDiagDir(t *testing.T) {
	root := t.TempDir()
	src := filepath.Join(root, "y.go")
	code := `package y

var boot = map[string]int{}

func Hot() {
	_ = boot
}

func Cold() {}
`
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	diag := filepath.Join(root, "diag")
	pkgDir := filepath.Join(diag, "example.com%2Fy")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeDiagFile(t, pkgDir, "y.json", src,
		// Package-scope escape: excluded (init-time only).
		`{"range":{"start":{"line":3,"character":1}},"code":"escapes","message":"map literal escapes to heap"}`,
		// Two identical in-function escapes: multiset count 2.
		`{"range":{"start":{"line":6,"character":2}},"code":"escapes","message":"boot escapes to heap"}`,
		`{"range":{"start":{"line":6,"character":9}},"code":"escapes","message":"boot escapes to heap"}`,
		// Noise codes the parser must ignore.
		`{"range":{"start":{"line":6,"character":2}},"code":"escape","message":""}`,
		`{"range":{"start":{"line":6,"character":2}},"code":"leak","message":"parameter x leaks"}`,
		`{"range":{"start":{"line":6,"character":2}},"code":"isInBounds","message":""}`,
		// Inlining verdicts.
		`{"range":{"start":{"line":5,"character":6}},"code":"cannotInlineFunction","message":"function too complex"}`,
		`{"range":{"start":{"line":9,"character":6}},"code":"canInlineFunction","message":"cost: 2"}`,
	)
	pkgs, err := parseDiagDir(diag, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "example.com/y" {
		t.Errorf("import path %q not unescaped", p.ImportPath)
	}
	if len(p.Escapes) != 1 || p.Escapes[0].Count != 2 || p.Escapes[0].Func != "Hot" {
		t.Errorf("escapes = %+v, want one Hot site with count 2", p.Escapes)
	}
	if p.Escapes[0].File != "y.go" {
		t.Errorf("file %q not made root-relative", p.Escapes[0].File)
	}
	if len(p.Inlinable) != 1 || p.Inlinable[0] != "Cold" {
		t.Errorf("inlinable = %v, want [Cold]", p.Inlinable)
	}
	if len(p.NotInlinable) != 1 || p.NotInlinable[0] != "Hot" {
		t.Errorf("notInlinable = %v, want [Hot]", p.NotInlinable)
	}
}

func rep(pkgs ...Package) *Report {
	return &Report{Schema: SchemaV1, GeneratedWith: currentHost(), Packages: pkgs}
}

func TestDiffReports(t *testing.T) {
	base := rep(Package{
		ImportPath: "m/p",
		Escapes:    []Escape{{File: "p.go", Func: "F", Message: "x escapes to heap", Count: 1}},
		Inlinable:  []string{"F", "G"},
	})
	// Identical: clean.
	if fails := diffReports(base, base); len(fails) != 0 {
		t.Errorf("identical reports: %v", fails)
	}
	// Count growth on a known site fails; a shrunken site passes.
	grown := rep(Package{
		ImportPath: "m/p",
		Escapes:    []Escape{{File: "p.go", Func: "F", Message: "x escapes to heap", Count: 3}},
		Inlinable:  []string{"F", "G"},
	})
	if fails := diffReports(base, grown); len(fails) != 1 || !strings.Contains(fails[0], "new heap escape ×2") {
		t.Errorf("count growth: %v", fails)
	}
	if fails := diffReports(grown, base); len(fails) != 0 {
		t.Errorf("count shrink should pass: %v", fails)
	}
	// A brand-new site in a brand-new package fails.
	newPkg := rep(base.Packages[0], Package{
		ImportPath: "m/q",
		Escapes:    []Escape{{File: "q.go", Func: "H", Message: "y escapes to heap", Count: 1}},
	})
	if fails := diffReports(base, newPkg); len(fails) != 1 || !strings.Contains(fails[0], "m/q") {
		t.Errorf("new package site: %v", fails)
	}
	// Lost inlining fails; a function inlinable in some instantiations
	// and not others does not.
	lost := rep(Package{
		ImportPath:   "m/p",
		Escapes:      base.Packages[0].Escapes,
		Inlinable:    []string{"F"},
		NotInlinable: []string{"G"},
	})
	if fails := diffReports(base, lost); len(fails) != 1 || !strings.Contains(fails[0], "G lost inlining") {
		t.Errorf("lost inlining: %v", fails)
	}
	mixed := rep(Package{
		ImportPath:   "m/p",
		Escapes:      base.Packages[0].Escapes,
		Inlinable:    []string{"F", "G"},
		NotInlinable: []string{"G"},
	})
	if fails := diffReports(base, mixed); len(fails) != 0 {
		t.Errorf("mixed instantiation verdicts should pass: %v", fails)
	}
}

func TestCodecEscapesAssertion(t *testing.T) {
	// A per-event root of an ingest codec package must trip rule 3...
	bad := rep(Package{
		ImportPath: "repro/internal/raslog",
		Escapes:    []Escape{{File: "record.go", Func: "Record.UnmarshalFields", Message: "z escapes to heap", Count: 1}},
	})
	fails := codecEscapes(bad)
	if len(fails) != 1 || !strings.Contains(fails[0], "Record.UnmarshalFields") {
		t.Errorf("codec root escape: %v", fails)
	}
	// ...while non-root functions and non-codec packages do not.
	ok := rep(
		Package{
			ImportPath: "repro/internal/raslog",
			Escapes:    []Escape{{File: "store.go", Func: "NewStore", Message: "z escapes to heap", Count: 1}},
		},
		Package{
			ImportPath: "repro/internal/store",
			Escapes:    []Escape{{File: "segment.go", Func: "Segment.AppendRow", Message: "sealed error escapes to heap", Count: 1}},
		},
	)
	if fails := codecEscapes(ok); len(fails) != 0 {
		t.Errorf("non-protected escapes tripped rule 3: %v", fails)
	}
}

// TestCompareStaleBaseline is the end-to-end contract for a baseline
// that has rotted behind the code: comparing a report with a site the
// baseline does not know must exit 1 and name the site, and a
// toolchain mismatch must skip the diff (exit 0) while still running
// the codec assertion.
func TestCompareStaleBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *Report) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeReport(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	base := write("base.json", rep(Package{ImportPath: "m/p"}))
	cur := write("cur.json", rep(Package{
		ImportPath: "m/p",
		Escapes:    []Escape{{File: "p.go", Func: "F", Message: "x escapes to heap", Count: 1}},
	}))

	var out, errb bytes.Buffer
	if code := run([]string{"compare", "-baseline", base, "-current", cur}, &out, &errb); code != 1 {
		t.Fatalf("stale baseline: exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "new heap escape") || !strings.Contains(out.String(), "make escape-baseline") {
		t.Errorf("stale-baseline output missing violation or remedy:\n%s", out.String())
	}

	// Same reports, but the baseline claims another compiler minor:
	// the diff is skipped and the run passes.
	otherHost := rep(Package{ImportPath: "m/p"})
	otherHost.GeneratedWith.Go = "go9.99.0"
	baseOld := write("base-old.json", otherHost)
	out.Reset()
	if code := run([]string{"compare", "-baseline", baseOld, "-current", cur}, &out, &errb); code != 0 {
		t.Fatalf("toolchain mismatch: exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "SKIP baseline comparison") {
		t.Errorf("mismatch output missing SKIP notice:\n%s", out.String())
	}
	if strings.Contains(out.String(), "::warning") {
		t.Errorf("annotation emitted outside GitHub Actions:\n%s", out.String())
	}
	out.Reset()
	t.Setenv("GITHUB_ACTIONS", "true")
	if code := run([]string{"compare", "-baseline", baseOld, "-current", cur}, &out, &errb); code != 0 {
		t.Fatalf("toolchain mismatch under CI: exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "::warning title=bgpescape gate skipped::") {
		t.Errorf("CI skip missing ::warning:: annotation:\n%s", out.String())
	}
	t.Setenv("GITHUB_ACTIONS", "")

	// Toolchain mismatch must NOT mute the codec zero-escape rule.
	curCodec := write("cur-codec.json", rep(Package{
		ImportPath: "repro/internal/joblog",
		Escapes:    []Escape{{File: "joblog.go", Func: "Job.UnmarshalFields", Message: "x escapes to heap", Count: 1}},
	}))
	out.Reset()
	if code := run([]string{"compare", "-baseline", baseOld, "-current", curCodec}, &out, &errb); code != 1 {
		t.Fatalf("codec escape under mismatch: exit %d, want 1\n%s", code, out.String())
	}
}

// TestCommittedBaselineLoads keeps the committed baseline loadable and
// host-stamped; a schema bump without a baseline regeneration fails
// here rather than in CI's compare step.
func TestCommittedBaselineLoads(t *testing.T) {
	rep, err := readReportFile(filepath.Join("..", "..", "escape.baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(rep.Packages) != len(escapePackages) {
		t.Errorf("baseline covers %d packages, escapePackages has %d", len(rep.Packages), len(escapePackages))
	}
	if fails := codecEscapes(rep); len(fails) != 0 {
		t.Errorf("committed baseline violates the codec zero-escape rule: %v", fails)
	}
}
