package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestMemboundMatchesBatch is the bounded-memory equivalence gate at
// the command level: a -mem-budget small enough to force several spill
// flushes must render byte-identical artifacts to the unconstrained
// in-memory run over the same logs, and the spool/merge diagnostics on
// stderr must show both a budget flush and a zone-map skip.
func TestMemboundMatchesBatch(t *testing.T) {
	rasP, jobP := writeFixtureLogs(t)

	var want, wantErr bytes.Buffer
	if err := run([]string{"-ras", rasP, "-job", jobP}, &want, &wantErr); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(rasP)
	if err != nil {
		t.Fatal(err)
	}
	budget := st.Size() / 8 // well under the event payload: must spill
	var got, gotErr bytes.Buffer
	err = run([]string{"-ras", rasP, "-job", jobP, "-mem-budget", strconv.FormatInt(budget, 10)}, &got, &gotErr)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("-mem-budget %d output differs from unconstrained run (%d vs %d bytes)",
			budget, got.Len(), want.Len())
	}
	diag := gotErr.String()
	if !strings.Contains(diag, "budget_flushes=") || strings.Contains(diag, "budget_flushes=0") {
		t.Errorf("budget %d forced no spill flush:\n%s", budget, diag)
	}
	if !strings.Contains(diag, "zone_skipped=") || strings.Contains(diag, "zone_skipped=0 ") {
		t.Errorf("merge consulted no zone map:\n%s", diag)
	}
}

// TestMemboundSingleArtifact checks the artifact selector works on the
// bounded path and that an explicit -spill-dir receives segment runs.
func TestMemboundSingleArtifact(t *testing.T) {
	rasP, jobP := writeFixtureLogs(t)
	spill := filepath.Join(t.TempDir(), "runs")

	var want bytes.Buffer
	if err := run([]string{"-ras", rasP, "-job", jobP, "-artifact", "t4"}, &want, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	err := run([]string{"-ras", rasP, "-job", jobP, "-artifact", "t4",
		"-mem-budget", "4096", "-spill-dir", spill}, &got, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("-artifact t4 differs under -mem-budget")
	}
	segs, err := filepath.Glob(filepath.Join(spill, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segment runs in the explicit -spill-dir")
	}

	var out bytes.Buffer
	err = run([]string{"-ras", rasP, "-job", jobP, "-artifact", "bogus", "-mem-budget", "4096"},
		&out, new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("bounded path accepted unknown artifact: %v", err)
	}
}
