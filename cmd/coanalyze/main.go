// Command coanalyze runs the paper's co-analysis methodology over a
// RAS log and a job log (in this module's line formats, e.g. produced
// by bgpgen) and prints the requested artifacts.
//
// Usage:
//
//	coanalyze -ras ras.log -job job.log              # everything
//	coanalyze -ras ras.log -job job.log -artifact t4 # Table IV only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro"
)

var artifacts = map[string]func(*repro.Report, io.Writer) error{
	"t1":       (*repro.Report).RenderTableI,
	"t2":       (*repro.Report).RenderTableII,
	"t3":       (*repro.Report).RenderTableIII,
	"pipeline": (*repro.Report).RenderPipeline,
	"obs1":     (*repro.Report).RenderIdentification,
	"obs2":     (*repro.Report).RenderClassification,
	"obs3":     (*repro.Report).RenderJobFilter,
	"f2":       (*repro.Report).RenderFigure2,
	"f3":       (*repro.Report).RenderFigure3,
	"t4":       (*repro.Report).RenderTableIV,
	"f4":       (*repro.Report).RenderFigure4,
	"f5":       (*repro.Report).RenderFigure5,
	"f6":       (*repro.Report).RenderFigure6,
	"t5":       (*repro.Report).RenderTableV,
	"obs8":     (*repro.Report).RenderPropagation,
	"f7":       (*repro.Report).RenderFigure7,
	"t6":       (*repro.Report).RenderTableVI,
	"features": (*repro.Report).RenderFeatures,
	"predict":  (*repro.Report).RenderPrediction,
	"ckpt":     (*repro.Report).RenderCheckpointStudy,
	"types":    (*repro.Report).RenderEventTypes,
	"models":   (*repro.Report).RenderModelComparison,
	"sweep":    (*repro.Report).RenderSensitivity,
	"mpfits":   (*repro.Report).RenderMidplaneFits,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rasP        = fs.String("ras", "ras.log", "RAS log path")
		jobP        = fs.String("job", "job.log", "job log path")
		artifact    = fs.String("artifact", "all", "artifact to print: all, or one of "+keys())
		parallelism = fs.Int("parallelism", 0, "worker bound for log decode and analysis fan-outs (0 = GOMAXPROCS, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rf, err := os.Open(*rasP)
	if err != nil {
		return err
	}
	defer rf.Close()
	jf, err := os.Open(*jobP)
	if err != nil {
		return err
	}
	defer jf.Close()

	cfg := repro.DefaultConfig(0)
	cfg.Parallelism = *parallelism
	rep, err := repro.Load(cfg, rf, jf)
	if err != nil {
		return err
	}

	if *artifact == "all" {
		return rep.RenderAll(stdout)
	}
	render, ok := artifacts[*artifact]
	if !ok {
		return fmt.Errorf("unknown artifact %q; want all or one of %s", *artifact, keys())
	}
	return render(rep, stdout)
}

func keys() string {
	out := make([]string, 0, len(artifacts))
	for k := range artifacts {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
