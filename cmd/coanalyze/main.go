// Command coanalyze runs the paper's co-analysis methodology over a
// RAS log and a job log (in this module's line formats, e.g. produced
// by bgpgen) and prints the requested artifacts.
//
// Usage:
//
//	coanalyze -ras ras.log -job job.log              # everything
//	coanalyze -ras ras.log -job job.log -artifact t4 # Table IV only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
	"repro/internal/sched"
)

// artifacts is the registry shared with the serving layer; see
// repro.Artifacts.
var artifacts = repro.Artifacts()

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rasP        = fs.String("ras", "ras.log", "RAS log path")
		jobP        = fs.String("job", "job.log", "job log path")
		artifact    = fs.String("artifact", "all", "artifact to print: all, or one of "+keys())
		parallelism = fs.Int("parallelism", 0, "worker bound for log decode and analysis fan-outs (0 = GOMAXPROCS, 1 = sequential)")
		memBudget   = fs.Int64("mem-budget", 0, "bound the in-memory event payload to this many bytes, spilling sorted segment runs to disk and merging them back with zone-map pushdown; output is byte-identical to the unconstrained run (0 = analyze fully in memory)")
		spillDir    = fs.String("spill-dir", "", "directory for -mem-budget segment runs (empty = a temp dir, removed on exit)")
		matrix      = fs.Bool("policy-matrix", false, "co-analyze the per-policy log pairs a bgpgen -policy-matrix run wrote next to -ras/-job (ras.<policy>.log) and print the cross-policy comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *matrix {
		return runPolicyMatrix(*rasP, *jobP, *parallelism, stdout)
	}
	if *memBudget > 0 {
		return runMembound(*memBudget, *spillDir, *rasP, *jobP, *artifact, *parallelism, stdout, stderr)
	}

	rf, err := os.Open(*rasP)
	if err != nil {
		return err
	}
	defer rf.Close()
	jf, err := os.Open(*jobP)
	if err != nil {
		return err
	}
	defer jf.Close()

	cfg := repro.DefaultConfig(0)
	cfg.Parallelism = *parallelism
	rep, err := repro.Load(cfg, rf, jf)
	if err != nil {
		return err
	}

	if *artifact == "all" {
		return rep.RenderAll(stdout)
	}
	render, ok := artifacts[*artifact]
	if !ok {
		return fmt.Errorf("unknown artifact %q; want all or one of %s", *artifact, keys())
	}
	return render(rep, stdout)
}

// runPolicyMatrix loads every per-policy log pair found next to the
// base paths (as written by bgpgen -policy-matrix: ras.log ->
// ras.<policy>.log), co-analyzes each, and prints the cross-policy
// comparison. The oracle-only idle-fault column is zero here: external
// logs carry no ground truth.
func runPolicyMatrix(rasP, jobP string, parallelism int, stdout io.Writer) error {
	cfg := repro.DefaultConfig(0)
	cfg.Parallelism = parallelism
	var outs []repro.PolicyOutcome
	for _, name := range sched.PolicyNames() {
		rp, jp := withPolicy(rasP, name), withPolicy(jobP, name)
		if _, err := os.Stat(rp); os.IsNotExist(err) {
			continue
		}
		rep, err := loadPair(cfg, rp, jp)
		if err != nil {
			return fmt.Errorf("policy %s: %w", name, err)
		}
		outs = append(outs, repro.PolicyOutcome{Policy: name, Report: rep, Stats: rep.PolicyStats()})
	}
	if len(outs) == 0 {
		return fmt.Errorf("no per-policy log pairs found next to %s (expected e.g. %s; run bgpgen -policy-matrix first)",
			rasP, withPolicy(rasP, sched.DefaultPolicy))
	}
	return repro.RenderPolicyComparison(stdout, outs)
}

// withPolicy splices a policy name into a log path before its
// extension, mirroring bgpgen -policy-matrix output naming.
func withPolicy(path, policy string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + policy + ext
}

func loadPair(cfg repro.Config, rasP, jobP string) (*repro.Report, error) {
	rf, err := os.Open(rasP)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	jf, err := os.Open(jobP)
	if err != nil {
		return nil, err
	}
	defer jf.Close()
	return repro.Load(cfg, rf, jf)
}

func keys() string {
	out := make([]string, 0, len(artifacts))
	for k := range artifacts {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
