package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

// writeFixtureLogs produces small log files once per test binary.
func writeFixtureLogs(t *testing.T) (rasP, jobP string) {
	t.Helper()
	dir := t.TempDir()
	rasP = filepath.Join(dir, "ras.log")
	jobP = filepath.Join(dir, "job.log")
	camp, err := simulate.Run(simulate.Config{Seed: 5, Days: 10, NoisePerFatal: 1})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Create(rasP)
	if err != nil {
		t.Fatal(err)
	}
	rw := raslog.NewWriter(rf)
	for _, rec := range camp.RAS.All() {
		if err := rw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	jf, err := os.Create(jobP)
	if err != nil {
		t.Fatal(err)
	}
	jw := joblog.NewWriter(jf)
	for _, j := range camp.Jobs.All() {
		if err := jw.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	return rasP, jobP
}

func TestRunSingleArtifact(t *testing.T) {
	rasP, jobP := writeFixtureLogs(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-ras", rasP, "-job", jobP, "-artifact", "t6"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table VI") {
		t.Errorf("missing Table VI in output")
	}
	if strings.Contains(out.String(), "Table IV") {
		t.Errorf("unrequested artifact rendered")
	}
}

func TestRunAllArtifacts(t *testing.T) {
	rasP, jobP := writeFixtureLogs(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-ras", rasP, "-job", jobP}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I:", "Table VI:", "Figure 7:", "Extension:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("all-artifacts output missing %q", want)
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	rasP, jobP := writeFixtureLogs(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-ras", rasP, "-job", jobP, "-artifact", "bogus"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("err = %v", err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-ras", "/no/such.log", "-job", "/no/such2.log"}, &out, &errOut); err == nil {
		t.Error("missing files accepted")
	}
}

func TestKeysSortedAndComplete(t *testing.T) {
	ks := keys()
	if !strings.Contains(ks, "t4") || !strings.Contains(ks, "predict") {
		t.Errorf("keys = %q", ks)
	}
	parts := strings.Split(ks, ", ")
	if len(parts) != len(artifacts) {
		t.Errorf("keys lists %d, artifacts has %d", len(parts), len(artifacts))
	}
	for i := 1; i < len(parts); i++ {
		if parts[i-1] >= parts[i] {
			t.Errorf("keys not sorted at %q >= %q", parts[i-1], parts[i])
		}
	}
}

func TestRunPolicyMatrixComparison(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	runs, err := simulate.RunMatrix(simulate.Config{Seed: 5, Days: 10, NoisePerFatal: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		rf, err := os.Create(withPolicy(rasP, r.Policy))
		if err != nil {
			t.Fatal(err)
		}
		jf, err := os.Create(withPolicy(jobP, r.Policy))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Campaign.WriteLogs(rf, jf); err != nil {
			t.Fatal(err)
		}
		rf.Close()
		jf.Close()
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-ras", rasP, "-job", jobP, "-policy-matrix"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Policy matrix:") {
		t.Error("missing comparison table")
	}
	for _, r := range runs {
		if !strings.Contains(s, r.Policy) {
			t.Errorf("comparison missing policy %s", r.Policy)
		}
	}

	// Interruption outcomes must differ measurably across policies: the
	// Interruptions column cannot be a single repeated value.
	counts := map[string]bool{}
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) >= 3 {
			for _, r := range runs {
				if f[0] == r.Policy {
					counts[f[2]] = true
				}
			}
		}
	}
	if len(counts) < 2 {
		t.Errorf("all policies show identical interruption counts:\n%s", s)
	}

	// No per-policy pairs next to the base paths -> a helpful error.
	empty := t.TempDir()
	if err := run([]string{"-ras", filepath.Join(empty, "ras.log"),
		"-job", filepath.Join(empty, "job.log"), "-policy-matrix"}, &out, &errOut); err == nil {
		t.Error("missing matrix logs accepted")
	}
}
