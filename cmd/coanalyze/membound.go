package main

// The bounded-memory analysis path behind -mem-budget: instead of
// decoding the whole RAS log into one in-memory store, a single
// sequential pass spools rows into sorted on-disk segment runs
// (store.Spool flushes whenever the buffered payload exceeds the
// budget), then the runs merge back — with zone-map pushdown skipping
// every noise-only run unread — into the streaming filter cascade, and
// the analysis proceeds exactly as the serving layer's epoch
// publication does. Every stage downstream of the raw decode is the
// same code the batch path is already proven byte-equivalent to, so
// the rendered artifacts are byte-identical to an unconstrained run
// over the same logs.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// runMembound analyzes rasLog/jobLog under a spill budget and renders
// the requested artifact. spillDir holds the segment runs; when empty
// a temporary directory is used and removed afterwards.
func runMembound(budget int64, spillDir, rasP, jobP, artifact string, parallelism int, stdout, stderr io.Writer) error {
	if spillDir == "" {
		dir, err := os.MkdirTemp("", "coanalyze-spill-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		spillDir = dir
	} else if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return err
	}

	rf, err := os.Open(rasP)
	if err != nil {
		return err
	}
	defer rf.Close()

	// One sequential pass: accumulate the raw-log aggregates the report
	// needs (the batch path derives them from the retained store; here
	// nothing is retained) and spool every row toward its sorted run.
	// The budget's currency is the record's encoded line length — the
	// same bytes Table I counts — so "budget smaller than the event
	// payload" guarantees at least one spill.
	var (
		stats           repro.LogStats
		rasFirst        int64 // min/max event time over ALL records
		rasLast         int64
		firstT, firstID int64 // FirstFatal key: min (EventTime, RecID)
		sp              = store.NewSpool(spillDir, budget)
		rd              = raslog.NewReader(rf)
	)
	for {
		rec, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("reading RAS log: line %d: %w", rd.Line(), err)
		}
		t := rec.EventTime.UnixNano()
		weight := int64(len(rec.MarshalLine()) + 1)
		stats.RASRecords++
		stats.RASBytes += int(weight)
		if stats.RASRecords == 1 || t < rasFirst {
			rasFirst = t
		}
		if stats.RASRecords == 1 || t > rasLast {
			rasLast = t
		}
		if rec.Fatal() {
			stats.FatalRecords++
			// First fatal in (EventTime, RecID) order; strict less keeps
			// the earliest arrival on full ties, matching the stable sort
			// of the batch store.
			if !stats.HasFatal || t < firstT || (t == firstT && rec.RecID < firstID) {
				stats.FirstFatal = rec
				stats.HasFatal = true
				firstT, firstID = t, rec.RecID
			}
		}
		err = sp.Add(rec.RecID, t, rec.ErrCode, rec.Location,
			int32(rec.Component), int32(rec.Severity), rec.Fatal(), weight)
		if err != nil {
			return err
		}
	}

	cat, spStats, err := sp.Finish()
	if err != nil {
		return err
	}
	defer cat.Close()
	fmt.Fprintf(stderr, "coanalyze: mem-budget %d: rows=%d runs=%d budget_flushes=%d spilled_bytes=%d\n",
		budget, spStats.Rows, spStats.Runs, spStats.Flushes, spStats.SpilledBytes)

	jf, err := os.Open(jobP)
	if err != nil {
		return err
	}
	defer jf.Close()
	jobs, err := joblog.ReadAllParallel(jf, parallelism)
	if err != nil {
		return fmt.Errorf("reading job log: %w", err)
	}
	jl := joblog.NewLog(jobs)

	// Merge the runs back into one (EventTime, RecID)-ordered stream of
	// the rows the cascade consumes. The query's FATAL mask lets the
	// zone maps refute every noise-only run from its header.
	acfg := core.DefaultConfig()
	acfg.Parallelism = parallelism
	tab := symtab.NewTable()
	inc := filter.NewIncremental(acfg.Filter, tab)
	mr, err := cat.Merge(filter.CascadeQuery())
	if err != nil {
		return err
	}
	for {
		row, ok, err := mr.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := inc.FeedRow(row); err != nil {
			return err
		}
	}
	ms := mr.Stats()
	fmt.Fprintf(stderr, "coanalyze: merge: segments=%d zone_skipped=%d scanned=%d fatal_rows=%d\n",
		ms.Segments, ms.Skipped, ms.Scanned, ms.Rows)

	events, fstats := inc.Snapshot()
	var bld core.OccupancyBuilder
	for _, j := range jl.All() {
		bld.Add(j)
	}
	jFirst, jLast := jl.Span()
	start, end := core.UnionSpan(nsTime(rasFirst), nsTime(rasLast), jFirst, jLast)
	a, err := core.AnalyzeStream(acfg, core.StreamInput{
		Tab:         tab,
		Events:      events,
		FilterStats: fstats,
		Jobs:        jl,
		Occupancy:   bld.Snapshot(),
		SpanStart:   start,
		SpanEnd:     end,
	})
	if err != nil {
		return err
	}
	rep := repro.NewStreamReport(a, jl, stats)

	if artifact == "all" {
		return rep.RenderAll(stdout)
	}
	render, ok := artifacts[artifact]
	if !ok {
		return fmt.Errorf("unknown artifact %q; want all or one of %s", artifact, keys())
	}
	return render(rep, stdout)
}

// nsTime converts unix nanoseconds to a UTC time, mapping 0 (no
// records seen) to the zero time so UnionSpan ignores the empty side.
func nsTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}
