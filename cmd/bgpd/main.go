// Command bgpd is the co-analysis daemon: it ingests RAS and job log
// records continuously — from files loaded at startup, from growing
// files followed tail -f style, and from POSTed line batches — keeps
// the filter cascade and the paper's analyses up to date
// incrementally, and serves the results over HTTP/JSON from immutable
// published epochs, so queries never block ingest and every response
// is consistent with exactly one publication.
//
// Usage:
//
//	bgpd -addr :8080 -ras ras.log -job job.log            # load then serve
//	bgpd -addr :8080 -ras ras.log -job job.log -follow    # tail growing logs
//	bgpd -addr :8080 -data /var/lib/bgpd                  # durable segments
//
// Endpoints (see README.md for examples):
//
//	POST /v1/ingest/ras   POST /v1/ingest/job   POST /v1/seal
//	POST /v1/publish      POST /v1/quiesce
//	GET  /v1/epoch        GET  /v1/query/{name} GET  /v1/report/{name}
//	GET  /v1/scan         GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/serve"
)

// followBatch bounds how many tailed records accumulate before they
// are pushed into the engine even if the flush ticker has not fired.
const followBatch = 256

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgpd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address")
		dataDir      = fs.String("data", "", "directory for durable sealed segments (empty = in-memory only)")
		rasP         = fs.String("ras", "", "RAS log to ingest at startup (and follow with -follow)")
		jobP         = fs.String("job", "", "job log to ingest at startup (and follow with -follow)")
		follow       = fs.Bool("follow", false, "keep tailing -ras/-job for appended records")
		publishEvery = fs.Duration("publish-every", 5*time.Second, "how often to publish a fresh epoch")
		sealRecords  = fs.Int("seal-records", 4096, "filtered rows per durable segment")
		poll         = fs.Duration("poll", 0, "tail poll interval for -follow (0 = default)")
		flushEvery   = fs.Duration("flush-every", time.Second, "max latency before tailed records are ingested")
		memBudget    = fs.Int64("mem-budget", 0, "resident column budget in bytes; sealed segments past it spill to -data and reload on demand (0 = keep everything resident; requires -data)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *memBudget > 0 && *dataDir == "" {
		return errors.New("-mem-budget requires -data (spilled segments live there)")
	}

	eng, err := serve.NewEngine(serve.Config{DataDir: *dataDir, SealRows: *sealRecords, MemBudget: *memBudget})
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	if *rasP != "" {
		f, err := os.Open(*rasP)
		if err != nil {
			return err
		}
		defer f.Close()
		if *follow {
			wg.Add(1)
			go func() {
				defer wg.Done()
				followRAS(ctx, eng, f, *poll, *flushEvery, stderr)
			}()
		} else if err := loadRAS(eng, f); err != nil {
			return fmt.Errorf("load %s: %w", *rasP, err)
		}
	}
	if *jobP != "" {
		f, err := os.Open(*jobP)
		if err != nil {
			return err
		}
		defer f.Close()
		if *follow {
			wg.Add(1)
			go func() {
				defer wg.Done()
				followJobs(ctx, eng, f, *poll, *flushEvery, stderr)
			}()
		} else if err := loadJobs(eng, f); err != nil {
			return fmt.Errorf("load %s: %w", *jobP, err)
		}
	}
	// Publish whatever the startup load produced so queries work
	// immediately; an empty engine has nothing to publish yet.
	if _, err := eng.Publish(); err != nil && ctx.Err() == nil {
		fmt.Fprintln(stderr, "bgpd: initial publish:", err)
	}

	// Periodic publication: tailed and POSTed records become visible to
	// queries at this cadence at the latest (POST /v1/publish forces it).
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(*publishEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if _, err := eng.Publish(); err != nil {
					fmt.Fprintln(stderr, "bgpd: publish:", err)
				}
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake: with -addr :0
	// it is the only way to learn the port.
	fmt.Fprintf(stdout, "bgpd: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: serve.NewServer(eng)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "bgpd: shutdown:", err)
		}
		wg.Wait()
		// Final seal: commit the in-memory tail so a restart against
		// -data resumes from everything ingested, not the last auto-seal.
		if err := eng.Seal(); err != nil {
			return fmt.Errorf("final seal: %w", err)
		}
		fmt.Fprintln(stdout, "bgpd: stopped")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// loadRAS bulk-ingests a complete RAS log. The engine's streaming
// contract wants (EventTime, RecID) order, but a complete file is all
// here already — sort it like the batch tools effectively do, then
// feed bounded batches.
func loadRAS(eng *serve.Engine, r io.Reader) error {
	rd := raslog.NewReader(r)
	recs, err := rd.ReadAll()
	if err != nil {
		return fmt.Errorf("line %d: %w", rd.Line(), err)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if !recs[i].EventTime.Equal(recs[j].EventTime) {
			return recs[i].EventTime.Before(recs[j].EventTime)
		}
		return recs[i].RecID < recs[j].RecID
	})
	for i := 0; i < len(recs); i += followBatch {
		if err := eng.IngestRAS(recs[i:min(i+followBatch, len(recs))]); err != nil {
			return err
		}
	}
	return nil
}

// loadJobs bulk-ingests a complete job log, sorted into the engine's
// (EndTime, ID) ingest order.
func loadJobs(eng *serve.Engine, r io.Reader) error {
	rd := joblog.NewReader(r)
	jobs, err := rd.ReadAll()
	if err != nil {
		return fmt.Errorf("line %d: %w", rd.Line(), err)
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		if !jobs[i].EndTime.Equal(jobs[j].EndTime) {
			return jobs[i].EndTime.Before(jobs[j].EndTime)
		}
		return jobs[i].ID < jobs[j].ID
	})
	for i := 0; i < len(jobs); i += followBatch {
		if err := eng.IngestJobs(jobs[i:min(i+followBatch, len(jobs))]); err != nil {
			return err
		}
	}
	return nil
}

// followRAS tails a growing RAS log until ctx is cancelled, ingesting
// records in batches bounded by size (followBatch) and latency
// (flushEvery). Decode runs on its own goroutine because the tail
// reader blocks at end of input by design.
func followRAS(ctx context.Context, eng *serve.Engine, f io.Reader, poll, flushEvery time.Duration, stderr io.Writer) {
	rd := raslog.NewTailReader(ctx, f, poll)
	recc := make(chan raslog.Record, followBatch)
	go func() {
		defer close(recc)
		for rd.Next() {
			recc <- *rd.Record()
		}
		if err := rd.Err(); err != nil {
			fmt.Fprintf(stderr, "bgpd: ras tail: line %d: %v (stream abandoned)\n", rd.Line(), err)
		}
	}()
	var batch []raslog.Record
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// The writer appends in event order but breaks same-timestamp
		// ties arbitrarily; restore the engine's (EventTime, RecID)
		// order within the batch.
		sort.SliceStable(batch, func(i, j int) bool {
			if !batch[i].EventTime.Equal(batch[j].EventTime) {
				return batch[i].EventTime.Before(batch[j].EventTime)
			}
			return batch[i].RecID < batch[j].RecID
		})
		if err := eng.IngestRAS(batch); err != nil {
			fmt.Fprintf(stderr, "bgpd: ras tail: %v (%d records dropped)\n", err, len(batch))
		}
		batch = nil
	}
	tick := time.NewTicker(flushEvery)
	defer tick.Stop()
	for {
		select {
		case rec, ok := <-recc:
			if !ok {
				flush()
				return
			}
			batch = append(batch, rec)
			if len(batch) >= followBatch {
				flush()
			}
		case <-tick.C:
			flush()
		}
	}
}

// followJobs is followRAS for the job log.
func followJobs(ctx context.Context, eng *serve.Engine, f io.Reader, poll, flushEvery time.Duration, stderr io.Writer) {
	rd := joblog.NewTailReader(ctx, f, poll)
	jobc := make(chan joblog.Job, followBatch)
	go func() {
		defer close(jobc)
		for rd.Next() {
			jobc <- *rd.Job()
		}
		if err := rd.Err(); err != nil {
			fmt.Fprintf(stderr, "bgpd: job tail: line %d: %v (stream abandoned)\n", rd.Line(), err)
		}
	}()
	var batch []joblog.Job
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sort.SliceStable(batch, func(i, j int) bool {
			if !batch[i].EndTime.Equal(batch[j].EndTime) {
				return batch[i].EndTime.Before(batch[j].EndTime)
			}
			return batch[i].ID < batch[j].ID
		})
		if err := eng.IngestJobs(batch); err != nil {
			fmt.Fprintf(stderr, "bgpd: job tail: %v (%d jobs dropped)\n", err, len(batch))
		}
		batch = nil
	}
	tick := time.NewTicker(flushEvery)
	defer tick.Stop()
	for {
		select {
		case job, ok := <-jobc:
			if !ok {
				flush()
				return
			}
			batch = append(batch, job)
			if len(batch) >= followBatch {
				flush()
			}
		case <-tick.C:
			flush()
		}
	}
}
