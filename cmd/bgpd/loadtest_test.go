package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

// TestLoadServeUnderIngest is the load harness: it drives the daemon
// with a fixed-rate ingest stream while concurrent workers hammer the
// query endpoints, and reports the sustained queries/sec. It is a
// functional test first — every response must be a known status and
// the final quiesced epoch must account for every ingested record —
// and a measurement second (the logged rates feed EXPERIMENTS.md).
func TestLoadServeUnderIngest(t *testing.T) {
	days := 10
	if v := os.Getenv("BGPD_LOAD_DAYS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("BGPD_LOAD_DAYS: bad value %q", v)
		}
		days = n
	}
	camp, err := simulate.Run(simulate.Config{Seed: 31, Days: days, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recs, jobs := camp.RAS.All(), camp.Jobs.All()

	// Pre-marshal fixed-size wire batches so the ingest loop measures
	// the daemon, not the client's encoder.
	const batchRecords = 128
	var rasBatches, jobBatches [][]byte
	for i := 0; i < len(recs); i += batchRecords {
		var buf bytes.Buffer
		w := raslog.NewWriter(&buf)
		for _, r := range recs[i:min(i+batchRecords, len(recs))] {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		rasBatches = append(rasBatches, buf.Bytes())
	}
	for i := 0; i < len(jobs); i += batchRecords {
		var buf bytes.Buffer
		w := joblog.NewWriter(&buf)
		for _, j := range jobs[i:min(i+batchRecords, len(jobs))] {
			if err := w.Write(j); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		jobBatches = append(jobBatches, buf.Bytes())
	}

	base, stop := startDaemon(t, "-publish-every", "100ms")
	defer stop()

	// Fixed ingest rate: one batch every tick until the campaign runs
	// out, alternating streams so jobs and RAS advance together. The
	// tick is overridable so the EXPERIMENTS.md rate sweep is one
	// env var: BGPD_LOAD_TICK=2ms go test ./cmd/bgpd -run TestLoad -v
	ingestTick := 10 * time.Millisecond
	if v := os.Getenv("BGPD_LOAD_TICK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("BGPD_LOAD_TICK: %v", err)
		}
		ingestTick = d
	}
	var ingested atomic.Int64
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		tick := time.NewTicker(ingestTick)
		defer tick.Stop()
		ri, ji := 0, 0
		for ri < len(rasBatches) || ji < len(jobBatches) {
			<-tick.C
			if ri < len(rasBatches) {
				postBatch(t, base+"/v1/ingest/ras", rasBatches[ri])
				ingested.Add(int64(bytes.Count(rasBatches[ri], []byte("\n"))))
				ri++
			}
			if ji < len(jobBatches) {
				postBatch(t, base+"/v1/ingest/job", jobBatches[ji])
				ingested.Add(int64(bytes.Count(jobBatches[ji], []byte("\n"))))
				ji++
			}
		}
	}()

	// Query workers: rotate through every read endpoint until ingest
	// finishes. 503 (before first epoch) and 409 (unrenderable early
	// fragment) are legitimate early answers; anything else but 200 is
	// a failure.
	paths := []string{
		"/v1/epoch", "/healthz",
		"/v1/query/rates", "/v1/query/mtbf", "/v1/query/interruptions", "/v1/query/vulnerability",
		"/v1/report/t1", "/v1/report/obs1",
	}
	const workers = 8
	var queries, errors atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-ingestDone:
					return
				default:
				}
				resp, err := http.Get(base + paths[i%len(paths)])
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable:
					queries.Add(1)
				default:
					errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if n := errors.Load(); n > 0 {
		t.Errorf("%d queries failed outright", n)
	}
	postBatch(t, base+"/v1/quiesce", nil)
	var sum epochSummary
	getJSON(t, base+"/v1/epoch", &sum)
	if sum.RASRecords != len(recs) || sum.Jobs != len(jobs) {
		t.Errorf("quiesced epoch saw %d records, %d jobs; ingested %d, %d",
			sum.RASRecords, sum.Jobs, len(recs), len(jobs))
	}

	qps := float64(queries.Load()) / elapsed.Seconds()
	ips := float64(ingested.Load()) / elapsed.Seconds()
	t.Logf("load: %d workers, %.0f records/sec ingest rate -> %.0f queries/sec over %.2fs (%d queries)",
		workers, ips, qps, elapsed.Seconds(), queries.Load())
}

func postBatch(t *testing.T, url string, body []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
}
