package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

// campaignFiles simulates a campaign and writes its two logs to disk,
// returning the paths and the in-memory records for appending later.
func campaignFiles(t *testing.T, seed int64, days int) (string, string, []raslog.Record, []joblog.Job) {
	t.Helper()
	camp, err := simulate.Run(simulate.Config{Seed: seed, Days: days, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rasPath := filepath.Join(dir, "ras.log")
	jobPath := filepath.Join(dir, "job.log")
	writeRAS(t, rasPath, camp.RAS.All())
	writeJobs(t, jobPath, camp.Jobs.All())
	return rasPath, jobPath, camp.RAS.All(), camp.Jobs.All()
}

func writeRAS(t *testing.T, path string, recs []raslog.Record) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := raslog.NewWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeJobs(t *testing.T, path string, jobs []joblog.Job) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := joblog.NewWriter(f)
	for _, j := range jobs {
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// startDaemon runs the daemon on a kernel-picked port and returns its
// base URL plus a stop function that shuts it down and requires a
// clean exit. The "listening on" stdout line is the startup handshake.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), pw, &stderr)
		pw.Close()
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		cancel()
		select {
		case runErr := <-done:
			t.Fatalf("daemon exited before announcing its address: %v (stderr: %s)", runErr, stderr.String())
		case <-time.After(5 * time.Second):
			t.Fatalf("daemon never announced its address: %v (stderr: %s)", err, stderr.String())
		}
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "bgpd: listening on "))
	go io.Copy(io.Discard, pr) // drain the shutdown message
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v (stderr: %s)", err, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down within 10s")
		}
	}
	return "http://" + addr, stop
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v: %s", url, err, body)
	}
}

type epochSummary struct {
	Epoch        uint64 `json:"epoch"`
	RASRecords   int    `json:"ras_records"`
	FatalRecords int    `json:"fatal_records"`
	Jobs         int    `json:"jobs"`
}

// TestDaemonServesLoadedLogs boots the daemon over complete log files
// and checks that every endpoint family answers from the initial
// publication, then that shutdown is clean.
func TestDaemonServesLoadedLogs(t *testing.T) {
	rasPath, jobPath, recs, jobs := campaignFiles(t, 21, 8)
	base, stop := startDaemon(t, "-ras", rasPath, "-job", jobPath, "-publish-every", "1h")
	defer stop()

	var sum epochSummary
	getJSON(t, base+"/v1/epoch", &sum)
	if sum.RASRecords != len(recs) || sum.Jobs != len(jobs) {
		t.Fatalf("epoch summary counts = %d records, %d jobs; want %d, %d",
			sum.RASRecords, sum.Jobs, len(recs), len(jobs))
	}
	for _, path := range []string{
		"/healthz",
		"/v1/query/rates", "/v1/query/mtbf", "/v1/query/interruptions", "/v1/query/vulnerability",
		"/v1/report/t1", "/v1/report/t4", "/v1/report/obs1",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
	}
	resp, err := http.Post(base+"/v1/quiesce", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/quiesce: status %d", resp.StatusCode)
	}
}

// TestDaemonFollowsGrowingLogs starts the daemon tailing half-written
// logs, appends the rest while it runs, and waits for the appended
// records to show up in a published epoch.
func TestDaemonFollowsGrowingLogs(t *testing.T) {
	camp, err := simulate.Run(simulate.Config{Seed: 22, Days: 6, NoisePerFatal: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recs, jobs := camp.RAS.All(), camp.Jobs.All()
	dir := t.TempDir()
	rasPath := filepath.Join(dir, "ras.log")
	jobPath := filepath.Join(dir, "job.log")
	writeRAS(t, rasPath, recs[:len(recs)/2])
	writeJobs(t, jobPath, jobs[:len(jobs)/2])

	base, stop := startDaemon(t,
		"-ras", rasPath, "-job", jobPath, "-follow",
		"-poll", "10ms", "-flush-every", "25ms", "-publish-every", "50ms")
	defer stop()

	// Append the second half while the daemon is tailing.
	writeRAS(t, rasPath, recs[len(recs)/2:])
	writeJobs(t, jobPath, jobs[len(jobs)/2:])

	deadline := time.Now().Add(15 * time.Second)
	for {
		var sum epochSummary
		resp, err := http.Get(base + "/v1/epoch")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &sum); err != nil {
				t.Fatalf("bad epoch JSON: %v: %s", err, body)
			}
			if sum.RASRecords == len(recs) && sum.Jobs == len(jobs) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("appended records never published: have %d/%d records, %d/%d jobs",
				sum.RASRecords, len(recs), sum.Jobs, len(jobs))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDaemonRestartResumesFromData shuts a durable daemon down (final
// seal) and boots a second one over the same -data directory: the
// recovered epoch must report the full ingested state.
func TestDaemonRestartResumesFromData(t *testing.T) {
	rasPath, jobPath, recs, jobs := campaignFiles(t, 23, 5)
	data := t.TempDir()

	base, stop := startDaemon(t, "-ras", rasPath, "-job", jobPath, "-data", data, "-publish-every", "1h")
	var sum epochSummary
	getJSON(t, base+"/v1/epoch", &sum)
	stop() // clean shutdown writes the final seal

	base2, stop2 := startDaemon(t, "-data", data, "-publish-every", "1h")
	defer stop2()
	var sum2 epochSummary
	getJSON(t, base2+"/v1/epoch", &sum2)
	if sum2.RASRecords != len(recs) || sum2.Jobs != len(jobs) || sum2.FatalRecords != sum.FatalRecords {
		t.Fatalf("restarted daemon epoch = %+v; first run saw %+v over %d records, %d jobs",
			sum2, sum, len(recs), len(jobs))
	}
}

// TestRunBadFlags pins the error paths a misconfigured start takes.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-ras", filepath.Join(t.TempDir(), "missing.log")}, &out, &errb); err == nil {
		t.Error("missing -ras file: want error")
	}
	if err := run(context.Background(), []string{"-badflag"}, &out, &errb); err == nil {
		t.Error("unknown flag: want error")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb); err == nil {
		t.Error("unlistenable address: want error")
	}
}
