package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

const cannedOutput = `goos: linux
goarch: amd64
pkg: repro/internal/raslog
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRASUnmarshal-4       	    2000	      1100 ns/op	  96.55 MB/s	      28 B/op	       0 allocs/op
BenchmarkRASUnmarshal-4       	    2000	      1050 ns/op	  99.55 MB/s	      28 B/op	       0 allocs/op
BenchmarkRASMarshal-4         	    2000	      1059 ns/op	 210.61 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/raslog	0.113s
goos: linux
goarch: amd64
pkg: repro/internal/joblog
BenchmarkJobUnmarshal 	    2000	       900.5 ns/op	      10 B/op	       1 allocs/op
PASS
ok  	repro/internal/joblog	0.1s
`

func TestParseAndReduce(t *testing.T) {
	samples, err := parseBenchOutput(strings.NewReader(cannedOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4", len(samples))
	}
	benches, err := reduce(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("reduced to %d benchmarks, want 3", len(benches))
	}
	byKey := map[string]Benchmark{}
	for _, b := range benches {
		byKey[key(b.Package, b.Name)] = b
	}
	ras := byKey["repro/internal/raslog.BenchmarkRASUnmarshal"]
	if ras.NsPerOp != 1050 { // min across the two samples
		t.Errorf("NsPerOp = %v, want min 1050", ras.NsPerOp)
	}
	if ras.Samples != 2 || ras.AllocsPerOp != 0 || ras.BytesPerOp != 28 {
		t.Errorf("unexpected reduced benchmark: %+v", ras)
	}
	job := byKey["repro/internal/joblog.BenchmarkJobUnmarshal"]
	if job.NsPerOp != 900.5 || job.AllocsPerOp != 1 {
		t.Errorf("fractional ns/op mishandled: %+v", job)
	}
	// GOMAXPROCS suffix must be stripped.
	if _, ok := byKey["repro/internal/raslog.BenchmarkRASMarshal"]; !ok {
		t.Error("missing BenchmarkRASMarshal (suffix not stripped?)")
	}
}

func TestReduceRejectsWaveringAllocs(t *testing.T) {
	in := `pkg: p
BenchmarkX 	100	10 ns/op	1 B/op	1 allocs/op
BenchmarkX 	100	11 ns/op	9 B/op	2 allocs/op
`
	samples, err := parseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reduce(samples); err == nil {
		t.Fatal("wavering allocs/op accepted")
	}
}

func report(host Host, benches ...Benchmark) *Report {
	return &Report{Schema: SchemaV1, GeneratedWith: host, Benchtime: "2000x", Count: 5, Benchmarks: benches}
}

func TestCompareGate(t *testing.T) {
	h := currentHost()
	base := report(h,
		Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: 0, Samples: 5},
		Benchmark{Name: "BenchmarkB", Package: "p", NsPerOp: 500, AllocsPerOp: 3, Samples: 5},
	)

	// Within tolerance, same allocs: pass.
	cur := report(h,
		Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 1200, AllocsPerOp: 0, Samples: 5},
		Benchmark{Name: "BenchmarkB", Package: "p", NsPerOp: 400, AllocsPerOp: 3, Samples: 5},
	)
	if regs := compareReports(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("clean run flagged: %+v", regs)
	}

	// >25% ns/op: fail.
	cur.Benchmarks[0].NsPerOp = 1260
	regs := compareReports(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "ns/op") {
		t.Fatalf("ns/op regression not flagged: %+v", regs)
	}

	// Any allocs/op growth: fail even inside ns tolerance.
	cur.Benchmarks[0].NsPerOp = 1000
	cur.Benchmarks[1].AllocsPerOp = 4
	regs = compareReports(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "allocs/op") {
		t.Fatalf("allocs regression not flagged: %+v", regs)
	}

	// >25% B/op: fail even with flat ns/op and allocs/op.
	base.Benchmarks[0].BytesPerOp = 1000
	cur.Benchmarks[0].BytesPerOp = 1300
	cur.Benchmarks[1].AllocsPerOp = 3
	regs = compareReports(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "B/op") {
		t.Fatalf("B/op regression not flagged: %+v", regs)
	}
	cur.Benchmarks[0].BytesPerOp = 1200
	if regs := compareReports(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-tolerance B/op growth flagged: %+v", regs)
	}

	// Dropped benchmark: fail.
	cur = report(h, cur.Benchmarks[0])
	regs = compareReports(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "missing") {
		t.Fatalf("missing benchmark not flagged: %+v", regs)
	}
}

func TestHostComparable(t *testing.T) {
	h := Host{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4, GOMAXPROCS: 4}
	if ok, _ := h.Comparable(h); !ok {
		t.Fatal("host not comparable to itself")
	}
	patch := h
	patch.Go = "go1.24.5"
	if ok, _ := h.Comparable(patch); !ok {
		t.Error("patch-release difference should be comparable")
	}
	minor := h
	minor.Go = "go1.25.0"
	if ok, why := h.Comparable(minor); ok || !strings.Contains(why, "go version") {
		t.Errorf("minor-release difference comparable: %v %q", ok, why)
	}
	cpus := h
	cpus.NumCPU = 16
	if ok, why := h.Comparable(cpus); ok || !strings.Contains(why, "NumCPU") {
		t.Errorf("CPU-count difference comparable: %v %q", ok, why)
	}
}

// TestCompareEndToEnd drives the compare subcommand through run():
// JSON round trip, gate verdicts and exit codes, host-mismatch skip.
func TestCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		t.Helper()
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeReport(f, rep); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	h := currentHost()
	baseP := write("base.json", report(h, Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, Samples: 5}))
	okP := write("ok.json", report(h, Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 1100, Samples: 5}))
	badP := write("bad.json", report(h, Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 2000, Samples: 5}))
	other := h
	other.NumCPU++
	otherP := write("other.json", report(other, Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 9000, Samples: 5}))

	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "-baseline", baseP, "-current", okP}, &out, &errOut); code != 0 {
		t.Fatalf("clean compare exited %d: %s%s", code, out.String(), errOut.String())
	}
	out.Reset()
	if code := run([]string{"compare", "-baseline", baseP, "-current", badP}, &out, &errOut); code != 1 {
		t.Fatalf("regression compare exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("regression output missing FAIL: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"compare", "-baseline", baseP, "-current", otherP}, &out, &errOut); code != 0 {
		t.Fatalf("host-mismatch compare exited %d, want 0 (skip)", code)
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Errorf("host-mismatch output missing SKIP warning: %s", out.String())
	}
	if strings.Contains(out.String(), "::warning") {
		t.Errorf("annotation emitted outside GitHub Actions: %s", out.String())
	}
	out.Reset()
	t.Setenv("GITHUB_ACTIONS", "true")
	if code := run([]string{"compare", "-baseline", baseP, "-current", otherP}, &out, &errOut); code != 0 {
		t.Fatalf("host-mismatch compare under CI exited %d, want 0 (skip)", code)
	}
	if !strings.Contains(out.String(), "::warning title=bgpbench gate skipped::") {
		t.Errorf("CI skip missing ::warning:: annotation: %s", out.String())
	}
	if code := run([]string{"compare", "-baseline", baseP, "-current", filepath.Join(dir, "nope.json")}, &out, &errOut); code != 2 {
		t.Fatal("missing current file should exit 2")
	}
	if code := run([]string{"frobnicate"}, &out, &errOut); code != 2 {
		t.Fatal("unknown subcommand should exit 2")
	}
}

// TestRunEndToEnd exercises the run subcommand against the real
// repository: it shells out to `go test -bench` with a tiny iteration
// count and checks the emitted report. Skipped in -short runs.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go test -bench")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-C", root, "-count", "1", "-benchtime", "10x", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	rep, err := readReportFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// Every subset name yields one result entry, except BenchmarkSchedRun,
	// which expands into one sub-benchmark per registered policy.
	want := len(benchSubset) - 1 + len(sched.PolicyNames())
	if len(rep.Benchmarks) != want {
		t.Errorf("report has %d benchmarks, want %d (%+v)", len(rep.Benchmarks), want, rep.Benchmarks)
	}
	// Self-comparison must pass the gate.
	regs := compareReports(rep, rep, 0.25)
	if len(regs) != 0 {
		t.Errorf("self-comparison regressed: %+v", regs)
	}
}
