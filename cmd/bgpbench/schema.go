package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// SchemaV1 identifies the benchmark-report JSON layout. Bump only with
// a new reader in the CI gate; old baselines must stay loadable.
const SchemaV1 = "repro/bgpbench/v1"

// Report is the machine-readable benchmark report the CI gate diffs.
type Report struct {
	Schema string `json:"schema"`
	// GeneratedWith pins the host: comparisons across differing hosts are
	// skipped (a 1-core CI runner and a 16-core laptop are not
	// comparable).
	GeneratedWith Host `json:"generated_with"`
	// Benchtime and Count echo the fixed -benchtime/-count the report was
	// collected with.
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Benchmarks is sorted by (package, name) for stable diffs.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Host is the metadata that must match for a ns/op comparison to be
// meaningful.
type Host struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func currentHost() Host {
	return Host{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// goMinor reduces "go1.24.3" to "go1.24": patch releases are
// performance-comparable, minor releases are not assumed to be.
func goMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// Comparable reports whether ns/op numbers from the two hosts can be
// gated against each other, with a reason when they cannot.
func (h Host) Comparable(o Host) (bool, string) {
	switch {
	case goMinor(h.Go) != goMinor(o.Go):
		return false, fmt.Sprintf("go version %s vs %s", h.Go, o.Go)
	case h.GOOS != o.GOOS:
		return false, fmt.Sprintf("GOOS %s vs %s", h.GOOS, o.GOOS)
	case h.GOARCH != o.GOARCH:
		return false, fmt.Sprintf("GOARCH %s vs %s", h.GOARCH, o.GOARCH)
	case h.NumCPU != o.NumCPU:
		return false, fmt.Sprintf("NumCPU %d vs %d", h.NumCPU, o.NumCPU)
	}
	return true, ""
}

// Benchmark is one benchmark's best-of-count result. NsPerOp takes the
// minimum across samples (least-noise estimate); allocations are
// deterministic and must agree across samples.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

func key(pkg, name string) string { return pkg + "." + name }

// sample is one parsed `go test -bench` output line.
type sample struct {
	pkg, name                  string
	nsPerOp, bytesOp, allocsOp float64
	haveMem                    bool
}

// gomaxprocsSuffix strips the -N worker-count suffix go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo").
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput parses the text `go test -bench` writes for one or
// more packages, tracking the `pkg:` headers so each benchmark is
// attributed to its package.
func parseBenchOutput(r io.Reader) ([]sample, error) {
	var out []sample
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations value unit [value unit ...]
		if len(fields) < 4 {
			continue
		}
		s := sample{pkg: pkg, name: gomaxprocsSuffix.ReplaceAllString(fields[0], "")}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo\t--- FAIL")
		}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp, seen = v, true
			case "B/op":
				s.bytesOp, s.haveMem = v, true
			case "allocs/op":
				s.allocsOp, s.haveMem = v, true
			}
		}
		if seen {
			out = append(out, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// reduce folds repeated samples (-count > 1) into one Benchmark per
// (package, name): min ns/op and B/op across samples, and an error if
// allocs/op wavers (it is deterministic; variation means a broken
// benchmark).
func reduce(samples []sample) ([]Benchmark, error) {
	byKey := map[string]*Benchmark{}
	var order []string
	for _, s := range samples {
		k := key(s.pkg, s.name)
		b, ok := byKey[k]
		if !ok {
			byKey[k] = &Benchmark{
				Name: s.name, Package: s.pkg,
				NsPerOp: s.nsPerOp, BytesPerOp: s.bytesOp, AllocsPerOp: s.allocsOp,
				Samples: 1,
			}
			order = append(order, k)
			continue
		}
		if s.nsPerOp < b.NsPerOp {
			b.NsPerOp = s.nsPerOp
		}
		if s.bytesOp < b.BytesPerOp {
			b.BytesPerOp = s.bytesOp
		}
		if s.haveMem && s.allocsOp != b.AllocsPerOp {
			return nil, fmt.Errorf("%s: allocs/op wavers across samples (%v vs %v)", k, b.AllocsPerOp, s.allocsOp)
		}
		b.Samples++
	}
	sort.Strings(order)
	out := make([]Benchmark, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out, nil
}

func writeReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func readReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != SchemaV1 {
		return nil, fmt.Errorf("unsupported schema %q (want %s)", rep.Schema, SchemaV1)
	}
	return &rep, nil
}

// Regression is one gate violation.
type Regression struct {
	Key    string
	Reason string
}

// compareReports gates current against baseline: a benchmark regresses
// when ns/op or B/op grows beyond tolerance (fraction, e.g. 0.25) or
// allocs/op grows at all. Benchmarks present only in the baseline are
// reported as missing (a silently dropped benchmark must not pass the
// gate); benchmarks new in current are ignored until the baseline is
// regenerated.
func compareReports(baseline, current *Report, tolerance float64) []Regression {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[key(b.Package, b.Name)] = b
	}
	var regs []Regression
	for _, base := range baseline.Benchmarks {
		k := key(base.Package, base.Name)
		c, ok := cur[k]
		if !ok {
			regs = append(regs, Regression{k, "missing from current run"})
			continue
		}
		if base.NsPerOp > 0 && c.NsPerOp > base.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{k, fmt.Sprintf(
				"ns/op %.1f vs baseline %.1f (+%.1f%%, tolerance %.0f%%)",
				c.NsPerOp, base.NsPerOp, 100*(c.NsPerOp/base.NsPerOp-1), 100*tolerance)})
		}
		if base.BytesPerOp > 0 && c.BytesPerOp > base.BytesPerOp*(1+tolerance) {
			regs = append(regs, Regression{k, fmt.Sprintf(
				"B/op %.0f vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				c.BytesPerOp, base.BytesPerOp, 100*(c.BytesPerOp/base.BytesPerOp-1), 100*tolerance)})
		}
		if c.AllocsPerOp > base.AllocsPerOp {
			regs = append(regs, Regression{k, fmt.Sprintf(
				"allocs/op %v vs baseline %v (any growth fails)",
				c.AllocsPerOp, base.AllocsPerOp)})
		}
	}
	return regs
}
