// Command bgpbench is the benchmark harness behind the CI perf gate:
// it runs the named codec + pipeline + grouping benchmark subset with a
// fixed -benchtime/-count, emits a machine-readable JSON report (schema
// repro/bgpbench/v1, see BENCH_PR10.json at the repo root), and compares
// a fresh report against a committed baseline with a tolerance gate.
//
// Usage:
//
//	bgpbench run -out BENCH_PR10.json            # collect a report
//	bgpbench run -count 5 -benchtime 2000x -out bench.json
//	bgpbench compare -baseline BENCH_PR10.json -current bench.json
//
// Exit codes: 0 pass (or comparison skipped on host mismatch),
// 1 regression detected, 2 harness failure.
//
// The gate: a benchmark regresses when its ns/op or B/op exceeds the
// baseline by more than -tolerance (default 25%), or when its allocs/op
// grows at all. When the current host metadata differs from the
// baseline's (Go minor version, OS, arch or CPU count), the comparison
// is skipped with a warning — cross-host ns/op deltas are noise, and a
// skipped gate is visible in the CI log rather than silently green on
// bad data.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// benchSubset is the named benchmark set the gate watches: the codec
// microbenchmarks (with their pre-rewrite *Legacy counterparts so the
// speedup itself is regression-gated), the streaming pipeline, the
// symtab-keyed grouping paths (the filter cascade against its
// string-keyed legacy reference, and the co-analysis grouping stages),
// the serving daemon's ingest and query paths, the segmented store's
// encode/scan/merge paths, and a small scheduler campaign per
// registered policy (BenchmarkSchedRun expands into one sub-benchmark
// per policy, so each counterfactual is gated individually).
var benchSubset = []string{
	"BenchmarkRASUnmarshal",
	"BenchmarkRASUnmarshalFields",
	"BenchmarkRASUnmarshalLegacy",
	"BenchmarkRASMarshal",
	"BenchmarkRASMarshalLegacy",
	"BenchmarkRASDecodeParallel",
	"BenchmarkJobUnmarshal",
	"BenchmarkJobUnmarshalLegacy",
	"BenchmarkJobMarshal",
	"BenchmarkStreamPipeline",
	"BenchmarkFilterCascade",
	"BenchmarkFilterCascadeLegacy",
	"BenchmarkCoanalysisGrouping",
	"BenchmarkServeIngest",
	"BenchmarkServeQuery",
	"BenchmarkSegmentEncode",
	"BenchmarkSegmentScan",
	"BenchmarkSegmentMerge",
	"BenchmarkSchedRun",
}

// benchPackages are the packages the subset lives in.
var benchPackages = []string{"./internal/raslog", "./internal/joblog", "./internal/filter", "./internal/serve", "./internal/store", "."}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "bgpbench: want subcommand: run | compare")
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "bgpbench: unknown subcommand %q (want run | compare)\n", args[0])
		return 2
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgpbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "", "write the JSON report here (default stdout)")
		count     = fs.Int("count", 5, "benchmark repetitions (-count); min ns/op across samples is reported")
		benchtime = fs.String("benchtime", "2000x", "fixed -benchtime (use Nx iteration counts for comparability)")
		chdir     = fs.String("C", "", "run go test from this directory (default: current)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, raw, err := collect(*chdir, *benchtime, *count)
	if err != nil {
		fmt.Fprintf(stderr, "bgpbench: %v\n", err)
		if raw != nil {
			stderr.Write(raw)
		}
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bgpbench: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := writeReport(w, rep); err != nil {
		fmt.Fprintf(stderr, "bgpbench: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "bgpbench: %d benchmarks, -benchtime %s -count %d\n",
		len(rep.Benchmarks), rep.Benchtime, rep.Count)
	return 0
}

// collect shells out to `go test -bench` over the fixed subset and
// parses the output into a Report. The raw output is returned for
// diagnostics when parsing or the run fails.
func collect(dir, benchtime string, count int) (*Report, []byte, error) {
	re := "^(" + strings.Join(benchSubset, "|") + ")$"
	goArgs := []string{"test", "-run", "^$", "-bench", re,
		"-benchtime", benchtime, "-count", fmt.Sprint(count), "-benchmem", "-timeout", "30m"}
	goArgs = append(goArgs, benchPackages...)
	cmd := exec.Command("go", goArgs...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	// GOMAXPROCS is part of the emitted benchmark names; leave it to the
	// host so the report reflects the machine being measured.
	if err := cmd.Run(); err != nil {
		return nil, buf.Bytes(), fmt.Errorf("go test -bench: %w", err)
	}
	samples, err := parseBenchOutput(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, buf.Bytes(), err
	}
	if len(samples) == 0 {
		return nil, buf.Bytes(), fmt.Errorf("no benchmark results in go test output")
	}
	benches, err := reduce(samples)
	if err != nil {
		return nil, buf.Bytes(), err
	}
	return &Report{
		Schema:        SchemaV1,
		GeneratedWith: currentHost(),
		Benchtime:     benchtime,
		Count:         count,
		Benchmarks:    benches,
	}, nil, nil
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgpbench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "BENCH_PR10.json", "committed baseline report")
		curPath   = fs.String("current", "", "fresh report to gate (required)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed ns/op growth fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *curPath == "" {
		fmt.Fprintln(stderr, "bgpbench compare: -current is required")
		return 2
	}
	baseline, err := readReportFile(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "bgpbench: baseline: %v\n", err)
		return 2
	}
	current, err := readReportFile(*curPath)
	if err != nil {
		fmt.Fprintf(stderr, "bgpbench: current: %v\n", err)
		return 2
	}
	if ok, why := baseline.GeneratedWith.Comparable(current.GeneratedWith); !ok {
		fmt.Fprintf(stdout, "bgpbench: SKIP comparison: host metadata differs (%s); ns/op across hosts is noise\n", why)
		fmt.Fprintf(stdout, "bgpbench: regenerate the baseline on this host with `make bench-baseline` to enable gating\n")
		// A skipped gate must be loud in CI, not just a log line: emit a
		// GitHub Actions annotation so the run summary carries it.
		if os.Getenv("GITHUB_ACTIONS") == "true" {
			fmt.Fprintf(stdout, "::warning title=bgpbench gate skipped::perf comparison skipped, host metadata differs (%s); regenerate the baseline on a CI-class host\n", why)
		}
		return 0
	}
	regs := compareReports(baseline, current, *tolerance)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "bgpbench: OK — %d benchmarks within tolerance (%.0f%% ns/op and B/op, 0 allocs/op growth)\n",
			len(baseline.Benchmarks), 100**tolerance)
		return 0
	}
	fmt.Fprintf(stdout, "bgpbench: %d regression(s) vs %s:\n", len(regs), *basePath)
	for _, r := range regs {
		fmt.Fprintf(stdout, "  FAIL %s: %s\n", r.Key, r.Reason)
	}
	return 1
}

func readReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readReport(f)
}
