// Command bgpgen simulates an Intrepid-like Blue Gene/P campaign and
// writes the two logs the co-analysis consumes: a RAS event log and a
// Cobalt-style job log, in this module's line formats.
//
// Usage:
//
//	bgpgen -seed 1 -days 237 -noise 62 -ras ras.log -job job.log
//
// The scheduling policy is selectable (-policy, default the paper's
// Intrepid behaviour; -policies lists the registry). -policy-matrix
// runs every registered policy against the identical workload and
// pre-drawn ground-truth fault-candidate stream, writing one log pair
// per policy (ras.log -> ras.<policy>.log).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sched"
	"repro/internal/simulate"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Int64("seed", 1, "campaign seed (identical seeds give identical logs)")
		days    = fs.Int("days", 237, "campaign length in days")
		noise   = fs.Float64("noise", 62, "non-fatal records emitted per fatal record")
		rasP    = fs.String("ras", "ras.log", "RAS log output path")
		jobP    = fs.String("job", "job.log", "job log output path")
		policy  = fs.String("policy", "", "scheduling policy (empty = "+sched.DefaultPolicy+"; see -policies)")
		matrix  = fs.Bool("policy-matrix", false, "run every registered policy on the identical workload and fault-candidate stream, writing per-policy log pairs")
		list    = fs.Bool("policies", false, "list registered scheduling policies and exit")
		workers = fs.Int("workers", 0, "matrix worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range sched.PolicyNames() {
			fmt.Fprintln(stderr, name)
		}
		return nil
	}
	cfg := simulate.Config{Seed: *seed, Days: *days, NoisePerFatal: *noise, Policy: *policy}
	if *matrix {
		return runMatrix(cfg, *workers, *rasP, *jobP, stderr)
	}

	camp, err := simulate.Run(cfg)
	if err != nil {
		return err
	}
	if err := writePair(camp, *rasP, *jobP); err != nil {
		return err
	}
	distinct, resub := camp.Jobs.DistinctExecutables()
	fmt.Fprintf(stderr,
		"wrote %s (%d records, %d FATAL) and %s (%d jobs, %d distinct, %d resubmitted)\n",
		*rasP, camp.RAS.Len(), len(camp.RAS.Fatal()), *jobP, camp.Jobs.Len(), distinct, resub)
	return nil
}

// runMatrix writes one log pair per registered policy, with the policy
// name spliced into the configured paths (ras.log -> ras.<policy>.log).
func runMatrix(cfg simulate.Config, workers int, rasP, jobP string, stderr io.Writer) error {
	if cfg.Policy != "" {
		return fmt.Errorf("-policy and -policy-matrix are mutually exclusive")
	}
	runs, err := simulate.RunMatrix(cfg, workers)
	if err != nil {
		return err
	}
	for _, r := range runs {
		rp, jp := withPolicy(rasP, r.Policy), withPolicy(jobP, r.Policy)
		if err := writePair(r.Campaign, rp, jp); err != nil {
			return fmt.Errorf("policy %s: %w", r.Policy, err)
		}
		interrupted := len(r.Campaign.Result.Truth.InterruptedJobs())
		fmt.Fprintf(stderr, "policy %-14s wrote %s and %s (%d jobs, %d interrupted, %d FATAL records)\n",
			r.Policy, rp, jp, r.Campaign.Jobs.Len(), interrupted, len(r.Campaign.RAS.Fatal()))
	}
	return nil
}

// withPolicy splices the policy name into a log path before its
// extension: ras.log -> ras.intrepid.log.
func withPolicy(path, policy string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + policy + ext
}

func writePair(camp *simulate.Campaign, rasP, jobP string) error {
	rf, err := os.Create(rasP)
	if err != nil {
		return err
	}
	defer rf.Close()
	jf, err := os.Create(jobP)
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := camp.WriteLogs(rf, jf); err != nil {
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	return jf.Close()
}
