// Command bgpgen simulates an Intrepid-like Blue Gene/P campaign and
// writes the two logs the co-analysis consumes: a RAS event log and a
// Cobalt-style job log, in this module's line formats.
//
// Usage:
//
//	bgpgen -seed 1 -days 237 -noise 62 -ras ras.log -job job.log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/simulate"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed  = fs.Int64("seed", 1, "campaign seed (identical seeds give identical logs)")
		days  = fs.Int("days", 237, "campaign length in days")
		noise = fs.Float64("noise", 62, "non-fatal records emitted per fatal record")
		rasP  = fs.String("ras", "ras.log", "RAS log output path")
		jobP  = fs.String("job", "job.log", "job log output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	camp, err := simulate.Run(simulate.Config{Seed: *seed, Days: *days, NoisePerFatal: *noise})
	if err != nil {
		return err
	}
	rf, err := os.Create(*rasP)
	if err != nil {
		return err
	}
	defer rf.Close()
	jf, err := os.Create(*jobP)
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := camp.WriteLogs(rf, jf); err != nil {
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	distinct, resub := camp.Jobs.DistinctExecutables()
	fmt.Fprintf(stderr,
		"wrote %s (%d records, %d FATAL) and %s (%d jobs, %d distinct, %d resubmitted)\n",
		*rasP, camp.RAS.Len(), len(camp.RAS.Fatal()), *jobP, camp.Jobs.Len(), distinct, resub)
	return nil
}
