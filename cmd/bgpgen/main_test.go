package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunWritesAnalyzableLogs(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	var stderr strings.Builder
	err := run([]string{"-seed", "3", "-days", "10", "-noise", "1",
		"-ras", rasP, "-job", jobP}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Errorf("missing summary line: %q", stderr.String())
	}
	// The produced files must round-trip through the public loader.
	rf, err := os.Open(rasP)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	jf, err := os.Open(jobP)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	rep, err := repro.Load(repro.DefaultConfig(0), rf, jf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs().Len() == 0 || rep.RAS().Len() == 0 {
		t.Error("loaded empty logs")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stderr strings.Builder
	if err := run([]string{"-days", "abc"}, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "0"}, &stderr); err == nil {
		t.Error("zero days accepted")
	}
}

func TestRunFailsOnUnwritablePath(t *testing.T) {
	var stderr strings.Builder
	err := run([]string{"-days", "7", "-noise", "0",
		"-ras", "/nonexistent-dir/ras.log", "-job", "/nonexistent-dir/job.log"}, &stderr)
	if err == nil {
		t.Error("unwritable path accepted")
	}
}
