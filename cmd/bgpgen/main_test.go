package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/sched"
)

func TestRunWritesAnalyzableLogs(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	var stderr strings.Builder
	err := run([]string{"-seed", "3", "-days", "10", "-noise", "1",
		"-ras", rasP, "-job", jobP}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Errorf("missing summary line: %q", stderr.String())
	}
	// The produced files must round-trip through the public loader.
	rf, err := os.Open(rasP)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	jf, err := os.Open(jobP)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	rep, err := repro.Load(repro.DefaultConfig(0), rf, jf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs().Len() == 0 || rep.RAS().Len() == 0 {
		t.Error("loaded empty logs")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stderr strings.Builder
	if err := run([]string{"-days", "abc"}, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "0"}, &stderr); err == nil {
		t.Error("zero days accepted")
	}
}

func TestRunFailsOnUnwritablePath(t *testing.T) {
	var stderr strings.Builder
	err := run([]string{"-days", "7", "-noise", "0",
		"-ras", "/nonexistent-dir/ras.log", "-job", "/nonexistent-dir/job.log"}, &stderr)
	if err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestPoliciesFlagListsRegistry(t *testing.T) {
	var stderr strings.Builder
	if err := run([]string{"-policies"}, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range sched.PolicyNames() {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("-policies output missing %q: %q", name, stderr.String())
		}
	}
}

func TestPolicyFlagSelectsPolicy(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	var stderr strings.Builder
	if err := run([]string{"-seed", "3", "-days", "10", "-noise", "1",
		"-policy", "first-fit", "-ras", rasP, "-job", jobP}, &stderr); err != nil {
		t.Fatal(err)
	}
	// Explicit default is byte-identical to the implicit default; a
	// counterfactual policy is not.
	rasDef := filepath.Join(dir, "ras.def.log")
	jobDef := filepath.Join(dir, "job.def.log")
	if err := run([]string{"-seed", "3", "-days", "10", "-noise", "1",
		"-ras", rasDef, "-job", jobDef}, &stderr); err != nil {
		t.Fatal(err)
	}
	rasExp := filepath.Join(dir, "ras.exp.log")
	jobExp := filepath.Join(dir, "job.exp.log")
	if err := run([]string{"-seed", "3", "-days", "10", "-noise", "1",
		"-policy", sched.DefaultPolicy, "-ras", rasExp, "-job", jobExp}, &stderr); err != nil {
		t.Fatal(err)
	}
	def, err := os.ReadFile(rasDef)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := os.ReadFile(rasExp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(def, exp) {
		t.Error("-policy=" + sched.DefaultPolicy + " diverges from the implicit default")
	}
	ff, err := os.ReadFile(rasP)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(def, ff) {
		t.Error("first-fit produced the identical RAS log as the default policy")
	}

	if err := run([]string{"-policy", "no-such-policy", "-days", "5",
		"-ras", filepath.Join(dir, "x.log"), "-job", filepath.Join(dir, "y.log")}, &stderr); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyMatrixWritesPerPolicyPairs(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	var stderr strings.Builder
	if err := run([]string{"-seed", "4", "-days", "10", "-noise", "0.5",
		"-policy-matrix", "-ras", rasP, "-job", jobP}, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range sched.PolicyNames() {
		rp := withPolicy(rasP, name)
		jp := withPolicy(jobP, name)
		if fi, err := os.Stat(rp); err != nil || fi.Size() == 0 {
			t.Errorf("policy %s: missing or empty %s", name, rp)
		}
		if fi, err := os.Stat(jp); err != nil || fi.Size() == 0 {
			t.Errorf("policy %s: missing or empty %s", name, jp)
		}
	}
	if err := run([]string{"-policy-matrix", "-policy", "random",
		"-ras", rasP, "-job", jobP}, &stderr); err == nil {
		t.Error("-policy with -policy-matrix accepted")
	}
}
