package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// -update regenerates the digest golden:
//
//	go test ./cmd/bgpgen -run TestPolicyMatrixDigests -update
var update = flag.Bool("update", false, "rewrite the policy digest golden")

const digestGolden = "testdata/policy_digests.txt"

// digestParams are the campaign parameters the digest golden pins.
// scripts/smoke_policies.sh parses them back out of the golden's
// "# params:" header, so the script and this test can never drift.
var digestParams = []string{"-seed", "4", "-days", "10", "-noise", "0.5"}

// TestPolicyMatrixDigests pins a sha256 per policy log of a tiny
// -policy-matrix campaign — the per-policy byte-identity contract for
// the counterfactuals: any engine or policy change that shifts any
// policy's matrix output must regenerate this file consciously. The
// same file doubles as the smoke script's checksum manifest.
func TestPolicyMatrixDigests(t *testing.T) {
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	var stderr strings.Builder
	args := append(append([]string{}, digestParams...),
		"-policy-matrix", "-workers", "1", "-ras", rasP, "-job", jobP)
	if err := run(args, &stderr); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# params: %s\n", strings.Join(digestParams, " "))
	for _, name := range sched.PolicyNames() {
		for _, base := range []string{"ras.log", "job.log"} {
			p := withPolicy(filepath.Join(dir, base), name)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "%x  %s\n", sha256.Sum256(data), filepath.Base(p))
		}
	}
	got := b.String()

	if *update {
		if err := os.MkdirAll(filepath.Dir(digestGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", digestGolden)
		return
	}
	want, err := os.ReadFile(digestGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("policy digests differ from %s:\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional)",
			digestGolden, got, want)
	}

	// The matrix must be worker-count independent: rerun in parallel
	// and compare the digests again.
	dir2 := t.TempDir()
	args = append(append([]string{}, digestParams...),
		"-policy-matrix", "-workers", "0",
		"-ras", filepath.Join(dir2, "ras.log"), "-job", filepath.Join(dir2, "job.log"))
	if err := run(args, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range sched.PolicyNames() {
		for _, base := range []string{"ras.log", "job.log"} {
			a, err := os.ReadFile(withPolicy(filepath.Join(dir, base), name))
			if err != nil {
				t.Fatal(err)
			}
			c, err := os.ReadFile(withPolicy(filepath.Join(dir2, base), name))
			if err != nil {
				t.Fatal(err)
			}
			if sha256.Sum256(a) != sha256.Sum256(c) {
				t.Errorf("policy %s %s differs between sequential and parallel matrix", name, base)
			}
		}
	}
}
