package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden file:
//
//	go test ./cmd/bgpreport -run TestGoldenReport -update
var update = flag.Bool("update", false, "rewrite the golden report file")

const goldenPath = "testdata/report_seed1.golden"

// TestGoldenReport renders the full report at seed 1 (quick campaign)
// and compares it byte for byte against the checked-in golden file.
// This is the byte-identity oracle the parallel paths are verified
// against: the default run exercises the parallel engine at GOMAXPROCS
// workers, and any scheduling-dependent divergence — ordering, float
// summation, map iteration — shows up here as a diff.
func TestGoldenReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-quick", "-seed", "1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.Bytes()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs from %s:\n%s\n(run with -update if the change is intentional)",
			goldenPath, firstDiff(got, want))
	}
}

// TestGoldenReportParallelismInvariant renders the same report with the
// fan-outs forced sequential and at 8 workers; both must match the
// golden file exactly.
func TestGoldenReportParallelismInvariant(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run TestGoldenReport with -update first)", err)
	}
	for _, p := range []string{"1", "8"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-quick", "-seed", "1", "-parallelism", p}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-parallelism %s diverges from golden:\n%s", p, firstDiff(out.Bytes(), want))
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(gl), len(wl))
}
