// Command bgpreport simulates a campaign and regenerates every table
// and figure of the paper's evaluation in one run, with a final
// paper-vs-measured summary.
//
// Usage:
//
//	bgpreport                # full 237-day campaign
//	bgpreport -quick         # ~60-day campaign, seconds to run
//	bgpreport -seed 7 -days 120 -summary
//	bgpreport -quick -seeds 8            # 8-seed ensemble: mean ± 95% CI
//	bgpreport -parallelism 1             # force the sequential path
//	bgpreport -ras ras.log -job job.log  # analyze external logs (streamed)
//	bgpreport -quick -policy first-fit   # a counterfactual scheduling policy
//	bgpreport -quick -policy-matrix      # every policy on the identical fault stream
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgpreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed        = fs.Int64("seed", 1, "campaign seed")
		days        = fs.Int("days", 237, "campaign length in days")
		quick       = fs.Bool("quick", false, "use the reduced quick configuration")
		summary     = fs.Bool("summary", false, "print only the paper-vs-measured summary")
		seeds       = fs.Int("seeds", 1, "number of ensemble seeds (seed..seed+n-1); >1 prints mean ± 95% CI per observation")
		parallelism = fs.Int("parallelism", 0, "worker bound for all fan-outs (0 = GOMAXPROCS, 1 = sequential)")
		rasP        = fs.String("ras", "", "analyze this RAS log instead of simulating (requires -job)")
		jobP        = fs.String("job", "", "analyze this job log instead of simulating (requires -ras)")
		policy      = fs.String("policy", "", "scheduling policy to simulate under (empty = "+sched.DefaultPolicy+"; see sched.PolicyNames)")
		matrix      = fs.Bool("policy-matrix", false, "simulate every registered policy on the identical workload and fault-candidate stream and print per-policy reports plus the cross-policy comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := repro.DefaultConfig(*seed)
	cfg.Days = *days
	if *quick {
		cfg = repro.QuickConfig(*seed)
	}
	cfg.Parallelism = *parallelism
	cfg.Seeds = *seeds
	cfg.Policy = *policy

	if *matrix {
		if *policy != "" {
			return fmt.Errorf("-policy and -policy-matrix are mutually exclusive")
		}
		if *rasP != "" || *jobP != "" {
			return fmt.Errorf("-policy-matrix simulates; it cannot analyze external logs")
		}
		return runPolicyMatrix(cfg, stdout)
	}

	if (*rasP == "") != (*jobP == "") {
		return fmt.Errorf("-ras and -job must be given together")
	}
	if *rasP != "" {
		rep, err := loadLogs(cfg, *rasP, *jobP)
		if err != nil {
			return err
		}
		if !*summary {
			if err := rep.RenderAll(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		printSummary(stdout, rep.Summary())
		return nil
	}

	if cfg.Seeds > 1 {
		ens, err := repro.RunEnsemble(cfg)
		if err != nil {
			return err
		}
		return ens.Render(stdout)
	}

	rep, err := repro.Run(cfg)
	if err != nil {
		return err
	}
	if !*summary {
		if err := rep.RenderAll(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	printSummary(stdout, rep.Summary())
	return nil
}

// runPolicyMatrix simulates every registered policy against the
// identical workload and pre-drawn fault-candidate stream, printing a
// per-policy co-analysis fragment and the cross-policy comparison.
func runPolicyMatrix(cfg repro.Config, stdout io.Writer) error {
	outs, err := repro.RunMatrix(cfg)
	if err != nil {
		return err
	}
	for _, o := range outs {
		s := o.Stats
		fmt.Fprintf(stdout, "=== policy %s ===\n", o.Policy)
		fmt.Fprintf(stdout, "  jobs:                      %d\n", s.Jobs)
		fmt.Fprintf(stdout, "  interruptions:             %d (%d distinct jobs)\n", s.Interruptions, s.DistinctInterrupted)
		fmt.Fprintf(stdout, "  system / app:              %d / %d\n", s.SystemInterruptions, s.AppInterruptions)
		fmt.Fprintf(stdout, "  MTBF (filtered):           %.2f h\n", s.MTBFHours)
		fmt.Fprintf(stdout, "  same-partition resubmits:  %.2f%%\n", 100*s.SamePartResub)
		fmt.Fprintf(stdout, "  idle-fault fraction:       %.2f%%\n\n", 100*s.IdleFaultFraction)
	}
	return repro.RenderPolicyComparison(stdout, outs)
}

// loadLogs streams external log files through repro.Load (the sharded
// parallel decoder honoring cfg.Parallelism).
func loadLogs(cfg repro.Config, rasPath, jobPath string) (*repro.Report, error) {
	rf, err := os.Open(rasPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	jf, err := os.Open(jobPath)
	if err != nil {
		return nil, err
	}
	defer jf.Close()
	return repro.Load(cfg, rf, jf)
}

func printSummary(w io.Writer, s repro.Summary) {
	fmt.Fprintln(w, "Paper vs measured (shape targets, not absolute numbers):")
	row := func(name, paper string, measured interface{}) {
		fmt.Fprintf(w, "  %-42s paper: %-14s measured: %v\n", name, paper, measured)
	}
	row("campaign days", "237", s.Days)
	row("RAS records", "2,084,392", s.TotalRecords)
	row("FATAL records", "33,370", s.FatalRecords)
	row("jobs", "68,794", s.TotalJobs)
	row("distinct jobs", "9,664", s.DistinctJobs)
	row("events after filtering", "549", s.EventsAfterFiltering)
	row("filter compression", "98.35%", pct(s.FilterCompression))
	row("job interruptions", "308", s.Interruptions)
	row("distinct interrupted jobs", "167", s.DistinctInterrupted)
	row("non-impacting fatal events (Obs 1)", "20.84%", pct(s.NonImpactingEventFraction))
	row("system / application types (Obs 2)", "72 / 8", fmt.Sprintf("%d / %d", s.SystemTypes, s.ApplicationTypes))
	row("application event fraction (Obs 2)", "17.73%", pct(s.ApplicationEventFraction))
	row("job-redundant events removed (Obs 3)", "72 (13.1%)", fmt.Sprintf("%d (%s)", s.JobRedundantRemoved, pct(s.JobFilterCompression)))
	row("same-location resubmissions (Obs 3)", "57.4%", pct(s.SameLocationResubmits))
	row("Weibull shape before/after (Table IV)", "0.387 / 0.573", fmt.Sprintf("%.3f / %.3f", s.WeibullShapeBefore, s.WeibullShapeAfter))
	row("MTBF ratio after filtering (Obs 4)", "~3x", fmt.Sprintf("%.2fx", s.MTBFRatio))
	row("band (mid 33-64) fatal share (Obs 5)", "dominant", pct(s.BandFatalShare))
	row("corr fatal~workload vs ~wide (Obs 5)", "wide wins", fmt.Sprintf("%.2f vs %.2f", s.CorrWorkload, s.CorrWideWorkload))
	row("interrupted job fraction (Obs 6)", "0.45%", pct(s.InterruptedJobFraction))
	row("distinct interrupted fraction (Obs 6)", "1.73%", pct(s.DistinctJobFraction))
	row("max jobs per failure chain (Obs 6)", "28", s.MaxJobsPerEvent)
	row("system / app interruptions (Obs 7)", "206 / 102", fmt.Sprintf("%d / %d", s.SystemInterruptions, s.AppInterruptions))
	row("MTTI over MTBF (Obs 7)", "4.07x", fmt.Sprintf("%.2fx", s.MTTIOverMTBF))
	row("spatial propagation (Obs 8)", "7.22%", pct(s.SpatialFraction))
	row("resubmit risk, system k=1/k=2 (Fig 7)", "peak at k=2 (53%)", fmt.Sprintf("%s / %s", pct(s.ResubRiskSystemK1), pct(s.ResubRiskSystemK2)))
	row("resubmit risk, app k=3 (Fig 7)", "60%", pct(s.ResubRiskAppK3))
	row("app interruptions within 1 h (Obs 11)", "74.5%", pct(s.EarlyAppFraction))
	row("top category-1 feature (Obs 10)", "size", s.TopCat1Feature)
	row("top category-2 feature (Obs 11)", "exectime", s.TopCat2Feature)
	row("max per-user failed fraction (Obs 12)", "< 1%", pct(s.MaxUserFailFraction))
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
