package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/simulate"
)

func TestRunSummaryOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "14", "-summary"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Paper vs measured") {
		t.Error("missing summary header")
	}
	if strings.Contains(s, "Table I:") {
		t.Error("-summary still rendered artifacts")
	}
	for _, want := range []string{"same-location resubmissions", "Weibull shape", "Obs 11"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunFullReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "14"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table I:", "Figure 7:", "Paper vs measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunQuickFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	// -quick overrides -days with the quick configuration; it must still
	// complete and include the summary.
	if err := run([]string{"-quick", "-summary", "-seed", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "measured:") {
		t.Error("missing measured values")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "x"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "0", "-summary"}, &out, &errOut); err == nil {
		t.Error("zero days accepted")
	}
	if err := run([]string{"-ras", "only.log", "-summary"}, &out, &errOut); err == nil {
		t.Error("-ras without -job accepted")
	}
}

// TestRunExternalLogs exercises the -ras/-job path: write a small
// campaign's logs to disk, analyze the files through the streaming
// loader, and check the analysis matches the simulated campaign's.
func TestRunExternalLogs(t *testing.T) {
	// Same knobs run's "-days 14 -seed 3" resolves to, so the two
	// summaries must match byte for byte.
	camp, err := simulate.Run(simulate.Config{Seed: 3, Days: 14, NoisePerFatal: 62})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rasP := filepath.Join(dir, "ras.log")
	jobP := filepath.Join(dir, "job.log")
	rf, err := os.Create(rasP)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(jobP)
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.WriteLogs(rf, jf); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	var fromSim, fromLogs, errOut bytes.Buffer
	if err := run([]string{"-days", "14", "-seed", "3", "-summary"}, &fromSim, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ras", rasP, "-job", jobP, "-summary"}, &fromLogs, &errOut); err != nil {
		t.Fatal(err)
	}
	// The simulated and file-loaded analyses see the same campaign, so
	// record/job counts and filter results must agree line for line.
	simLines := strings.Split(fromSim.String(), "\n")
	logLines := strings.Split(fromLogs.String(), "\n")
	if len(simLines) != len(logLines) {
		t.Fatalf("summary length differs: %d vs %d lines", len(simLines), len(logLines))
	}
	for i := range simLines {
		if simLines[i] != logLines[i] {
			t.Errorf("summary line %d differs:\n sim: %s\nlogs: %s", i+1, simLines[i], logLines[i])
		}
	}
}

func TestRunPolicyFlag(t *testing.T) {
	var def, ff, errOut bytes.Buffer
	if err := run([]string{"-days", "14", "-summary"}, &def, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-days", "14", "-summary", "-policy", "first-fit"}, &ff, &errOut); err != nil {
		t.Fatal(err)
	}
	if def.String() == ff.String() {
		t.Error("first-fit summary identical to the default policy")
	}
	var out bytes.Buffer
	if err := run([]string{"-days", "14", "-policy", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunPolicyMatrix(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "14", "-policy-matrix"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Policy matrix:") {
		t.Error("missing comparison table")
	}
	for _, name := range sched.PolicyNames() {
		if !strings.Contains(s, "=== policy "+name+" ===") {
			t.Errorf("missing per-policy fragment for %s", name)
		}
	}
	var errBuf bytes.Buffer
	if err := run([]string{"-policy-matrix", "-policy", "random"}, &out, &errBuf); err == nil {
		t.Error("-policy with -policy-matrix accepted")
	}
	if err := run([]string{"-policy-matrix", "-ras", "x", "-job", "y"}, &out, &errBuf); err == nil {
		t.Error("-policy-matrix with external logs accepted")
	}
}
