package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSummaryOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "14", "-summary"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Paper vs measured") {
		t.Error("missing summary header")
	}
	if strings.Contains(s, "Table I:") {
		t.Error("-summary still rendered artifacts")
	}
	for _, want := range []string{"same-location resubmissions", "Weibull shape", "Obs 11"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunFullReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "14"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table I:", "Figure 7:", "Paper vs measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunQuickFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	// -quick overrides -days with the quick configuration; it must still
	// complete and include the summary.
	if err := run([]string{"-quick", "-summary", "-seed", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "measured:") {
		t.Error("missing measured values")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-days", "x"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-days", "0", "-summary"}, &out, &errOut); err == nil {
		t.Error("zero days accepted")
	}
}
