module warnfixture

go 1.22
