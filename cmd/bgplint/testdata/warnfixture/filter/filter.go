// Warn-tier fixture: the package name filter puts Pipeline in
// hotpath's root table, and the in-loop fmt.Sprintf is a warn-tier
// finding — it prints on every run but fails only under -strict.
package filter

import "fmt"

func Pipeline(events []int) []string {
	out := make([]string, 0, len(events))
	for _, e := range events {
		out = append(out, fmt.Sprintf("e=%d", e))
	}
	return out
}
