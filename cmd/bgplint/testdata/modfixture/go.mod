module modfixture

go 1.22
