// Package modfixture is a self-contained module with one known lint
// finding: a magic-literal rand.NewSource seed that seedtaint flags in
// any package. cmd/bgplint's tests run the real binary entry point
// over a copy of this module to exercise the exit-code, baseline, and
// SARIF workflows.
package modfixture

import "math/rand"

// BadSource pins a generator to a literal seed with no Config.Seed
// provenance — the canonical seedtaint violation.
func BadSource() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
