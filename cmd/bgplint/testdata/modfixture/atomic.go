package modfixture

import "sync/atomic"

// Published is a value shared with readers once stored.
type Published struct{ N int }

// Box publishes Published values through an atomic pointer.
type Box struct{ cur atomic.Pointer[Published] }

// BadPublish mutates the value after storing it: the atomicpub
// finding this fixture exists to produce.
func (b *Box) BadPublish() {
	p := &Published{N: 1}
	b.cur.Store(p)
	p.N = 2
}
