// Command bgplint is the multichecker for this repo's determinism,
// parallel-safety, concurrency, and hot-path performance invariants:
// the atomicpub, callgraph, commitseq, detrand, errcode, frozen,
// hotpath, idkind, latebind, lockguard, maporder, seedtaint and
// sharedfold analyzers (see internal/lint and DESIGN.md "Determinism
// invariants" / "Concurrency invariants" / "Hot-path invariants").
//
// Standalone:
//
//	bgplint ./...
//
// loads the named packages (compiling dependency export data through
// the ordinary build cache) and prints one line per finding,
// vet-style. Exit status follows the CI contract: 0 clean, 1 failing
// findings (after baseline suppression), 2 tool or load failure.
// Error-tier findings always fail; warn-tier findings (hotpath,
// latebind, idkind) print but fail only under -strict. Test files are
// not scanned in this mode.
//
// Reports and gating:
//
//	bgplint -sarif bgplint.sarif ./...           # SARIF 2.1.0 artifact
//	bgplint -write-baseline lint.baseline.json ./...
//	bgplint -baseline lint.baseline.json ./...   # fail only on NEW findings
//
// Baselines store line-independent fingerprints (see
// internal/lint/baseline), so unrelated edits never churn them; a
// SARIF report written alongside a baseline marks each result's
// baselineState as "new" or "unchanged".
//
// As a vet tool:
//
//	go build -o bin/bgplint ./cmd/bgplint
//	go vet -vettool=$(pwd)/bin/bgplint ./...
//
// runs the same analyzers under the go command's vet protocol, which
// also covers test packages and caches results per package; the same
// 0/1/2 exit contract applies per unit (go vet surfaces any nonzero
// status as a vet failure).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/baseline"
	"repro/internal/lint/driver"
	"repro/internal/lint/sarif"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("bgplint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (vet protocol)")
	sarifFlag := fs.String("sarif", "", "write a SARIF 2.1.0 report to `file` (standalone mode)")
	baselineFlag := fs.String("baseline", "", "suppress findings fingerprinted in baseline `file`; exit 1 only on new findings")
	writeBaselineFlag := fs.String("write-baseline", "", "write all current findings to baseline `file` and exit 0")
	strictFlag := fs.Bool("strict", false, "promote warn-tier findings to failing (exit 1)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgplint [-strict] [-sarif file] [-baseline file | -write-baseline file] [packages]\n       go vet -vettool=$(which bgplint) [packages]\n\nAnalyzers:\n")
		for _, r := range lint.Rules() {
			fmt.Fprintf(os.Stderr, "  %-12s [%-7s] %s\n", r.Name, r.Severity, r.Summary)
		}
	}
	if err := fs.Parse(args); err != nil {
		return driver.ExitFailure
	}

	if *versionFlag != "" {
		if err := driver.PrintVersion(stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return driver.ExitFailure
		}
		return driver.ExitClean
	}
	if *flagsFlag {
		if err := driver.PrintFlags(stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return driver.ExitFailure
		}
		return driver.ExitClean
	}

	analyzers := lint.Analyzers()

	// Vet protocol: a single *.cfg argument names a unit of work. The
	// go command forwards no flags, so vet units run non-strict: warn
	// findings print in vet output without failing the build.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		failing := func(analyzer string) bool {
			return lint.Failing(lint.Severity(analyzer), *strictFlag)
		}
		return driver.RunVetUnit(rest[0], analyzers, failing, os.Stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		return driver.ExitFailure
	}
	findings, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		return driver.ExitFailure
	}

	rel := relTo(".")
	fps := baseline.Fingerprints(findings, rel)

	if *writeBaselineFlag != "" {
		bl := baseline.FromFindings(findings, fps, rel, lint.Severity)
		if err := bl.WriteFile(*writeBaselineFlag); err != nil {
			fmt.Fprintln(os.Stderr, "bgplint:", err)
			return driver.ExitFailure
		}
		fmt.Fprintf(os.Stderr, "bgplint: wrote %d finding(s) to %s\n", len(findings), *writeBaselineFlag)
		return driver.ExitClean
	}

	// suppressed[i] means finding i is fingerprinted in the baseline;
	// states feed the SARIF baselineState field.
	suppressed := make([]bool, len(findings))
	states := make([]string, len(findings))
	if *baselineFlag != "" {
		bl, err := baseline.Load(*baselineFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bgplint:", err)
			return driver.ExitFailure
		}
		suppressed = bl.Suppressed(fps)
		for i, s := range suppressed {
			if s {
				states[i] = "unchanged"
			} else {
				states[i] = "new"
			}
		}
	}

	if *sarifFlag != "" {
		if err := writeSARIF(*sarifFlag, analyzersRules(analyzers), findings, fps, states, rel); err != nil {
			fmt.Fprintln(os.Stderr, "bgplint:", err)
			return driver.ExitFailure
		}
	}

	// Every fresh finding prints; only failing-tier ones (errors, plus
	// warnings under -strict) decide the exit status.
	fresh, failing, warnOnly := 0, 0, 0
	for i, f := range findings {
		if suppressed[i] {
			continue
		}
		fresh++
		fmt.Fprintf(stdout, "%s: %s\n", f.Pos, f.Message)
		if lint.Failing(lint.Severity(f.Analyzer), *strictFlag) {
			failing++
		} else {
			warnOnly++
		}
	}
	if n := len(findings) - fresh; n > 0 {
		fmt.Fprintf(os.Stderr, "bgplint: %d finding(s) suppressed by baseline %s\n", n, *baselineFlag)
	}
	if warnOnly > 0 && !*strictFlag {
		fmt.Fprintf(os.Stderr, "bgplint: %d warning(s) not failing the run; use -strict to gate them\n", warnOnly)
	}
	if failing > 0 {
		return driver.ExitFindings
	}
	return driver.ExitClean
}

// relTo returns a function mapping absolute source filenames to paths
// relative to dir, slash-separated, so fingerprints and SARIF URIs are
// stable across checkouts. Paths outside dir pass through unchanged.
func relTo(dir string) func(string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	return func(name string) string {
		if r, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(name)
	}
}

// analyzersRules builds the SARIF rule table from the registry's rule
// metadata: one entry per analyzer, documented by the first line of
// its Doc and its severity tier.
func analyzersRules(analyzers []*analysis.Analyzer) []sarif.Rule {
	metas := lint.Rules()
	rules := make([]sarif.Rule, 0, len(metas))
	for _, m := range metas {
		rules = append(rules, sarif.Rule{
			ID:               m.Name,
			ShortDescription: sarif.Message{Text: m.Summary},
			DefaultConfig:    &sarif.RuleConfig{Level: m.Severity},
		})
	}
	return rules
}

// writeSARIF renders every finding — including baselined ones, with
// their baselineState — so the artifact is a complete inventory.
func writeSARIF(path string, rules []sarif.Rule, findings []driver.Finding, fps, states []string, rel func(string) string) error {
	infos := make([]sarif.FindingInfo, 0, len(findings))
	for i, f := range findings {
		infos = append(infos, sarif.FindingInfo{
			RuleID:        f.Analyzer,
			Level:         lint.Severity(f.Analyzer),
			Message:       f.Message,
			URI:           rel(f.Pos.Filename),
			Line:          f.Pos.Line,
			Column:        f.Pos.Column,
			Fingerprint:   fps[i],
			BaselineState: states[i],
		})
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := sarif.Build(lint.ToolVersion, rules, infos).Encode(out); err != nil {
		return err
	}
	return out.Close()
}
