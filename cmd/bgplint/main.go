// Command bgplint is the multichecker for this repo's determinism and
// parallel-safety invariants: the detrand, maporder, seedflow and
// sharedfold analyzers (see internal/lint and DESIGN.md "Determinism
// invariants").
//
// Standalone:
//
//	bgplint ./...
//
// loads the named packages (compiling dependency export data through
// the ordinary build cache) and prints one line per finding,
// vet-style; exit status 2 means findings, 1 means a tool failure.
// Test files are not scanned in this mode.
//
// As a vet tool:
//
//	go build -o bin/bgplint ./cmd/bgplint
//	go vet -vettool=$(pwd)/bin/bgplint ./...
//
// runs the same analyzers under the go command's vet protocol, which
// also covers test packages and caches results per package.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bgplint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgplint [packages]\n       go vet -vettool=$(which bgplint) [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *versionFlag != "" {
		if err := driver.PrintVersion(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *flagsFlag {
		if err := driver.PrintFlags(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	analyzers := lint.Analyzers()

	// Vet protocol: a single *.cfg argument names a unit of work.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return driver.RunVetUnit(rest[0], analyzers, os.Stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		return 1
	}
	findings, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
