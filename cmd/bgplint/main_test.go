package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

// copyFixture clones the named testdata fixture module (with any
// nested packages) into a temp dir the test may mutate.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(dir, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// runTool invokes the real entry point with stdout captured.
func runTool(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// TestExitCodeContract walks the documented CI workflow end to end:
// findings exit 1; -write-baseline captures them and exits 0; a
// baselined rerun exits 0 and marks SARIF results "unchanged"; a new
// finding on top of the baseline exits 1 again; a missing baseline
// file is a tool failure (exit 2).
func TestExitCodeContract(t *testing.T) {
	dir := copyFixture(t, "modfixture")
	t.Chdir(dir)

	code, out := runTool(t, "./...")
	if code != driver.ExitFindings {
		t.Fatalf("bare run: exit %d, want %d (findings)\noutput:\n%s", code, driver.ExitFindings, out)
	}
	for _, rule := range []string{"seedtaint", "atomicpub"} {
		if !strings.Contains(out, rule) {
			t.Fatalf("bare run output does not mention %s:\n%s", rule, out)
		}
	}

	code, _ = runTool(t, "-write-baseline", "lint.baseline.json", "./...")
	if code != driver.ExitClean {
		t.Fatalf("-write-baseline: exit %d, want %d", code, driver.ExitClean)
	}
	if _, err := os.Stat("lint.baseline.json"); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	code, out = runTool(t, "-baseline", "lint.baseline.json", "-sarif", "bgplint.sarif", "./...")
	if code != driver.ExitClean {
		t.Fatalf("baselined run: exit %d, want %d\noutput:\n%s", code, driver.ExitClean, out)
	}
	if strings.Contains(out, "seedtaint") {
		t.Fatalf("baselined run still prints suppressed finding:\n%s", out)
	}
	checkSARIF(t, "bgplint.sarif", "unchanged")

	extra := "package modfixture\n\nimport \"math/rand\"\n\nfunc AnotherBadSource() rand.Source { return rand.NewSource(7) }\n"
	if err := os.WriteFile("extra.go", []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runTool(t, "-baseline", "lint.baseline.json", "./...")
	if code != driver.ExitFindings {
		t.Fatalf("new finding over baseline: exit %d, want %d\noutput:\n%s", code, driver.ExitFindings, out)
	}
	if !strings.Contains(out, "extra.go") {
		t.Fatalf("new finding not reported:\n%s", out)
	}

	// Fixing a baselined finding leaves a stale baseline entry; the
	// run must stay clean (exit 0), not fail on the leftover.
	if err := os.Remove("extra.go"); err != nil {
		t.Fatal(err)
	}
	clean := "package modfixture\n\nimport \"sync/atomic\"\n\ntype Published struct{ N int }\n\ntype Box struct{ cur atomic.Pointer[Published] }\n\nfunc (b *Box) BadPublish() {\n\tp := &Published{N: 1}\n\tb.cur.Store(p)\n}\n"
	if err := os.WriteFile("atomic.go", []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runTool(t, "-baseline", "lint.baseline.json", "./...")
	if code != driver.ExitClean {
		t.Fatalf("fixed finding with stale baseline entry: exit %d, want %d\noutput:\n%s", code, driver.ExitClean, out)
	}

	code, _ = runTool(t, "-baseline", "no-such-file.json", "./...")
	if code != driver.ExitFailure {
		t.Fatalf("missing baseline: exit %d, want %d", code, driver.ExitFailure)
	}
}

// TestWarnTierExitContract walks the warn-tier workflow on a fixture
// whose only finding is a hotpath warning: it prints without failing,
// -strict promotes it to exit 1, a baseline records its severity, and
// a baselined -strict run is clean again.
func TestWarnTierExitContract(t *testing.T) {
	dir := copyFixture(t, "warnfixture")
	t.Chdir(dir)

	code, out := runTool(t, "./filter")
	if code != driver.ExitClean {
		t.Fatalf("warn-only run: exit %d, want %d (warnings must not fail)\noutput:\n%s", code, driver.ExitClean, out)
	}
	if !strings.Contains(out, "fmt.Sprintf") || !strings.Contains(out, "hotpath") {
		t.Fatalf("warn finding not printed:\n%s", out)
	}

	code, out = runTool(t, "-strict", "./filter")
	if code != driver.ExitFindings {
		t.Fatalf("-strict run: exit %d, want %d (strict promotes warnings)\noutput:\n%s", code, driver.ExitFindings, out)
	}

	// The SARIF artifact carries the warning at its tier.
	code, _ = runTool(t, "-sarif", "warn.sarif", "./filter")
	if code != driver.ExitClean {
		t.Fatalf("sarif run: exit %d, want %d", code, driver.ExitClean)
	}
	sarifData, err := os.ReadFile("warn.sarif")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sarifData), `"level": "warning"`) && !strings.Contains(string(sarifData), `"level":"warning"`) {
		t.Errorf("SARIF result not tagged as warning:\n%s", sarifData)
	}

	// A baseline snapshot records the finding's severity tier...
	code, _ = runTool(t, "-write-baseline", "warn.baseline.json", "./filter")
	if code != driver.ExitClean {
		t.Fatalf("-write-baseline: exit %d, want %d", code, driver.ExitClean)
	}
	blData, err := os.ReadFile("warn.baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blData), `"warning"`) {
		t.Errorf("baseline entry carries no warning severity:\n%s", blData)
	}

	// ...and suppresses it even under -strict: only NEW findings gate.
	code, out = runTool(t, "-strict", "-baseline", "warn.baseline.json", "./filter")
	if code != driver.ExitClean {
		t.Fatalf("baselined -strict run: exit %d, want %d\noutput:\n%s", code, driver.ExitClean, out)
	}
}

// checkSARIF decodes the report and asserts the fields CI consumers
// rely on: spec version, the full rule table, and per-result
// fingerprint + baselineState.
func checkSARIF(t *testing.T, path, wantState string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				Level               string            `json:"level"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
				BaselineState       string            `json:"baselineState"`
				Locations           []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bgplint" {
		t.Errorf("tool name = %q, want bgplint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(lint.Analyzers()); got != want {
		t.Errorf("rule table has %d entries, want %d (one per analyzer)", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("sarif report has no results; expected the fixture findings")
	}
	// The fixture produces exactly one finding per file, one rule each.
	wantURI := map[string]string{
		"seedtaint": "fixture.go",
		"atomicpub": "atomic.go",
	}
	seen := make(map[string]bool)
	for _, r := range run.Results {
		uri, ok := wantURI[r.RuleID]
		if !ok {
			t.Errorf("unexpected result ruleId %q", r.RuleID)
			continue
		}
		seen[r.RuleID] = true
		if r.Level != lint.Severity(r.RuleID) {
			t.Errorf("result level = %q, want %q", r.Level, lint.Severity(r.RuleID))
		}
		if r.BaselineState != wantState {
			t.Errorf("baselineState = %q, want %q", r.BaselineState, wantState)
		}
		if len(r.PartialFingerprints) == 0 {
			t.Error("result has no partialFingerprints")
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI != uri {
			t.Errorf("%s result location = %+v, want %s", r.RuleID, r.Locations, uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Error("result region has no startLine")
		}
	}
	for rule := range wantURI {
		if !seen[rule] {
			t.Errorf("sarif report has no %s result", rule)
		}
	}
}
