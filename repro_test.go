package repro

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	repOnce sync.Once
	rep     *Report
	repErr  error
)

func quickReport(t *testing.T) *Report {
	t.Helper()
	repOnce.Do(func() {
		cfg := QuickConfig(1)
		cfg.Days = 45
		rep, repErr = Run(cfg)
	})
	if repErr != nil {
		t.Fatal(repErr)
	}
	return rep
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestRunProducesOracleAndLogs(t *testing.T) {
	r := quickReport(t)
	if !r.HasOracle() || r.Oracle() == nil {
		t.Error("simulated campaign should carry an oracle")
	}
	if r.RAS().Len() == 0 || r.Jobs().Len() == 0 {
		t.Error("empty logs")
	}
	if r.Analysis() == nil {
		t.Error("nil analysis")
	}
}

func TestSummaryCoherent(t *testing.T) {
	s := quickReport(t).Summary()
	if s.TotalJobs == 0 || s.FatalRecords == 0 || s.EventsAfterFiltering == 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
	if s.FatalRecords > s.TotalRecords {
		t.Error("fatal records exceed total")
	}
	if s.Interruptions < s.SystemInterruptions || s.Interruptions < s.AppInterruptions {
		t.Error("interruption split exceeds total")
	}
	if s.SystemInterruptions+s.AppInterruptions != s.Interruptions {
		t.Errorf("split %d+%d != %d", s.SystemInterruptions, s.AppInterruptions, s.Interruptions)
	}
	if s.FilterCompression < 0.9 {
		t.Errorf("filter compression %v", s.FilterCompression)
	}
	if s.DistinctInterrupted > s.Interruptions {
		t.Error("distinct interrupted exceeds interruption count")
	}
	if s.WeibullShapeBefore <= 0 || s.WeibullShapeBefore >= 1 {
		t.Errorf("before shape %v outside (0,1)", s.WeibullShapeBefore)
	}
	if s.TopCat1Feature == "" || s.TopCat2Feature == "" {
		t.Error("missing feature names")
	}
}

func TestRenderAllArtifacts(t *testing.T) {
	r := quickReport(t)
	var buf bytes.Buffer
	if err := r.RenderAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I:", "Table II:", "Table III:", "Figure 1", "Obs. 1",
		"Obs. 2", "Obs. 3", "Figure 3a", "Figure 3b", "Table IV:",
		"Figure 4a", "Figure 4b", "Figure 4c", "Figure 5:", "Figure 6a",
		"Figure 6b", "Table V:", "Obs. 8", "Figure 7:", "Table VI:",
		"Obs. 10-12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("suspiciously short output: %d bytes", len(out))
	}
}

func TestLoadRoundTrip(t *testing.T) {
	r := quickReport(t)
	// Serialize both logs and re-analyze via Load: headline numbers must
	// match the in-memory analysis exactly.
	var rasBuf, jobBuf bytes.Buffer
	for _, rec := range r.RAS().All() {
		rasBuf.WriteString(rec.MarshalLine())
		rasBuf.WriteByte('\n')
	}
	for _, j := range r.Jobs().All() {
		jobBuf.WriteString(j.MarshalLine())
		jobBuf.WriteByte('\n')
	}
	loaded, err := Load(DefaultConfig(0), &rasBuf, &jobBuf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HasOracle() {
		t.Error("loaded logs must not carry an oracle")
	}
	a, b := r.Summary(), loaded.Summary()
	if a.EventsAfterFiltering != b.EventsAfterFiltering {
		t.Errorf("events differ: %d vs %d", a.EventsAfterFiltering, b.EventsAfterFiltering)
	}
	if a.Interruptions != b.Interruptions {
		t.Errorf("interruptions differ: %d vs %d", a.Interruptions, b.Interruptions)
	}
	if a.SystemTypes != b.SystemTypes || a.ApplicationTypes != b.ApplicationTypes {
		t.Errorf("type census differs: %d/%d vs %d/%d",
			a.SystemTypes, a.ApplicationTypes, b.SystemTypes, b.ApplicationTypes)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(DefaultConfig(0), strings.NewReader("garbage"), strings.NewReader("")); err == nil {
		t.Error("garbage RAS log accepted")
	}
	if _, err := Load(DefaultConfig(0), strings.NewReader(""), strings.NewReader("garbage")); err == nil {
		t.Error("garbage job log accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := QuickConfig(3)
	cfg.Days = 10
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Summary(), b.Summary()
	if sa != sb {
		t.Errorf("summaries differ across identical runs:\n%+v\n%+v", sa, sb)
	}
}

func TestMatchToleranceOverride(t *testing.T) {
	cfg := QuickConfig(2)
	cfg.Days = 10
	cfg.MatchTolerance = time.Minute
	tight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MatchTolerance = 30 * time.Minute
	loose, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Summary().Interruptions > loose.Summary().Interruptions {
		t.Errorf("tighter tolerance matched more interruptions: %d vs %d",
			tight.Summary().Interruptions, loose.Summary().Interruptions)
	}
}

func TestExtensionStudies(t *testing.T) {
	r := quickReport(t)
	preds, err := r.PredictorStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("predictor results = %d", len(preds))
	}
	// The always-baseline has perfect recall; never has zero.
	var always, never, chain float64
	for _, p := range preds {
		switch {
		case p.Predictor == "always":
			always = p.Recall
		case p.Predictor == "never":
			never = p.Recall
		case strings.HasPrefix(p.Predictor, "chain"):
			chain = p.Recall
		}
	}
	if always != 1 || never != 0 {
		t.Errorf("baseline recalls: always %v never %v", always, never)
	}
	if chain <= 0 {
		t.Error("chain predictor learned nothing")
	}

	cks, err := r.CheckpointStudy(24*time.Hour, 5*time.Minute, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 4 {
		t.Fatalf("checkpoint results = %d", len(cks))
	}
	for _, c := range cks {
		if c.Efficiency <= 0 || c.Efficiency > 1 {
			t.Errorf("%s efficiency %v", c.Policy, c.Efficiency)
		}
	}
}

func TestFilterSensitivityMonotone(t *testing.T) {
	r := quickReport(t)
	pts, err := r.FilterSensitivity(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Window <= pts[i-1].Window {
			t.Fatal("windows not increasing")
		}
		if pts[i].Events > pts[i-1].Events {
			t.Errorf("events grew with a larger window: %d -> %d", pts[i-1].Events, pts[i].Events)
		}
	}
	var buf bytes.Buffer
	if err := r.RenderSensitivity(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("missing ablation header")
	}
}
