package repro

import (
	"bytes"
	"reflect"
	"testing"
)

// TestParallelMatchesSequential is the tentpole equivalence oracle: the
// full analysis at Parallelism 1 (all fan-outs forced sequential) and
// Parallelism 8 must produce deep-equal structured results and a
// byte-identical rendered report for the same seed. Run it under -race
// to check the pool itself (make race / scripts/ci.sh do).
func TestParallelMatchesSequential(t *testing.T) {
	cfg := QuickConfig(1)
	cfg.Days = 30 // keep the -race run quick; shapes are unaffected

	seqCfg := cfg
	seqCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = 8

	seqRep, err := Run(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parRep, err := Run(parCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Structured equivalence, stage by stage.
	sa, pa := seqRep.Analysis(), parRep.Analysis()
	if !reflect.DeepEqual(sa.Events, pa.Events) {
		t.Errorf("filtered events diverge: %d vs %d", len(sa.Events), len(pa.Events))
	}
	if sa.FilterStats != pa.FilterStats {
		t.Errorf("filter stats diverge: %+v vs %+v", sa.FilterStats, pa.FilterStats)
	}
	if !reflect.DeepEqual(sa.Independent, pa.Independent) {
		t.Errorf("independent events diverge")
	}
	if !reflect.DeepEqual(sa.Interruptions, pa.Interruptions) {
		t.Errorf("interruptions diverge: %d vs %d", len(sa.Interruptions), len(pa.Interruptions))
	}
	if !reflect.DeepEqual(sa.MidplaneCharacteristics(32), pa.MidplaneCharacteristics(32)) {
		t.Errorf("midplane characteristics diverge")
	}
	if sa.MidplaneFits(5) != pa.MidplaneFits(5) {
		t.Errorf("midplane fit census diverges: %+v vs %+v", sa.MidplaneFits(5), pa.MidplaneFits(5))
	}
	sir, serr := sa.InterruptionRates()
	pir, perr := pa.InterruptionRates()
	if (serr == nil) != (perr == nil) {
		t.Fatalf("interruption rates errors diverge: %v vs %v", serr, perr)
	}
	if serr == nil && !reflect.DeepEqual(sir, pir) {
		t.Errorf("interruption rates diverge")
	}
	if !reflect.DeepEqual(seqRep.Summary(), parRep.Summary()) {
		t.Errorf("summaries diverge:\nseq: %+v\npar: %+v", seqRep.Summary(), parRep.Summary())
	}

	// Byte-identity oracle over every rendered artifact.
	var seqOut, parOut bytes.Buffer
	if err := seqRep.RenderAll(&seqOut); err != nil {
		t.Fatal(err)
	}
	if err := parRep.RenderAll(&parOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("rendered reports differ (%d vs %d bytes)", seqOut.Len(), parOut.Len())
	}
}

// TestEnsembleDeterministic checks that the ensemble aggregation is
// identical at any worker count and matches the single-seed runs.
func TestEnsembleDeterministic(t *testing.T) {
	cfg := QuickConfig(1)
	cfg.Days = 10
	cfg.Seeds = 3

	seqCfg := cfg
	seqCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = 8

	seq, err := RunEnsemble(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunEnsemble(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.PerSeed, par.PerSeed) {
		t.Errorf("per-seed summaries diverge across worker counts")
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("ensemble stats diverge across worker counts")
	}

	// Member i must equal a plain Run at that seed.
	solo := QuickConfig(2)
	solo.Days = 10
	rep, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.PerSeed[1], rep.Summary()) {
		t.Errorf("ensemble member diverges from solo run at same seed")
	}

	var buf bytes.Buffer
	if err := seq.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty ensemble render")
	}
}
