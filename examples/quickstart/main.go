// Quickstart: simulate a reduced Intrepid-like campaign, run the
// co-analysis, and print the headline observations next to the paper's
// numbers, plus two of the evaluation artifacts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// QuickConfig runs a ~60-day campaign in a couple of seconds; use
	// repro.DefaultConfig(seed) for the full 237-day reproduction.
	rep, err := repro.Run(repro.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}

	s := rep.Summary()
	fmt.Printf("campaign: %d days, %d RAS records (%d FATAL), %d jobs (%d distinct)\n",
		s.Days, s.TotalRecords, s.FatalRecords, s.TotalJobs, s.DistinctJobs)
	fmt.Printf("filtering: %d independent fatal events (%.2f%% compression; paper: 98.35%%)\n",
		s.EventsAfterFiltering, 100*s.FilterCompression)
	fmt.Printf("co-analysis: %d interruptions (%d system, %d application)\n",
		s.Interruptions, s.SystemInterruptions, s.AppInterruptions)
	fmt.Printf("Obs 1: %.1f%% of fatal events never impact a job (paper: 20.84%%)\n",
		100*s.NonImpactingEventFraction)
	fmt.Printf("Obs 5: fatal~wide-workload correlation %.2f vs fatal~raw %.2f\n",
		s.CorrWideWorkload, s.CorrWorkload)
	fmt.Printf("Obs 11: %.1f%% of application interruptions within 1 h (paper: 74.5%%)\n",
		100*s.EarlyAppFraction)
	fmt.Println()

	// Render two artifacts of the paper's evaluation.
	if err := rep.RenderTableIV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := rep.RenderTableVI(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
