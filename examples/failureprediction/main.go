// Failure prediction: the paper's §VII argues predictors must name the
// *location* of the coming failure, because proactive actions on idle
// hardware are wasted (Obs. 7: nearly half of fatal events strike idle
// midplanes). This example runs the prediction study over a simulated
// campaign and prints the recall / alarm-budget / avoidable-action
// trade-off for several predictors, then zooms in on the chain
// predictor's window.
//
//	go run ./examples/failureprediction
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/predict"
)

func main() {
	rep, err := repro.Run(repro.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}

	// The packaged study: baselines + chain + two rate thresholds.
	if err := rep.RenderPrediction(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Sweep the chain predictor's window to expose the recall/budget
	// trade-off an operator would tune.
	fmt.Println("chain-predictor window sweep:")
	fmt.Printf("  %-8s  %-8s  %-16s  %s\n", "window", "recall", "alarm mp-hours", "hits/alarm-day")
	events := rep.Analysis().Events
	for _, window := range []time.Duration{
		time.Hour, 6 * time.Hour, 24 * time.Hour, 72 * time.Hour,
	} {
		res, err := predict.Evaluate(predict.NewChainPredictor(window), events, rep.Jobs())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  %6.1f%%  %16.0f  %14.2f\n",
			window, 100*res.Recall, res.AlarmMidplaneHours, res.HitsPerAlarmDay)
	}
	fmt.Println()
	fmt.Println("reading: longer windows buy recall with a linearly growing proactive-action")
	fmt.Println("budget; the paper's point is that location information lets the budget be spent")
	fmt.Println("only where productive jobs actually run.")
}
