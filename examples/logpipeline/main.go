// Log pipeline: generate the two logs to disk with bgpgen-equivalent
// code, then read them back and run the analysis exactly as an operator
// with real log files would — demonstrating the streaming readers and
// writers and the filtering cascade stage by stage.
//
//	go run ./examples/logpipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/filter"
	"repro/internal/raslog"
	"repro/internal/simulate"
	"repro/internal/symtab"
)

func main() {
	dir, err := os.MkdirTemp("", "bgp-logs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rasPath := filepath.Join(dir, "ras.log")
	jobPath := filepath.Join(dir, "job.log")

	// 1. Simulate a short campaign and write both logs to disk.
	camp, err := simulate.Run(simulate.Config{Seed: 7, Days: 30, NoisePerFatal: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeLogs(camp, rasPath, jobPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", rasPath, jobPath)

	// 2. Stream the RAS log back with the iterator reader: one reusable
	// record, no whole-file slice — only the FATAL survivors are kept.
	rf, err := os.Open(rasPath)
	if err != nil {
		log.Fatal(err)
	}
	r := raslog.NewReader(rf)
	total := 0
	var fatal []raslog.Record
	for r.Next() {
		total++
		if r.Record().Fatal() {
			fatal = append(fatal, *r.Record())
		}
	}
	rf.Close()
	if err := r.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed %d records; kept %d FATAL\n", total, len(fatal))

	// 3. Run the filtering cascade stage by stage, showing the
	// compression each stage buys. (filter.PipelineFromLog does the
	// stream + cascade in one call, on parallel decode shards.)
	cfg := filter.DefaultConfig()
	tab := symtab.NewTable()
	t := filter.Temporal(tab, cfg.TemporalWindow, fatal)
	s := filter.Spatial(cfg.SpatialWindow, t)
	rules := filter.MineCausality(cfg, s)
	c := filter.Causality(cfg.CausalityWindow, rules, s)
	fmt.Printf("temporal:  %6d -> %5d (same location+code storms collapsed)\n", len(fatal), len(t))
	fmt.Printf("spatial:   %6d -> %5d (parallel-job fan-out collapsed)\n", len(t), len(s))
	fmt.Printf("causality: %6d -> %5d (%d mined rules)\n", len(s), len(c), len(rules))

	// 4. Feed both files to the public API, as cmd/coanalyze does; Load
	// decodes them with the sharded streaming codec.
	rf, err = os.Open(rasPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	jf, err := os.Open(jobPath)
	if err != nil {
		log.Fatal(err)
	}
	defer jf.Close()
	rep, err := repro.Load(repro.DefaultConfig(0), rf, jf)
	if err != nil {
		log.Fatal(err)
	}
	sum := rep.Summary()
	fmt.Printf("\nco-analysis over the files: %d events, %d interruptions, job-filter removed %d\n",
		sum.EventsAfterFiltering, sum.Interruptions, sum.JobRedundantRemoved)
}

func writeLogs(camp *simulate.Campaign, rasPath, jobPath string) error {
	rf, err := os.Create(rasPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	jf, err := os.Create(jobPath)
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := camp.WriteLogs(rf, jf); err != nil {
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	return jf.Close()
}
