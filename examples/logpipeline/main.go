// Log pipeline: generate the two logs to disk with bgpgen-equivalent
// code, then read them back and run the analysis exactly as an operator
// with real log files would — demonstrating the streaming readers and
// writers and the filtering cascade stage by stage.
//
//	go run ./examples/logpipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

func main() {
	dir, err := os.MkdirTemp("", "bgp-logs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rasPath := filepath.Join(dir, "ras.log")
	jobPath := filepath.Join(dir, "job.log")

	// 1. Simulate a short campaign and write both logs to disk.
	camp, err := simulate.Run(simulate.Config{Seed: 7, Days: 30, NoisePerFatal: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeLogs(camp, rasPath, jobPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", rasPath, jobPath)

	// 2. Stream the RAS log back and run the filtering cascade stage by
	// stage, showing the compression each stage buys.
	rf, err := os.Open(rasPath)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := raslog.NewReader(rf).ReadAll()
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	store := raslog.NewStore(recs)
	fatal := store.Fatal()
	fmt.Printf("\nread back %d records; %d FATAL\n", store.Len(), len(fatal))

	cfg := filter.DefaultConfig()
	t := filter.Temporal(cfg.TemporalWindow, fatal)
	s := filter.Spatial(cfg.SpatialWindow, t)
	rules := filter.MineCausality(cfg, s)
	c := filter.Causality(cfg.CausalityWindow, rules, s)
	fmt.Printf("temporal:  %6d -> %5d (same location+code storms collapsed)\n", len(fatal), len(t))
	fmt.Printf("spatial:   %6d -> %5d (parallel-job fan-out collapsed)\n", len(t), len(s))
	fmt.Printf("causality: %6d -> %5d (%d mined rules)\n", len(s), len(c), len(rules))

	// 3. Feed both files to the public API, as cmd/coanalyze does.
	rf, err = os.Open(rasPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	jf, err := os.Open(jobPath)
	if err != nil {
		log.Fatal(err)
	}
	defer jf.Close()
	rep, err := repro.Load(repro.DefaultConfig(0), rf, jf)
	if err != nil {
		log.Fatal(err)
	}
	sum := rep.Summary()
	fmt.Printf("\nco-analysis over the files: %d events, %d interruptions, job-filter removed %d\n",
		sum.EventsAfterFiltering, sum.Interruptions, sum.JobRedundantRemoved)
}

func writeLogs(camp *simulate.Campaign, rasPath, jobPath string) error {
	rf, err := os.Create(rasPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	rw := raslog.NewWriter(rf)
	for _, rec := range camp.RAS.All() {
		if err := rw.Write(rec); err != nil {
			return err
		}
	}
	if err := rw.Flush(); err != nil {
		return err
	}

	jf, err := os.Create(jobPath)
	if err != nil {
		return err
	}
	defer jf.Close()
	jw := joblog.NewWriter(jf)
	for _, j := range camp.Jobs.All() {
		if err := jw.Write(j); err != nil {
			return err
		}
	}
	return jw.Flush()
}
