// Checkpointing advisor: the paper's §VII recommends checkpoint
// policies informed by co-analysis. This example fits the failure
// model from a simulated campaign and derives:
//
//  1. Young's optimal checkpoint interval sqrt(2 * delta * MTBF) under
//     the exponential assumption, for several checkpoint costs;
//
//  2. how the Weibull fit (decreasing hazard) changes the picture: the
//     conditional failure probability over the next hour as a function
//     of time since the previous failure;
//
//  3. the paper's Obs. 9/11 advice: jobs with application-error history
//     should delay their first checkpoint past the first hour, where
//     application errors concentrate.
//
//     go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	rep, err := repro.Run(repro.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	fc, err := rep.Analysis().FailureCharacteristics()
	if err != nil {
		log.Fatal(err)
	}

	w := fc.After.Weibull
	mtbf := w.Mean()
	fmt.Printf("fitted failure model (after job-related filtering): Weibull shape %.3f scale %.0f s\n",
		w.Shape, w.Scale)
	fmt.Printf("MTBF %.1f h; exponential would assume a flat hazard of %.3g /s\n\n",
		mtbf/3600, 1/mtbf)

	fmt.Println("Young's optimal checkpoint interval (exponential assumption):")
	for _, deltaMin := range []float64{1, 5, 15, 30} {
		delta := deltaMin * 60
		opt := math.Sqrt(2 * delta * mtbf)
		fmt.Printf("  checkpoint cost %5.1f min -> interval %6.1f min\n", deltaMin, opt/60)
	}
	fmt.Println()

	fmt.Println("Weibull reality check: P(failure in next hour | time since last failure)")
	for _, sinceH := range []float64{0.1, 1, 6, 24, 72} {
		t := sinceH * 3600
		p := condFailProb(w.CDF, t, 3600)
		fmt.Printf("  %6.1f h since last failure -> %.3f%%\n", sinceH, 100*p)
	}
	fmt.Println("  (decreasing hazard: the longer the system has been quiet, the safer the next hour —")
	fmt.Println("   fixed-interval checkpointing over-checkpoints in quiet periods)")
	fmt.Println()

	s := rep.Summary()
	fmt.Println("co-analysis advice (paper §VII):")
	fmt.Printf("  - %.0f%% of application-error interruptions strike within the first hour (Obs. 11):\n",
		100*s.EarlyAppFraction)
	fmt.Println("    for jobs with application-error history, do not checkpoint before the code has")
	fmt.Println("    survived its first hour — the work would be lost to a resubmit-and-fix cycle anyway.")
	fmt.Printf("  - resubmission after a system-failure interruption carries %.0f%%/%.0f%% risk at k=1/k=2\n",
		100*s.ResubRiskSystemK1, 100*s.ResubRiskSystemK2)
	fmt.Println("    (Fig. 7): checkpoint resubmitted jobs aggressively, or steer them off the failed partition.")
}

// condFailProb returns P(T <= t+dt | T > t) for a CDF.
func condFailProb(cdf func(float64) float64, t, dt float64) float64 {
	s := 1 - cdf(t)
	if s <= 0 {
		return 1
	}
	return (cdf(t+dt) - cdf(t)) / s
}
