// Scheduler advisor: the paper's §VII argues the job scheduler should
// subscribe to failure-related information. This example turns a
// co-analysis into the two feeds the paper asks for:
//
//  1. fatal-event intelligence — which ERRCODEs actually interrupt
//     jobs, which locations are currently unreliable, which codes are
//     false alarms the scheduler can ignore;
//
//  2. job-interruption history — per-executable consecutive-failure
//     counts, so resubmissions can be steered or checkpointed.
//
//     go run ./examples/scheduler_advisor
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/bgp"
	"repro/internal/core"
)

func main() {
	rep, err := repro.Run(repro.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	a := rep.Analysis()

	// Feed 1a: event-type triage.
	fmt.Println("== fatal-event triage for the scheduler ==")
	type codeInfo struct {
		code  string
		id    core.Identification
		class core.Class
	}
	var infos []codeInfo
	for code, id := range a.Identification {
		infos = append(infos, codeInfo{a.Syms.Errcodes.Name(code), id, a.Classification[code].Class})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].id.Events > infos[j].id.Events })
	ignorable, actionable := 0, 0
	for _, ci := range infos {
		if ci.id.Verdict == core.VerdictNonFatal {
			ignorable++
			fmt.Printf("  IGNORE   %-34s %3d events never interrupted a running job\n", ci.code, ci.id.Events)
		}
	}
	for i, ci := range infos {
		if ci.id.Verdict == core.VerdictNonFatal || i > 8 {
			continue
		}
		actionable++
		fmt.Printf("  WATCH    %-34s %3d events, %2d interrupting, origin=%s\n",
			ci.code, ci.id.Events, ci.id.Case1, ci.class)
	}
	fmt.Printf("  (%d ignorable types, %d high-volume actionable types shown)\n\n", ignorable, actionable)

	// Feed 1b: unreliable locations right now.
	fmt.Println("== unreliable midplanes (drain candidates) ==")
	mc := a.MidplaneCharacteristics(32)
	for _, mp := range mc.TopMidplanes[:6] {
		fmt.Printf("  %-7s %2d independent fatal events\n", bgp.MidplaneLocation(mp), mc.FatalEvents[mp])
	}
	fmt.Println()

	// Feed 2: per-executable interruption history (Fig. 7's k).
	fmt.Println("== executables with consecutive-interruption history ==")
	interrupted := a.InterruptedJobIDs()
	type hist struct {
		exec   string
		streak int
	}
	var hs []hist
	for exec, jobs := range rep.Jobs().ByExecFile() {
		streak, maxStreak := 0, 0
		for _, j := range jobs {
			if interrupted[j.ID] {
				streak++
				if streak > maxStreak {
					maxStreak = streak
				}
			} else {
				streak = 0
			}
		}
		if maxStreak >= 2 {
			hs = append(hs, hist{exec, maxStreak})
		}
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].streak != hs[j].streak {
			return hs[i].streak > hs[j].streak
		}
		return hs[i].exec < hs[j].exec
	})
	rs := a.Resubmissions(3)
	for i, h := range hs {
		if i >= 8 {
			break
		}
		k := h.streak
		if k > 3 {
			k = 3
		}
		fmt.Printf("  peak k=%d  %-42s next-run interruption risk ~%.0f%% (system) / ~%.0f%% (application)\n",
			h.streak, h.exec, 100*rs.System[k], 100*rs.Application[k])
	}
	fmt.Printf("  (%d executables experienced consecutive interruptions)\n", len(hs))
}
