#!/usr/bin/env bash
# bgpd end-to-end smoke: build the daemon, generate a deterministic
# sample campaign, serve it, hit every endpoint family with curl, and
# diff the answers against the goldens committed under testdata/serve/.
# Run with -update to regenerate the goldens after an intentional
# output change (review the diff like code).
set -euo pipefail
cd "$(dirname "$0")/.."

update=0
[ "${1:-}" = "-update" ] && update=1

golden=testdata/serve
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/bgpgen" ./cmd/bgpgen
go build -o "$tmp/bgpd" ./cmd/bgpd

echo "== generate sample campaign"
"$tmp/bgpgen" -seed 4 -days 10 -noise 0.5 -ras "$tmp/ras.log" -job "$tmp/job.log"

echo "== start bgpd (spilling: tiny -mem-budget so queries serve from segment files)"
"$tmp/bgpd" -addr 127.0.0.1:0 -ras "$tmp/ras.log" -job "$tmp/job.log" \
	-data "$tmp/data" -mem-budget 4096 \
	-publish-every 1h >"$tmp/stdout.log" 2>"$tmp/stderr.log" &
pid=$!
for _ in $(seq 1 100); do
	grep -q 'listening on' "$tmp/stdout.log" 2>/dev/null && break
	kill -0 "$pid" 2>/dev/null || { echo "bgpd died:" >&2; cat "$tmp/stderr.log" >&2; exit 1; }
	sleep 0.1
done
addr=$(sed -n 's/^bgpd: listening on //p' "$tmp/stdout.log")
[ -n "$addr" ] || { echo "bgpd never announced its address" >&2; exit 1; }
base="http://$addr"

echo "== quiesce and query $base"
curl -fsS -X POST "$base/v1/quiesce" >/dev/null
names="epoch query_rates query_mtbf query_interruptions query_vulnerability report_t1 report_obs1 scan healthz"
fetch() {
	case $1 in
	epoch) curl -fsS "$base/v1/epoch" ;;
	query_*) curl -fsS "$base/v1/query/${1#query_}" ;;
	report_*) curl -fsS "$base/v1/report/${1#report_}" ;;
	# Whole-history window profile: with the tiny budget above this is
	# answered from spilled segment files through the zone-map reader.
	scan) curl -fsS "$base/v1/scan" ;;
	healthz) curl -fsS "$base/healthz" ;;
	esac
}
status=0
for name in $names; do
	fetch "$name" >"$tmp/$name.out"
	if [ "$update" = 1 ]; then
		mkdir -p "$golden"
		cp "$tmp/$name.out" "$golden/$name.golden"
		echo "updated $golden/$name.golden"
	elif ! diff -u "$golden/$name.golden" "$tmp/$name.out"; then
		echo "smoke: $name diverges from its golden" >&2
		status=1
	fi
done

# Ingest rejection stays structured under load: a garbage batch must
# answer 400 with a JSON error, not a 500 or a hang.
code=$(curl -s -o "$tmp/bad.out" -w '%{http_code}' -X POST --data-binary 'not|a|record' "$base/v1/ingest/ras")
if [ "$code" != 400 ] || ! grep -q '"error"' "$tmp/bad.out"; then
	echo "smoke: malformed ingest answered $code: $(cat "$tmp/bad.out")" >&2
	status=1
fi

[ "$status" = 0 ] && echo "bgpd smoke OK"
exit "$status"
