#!/usr/bin/env bash
# Bounded-memory equivalence gate: generate a multi-campaign log well
# past the smoke campaign's scale, analyze it twice — unconstrained,
# then under GOMEMLIMIT plus a ulimit backstop with a -mem-budget far
# smaller than the event payload — and require (a) the bounded run
# actually spilled and actually skipped noise-only runs via zone maps,
# and (b) the two stdout renders are byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build"
go build -o "$tmp/bgpgen" ./cmd/bgpgen
go build -o "$tmp/coanalyze" ./cmd/coanalyze

# Two generated campaigns concatenated into one log pair, ~10x the
# smoke campaign (seed 4, 10 days): distinct seeds so the vocabularies
# only partly overlap and the global symtab remap does real work.
echo "== generate multi-campaign logs"
"$tmp/bgpgen" -seed 4 -days 60 -noise 0.5 -ras "$tmp/ras1.log" -job "$tmp/job1.log"
"$tmp/bgpgen" -seed 11 -days 45 -noise 0.5 -ras "$tmp/ras2.log" -job "$tmp/job2.log"
cat "$tmp/ras1.log" "$tmp/ras2.log" >"$tmp/ras.log"
cat "$tmp/job1.log" "$tmp/job2.log" >"$tmp/job.log"
payload=$(wc -c <"$tmp/ras.log")
budget=$((payload / 10))
echo "   RAS payload $payload bytes, -mem-budget $budget"

# /usr/bin/time -v reports peak RSS when available (GNU time is not
# installed everywhere); the gate itself never depends on it.
mem() {
	if [ -x /usr/bin/time ] && /usr/bin/time -v true 2>/dev/null; then
		/usr/bin/time -v "$@"
	else
		"$@"
	fi
}

echo "== unconstrained run"
mem "$tmp/coanalyze" -ras "$tmp/ras.log" -job "$tmp/job.log" \
	>"$tmp/batch.out" 2>"$tmp/batch.err" || { cat "$tmp/batch.err" >&2; exit 1; }

echo "== bounded run (GOMEMLIMIT=128MiB, ulimit -v 4GiB, -mem-budget $budget)"
(
	# The address-space backstop is deliberately loose: the Go runtime
	# reserves large virtual areas up front, and mmap'd segment files
	# count toward -v. GOMEMLIMIT is the real heap bound; ulimit only
	# catches a runaway.
	ulimit -v 4194304
	GOMEMLIMIT=128MiB mem "$tmp/coanalyze" -ras "$tmp/ras.log" -job "$tmp/job.log" \
		-mem-budget "$budget" -spill-dir "$tmp/spill" \
		>"$tmp/bounded.out" 2>"$tmp/bounded.err"
) || { cat "$tmp/bounded.err" >&2; exit 1; }

for log in batch.err bounded.err; do
	rss=$(sed -n 's/.*Maximum resident set size (kbytes): //p' "$tmp/$log")
	[ -n "$rss" ] && echo "   ${log%.err} peak RSS: ${rss} kB"
done

status=0
flushes=$(sed -n 's/.*budget_flushes=\([0-9]*\).*/\1/p' "$tmp/bounded.err")
skipped=$(sed -n 's/.*zone_skipped=\([0-9]*\).*/\1/p' "$tmp/bounded.err")
if [ -z "$flushes" ] || [ "$flushes" -lt 1 ]; then
	echo "membound: budget $budget forced no spill flush (budget_flushes=${flushes:-missing}):" >&2
	cat "$tmp/bounded.err" >&2
	status=1
fi
if [ -z "$skipped" ] || [ "$skipped" -lt 1 ]; then
	echo "membound: merge skipped no segment via zone maps (zone_skipped=${skipped:-missing}):" >&2
	cat "$tmp/bounded.err" >&2
	status=1
fi
if ! cmp -s "$tmp/batch.out" "$tmp/bounded.out"; then
	echo "membound: bounded output diverges from the unconstrained run:" >&2
	diff -u "$tmp/batch.out" "$tmp/bounded.out" | head -40 >&2
	status=1
fi

if [ "$status" = 0 ]; then
	echo "membound OK: $flushes budget flushes, $skipped zone-skipped runs, output byte-identical"
fi
exit "$status"
