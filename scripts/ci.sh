#!/usr/bin/env bash
# CI gate: build, vet, full tests, race-detector pass, and a short fuzz
# smoke of the line parsers. Mirrors `make check` plus fuzzing; keep the
# two in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

# Drift check: this script mirrors `make check` (plus fuzzing); the
# comment used to be the only enforcement. CI_STEPS is the set of make
# check steps this script implements — if the Makefile's check recipe
# gains or loses a step without this script following, fail loudly.
CI_STEPS="build vet lint test race smoke membound"
MAKE_STEPS=$(sed -n 's/^check:[[:space:]]*//p' Makefile)
echo "== drift check (ci.sh vs make check)"
for s in $MAKE_STEPS; do
	case " $CI_STEPS " in
	*" $s "*) ;;
	*)
		echo "ci.sh drift: 'make check' runs '$s' but ci.sh does not — update ci.sh (and CI_STEPS)" >&2
		exit 1
		;;
	esac
done
for s in $CI_STEPS; do
	case " $MAKE_STEPS " in
	*" $s "*) ;;
	*)
		echo "ci.sh drift: ci.sh runs '$s' but 'make check' does not — update the Makefile check recipe" >&2
		exit 1
		;;
	esac
done

# The bench gate lives in the workflow, not here, but its baseline
# filename is spelled in three places; if `make bench-baseline` writes a
# different file than the workflow compares against (or the committed
# baseline is missing), the gate silently rots.
BENCH_BASELINE=$(sed -n 's/.*bgpbench run .* -out \([A-Za-z0-9_.]*\.json\).*/\1/p' Makefile)
if ! grep -q -- "-baseline $BENCH_BASELINE" .github/workflows/ci.yml; then
	echo "ci.sh drift: 'make bench-baseline' writes $BENCH_BASELINE but the CI bench job gates a different file" >&2
	exit 1
fi
if [ ! -f "$BENCH_BASELINE" ]; then
	echo "ci.sh drift: bench baseline $BENCH_BASELINE is not committed — run 'make bench-baseline'" >&2
	exit 1
fi

# `make bench` must exercise the same package set the bgpbench CI gate
# measures; the two lists are spelled in the Makefile and in
# cmd/bgpbench/main.go, so diff them.
MAKE_BENCH_PKGS=$(sed -n 's/^BENCH_PKGS[[:space:]]*=[[:space:]]*//p' Makefile | tr ' ' '\n' | sort)
TOOL_BENCH_PKGS=$(sed -n 's/^var benchPackages = \[\]string{\(.*\)}$/\1/p' cmd/bgpbench/main.go | tr -d '",' | tr ' ' '\n' | sort)
if [ "$MAKE_BENCH_PKGS" != "$TOOL_BENCH_PKGS" ]; then
	echo "ci.sh drift: Makefile BENCH_PKGS and cmd/bgpbench benchPackages disagree:" >&2
	echo "  Makefile:  $(echo $MAKE_BENCH_PKGS)" >&2
	echo "  bgpbench:  $(echo $TOOL_BENCH_PKGS)" >&2
	exit 1
fi

# The membound gate is one script spelled in three places: the Makefile
# membound target, the standalone CI membound job, and this script's
# own invocation below. If the Makefile target points elsewhere (or the
# workflow drops the job), fail loudly.
MEMBOUND_SCRIPT=$(sed -n '/^membound:/{n;s/^[[:space:]]*//p;}' Makefile | awk '{print $1}')
if [ "$MEMBOUND_SCRIPT" != "./scripts/membound.sh" ]; then
	echo "ci.sh drift: 'make membound' runs '$MEMBOUND_SCRIPT' but ci.sh runs ./scripts/membound.sh" >&2
	exit 1
fi
if ! grep -q 'scripts/membound.sh' .github/workflows/ci.yml; then
	echo "ci.sh drift: the CI workflow has no membound job running scripts/membound.sh" >&2
	exit 1
fi

# Same three-way agreement for the escape gate: `make escape-baseline`
# writes the file the CI escape job compares against, and it must be
# committed.
ESCAPE_BASELINE=$(sed -n 's|.*cmd/bgpescape run -out \([A-Za-z0-9_.]*\.json\).*|\1|p' Makefile)
if ! grep -q -- "-baseline $ESCAPE_BASELINE" .github/workflows/ci.yml; then
	echo "ci.sh drift: 'make escape-baseline' writes $ESCAPE_BASELINE but the CI escape job gates a different file" >&2
	exit 1
fi
if [ ! -f "$ESCAPE_BASELINE" ]; then
	echo "ci.sh drift: escape baseline $ESCAPE_BASELINE is not committed — run 'make escape-baseline'" >&2
	exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== bgplint (determinism, domain & concurrency analyzers; baseline-gated, SARIF artifact)"
go build -o bin/bgplint ./cmd/bgplint
./bin/bgplint -baseline lint.baseline.json -sarif bgplint.sarif ./... ./cmd/... ./examples/...

# Third-party linters run when available; the build environment is
# offline, so they are gated rather than installed here.
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck"
	staticcheck ./...
else
	echo "== staticcheck (not installed; skipped)"
fi
if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck"
	govulncheck ./...
else
	echo "== govulncheck (not installed; skipped)"
fi

echo "== go test"
go test ./...

# The serve hammer tests only exercise real interleavings with enough
# parallelism; force at least four Ps even on small CI runners.
NP=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)
if [ "$NP" -lt 4 ]; then NP=4; fi
echo "== go test -race (GOMAXPROCS=$NP)"
GOMAXPROCS=$NP go test -race ./...

echo "== bgpd smoke (end-to-end daemon golden diff)"
./scripts/smoke_bgpd.sh

echo "== policy smoke (matrix digests + cross-policy comparison)"
./scripts/smoke_policies.sh

echo "== membound (bounded-memory spill/merge equivalence)"
./scripts/membound.sh

echo "== fuzz smoke (${FUZZTIME:=10s} per target)"
go test ./internal/raslog -fuzz FuzzParseRecord -fuzztime "$FUZZTIME"
go test ./internal/joblog -fuzz FuzzParseJob -fuzztime "$FUZZTIME"
go test ./internal/bgp -fuzz FuzzParseLocation -fuzztime "$FUZZTIME"
# -race: the symtab fuzz body reads frozen snapshots from concurrent
# goroutines; the corpus cache makes the explored inputs accumulate.
go test -race ./internal/symtab -fuzz FuzzSymtab -fuzztime "$FUZZTIME"
# Ingest-endpoint fuzz: malformed POST bodies must never panic the
# daemon or leave a partially applied batch behind.
go test ./internal/serve -fuzz FuzzIngestBatch -fuzztime "$FUZZTIME"
# Durability-boundary fuzz: seal → persist → recover must reproduce the
# sealed state exactly, and restored segments must reject appends.
go test ./internal/serve -fuzz FuzzSegmentSealRestore -fuzztime "$FUZZTIME"
# Segment-codec fuzz: arbitrary bytes must decode to a structured
# *FormatError or to a segment whose re-encoding is the consumed
# prefix — never a panic. The corpus accumulates in the same
# ~/.cache/go-build/fuzz cache the workflow persists across runs.
go test ./internal/store -fuzz FuzzSegmentCodec -fuzztime "$FUZZTIME"

echo "CI OK"
