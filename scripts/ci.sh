#!/usr/bin/env bash
# CI gate: build, vet, full tests, race-detector pass, and a short fuzz
# smoke of the line parsers. Mirrors `make check` plus fuzzing; keep the
# two in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke (${FUZZTIME:=10s} per target)"
go test ./internal/raslog -fuzz FuzzParseRecord -fuzztime "$FUZZTIME"
go test ./internal/joblog -fuzz FuzzParseJob -fuzztime "$FUZZTIME"

echo "CI OK"
