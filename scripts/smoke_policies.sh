#!/usr/bin/env bash
# Policy-matrix end-to-end smoke: run bgpgen -policy-matrix with the
# exact campaign the digest golden pins, checksum every per-policy log
# against cmd/bgpgen/testdata/policy_digests.txt, prove the default
# policy is byte-identical to an explicit -policy=intrepid run, and
# sanity-check the coanalyze cross-policy comparison (every policy
# listed, interruption outcomes not all equal). The campaign parameters
# are parsed back out of the golden's "# params:" header so this script
# and the Go digest test can never drift. Run with -update to
# regenerate the golden after an intentional output change (review the
# diff like code).
set -euo pipefail
cd "$(dirname "$0")/.."

manifest=cmd/bgpgen/testdata/policy_digests.txt

if [ "${1:-}" = "-update" ]; then
	go test ./cmd/bgpgen -run TestPolicyMatrixDigests -update >/dev/null
	echo "updated $manifest"
fi

params=$(sed -n 's/^# params: //p' "$manifest")
[ -n "$params" ] || { echo "smoke: no '# params:' header in $manifest" >&2; exit 1; }
policies=$(sed -n 's/^[0-9a-f]*  ras\.\(.*\)\.log$/\1/p' "$manifest")
[ -n "$policies" ] || { echo "smoke: no ras.<policy>.log digests in $manifest" >&2; exit 1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build"
go build -o "$tmp/bgpgen" ./cmd/bgpgen
go build -o "$tmp/coanalyze" ./cmd/coanalyze

echo "== policy matrix ($params)"
# shellcheck disable=SC2086
"$tmp/bgpgen" $params -policy-matrix -ras "$tmp/ras.log" -job "$tmp/job.log"

echo "== per-policy digests vs $manifest"
(cd "$tmp" && grep -v '^#' "$OLDPWD/$manifest" | sha256sum -c --quiet) ||
	{ echo "smoke: per-policy logs diverge from $manifest (run with -update if intentional)" >&2; exit 1; }

echo "== default policy is byte-identical to explicit -policy=intrepid"
# shellcheck disable=SC2086
"$tmp/bgpgen" $params -ras "$tmp/ras.default.log" -job "$tmp/job.default.log"
# shellcheck disable=SC2086
"$tmp/bgpgen" $params -policy intrepid -ras "$tmp/ras.explicit.log" -job "$tmp/job.explicit.log"
cmp "$tmp/ras.default.log" "$tmp/ras.explicit.log"
cmp "$tmp/job.default.log" "$tmp/job.explicit.log"

echo "== cross-policy comparison"
"$tmp/coanalyze" -ras "$tmp/ras.log" -job "$tmp/job.log" -policy-matrix >"$tmp/matrix.out"
for p in $policies; do
	grep -q "^$p " "$tmp/matrix.out" ||
		{ echo "smoke: comparison missing policy $p" >&2; cat "$tmp/matrix.out" >&2; exit 1; }
done
# Interruption outcomes must differ measurably on the shared fault
# stream; a single repeated value means the policies are not actually
# being exercised.
distinct=$(for p in $policies; do
	awk -v p="$p" '$1 == p { print $3 }' "$tmp/matrix.out"
done | sort -u | wc -l)
if [ "$distinct" -lt 2 ]; then
	echo "smoke: all policies report identical interruption counts" >&2
	cat "$tmp/matrix.out" >&2
	exit 1
fi

echo "policy smoke OK"
