package bgp_test

import (
	"testing"

	"repro/internal/bgp"
)

// FuzzParseLocation drives the CMCS location-code grammar with every
// kind shape plus malformed neighbors. Without -fuzz the seed corpus
// runs as ordinary regression cases; under -fuzz the engine mutates
// them. The properties checked hold for arbitrary input:
//
//   - ParseLocation either fails with a zero Location or yields one
//     that Valid() accepts;
//   - String() of a parsed location re-parses to the identical value
//     (the grammar is canonicalizing: "R23-M0-N+8-J09" parses but
//     renders as "R23-M0-N08-J09", which must parse back to the same
//     Location);
//   - derived indices stay inside the machine geometry.
func FuzzParseLocation(f *testing.F) {
	seeds := []string{
		// One of each LocationKind.
		"R23",
		"R23-M0",
		"R23-M0-S",
		"R23-M0-L2",
		"R23-M0-N08",
		"R23-M0-N08-J09",
		// Geometry extremes.
		"R00",
		"R47-M1-N15-J31",
		"R07-M1-L3",
		// Out-of-geometry but well-formed codes.
		"R40-M0", // row 4, col 0: valid; the mirror R48-M0 is not
		"R48-M0",
		"R50",
		"R23-M2",
		"R23-M0-L4",
		"R23-M0-N16",
		"R23-M0-N08-J32",
		// Truncated tails and malformed segments.
		"",
		"R",
		"R2",
		"R23-",
		"R23-M",
		"R23-M0-",
		"R23-M0-N",
		"R23-M0-N08-",
		"R23-M0-N08-J9",
		"R23-M0-S-J01",
		"R23-M0-L2-J01",
		"R23-M0-N+8-J09",
		"r23-m0",
		"Q23-M0",
		"R23_M0",
		"R23-M0-N08-J09-X",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		loc, err := bgp.ParseLocation(s)
		if err != nil {
			if loc != (bgp.Location{}) {
				t.Fatalf("ParseLocation(%q) errored but returned non-zero %+v", s, loc)
			}
			return
		}
		if !loc.Valid() {
			t.Fatalf("ParseLocation(%q) = %+v, which Valid() rejects", s, loc)
		}

		// Canonical render must re-parse to the identical Location and
		// be a fixed point of the round trip.
		out := loc.String()
		loc2, err := bgp.ParseLocation(out)
		if err != nil {
			t.Fatalf("re-parse of %q (String of %q) failed: %v", out, s, err)
		}
		if loc2 != loc {
			t.Fatalf("round trip of %q: parsed %+v, re-parsed %+v", s, loc, loc2)
		}
		if got := loc2.String(); got != out {
			t.Fatalf("String not canonical for %q: %q then %q", s, out, got)
		}

		// Derived indices stay inside the geometry.
		if ri := loc.RackIndex(); ri < 0 || ri >= bgp.NumRacks {
			t.Fatalf("RackIndex(%q) = %d out of range", s, ri)
		}
		if mp := loc.MidplaneIndex(); mp < -1 || mp >= bgp.NumMidplanes {
			t.Fatalf("MidplaneIndex(%q) = %d out of range", s, mp)
		}
		mps := loc.Midplanes()
		wantLen := 1
		if loc.Kind == bgp.KindRack {
			wantLen = 2
		}
		if len(mps) != wantLen {
			t.Fatalf("Midplanes(%q) = %v, want %d entries for kind %v", s, mps, wantLen, loc.Kind)
		}
		for _, mp := range mps {
			if mp < 0 || mp >= bgp.NumMidplanes {
				t.Fatalf("Midplanes(%q) contains out-of-range index %d", s, mp)
			}
		}
	})
}
