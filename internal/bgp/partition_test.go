package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionStringRoundTrip(t *testing.T) {
	cases := []struct {
		p    Partition
		want string
	}{
		{Partition{Start: 38, Size: 1}, "R23-M0"},
		{Partition{Start: 39, Size: 1}, "R23-M1"},
		{Partition{Start: 38, Size: 2}, "R23"},
		{Partition{Start: 16, Size: 4}, "R10-R11"},
		{Partition{Start: 0, Size: 80}, "R00-R47"},
		{Partition{Start: 1, Size: 2}, "R00-M1..R01-M0"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.p, got, c.want)
		}
		back, err := ParsePartition(c.want)
		if err != nil {
			t.Fatalf("ParsePartition(%q): %v", c.want, err)
		}
		if back != c.p {
			t.Errorf("ParsePartition(%q) = %+v, want %+v", c.want, back, c.p)
		}
	}
}

func TestPartitionRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := PartitionSizes[rng.Intn(len(PartitionSizes))]
		start := rng.Intn(NumMidplanes - size + 1)
		p := Partition{Start: start, Size: size}
		if !p.Valid() {
			return false
		}
		back, err := ParsePartition(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePartitionErrors(t *testing.T) {
	for _, s := range []string{"", "R23-M0-N08", "R24-R23", "R23-M0..R23-M0-S", "junk"} {
		if _, err := ParsePartition(s); err == nil {
			t.Errorf("ParsePartition(%q): want error", s)
		}
	}
}

func TestPartitionOverlapsContains(t *testing.T) {
	a := Partition{Start: 8, Size: 8}
	b := Partition{Start: 12, Size: 8}
	c := Partition{Start: 16, Size: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a/b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a/c should not overlap")
	}
	if !b.Overlaps(c) {
		t.Error("b/c should overlap")
	}
	if !a.Contains(8) || !a.Contains(15) || a.Contains(16) || a.Contains(7) {
		t.Error("Contains boundary wrong")
	}
	if n := a.Nodes(); n != 8*NodesPerMidplane {
		t.Errorf("Nodes() = %d", n)
	}
}

func TestPartitionOverlapSymmetryQuick(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		p := Partition{Start: int(s1) % 73, Size: 8}
		q := Partition{Start: int(s2) % 73, Size: 8}
		// Symmetry, and agreement with midplane-set intersection.
		set := map[int]bool{}
		for _, mp := range p.Midplanes() {
			set[mp] = true
		}
		inter := false
		for _, mp := range q.Midplanes() {
			if set[mp] {
				inter = true
			}
		}
		return p.Overlaps(q) == q.Overlaps(p) && p.Overlaps(q) == inter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMachineAllocateRelease(t *testing.T) {
	m := NewMachine()
	p, err := NewPartition(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(p); err != nil {
		t.Fatal(err)
	}
	if m.BusyCount() != 16 {
		t.Errorf("BusyCount = %d, want 16", m.BusyCount())
	}
	if err := m.Allocate(Partition{Start: 8, Size: 8}); err == nil {
		t.Error("overlapping Allocate succeeded")
	}
	q, _ := NewPartition(16, 16)
	if err := m.Allocate(q); err != nil {
		t.Errorf("disjoint Allocate failed: %v", err)
	}
	m.Release(p)
	if m.Busy(0) || !m.Busy(16) {
		t.Error("Release cleared wrong midplanes")
	}
}

func TestMachineDrain(t *testing.T) {
	m := NewMachine()
	m.Drain(3)
	if !m.Drained(3) {
		t.Fatal("Drained(3) = false")
	}
	if err := m.Allocate(Partition{Start: 0, Size: 4}); err == nil {
		t.Error("Allocate over drained midplane succeeded")
	}
	m.Undrain(3)
	if err := m.Allocate(Partition{Start: 0, Size: 4}); err != nil {
		t.Errorf("Allocate after Undrain: %v", err)
	}
}

func TestCandidatesAlignment(t *testing.T) {
	m := NewMachine()
	for _, size := range PartitionSizes {
		cands := m.Candidates(size)
		if len(cands) == 0 {
			t.Fatalf("no candidates for size %d on empty machine", size)
		}
		align := size
		if size == 48 || size == 80 {
			align = 16
		}
		for _, p := range cands {
			if p.Start%align != 0 {
				t.Errorf("size %d candidate start %d not %d-aligned", size, p.Start, align)
			}
			if !p.Valid() {
				t.Errorf("invalid candidate %+v", p)
			}
		}
	}
	if got := m.Candidates(3); got != nil {
		t.Errorf("Candidates(3) = %v, want nil", got)
	}
}

func TestFirstFitSkipsBusy(t *testing.T) {
	m := NewMachine()
	if err := m.Allocate(Partition{Start: 0, Size: 8}); err != nil {
		t.Fatal(err)
	}
	p, ok := m.FirstFit(8)
	if !ok || p.Start != 8 {
		t.Errorf("FirstFit(8) = %+v ok=%v, want start 8", p, ok)
	}
	// Fill the machine, then FirstFit must fail.
	for {
		q, ok := m.FirstFit(8)
		if !ok {
			break
		}
		if err := m.Allocate(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.FirstFit(1); ok {
		t.Error("FirstFit(1) succeeded on full machine")
	}
	if len(m.FreeMidplanes()) != 0 {
		t.Error("FreeMidplanes non-empty on full machine")
	}
}

func TestNextPartitionSize(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 9: 16, 17: 32, 33: 48, 49: 64, 65: 80, 81: 0}
	for in, want := range cases {
		if got := NextPartitionSize(in); got != want {
			t.Errorf("NextPartitionSize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSortPartitions(t *testing.T) {
	ps := []Partition{{Start: 4, Size: 8}, {Start: 0, Size: 2}, {Start: 0, Size: 1}}
	SortPartitions(ps)
	if ps[0] != (Partition{Start: 0, Size: 1}) || ps[1] != (Partition{Start: 0, Size: 2}) || ps[2] != (Partition{Start: 4, Size: 8}) {
		t.Errorf("SortPartitions wrong order: %v", ps)
	}
}
