package bgp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseLocationForms(t *testing.T) {
	cases := []struct {
		in   string
		kind LocationKind
		mp   int // expected MidplaneIndex, -1 for rack
	}{
		{"R00", KindRack, -1},
		{"R47", KindRack, -1},
		{"R23-M0", KindMidplane, (2*8 + 3) * 2},
		{"R23-M1", KindMidplane, (2*8+3)*2 + 1},
		{"R04-M0-S", KindServiceCard, (0*8 + 4) * 2},
		{"R04-M1-L3", KindLinkCard, (0*8+4)*2 + 1},
		{"R40-M0-N15", KindNodeCard, (4 * 8) * 2},
		{"R40-M0-N08-J31", KindComputeNode, (4 * 8) * 2},
	}
	for _, c := range cases {
		loc, err := ParseLocation(c.in)
		if err != nil {
			t.Fatalf("ParseLocation(%q): %v", c.in, err)
		}
		if loc.Kind != c.kind {
			t.Errorf("ParseLocation(%q).Kind = %v, want %v", c.in, loc.Kind, c.kind)
		}
		if got := loc.MidplaneIndex(); got != c.mp {
			t.Errorf("ParseLocation(%q).MidplaneIndex() = %d, want %d", c.in, got, c.mp)
		}
		if got := loc.String(); got != c.in {
			t.Errorf("round trip: %q -> %q", c.in, got)
		}
	}
}

func TestParseLocationErrors(t *testing.T) {
	bad := []string{
		"", "X23", "R2", "R234", "Rab",
		"R23-", "R23-M", "R23-M2", "R23-M0-", "R23-M0-X1",
		"R23-M0-N16", "R23-M0-L4", "R23-M0-N08-J32", "R23-M0-N08-K01",
		"R23-M0-S-J01", "R53-M0", "R28-M0", "R23-M0-N08-J09-X",
	}
	for _, s := range bad {
		if _, err := ParseLocation(s); err == nil {
			t.Errorf("ParseLocation(%q): want error, got nil", s)
		}
	}
}

func TestLocationRoundTripQuick(t *testing.T) {
	// Property: every constructed valid location round-trips through
	// String/ParseLocation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mp := rng.Intn(NumMidplanes)
		var loc Location
		switch rng.Intn(6) {
		case 0:
			loc = RackLocation(rng.Intn(Rows), rng.Intn(RacksPerRow))
		case 1:
			loc = MidplaneLocation(mp)
		case 2:
			loc = ServiceCardLocation(mp)
		case 3:
			loc = LinkCardLocation(mp, rng.Intn(LinkCardsPerMidplane))
		case 4:
			loc = NodeCardLocation(mp, rng.Intn(NodeCardsPerMidplane))
		default:
			loc = ComputeNodeLocation(mp, rng.Intn(NodeCardsPerMidplane), rng.Intn(NodesPerNodeCard))
		}
		if !loc.Valid() {
			return false
		}
		got, err := ParseLocation(loc.String())
		return err == nil && got == loc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidplaneIndexRoundTrip(t *testing.T) {
	for mp := 0; mp < NumMidplanes; mp++ {
		loc := MidplaneLocation(mp)
		if !loc.Valid() {
			t.Fatalf("MidplaneLocation(%d) invalid: %+v", mp, loc)
		}
		if got := loc.MidplaneIndex(); got != mp {
			t.Fatalf("MidplaneLocation(%d).MidplaneIndex() = %d", mp, got)
		}
	}
}

func TestLocationMidplanes(t *testing.T) {
	r := RackLocation(1, 2)
	mps := r.Midplanes()
	if len(mps) != 2 || mps[0] != 20 || mps[1] != 21 {
		t.Errorf("rack Midplanes() = %v, want [20 21]", mps)
	}
	n := ComputeNodeLocation(33, 4, 5)
	mps = n.Midplanes()
	if len(mps) != 1 || mps[0] != 33 {
		t.Errorf("node Midplanes() = %v, want [33]", mps)
	}
}

func TestGeometryConstants(t *testing.T) {
	if NumMidplanes != 80 {
		t.Errorf("NumMidplanes = %d, want 80 (Intrepid)", NumMidplanes)
	}
	if NumNodes != 40960 {
		t.Errorf("NumNodes = %d, want 40960 (Intrepid)", NumNodes)
	}
	if NumNodes*CoresPerNode != 163840 {
		t.Errorf("cores = %d, want 163840", NumNodes*CoresPerNode)
	}
}

func TestLocationKindString(t *testing.T) {
	for k, want := range map[LocationKind]string{
		KindInvalid: "invalid", KindRack: "rack", KindMidplane: "midplane",
		KindNodeCard: "nodecard", KindComputeNode: "computenode",
		KindServiceCard: "servicecard", KindLinkCard: "linkcard",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestMustParseLocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseLocation did not panic on bad input")
		}
	}()
	MustParseLocation("bogus")
}

func TestParseLocationRejectsLowercase(t *testing.T) {
	if _, err := ParseLocation(strings.ToLower("R23-M0")); err == nil {
		t.Error("lowercase location accepted")
	}
}
