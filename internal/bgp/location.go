// Package bgp models the physical geometry of a Blue Gene/P machine:
// racks, midplanes, node cards, compute nodes, service and link cards,
// and the location-code grammar used by the Core Monitoring and Control
// System (CMCS) in RAS records.
//
// The default geometry mirrors Intrepid, the 40-rack Blue Gene/P system
// at Argonne National Laboratory: five rows (R0x..R4x) of eight racks,
// two midplanes per rack, 512 quad-core compute nodes per midplane
// (40,960 nodes, 163,840 cores), plus per-midplane service hardware.
package bgp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// LocationKind identifies which level of the hardware hierarchy a
// location code names.
type LocationKind int

const (
	// KindInvalid is the zero value; it never appears in a valid Location.
	KindInvalid LocationKind = iota
	// KindRack names a whole rack, e.g. "R23".
	KindRack
	// KindMidplane names one midplane of a rack, e.g. "R23-M0".
	KindMidplane
	// KindNodeCard names a node card within a midplane, e.g. "R23-M0-N08".
	KindNodeCard
	// KindComputeNode names a compute node on a node card,
	// e.g. "R23-M0-N08-J09".
	KindComputeNode
	// KindServiceCard names the service card of a midplane, e.g. "R23-M0-S".
	KindServiceCard
	// KindLinkCard names a link card of a midplane, e.g. "R23-M0-L2".
	KindLinkCard
)

// String returns a human-readable name for the kind.
func (k LocationKind) String() string {
	switch k {
	case KindRack:
		return "rack"
	case KindMidplane:
		return "midplane"
	case KindNodeCard:
		return "nodecard"
	case KindComputeNode:
		return "computenode"
	case KindServiceCard:
		return "servicecard"
	case KindLinkCard:
		return "linkcard"
	default:
		return "invalid"
	}
}

// Geometry constants for an Intrepid-like installation.
const (
	// Rows is the number of rack rows (R0..R4).
	Rows = 5
	// RacksPerRow is the number of racks in each row.
	RacksPerRow = 8
	// NumRacks is the total rack count.
	NumRacks = Rows * RacksPerRow
	// MidplanesPerRack is fixed by the Blue Gene/P packaging.
	MidplanesPerRack = 2
	// NumMidplanes is the total midplane count (80 on Intrepid).
	NumMidplanes = NumRacks * MidplanesPerRack
	// NodeCardsPerMidplane is fixed by the Blue Gene/P packaging.
	NodeCardsPerMidplane = 16
	// NodesPerNodeCard is fixed by the Blue Gene/P packaging.
	NodesPerNodeCard = 32
	// NodesPerMidplane is 512 on Blue Gene/P.
	NodesPerMidplane = NodeCardsPerMidplane * NodesPerNodeCard
	// NumNodes is the total compute-node count (40,960 on Intrepid).
	NumNodes = NumMidplanes * NodesPerMidplane
	// CoresPerNode is 4 (quad-core PowerPC 450).
	CoresPerNode = 4
	// LinkCardsPerMidplane is the number of link cards per midplane.
	LinkCardsPerMidplane = 4
	// ComputeNodesPerIONode is the compute-to-I/O node ratio on Intrepid.
	ComputeNodesPerIONode = 64
)

// Location is a parsed Blue Gene/P location code. The zero value is
// invalid. Fields below the location's kind are -1; for example a
// midplane location has Node == -1 and Card == -1.
type Location struct {
	// Kind states how deep in the hierarchy the code reaches.
	Kind LocationKind
	// Row is the rack row, 0..Rows-1.
	Row int
	// Col is the rack column within the row, 0..RacksPerRow-1.
	Col int
	// Mid is the midplane within the rack (0 or 1), or -1 for
	// rack-level locations.
	Mid int
	// Card is the node-card or link-card index, or -1.
	Card int
	// Node is the compute-node (J) index on its node card, or -1.
	Node int
}

// ErrBadLocation reports an unparseable location code.
var ErrBadLocation = errors.New("bgp: bad location code")

// RackLocation returns a rack-level location.
func RackLocation(row, col int) Location {
	return Location{Kind: KindRack, Row: row, Col: col, Mid: -1, Card: -1, Node: -1}
}

// MidplaneLocation returns a midplane-level location for the global
// midplane index mp (0..NumMidplanes-1).
func MidplaneLocation(mp int) Location {
	rack := mp / MidplanesPerRack
	return Location{
		Kind: KindMidplane,
		Row:  rack / RacksPerRow,
		Col:  rack % RacksPerRow,
		Mid:  mp % MidplanesPerRack,
		Card: -1,
		Node: -1,
	}
}

// NodeCardLocation returns a node-card location inside midplane mp.
func NodeCardLocation(mp, card int) Location {
	l := MidplaneLocation(mp)
	l.Kind = KindNodeCard
	l.Card = card
	return l
}

// ComputeNodeLocation returns a compute-node location inside midplane mp.
func ComputeNodeLocation(mp, card, node int) Location {
	l := NodeCardLocation(mp, card)
	l.Kind = KindComputeNode
	l.Node = node
	return l
}

// ServiceCardLocation returns the service-card location of midplane mp.
func ServiceCardLocation(mp int) Location {
	l := MidplaneLocation(mp)
	l.Kind = KindServiceCard
	return l
}

// LinkCardLocation returns link card `card` (0..3) of midplane mp.
func LinkCardLocation(mp, card int) Location {
	l := MidplaneLocation(mp)
	l.Kind = KindLinkCard
	l.Card = card
	return l
}

// Valid reports whether the location's fields are within the machine
// geometry for its kind.
func (l Location) Valid() bool {
	if l.Row < 0 || l.Row >= Rows || l.Col < 0 || l.Col >= RacksPerRow {
		return false
	}
	switch l.Kind {
	case KindRack:
		return l.Mid == -1 && l.Card == -1 && l.Node == -1
	case KindMidplane:
		return l.Mid >= 0 && l.Mid < MidplanesPerRack && l.Card == -1 && l.Node == -1
	case KindServiceCard:
		return l.Mid >= 0 && l.Mid < MidplanesPerRack && l.Card == -1 && l.Node == -1
	case KindNodeCard:
		return l.Mid >= 0 && l.Mid < MidplanesPerRack &&
			l.Card >= 0 && l.Card < NodeCardsPerMidplane && l.Node == -1
	case KindLinkCard:
		return l.Mid >= 0 && l.Mid < MidplanesPerRack &&
			l.Card >= 0 && l.Card < LinkCardsPerMidplane && l.Node == -1
	case KindComputeNode:
		return l.Mid >= 0 && l.Mid < MidplanesPerRack &&
			l.Card >= 0 && l.Card < NodeCardsPerMidplane &&
			l.Node >= 0 && l.Node < NodesPerNodeCard
	default:
		return false
	}
}

// RackIndex returns the global rack index, 0..NumRacks-1.
func (l Location) RackIndex() int { return l.Row*RacksPerRow + l.Col }

// MidplaneIndex returns the global midplane index 0..NumMidplanes-1, or
// -1 for rack-level locations (a rack spans two midplanes).
func (l Location) MidplaneIndex() int {
	if l.Mid < 0 {
		return -1
	}
	return l.RackIndex()*MidplanesPerRack + l.Mid
}

// Midplanes returns the global midplane indices the location touches.
// A rack-level location touches both of its midplanes; every other kind
// touches exactly one.
func (l Location) Midplanes() []int {
	if l.Kind == KindRack {
		base := l.RackIndex() * MidplanesPerRack
		return []int{base, base + 1}
	}
	if mp := l.MidplaneIndex(); mp >= 0 {
		return []int{mp}
	}
	return nil
}

// String renders the canonical CMCS location code, e.g. "R23-M0-N08-J09".
func (l Location) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "R%d%d", l.Row, l.Col)
	switch l.Kind {
	case KindRack:
		return b.String()
	case KindMidplane:
		fmt.Fprintf(&b, "-M%d", l.Mid)
	case KindServiceCard:
		fmt.Fprintf(&b, "-M%d-S", l.Mid)
	case KindLinkCard:
		fmt.Fprintf(&b, "-M%d-L%d", l.Mid, l.Card)
	case KindNodeCard:
		fmt.Fprintf(&b, "-M%d-N%02d", l.Mid, l.Card)
	case KindComputeNode:
		fmt.Fprintf(&b, "-M%d-N%02d-J%02d", l.Mid, l.Card, l.Node)
	default:
		return "R??"
	}
	return b.String()
}

// ParseLocation parses a CMCS location code. Accepted forms:
//
//	R23               rack
//	R23-M0            midplane
//	R23-M0-S          service card
//	R23-M0-L2         link card
//	R23-M0-N08        node card
//	R23-M0-N08-J09    compute node
func ParseLocation(s string) (Location, error) {
	parts := strings.Split(s, "-")
	if len(parts) == 0 || len(parts) > 4 {
		return Location{}, fmt.Errorf("%w: %q", ErrBadLocation, s)
	}
	loc := Location{Mid: -1, Card: -1, Node: -1}

	// Rack: "Rrc" with two digits.
	r := parts[0]
	if len(r) != 3 || r[0] != 'R' {
		return Location{}, fmt.Errorf("%w: %q: want rack like R23", ErrBadLocation, s)
	}
	row, err1 := strconv.Atoi(r[1:2])
	col, err2 := strconv.Atoi(r[2:3])
	if err1 != nil || err2 != nil {
		return Location{}, fmt.Errorf("%w: %q: non-numeric rack", ErrBadLocation, s)
	}
	loc.Row, loc.Col = row, col
	loc.Kind = KindRack
	if len(parts) == 1 {
		return checkParsed(loc, s)
	}

	// Midplane: "Mx".
	m := parts[1]
	if len(m) != 2 || m[0] != 'M' {
		return Location{}, fmt.Errorf("%w: %q: want midplane like M0", ErrBadLocation, s)
	}
	mid, err := strconv.Atoi(m[1:])
	if err != nil {
		return Location{}, fmt.Errorf("%w: %q: non-numeric midplane", ErrBadLocation, s)
	}
	loc.Mid = mid
	loc.Kind = KindMidplane
	if len(parts) == 2 {
		return checkParsed(loc, s)
	}

	// Third segment: S, Lx, or Nxx.
	t := parts[2]
	switch {
	case t == "S":
		loc.Kind = KindServiceCard
		if len(parts) != 3 {
			return Location{}, fmt.Errorf("%w: %q: trailing segment after service card", ErrBadLocation, s)
		}
		return checkParsed(loc, s)
	case len(t) == 2 && t[0] == 'L':
		card, err := strconv.Atoi(t[1:])
		if err != nil {
			return Location{}, fmt.Errorf("%w: %q: non-numeric link card", ErrBadLocation, s)
		}
		loc.Kind = KindLinkCard
		loc.Card = card
		if len(parts) != 3 {
			return Location{}, fmt.Errorf("%w: %q: trailing segment after link card", ErrBadLocation, s)
		}
		return checkParsed(loc, s)
	case len(t) == 3 && t[0] == 'N':
		card, err := strconv.Atoi(t[1:])
		if err != nil {
			return Location{}, fmt.Errorf("%w: %q: non-numeric node card", ErrBadLocation, s)
		}
		loc.Kind = KindNodeCard
		loc.Card = card
	default:
		return Location{}, fmt.Errorf("%w: %q: unknown segment %q", ErrBadLocation, s, t)
	}
	if len(parts) == 3 {
		return checkParsed(loc, s)
	}

	// Fourth segment: "Jxx" compute node.
	j := parts[3]
	if len(j) != 3 || j[0] != 'J' {
		return Location{}, fmt.Errorf("%w: %q: want compute node like J09", ErrBadLocation, s)
	}
	node, err := strconv.Atoi(j[1:])
	if err != nil {
		return Location{}, fmt.Errorf("%w: %q: non-numeric compute node", ErrBadLocation, s)
	}
	loc.Kind = KindComputeNode
	loc.Node = node
	return checkParsed(loc, s)
}

func checkParsed(l Location, s string) (Location, error) {
	if !l.Valid() {
		return Location{}, fmt.Errorf("%w: %q: out of machine geometry", ErrBadLocation, s)
	}
	return l, nil
}

// MustParseLocation is ParseLocation that panics on error; for tests
// and literals.
func MustParseLocation(s string) Location {
	l, err := ParseLocation(s)
	if err != nil {
		panic(err)
	}
	return l
}
