package bgp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// PartitionSizes lists the job sizes (in midplanes) the Intrepid control
// system supports; the midplane is the minimum schedulable partition.
var PartitionSizes = []int{1, 2, 4, 8, 16, 32, 48, 64, 80}

// ValidPartitionSize reports whether n midplanes is an allocatable
// partition size.
func ValidPartitionSize(n int) bool {
	for _, s := range PartitionSizes {
		if s == n {
			return true
		}
	}
	return false
}

// NextPartitionSize returns the smallest allocatable partition size that
// is >= n midplanes, or 0 if n exceeds the machine.
func NextPartitionSize(n int) int {
	for _, s := range PartitionSizes {
		if s >= n {
			return s
		}
	}
	return 0
}

// Partition is a contiguous block of midplanes allocated to one job,
// identified by the global index of its first midplane and its size.
// Contiguity in global midplane index is a simplification of the real
// torus-cabling constraints; it preserves the property the paper relies
// on: wide jobs occupy many specific midplanes at once.
type Partition struct {
	// Start is the global index of the first midplane.
	Start int
	// Size is the number of midplanes, one of PartitionSizes.
	Size int
}

// ErrBadPartition reports an invalid partition specification.
var ErrBadPartition = errors.New("bgp: bad partition")

// NewPartition validates and returns a partition.
func NewPartition(start, size int) (Partition, error) {
	p := Partition{Start: start, Size: size}
	if !p.Valid() {
		return Partition{}, fmt.Errorf("%w: start=%d size=%d", ErrBadPartition, start, size)
	}
	return p, nil
}

// Valid reports whether the partition fits the machine and has an
// allocatable size.
func (p Partition) Valid() bool {
	return p.Start >= 0 && ValidPartitionSize(p.Size) && p.Start+p.Size <= NumMidplanes
}

// End returns the exclusive upper bound of the partition's midplane range.
func (p Partition) End() int { return p.Start + p.Size }

// Contains reports whether global midplane mp is inside the partition.
func (p Partition) Contains(mp int) bool { return mp >= p.Start && mp < p.End() }

// Overlaps reports whether two partitions share any midplane.
func (p Partition) Overlaps(q Partition) bool {
	return p.Start < q.End() && q.Start < p.End()
}

// Midplanes returns the global midplane indices covered by the partition.
func (p Partition) Midplanes() []int {
	out := make([]int, p.Size)
	for i := range out {
		out[i] = p.Start + i
	}
	return out
}

// Nodes returns the number of compute nodes in the partition.
func (p Partition) Nodes() int { return p.Size * NodesPerMidplane }

// String renders the partition as a rack-midplane range, matching the
// style of the Cobalt job log (e.g. "R23-M0" for one midplane,
// "R10-R11" for a multi-rack block, "R23-M0..R24-M1" for general
// midplane ranges).
func (p Partition) String() string {
	first := MidplaneLocation(p.Start)
	last := MidplaneLocation(p.End() - 1)
	if p.Size == 1 {
		return first.String()
	}
	// Whole-rack-aligned blocks print as rack ranges, like the
	// Intrepid job log ("R10-R11").
	if p.Start%MidplanesPerRack == 0 && p.Size%MidplanesPerRack == 0 {
		fr := RackLocation(first.Row, first.Col)
		lr := RackLocation(last.Row, last.Col)
		if fr == lr {
			return fr.String()
		}
		return fr.String() + "-" + lr.String()
	}
	return first.String() + ".." + last.String()
}

// ParsePartition parses the formats emitted by Partition.String.
func ParsePartition(s string) (Partition, error) {
	if i := strings.Index(s, ".."); i >= 0 {
		first, err := ParseLocation(s[:i])
		if err != nil {
			return Partition{}, err
		}
		last, err := ParseLocation(s[i+2:])
		if err != nil {
			return Partition{}, err
		}
		if first.Kind != KindMidplane || last.Kind != KindMidplane {
			return Partition{}, fmt.Errorf("%w: %q: range endpoints must be midplanes", ErrBadPartition, s)
		}
		start := first.MidplaneIndex()
		size := last.MidplaneIndex() - start + 1
		return NewPartition(start, size)
	}
	// Try a single location first (rack or midplane).
	if loc, err := ParseLocation(s); err == nil {
		switch loc.Kind {
		case KindMidplane:
			return NewPartition(loc.MidplaneIndex(), 1)
		case KindRack:
			return NewPartition(loc.RackIndex()*MidplanesPerRack, MidplanesPerRack)
		default:
			return Partition{}, fmt.Errorf("%w: %q: not a schedulable unit", ErrBadPartition, s)
		}
	}
	// Rack range "Rab-Rcd".
	parts := strings.Split(s, "-")
	if len(parts) == 2 {
		fr, err1 := ParseLocation(parts[0])
		lr, err2 := ParseLocation(parts[1])
		if err1 == nil && err2 == nil && fr.Kind == KindRack && lr.Kind == KindRack {
			start := fr.RackIndex() * MidplanesPerRack
			end := (lr.RackIndex() + 1) * MidplanesPerRack
			if end <= start {
				return Partition{}, fmt.Errorf("%w: %q: reversed rack range", ErrBadPartition, s)
			}
			return NewPartition(start, end-start)
		}
	}
	return Partition{}, fmt.Errorf("%w: %q", ErrBadPartition, s)
}

// Machine tracks which midplanes are currently allocated, supporting
// first-fit placement queries. It is not safe for concurrent use; the
// scheduler serializes access.
type Machine struct {
	busy [NumMidplanes]bool
	// drained marks midplanes administratively removed from service.
	drained [NumMidplanes]bool
}

// NewMachine returns an empty machine.
func NewMachine() *Machine { return &Machine{} }

// Free reports whether every midplane of p is idle and in service.
func (m *Machine) Free(p Partition) bool {
	for mp := p.Start; mp < p.End(); mp++ {
		if m.busy[mp] || m.drained[mp] {
			return false
		}
	}
	return true
}

// Allocate marks the partition busy. It returns an error if any
// midplane is already busy or drained.
func (m *Machine) Allocate(p Partition) error {
	if !p.Valid() {
		return fmt.Errorf("%w: %+v", ErrBadPartition, p)
	}
	if !m.Free(p) {
		return fmt.Errorf("bgp: partition %s not free", p)
	}
	for mp := p.Start; mp < p.End(); mp++ {
		m.busy[mp] = true
	}
	return nil
}

// Release marks the partition idle.
func (m *Machine) Release(p Partition) {
	for mp := p.Start; mp < p.End(); mp++ {
		m.busy[mp] = false
	}
}

// Drain removes a midplane from service (used for maintenance windows).
func (m *Machine) Drain(mp int) { m.drained[mp] = true }

// Undrain returns a midplane to service.
func (m *Machine) Undrain(mp int) { m.drained[mp] = false }

// Drained reports whether midplane mp is out of service.
func (m *Machine) Drained(mp int) bool { return m.drained[mp] }

// Busy reports whether midplane mp is allocated.
func (m *Machine) Busy(mp int) bool { return m.busy[mp] }

// BusyCount returns the number of allocated midplanes.
func (m *Machine) BusyCount() int {
	n := 0
	for _, b := range m.busy {
		if b {
			n++
		}
	}
	return n
}

// Candidates returns every aligned free partition of the given size, in
// ascending start order. Partitions are aligned to their size (or to 16
// for the irregular 48- and 80-midplane sizes) which approximates the
// torus-wiring constraints of the real machine.
func (m *Machine) Candidates(size int) []Partition {
	if !ValidPartitionSize(size) {
		return nil
	}
	align := size
	if size == 48 || size == 80 {
		align = 16
	}
	var out []Partition
	for start := 0; start+size <= NumMidplanes; start += align {
		p := Partition{Start: start, Size: size}
		if m.Free(p) {
			out = append(out, p)
		}
	}
	return out
}

// FirstFit returns the lowest-start free partition of the given size.
func (m *Machine) FirstFit(size int) (Partition, bool) {
	c := m.Candidates(size)
	if len(c) == 0 {
		return Partition{}, false
	}
	return c[0], true
}

// FreeMidplanes returns the indices of all idle, in-service midplanes.
func (m *Machine) FreeMidplanes() []int {
	var out []int
	for mp := 0; mp < NumMidplanes; mp++ {
		if !m.busy[mp] && !m.drained[mp] {
			out = append(out, mp)
		}
	}
	return out
}

// SortPartitions orders partitions by start then size; handy for
// deterministic iteration in tests and reports.
func SortPartitions(ps []Partition) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Size < ps[j].Size
	})
}
