// Package parallel is the execution layer for the analysis fan-outs:
// a bounded worker pool with context cancellation, index-ordered error
// aggregation, and a deterministic order-preserving result merge.
//
// The determinism contract every helper honors: for a fixed input, the
// returned values (results, error text, ordering) are byte-identical
// regardless of the worker count or goroutine scheduling. Results land
// in the slot of the index that produced them, and errors are joined in
// index order, so a caller that folds the output sequentially observes
// exactly what a single-threaded loop would have produced.
//
// Worker-count convention, shared by every Parallelism knob in this
// module: 0 (or negative) means GOMAXPROCS, 1 means a sequential
// in-place fallback with no goroutines, and any other value bounds the
// pool at that many workers.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob to an effective worker count:
// p <= 0 selects GOMAXPROCS, anything else selects p itself.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. All indices run even when some fail; the per-index errors
// are joined in index order, so the returned error is deterministic. A
// canceled context stops unclaimed indices from starting and its error
// is joined after the per-index errors.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || ctx.Err() != nil {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	joined := make([]error, 0, 2)
	for _, err := range errs {
		if err != nil {
			joined = append(joined, err)
		}
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, err)
	}
	return errors.Join(joined...)
}

// Map runs fn(i) for every i in [0, n) under ForEach's pool and merges
// the results order-preservingly: out[i] is fn(i)'s value, regardless
// of which worker computed it or when it finished. On error the partial
// results are still returned (failed slots hold the zero value).
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Do runs a fixed set of heterogeneous tasks under ForEach's pool —
// the concurrent-stage runner for analysis phases that compute
// independent artifacts. Each task must write only its own outputs.
func Do(ctx context.Context, workers int, fns ...func() error) error {
	return ForEach(ctx, workers, len(fns), func(i int) error { return fns[i]() })
}

// Chunks splits the index range [0, n) into at most Workers(workers)
// contiguous [lo, hi) spans of near-equal length, for shard-per-worker
// algorithms that merge partial aggregates afterwards.
func Chunks(workers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for g := 0; g < w; g++ {
		lo := g * n / w
		hi := (g + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
