package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 7, 64} {
		if got := Workers(p); got != p {
			t.Errorf("Workers(%d) = %d", p, got)
		}
	}
}

func TestForEachRunsAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		var hits [257]atomic.Int32
		if err := ForEach(context.Background(), w, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, n)
			}
		}
	}
}

func TestForEachErrorOrderDeterministic(t *testing.T) {
	// Errors must come back joined in index order no matter how the
	// scheduler interleaves the workers.
	want := "boom 3\nboom 11\nboom 200"
	for _, w := range []int{1, 3, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), w, 256, func(i int) error {
				switch i {
				case 3, 11, 200:
					return fmt.Errorf("boom %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != want {
				t.Fatalf("workers=%d: error %q, want %q", w, err, want)
			}
		}
	}
}

func TestMapOrderPreserving(t *testing.T) {
	for _, w := range []int{1, 2, 5, 32} {
		got, err := Map(context.Background(), w, 1000, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	got, err := Map(context.Background(), 4, 8, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("no five")
		}
		return i + 1, nil
	})
	if err == nil || !strings.Contains(err.Error(), "no five") {
		t.Fatalf("error = %v, want to contain %q", err, "no five")
	}
	if len(got) != 8 || got[5] != 0 || got[0] != 1 || got[7] != 8 {
		t.Fatalf("partial results wrong: %v", got)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100000 {
		t.Fatalf("cancellation did not stop the pool (ran %d)", n)
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ran := make([]int, 1)
	if err := ForEach(context.Background(), 4, 1, func(i int) error { ran[i]++; return nil }); err != nil || ran[0] != 1 {
		t.Fatalf("n=1: err=%v ran=%d", err, ran[0])
	}
}

func TestDo(t *testing.T) {
	var a, b, c int
	err := Do(context.Background(), 3,
		func() error { a = 1; return nil },
		func() error { b = 2; return errors.New("mid failed") },
		func() error { c = 3; return nil },
	)
	if err == nil || err.Error() != "mid failed" {
		t.Fatalf("error = %v", err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("tasks skipped: %d %d %d", a, b, c)
	}
}

func TestChunksCoverRange(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 5, 80, 1000} {
			chunks := Chunks(w, n)
			covered := 0
			prev := 0
			for _, c := range chunks {
				if c[0] != prev || c[1] <= c[0] {
					t.Fatalf("w=%d n=%d: bad chunk %v after %d", w, n, c, prev)
				}
				covered += c[1] - c[0]
				prev = c[1]
			}
			if covered != n {
				t.Fatalf("w=%d n=%d: covered %d", w, n, covered)
			}
			if n > 0 && len(chunks) > Workers(w) {
				t.Fatalf("w=%d n=%d: %d chunks", w, n, len(chunks))
			}
		}
	}
}
