package simulate

import (
	"testing"

	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestRunSmallCampaign(t *testing.T) {
	camp, err := Run(Config{Seed: 1, Days: 10, NoisePerFatal: 1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.RAS.Len() == 0 || camp.Jobs.Len() == 0 {
		t.Fatal("empty campaign")
	}
	if camp.Catalog.Len() != 82 {
		t.Errorf("catalog size %d", camp.Catalog.Len())
	}
	if len(camp.Result.Truth.Faults) == 0 {
		t.Error("no ground-truth faults")
	}
	// RAS stream contains FATAL and non-FATAL records.
	bySev := camp.RAS.BySeverity()
	if bySev[raslog.SevFatal] == 0 || bySev[raslog.SevInfo] == 0 {
		t.Errorf("severity mix: %v", bySev)
	}
	// Every interrupted job in the oracle exists in the job log.
	ids := map[int64]bool{}
	for _, j := range camp.Jobs.All() {
		ids[j.ID] = true
	}
	for _, id := range camp.Result.Truth.InterruptedJobs() {
		if !ids[id] {
			t.Fatalf("oracle references unknown job %d", id)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	wspec := workload.DefaultSpec(1, 1)
	wspec.JobsPerDay = 50
	scfg := sched.DefaultConfig(2)
	scfg.ResubmitProb = 0
	model := faultgen.DefaultModel(errcat.Intrepid())
	model.BaseRate *= 3
	camp, err := Run(Config{
		Seed: 1, Days: 7, NoisePerFatal: 0.5,
		Workload: &wspec, Sched: &scfg, Model: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reduced rate must show in the job log.
	if n := camp.Jobs.Len(); n < 250 || n > 450 {
		t.Errorf("jobs = %d, want ~350 (50/day x 7)", n)
	}
	// With ResubmitProb 0, no outcome is a resubmission.
	for id, o := range camp.Result.Truth.Outcomes {
		if o.ResubmitOf != 0 {
			t.Fatalf("job %d is a resubmission despite ResubmitProb 0", id)
		}
	}
}

func TestNoiseKnob(t *testing.T) {
	quiet, err := Run(Config{Seed: 4, Days: 7, NoisePerFatal: 0})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(Config{Seed: 4, Days: 7, NoisePerFatal: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs := quiet.RAS.BySeverity()
	if qs[raslog.SevInfo] != 0 {
		t.Errorf("NoisePerFatal 0 still emitted %d INFO records", qs[raslog.SevInfo])
	}
	if noisy.RAS.Len() <= quiet.RAS.Len() {
		t.Error("noise knob had no effect")
	}
	// The FATAL stream is identical across noise settings.
	if len(quiet.RAS.Fatal()) != len(noisy.RAS.Fatal()) {
		t.Errorf("fatal volume changed with noise: %d vs %d",
			len(quiet.RAS.Fatal()), len(noisy.RAS.Fatal()))
	}
}
