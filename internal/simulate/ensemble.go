package simulate

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// RunEnsemble simulates one campaign per seed, fanning the runs out
// over the worker pool (workers: 0 = GOMAXPROCS, 1 = sequential). The
// returned campaigns are in seed order regardless of which worker
// finished first, and campaign i is byte-identical to Run with
// cfg.Seed = seeds[i] — every substrate draws only from its own
// seeded generator, so concurrent campaigns never share state. Errors
// are reported in seed order.
func RunEnsemble(cfg Config, seeds []int64, workers int) ([]*Campaign, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("simulate: empty seed list")
	}
	return parallel.Map(context.Background(), workers, len(seeds), func(i int) (*Campaign, error) {
		c := cfg
		c.Seed = seeds[i]
		camp, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		return camp, nil
	})
}

// SeedRange returns n consecutive seeds starting at first — the
// conventional seed set of an ensemble run.
func SeedRange(first int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}
