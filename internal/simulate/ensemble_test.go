package simulate

import (
	"reflect"
	"testing"
)

func tinyConfig(seed int64) Config {
	return Config{Seed: seed, Days: 5, NoisePerFatal: 1}
}

func TestRunEnsembleMatchesIndividualRuns(t *testing.T) {
	seeds := SeedRange(1, 3)
	camps, err := RunEnsemble(tinyConfig(0), seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(camps) != len(seeds) {
		t.Fatalf("got %d campaigns, want %d", len(camps), len(seeds))
	}
	for i, seed := range seeds {
		solo, err := Run(tinyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(camps[i].RAS.All(), solo.RAS.All()) {
			t.Errorf("seed %d: ensemble RAS stream differs from solo run", seed)
		}
		if !reflect.DeepEqual(camps[i].Jobs.All(), solo.Jobs.All()) {
			t.Errorf("seed %d: ensemble job log differs from solo run", seed)
		}
	}
}

func TestRunEnsembleSequentialEqualsParallel(t *testing.T) {
	seeds := SeedRange(5, 4)
	seq, err := RunEnsemble(tinyConfig(0), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunEnsemble(tinyConfig(0), seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if !reflect.DeepEqual(seq[i].RAS.All(), par[i].RAS.All()) {
			t.Errorf("seed %d: parallel ensemble diverges", seeds[i])
		}
	}
}

func TestRunEnsembleErrors(t *testing.T) {
	if _, err := RunEnsemble(tinyConfig(0), nil, 2); err == nil {
		t.Error("empty seed list: want error")
	}
	bad := Config{Days: 0}
	if _, err := RunEnsemble(bad, SeedRange(1, 2), 2); err == nil {
		t.Error("bad config: want error")
	}
}

func TestSeedRange(t *testing.T) {
	got := SeedRange(10, 3)
	want := []int64{10, 11, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SeedRange = %v, want %v", got, want)
	}
}
