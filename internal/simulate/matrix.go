package simulate

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/workload"
)

// matrixSalt decorrelates the pre-drawn matrix candidate stream from
// the per-campaign engine RNG (which is seeded with cfg.Seed itself).
const matrixSalt = 0x6d617472 // "matr"

// PolicyRun pairs one registered policy with its campaign from a
// matrix run.
type PolicyRun struct {
	// Policy is the sched registry name.
	Policy string
	// Campaign is the full simulated campaign under that policy.
	Campaign *Campaign
}

// MatrixCandidates pre-draws the shared ground-truth fault-candidate
// stream a policy matrix replays: one stream per (seed, model,
// horizon), derived from cfg.Seed via matrixSalt so it does not alias
// the engine's own draw sequence.
func MatrixCandidates(cfg Config) ([]faultgen.Candidate, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("simulate: non-positive days %d", cfg.Days)
	}
	model := faultgen.DefaultModel(errcat.Intrepid())
	if cfg.Model != nil {
		model = cfg.Model
	}
	wspec := workload.DefaultSpec(cfg.Seed, 1)
	if cfg.Workload != nil {
		wspec = *cfg.Workload
	}
	start := wspec.Start
	end := start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	rng := rand.New(rand.NewSource(cfg.Seed ^ matrixSalt))
	return model.Candidates(rng, start, end), nil
}

// RunMatrix simulates one campaign per registered policy — every
// policy fed the identical workload and the identical pre-drawn
// ground-truth fault-candidate stream — fanning the runs out over the
// worker pool (workers: 0 = GOMAXPROCS, 1 = sequential). Results are
// in sorted policy-name order regardless of which worker finished
// first, and each campaign is byte-identical whether the matrix runs
// sequentially or in parallel: every campaign draws only from its own
// seeded generators, and the shared candidate slice is read-only.
//
// Note the matrix intentionally runs every policy — the default
// included — in replay mode, so even the intrepid column differs from
// a solo Run (which draws its candidates live); the solo path is the
// byte-identical golden one.
func RunMatrix(cfg Config, workers int) ([]PolicyRun, error) {
	cands, err := MatrixCandidates(cfg)
	if err != nil {
		return nil, err
	}
	names := sched.PolicyNames()
	return parallel.Map(context.Background(), workers, len(names), func(i int) (PolicyRun, error) {
		c := cfg
		scfg := sched.DefaultConfig(cfg.Seed)
		if cfg.Sched != nil {
			scfg = *cfg.Sched
		}
		scfg.Policy = names[i]
		scfg.Candidates = cands
		c.Sched = &scfg
		c.Policy = ""
		camp, err := Run(c)
		if err != nil {
			return PolicyRun{}, fmt.Errorf("policy %s: %w", names[i], err)
		}
		return PolicyRun{Policy: names[i], Campaign: camp}, nil
	})
}
