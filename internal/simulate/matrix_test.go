package simulate

import (
	"testing"

	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/sched"
)

// matrixConfig is a short, fault-rich campaign for matrix tests.
func matrixConfig(seed int64) Config {
	model := faultgen.DefaultModel(errcat.Intrepid())
	model.BaseRate *= 6
	return Config{Seed: seed, Days: 7, NoisePerFatal: 1, Model: model}
}

func TestRunMatrixCoversRegistry(t *testing.T) {
	runs, err := RunMatrix(matrixConfig(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	names := sched.PolicyNames()
	if len(runs) != len(names) {
		t.Fatalf("matrix has %d runs, registry %d policies", len(runs), len(names))
	}
	for i, r := range runs {
		if r.Policy != names[i] {
			t.Errorf("run %d is %q, want %q (sorted registry order)", i, r.Policy, names[i])
		}
		if r.Campaign == nil || r.Campaign.Jobs.Len() == 0 || r.Campaign.RAS.Len() == 0 {
			t.Fatalf("policy %s: empty campaign", r.Policy)
		}
	}
}

// TestRunMatrixSeqParallelEquivalence requires each policy's campaign
// to be byte-identical whether the matrix fans out or runs one policy
// at a time — the parallel pool must not leak into any draw sequence.
func TestRunMatrixSeqParallelEquivalence(t *testing.T) {
	cfg := matrixConfig(2)
	seq, err := RunMatrix(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMatrix(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i].Campaign.Result, par[i].Campaign.Result
		if seq[i].Policy != par[i].Policy {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].Policy, par[i].Policy)
		}
		if len(a.Jobs) != len(b.Jobs) || len(a.Records) != len(b.Records) {
			t.Fatalf("policy %s: sizes differ", seq[i].Policy)
		}
		for k := range a.Jobs {
			if a.Jobs[k] != b.Jobs[k] {
				t.Fatalf("policy %s: job %d differs seq vs parallel", seq[i].Policy, k)
			}
		}
		for k := range a.Records {
			if a.Records[k] != b.Records[k] {
				t.Fatalf("policy %s: record %d differs seq vs parallel", seq[i].Policy, k)
			}
		}
	}
}

// TestRunMatrixSharedStreamDiverges checks the matrix's reason to
// exist: identical workload + identical fault-candidate stream, yet
// the policies produce different interruption outcomes.
func TestRunMatrixSharedStreamDiverges(t *testing.T) {
	runs, err := RunMatrix(matrixConfig(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, r := range runs {
		n := len(r.Campaign.Result.Truth.InterruptedJobs())
		if n == 0 {
			t.Fatalf("policy %s: no interruptions", r.Policy)
		}
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Error("all policies produced identical interruption counts on the shared stream")
	}
}

func TestMatrixCandidatesStable(t *testing.T) {
	cfg := matrixConfig(4)
	a, err := MatrixCandidates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MatrixCandidates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("unstable candidate stream: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs", i)
		}
	}
	if _, err := MatrixCandidates(Config{Seed: 1, Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestConfigPolicyThreading(t *testing.T) {
	cfg := matrixConfig(5)
	cfg.Policy = "first-fit"
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Jobs.Len() == 0 {
		t.Fatal("empty campaign")
	}
	cfg.Policy = "no-such-policy"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}
