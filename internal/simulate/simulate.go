// Package simulate wires the substrates into one campaign: the
// workload generator feeds the Cobalt-like scheduler under the fault
// model, producing the RAS stream and job log the co-analysis consumes,
// plus the generator-side ground truth for oracle tests.
package simulate

import (
	"fmt"
	"io"

	"repro/internal/errcat"
	"repro/internal/faultgen"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config selects the campaign scale and seeds. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Seed drives every random draw in the campaign.
	Seed int64
	// Days is the campaign length (the paper's full campaign is 237).
	Days int
	// NoisePerFatal scales the non-fatal background volume; the Intrepid
	// ratio is ~62 non-fatal records per fatal record. Lower it for
	// fast tests.
	NoisePerFatal float64
	// Policy names the scheduling policy to simulate under (see
	// sched.PolicyNames); empty means the paper's Intrepid default. It
	// is applied on top of any Sched override.
	Policy string
	// Workload, Sched and Model allow overriding individual knobs; when
	// nil/zero they default to the Intrepid-like settings.
	Workload *workload.Spec
	Sched    *sched.Config
	Model    *faultgen.Model
}

// DefaultConfig returns the full-scale Intrepid-like campaign.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Days: 237, NoisePerFatal: 62}
}

// Campaign bundles the simulated logs, ready-to-analyze stores, the
// catalog and the oracle.
type Campaign struct {
	// Catalog is the ERRCODE catalog the campaign used.
	Catalog *errcat.Catalog
	// RAS is the full RAS stream.
	RAS *raslog.Store
	// Jobs is the job log.
	Jobs *joblog.Log
	// Result carries the raw scheduler output including ground truth.
	Result *sched.Result
}

// Run simulates one campaign.
func Run(cfg Config) (*Campaign, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("simulate: non-positive days %d", cfg.Days)
	}
	cat := errcat.Intrepid()

	wspec := workload.DefaultSpec(cfg.Seed, 1)
	if cfg.Workload != nil {
		wspec = *cfg.Workload
	}
	wspec.Days = cfg.Days
	gen, err := workload.New(wspec, cat.ByClass(errcat.ClassApplication))
	if err != nil {
		return nil, fmt.Errorf("simulate: workload: %w", err)
	}

	scfg := sched.DefaultConfig(cfg.Seed)
	if cfg.Sched != nil {
		scfg = *cfg.Sched
	}
	if cfg.Policy != "" {
		scfg.Policy = cfg.Policy
	}
	model := faultgen.DefaultModel(cat)
	if cfg.Model != nil {
		model = cfg.Model
	}
	emitCfg := faultgen.DefaultEmitterConfig()
	if cfg.NoisePerFatal >= 0 {
		emitCfg.NoisePerFatal = cfg.NoisePerFatal
	}

	res, err := sched.Run(scfg, gen, model, emitCfg)
	if err != nil {
		return nil, fmt.Errorf("simulate: sched: %w", err)
	}
	return &Campaign{
		Catalog: cat,
		RAS:     raslog.NewStore(res.Records),
		Jobs:    joblog.NewLog(res.Jobs),
		Result:  res,
	}, nil
}

// WriteLogs streams the campaign's two logs to the given writers in the
// module's line formats (the files cmd/coanalyze and repro.Load read
// back). Either writer may be nil to skip that log.
func (c *Campaign) WriteLogs(rasW, jobW io.Writer) error {
	if rasW != nil {
		w := raslog.NewWriter(rasW)
		for _, rec := range c.RAS.All() {
			if err := w.Write(rec); err != nil {
				return fmt.Errorf("simulate: writing RAS log: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("simulate: writing RAS log: %w", err)
		}
	}
	if jobW != nil {
		w := joblog.NewWriter(jobW)
		for _, j := range c.Jobs.All() {
			if err := w.Write(j); err != nil {
				return fmt.Errorf("simulate: writing job log: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("simulate: writing job log: %w", err)
		}
	}
	return nil
}
