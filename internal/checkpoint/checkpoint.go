// Package checkpoint simulates checkpoint/restart policies for long
// jobs under the failure model the co-analysis fits — the §VII
// discussion made executable. It quantifies the paper's two policy
// recommendations:
//
//  1. under a decreasing-hazard (Weibull) failure process, periodic
//     checkpointing tuned by Young's exponential formula is no longer
//     optimal;
//  2. jobs that may still carry application errors should not
//     checkpoint early — most application errors strike within the
//     first hour (Obs. 11) and force a fix-and-rerun that makes early
//     checkpoints pure overhead.
package checkpoint

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/stats"
)

// Config describes the job and its failure environment.
type Config struct {
	// JobLength is the useful work the job must complete.
	JobLength time.Duration
	// CheckpointCost is the wall time one checkpoint takes.
	CheckpointCost time.Duration
	// RestartCost is the wall time lost to reboot/requeue after a
	// system failure.
	RestartCost time.Duration
	// Failures is the system-failure interarrival distribution affecting
	// the job's partition (wall time). Use the co-analysis Weibull fit.
	Failures stats.Dist
	// BugProb is the probability the run carries a latent application
	// error (ground truth in the simulation).
	BugProb float64
	// BugMean is the mean (exponential) work time at which the bug
	// fires.
	BugMean time.Duration
	// BugFixDelay is the wall time lost to fixing and resubmitting after
	// the bug fires; the rerun starts from scratch — checkpoints of the
	// buggy attempt are worthless.
	BugFixDelay time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.JobLength <= 0 {
		return fmt.Errorf("checkpoint: non-positive job length")
	}
	if c.CheckpointCost < 0 || c.RestartCost < 0 || c.BugFixDelay < 0 {
		return fmt.Errorf("checkpoint: negative cost")
	}
	if c.Failures == nil {
		return fmt.Errorf("checkpoint: nil failure distribution")
	}
	if c.BugProb < 0 || c.BugProb > 1 {
		return fmt.Errorf("checkpoint: BugProb %v outside [0,1]", c.BugProb)
	}
	if c.BugProb > 0 && c.BugMean <= 0 {
		return fmt.Errorf("checkpoint: BugProb set but BugMean not positive")
	}
	return nil
}

// Policy is a periodic checkpoint schedule with an optional initial
// delay: checkpoints at work points Delay + k*Interval. Interval <= 0
// disables checkpointing.
type Policy struct {
	// Name labels the policy in reports.
	Name string
	// Interval is the work between checkpoints.
	Interval time.Duration
	// Delay is the work before the first checkpoint (the paper's advice:
	// at least the first hour for jobs with application-error history).
	Delay time.Duration
}

// None returns the no-checkpoint policy.
func None() Policy { return Policy{Name: "none"} }

// Periodic returns a fixed-interval policy.
func Periodic(interval time.Duration) Policy {
	return Policy{Name: fmt.Sprintf("periodic(%s)", interval), Interval: interval}
}

// Young returns Young's optimal periodic policy for checkpoint cost
// delta under an exponential failure assumption with the given MTBF:
// interval = sqrt(2 * delta * MTBF).
func Young(delta time.Duration, mtbf time.Duration) Policy {
	iv := time.Duration(math.Sqrt(2*delta.Seconds()*mtbf.Seconds()) * float64(time.Second))
	return Policy{Name: fmt.Sprintf("young(%s)", iv.Round(time.Second)), Interval: iv}
}

// DelayedFirstHour wraps a periodic policy with the paper's Obs. 11
// advice: no checkpoint before one hour of work.
func DelayedFirstHour(interval time.Duration) Policy {
	return Policy{Name: fmt.Sprintf("delayed1h(%s)", interval), Interval: interval, Delay: time.Hour}
}

// Result aggregates a Monte Carlo run.
type Result struct {
	// Policy names the evaluated schedule.
	Policy string
	// Runs is the sample size.
	Runs int
	// MeanWallTime is the mean wall time to complete the job.
	MeanWallTime time.Duration
	// Efficiency is JobLength / MeanWallTime.
	Efficiency float64
	// MeanFailures and MeanCheckpoints count per-run events.
	MeanFailures, MeanCheckpoints float64
	// MeanLostWork is the mean work recomputed after failures.
	MeanLostWork time.Duration
	// WastedCheckpoints counts checkpoints of attempts later voided by
	// an application error.
	WastedCheckpoints float64
}

// Simulate runs the policy through `runs` independent job executions
// and aggregates the outcome.
func Simulate(cfg Config, pol Policy, runs int, seed int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if runs <= 0 {
		return Result{}, fmt.Errorf("checkpoint: non-positive runs")
	}
	rng := rand.New(rand.NewSource(seed))
	var res Result
	res.Policy = pol.Name
	res.Runs = runs
	var totalWall, totalLost float64
	for i := 0; i < runs; i++ {
		one := simulateOnce(cfg, pol, rng)
		totalWall += one.wall
		totalLost += one.lost
		res.MeanFailures += float64(one.failures)
		res.MeanCheckpoints += float64(one.checkpoints)
		res.WastedCheckpoints += float64(one.wastedCkpts)
	}
	n := float64(runs)
	res.MeanWallTime = time.Duration(totalWall / n * float64(time.Second))
	res.MeanLostWork = time.Duration(totalLost / n * float64(time.Second))
	res.MeanFailures /= n
	res.MeanCheckpoints /= n
	res.WastedCheckpoints /= n
	if res.MeanWallTime > 0 {
		res.Efficiency = cfg.JobLength.Seconds() / res.MeanWallTime.Seconds()
	}
	return res, nil
}

type runStats struct {
	wall, lost  float64
	failures    int
	checkpoints int
	wastedCkpts int
}

// simulateOnce plays one job execution in seconds of wall time.
func simulateOnce(cfg Config, pol Policy, rng *rand.Rand) runStats {
	var st runStats
	L := cfg.JobLength.Seconds()
	delta := cfg.CheckpointCost.Seconds()
	restart := cfg.RestartCost.Seconds()

	// Latent application error (fires once across the whole submission
	// chain; the rerun after the fix is clean).
	bugAt := math.Inf(1)
	if cfg.BugProb > 0 && rng.Float64() < cfg.BugProb {
		bugAt = rng.ExpFloat64() * cfg.BugMean.Seconds()
		if bugAt >= L {
			bugAt = math.Inf(1) // never manifests
		}
	}

	work := 0.0  // completed work of the current attempt
	saved := 0.0 // work protected by the last checkpoint
	ckptsThisAttempt := 0
	nextFail := cfg.Failures.Rand(rng) // wall time to next system failure

	nextCkpt := func() float64 {
		if pol.Interval <= 0 {
			return math.Inf(1)
		}
		base := pol.Delay.Seconds()
		iv := pol.Interval.Seconds()
		k := math.Floor((work - base) / iv)
		next := base + (k+1)*iv
		if work < base {
			next = base
		}
		if next <= work {
			next += iv
		}
		return next
	}

	for work < L {
		target := math.Min(L, nextCkpt())
		if !math.IsInf(bugAt, 1) {
			target = math.Min(target, bugAt)
		}
		need := target - work
		if nextFail < need {
			// System failure strikes mid-segment: lose unsaved work.
			st.failures++
			st.lost += work + nextFail - saved
			st.wall += nextFail + restart
			work = saved
			nextFail = cfg.Failures.Rand(rng)
			continue
		}
		// Segment completes.
		st.wall += need
		nextFail -= need
		work = target

		if work == bugAt {
			// Application error: fix and rerun from scratch; prior
			// checkpoints of this attempt are void.
			st.wall += cfg.BugFixDelay.Seconds()
			st.lost += work
			st.wastedCkpts += ckptsThisAttempt
			ckptsThisAttempt = 0
			work, saved = 0, 0
			bugAt = math.Inf(1)
			nextFail = cfg.Failures.Rand(rng)
			continue
		}
		if work < L {
			// Take a checkpoint; a failure during it loses to the
			// previous checkpoint.
			if nextFail < delta {
				st.failures++
				st.lost += work + nextFail - saved
				st.wall += nextFail + restart
				work = saved
				nextFail = cfg.Failures.Rand(rng)
				continue
			}
			st.wall += delta
			nextFail -= delta
			saved = work
			st.checkpoints++
			ckptsThisAttempt++
		}
	}
	return st
}

// Sweep evaluates several policies under one configuration.
func Sweep(cfg Config, pols []Policy, runs int, seed int64) ([]Result, error) {
	out := make([]Result, 0, len(pols))
	for i, p := range pols {
		r, err := Simulate(cfg, p, runs, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
