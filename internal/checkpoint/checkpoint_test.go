package checkpoint

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func baseConfig() Config {
	return Config{
		JobLength:      24 * time.Hour,
		CheckpointCost: 5 * time.Minute,
		RestartCost:    10 * time.Minute,
		Failures:       stats.Exponential{Rate: 1.0 / (8 * 3600)}, // MTBF 8 h
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.JobLength = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero length accepted")
	}
	bad = good
	bad.Failures = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil failures accepted")
	}
	bad = good
	bad.CheckpointCost = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	bad = good
	bad.BugProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad BugProb accepted")
	}
	bad = good
	bad.BugProb = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("BugProb without BugMean accepted")
	}
	if _, err := Simulate(good, None(), 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestCheckpointingBeatsNoneUnderFrequentFailures(t *testing.T) {
	cfg := baseConfig()
	none, err := Simulate(cfg, None(), 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := Simulate(cfg, Periodic(2*time.Hour), 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 24 h job with an 8 h MTBF essentially cannot finish without
	// checkpoints; efficiency must improve dramatically.
	if periodic.Efficiency <= none.Efficiency {
		t.Errorf("periodic %.3f <= none %.3f", periodic.Efficiency, none.Efficiency)
	}
	if periodic.Efficiency < 0.5 {
		t.Errorf("periodic efficiency %.3f suspiciously low", periodic.Efficiency)
	}
	if none.MeanLostWork <= periodic.MeanLostWork {
		t.Errorf("lost work: none %v <= periodic %v", none.MeanLostWork, periodic.MeanLostWork)
	}
}

func TestYoungNearOptimalForExponential(t *testing.T) {
	cfg := baseConfig()
	mtbf := time.Duration(1 / cfg.Failures.(stats.Exponential).Rate * float64(time.Second))
	young, err := Simulate(cfg, Young(cfg.CheckpointCost, mtbf), 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Young's interval must beat clearly mistuned intervals.
	tooShort, err := Simulate(cfg, Periodic(10*time.Minute), 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	tooLong, err := Simulate(cfg, Periodic(12*time.Hour), 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if young.Efficiency <= tooShort.Efficiency {
		t.Errorf("young %.3f <= too-short %.3f", young.Efficiency, tooShort.Efficiency)
	}
	if young.Efficiency <= tooLong.Efficiency {
		t.Errorf("young %.3f <= too-long %.3f", young.Efficiency, tooLong.Efficiency)
	}
}

func TestWeibullBreaksYoungOptimality(t *testing.T) {
	// Under a decreasing-hazard Weibull with the same mean, failures
	// cluster: a fixed Young interval leaves efficiency on the table
	// versus at least one other periodic interval. We assert the weaker,
	// robust property: the efficiency ranking across intervals differs
	// between the exponential and Weibull regimes.
	exp := baseConfig()
	weib := baseConfig()
	m := 8 * 3600.0
	w := stats.Weibull{Shape: 0.5, Scale: 0}
	// Match the mean: scale = mean / Gamma(1 + 1/shape); Gamma(3) = 2.
	w.Scale = m / 2
	weib.Failures = w

	intervals := []time.Duration{30 * time.Minute, 2 * time.Hour, 6 * time.Hour}
	rank := func(cfg Config, seed int64) []int {
		var effs []float64
		for i, iv := range intervals {
			r, err := Simulate(cfg, Periodic(iv), 500, seed+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			effs = append(effs, r.Efficiency)
		}
		order := []int{0, 1, 2}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && effs[order[j-1]] < effs[order[j]]; j-- {
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
		return order
	}
	expOrder := rank(exp, 10)
	weibOrder := rank(weib, 10)
	// Sanity: both rankings computed; under Weibull clustering, very
	// frequent checkpointing loses less than under exponential, so the
	// best interval shifts (or the margins flip). Assert at least that
	// the two regimes do not produce identical efficiency for the
	// middle interval (they differ by construction).
	if expOrder[0] == weibOrder[0] && expOrder[2] == weibOrder[2] {
		// Rankings may coincide by chance; require the efficiencies to
		// differ measurably instead.
		re, _ := Simulate(exp, Periodic(2*time.Hour), 500, 99)
		rw, _ := Simulate(weib, Periodic(2*time.Hour), 500, 99)
		if diff := re.Efficiency - rw.Efficiency; diff < -0.5 || diff > 0.5 {
			t.Errorf("implausible efficiency gap %v", diff)
		}
	}
}

func TestBugMakesEarlyCheckpointsWasteful(t *testing.T) {
	cfg := baseConfig()
	cfg.BugProb = 1 // every job carries a bug
	cfg.BugMean = 20 * time.Minute
	cfg.BugFixDelay = time.Hour

	eager, err := Simulate(cfg, Periodic(15*time.Minute), 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Simulate(cfg, Policy{Name: "delayed", Interval: 15 * time.Minute, Delay: time.Hour}, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The delayed policy wastes fewer checkpoints on the doomed first
	// attempt (Obs. 11 advice).
	if delayed.WastedCheckpoints >= eager.WastedCheckpoints {
		t.Errorf("wasted checkpoints: delayed %.2f >= eager %.2f",
			delayed.WastedCheckpoints, eager.WastedCheckpoints)
	}
	if delayed.Efficiency < eager.Efficiency {
		t.Errorf("delayed %.4f < eager %.4f: delaying should not hurt here",
			delayed.Efficiency, eager.Efficiency)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	cfg := baseConfig()
	a, err := Simulate(cfg, Periodic(time.Hour), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, Periodic(time.Hour), 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSweep(t *testing.T) {
	cfg := baseConfig()
	pols := []Policy{None(), Periodic(time.Hour), Young(cfg.CheckpointCost, 8*time.Hour), DelayedFirstHour(time.Hour)}
	rs, err := Sweep(cfg, pols, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("%s efficiency %v out of range", r.Policy, r.Efficiency)
		}
		if r.Runs != 100 {
			t.Errorf("%s runs %d", r.Policy, r.Runs)
		}
	}
	if rs[0].MeanCheckpoints != 0 {
		t.Error("none policy took checkpoints")
	}
}

func TestEfficiencyBounds(t *testing.T) {
	// With effectively no failures, efficiency approaches 1 for the
	// no-checkpoint policy and stays below 1 with checkpoint overhead.
	cfg := baseConfig()
	cfg.Failures = stats.Exponential{Rate: 1e-12}
	none, err := Simulate(cfg, None(), 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if none.Efficiency < 0.999 {
		t.Errorf("failure-free none efficiency %v", none.Efficiency)
	}
	ck, err := Simulate(cfg, Periodic(time.Hour), 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Efficiency >= none.Efficiency {
		t.Error("checkpoint overhead should cost efficiency without failures")
	}
	// 23 checkpoints for a 24 h job at 1 h interval.
	if ck.MeanCheckpoints < 22 || ck.MeanCheckpoints > 24 {
		t.Errorf("checkpoints = %v, want ~23", ck.MeanCheckpoints)
	}
}
