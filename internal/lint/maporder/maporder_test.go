package maporder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer, "mapordertest")
}

func TestMaporderSuggestedFixes(t *testing.T) {
	linttest.RunWithSuggestedFixes(t, "testdata", maporder.Analyzer, "maporderfix")
}
