// Fixture for the maporder analyzer: order-sensitive folds over map
// iteration are diagnostics; the sorted idioms are not.
package mapordertest

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

type table struct{}

func (t *table) AddRow(cells ...interface{}) {}

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration`
	}
	return out
}

func appendSortedAfter(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // ok: sorted right below
	}
	sort.Strings(out)
	return out
}

func appendSortSliceAfter(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // ok: sort.Slice below mentions out
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func floatFold(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum
}

func floatFoldPlainAssign(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation into sum`
	}
	return sum
}

func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++ // ok: integer counting is order-independent
		}
	}
	return n
}

func perKeyWrite(m map[string]float64, total float64) {
	for k := range m {
		m[k] /= total // ok: per-key write into the ranged map
	}
}

func rowsInMapOrder(t *table, m map[string]int) {
	for k, v := range m {
		t.AddRow(k, v) // want `AddRow inside map iteration`
	}
}

func builderInMapOrder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `emits text in random map order`
	}
	return b.String()
}

func fprintInMapOrder(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `fmt\.Fprintf inside map iteration`
	}
}

func searchIsFine(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k // ok: a search, nothing accumulates
		}
	}
	return ""
}

func sliceRangeIsFine(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // ok: slices iterate in order
	}
	return sum
}

func sortValuesInPlace(m map[string][]int) {
	for _, vs := range m {
		sort.Ints(vs) // ok: per-value mutation, no cross-iteration state
	}
}

// The policy-registry pattern: iterating a name->constructor map into
// an output slice must sort before the slice escapes.
type policyCtor func() interface{}

func registryNamesUnsorted(registry map[string]policyCtor) []string {
	var names []string
	for name := range registry {
		names = append(names, name) // want `append to names inside map iteration`
	}
	return names
}

func registryNamesSorted(registry map[string]policyCtor) []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name) // ok: sorted right below
	}
	sort.Strings(names)
	return names
}
