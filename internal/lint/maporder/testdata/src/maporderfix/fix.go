// Fixture for maporder's suggested fix: applying every fix must yield
// fix.go.golden (modulo gofmt).
package maporderfix

import (
	"fmt"
	"sort"
)

func sorted(xs []string) []string {
	sort.Strings(xs)
	return xs
}

func rows(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v)) // want `append to out inside map iteration`
	}
	return out
}

func total(m map[string]float64) float64 {
	sum := 0.0
	for k := range m {
		sum += m[k] // want `floating-point accumulation into sum`
	}
	return sum
}
