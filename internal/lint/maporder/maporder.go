// Package maporder defines the bgplint analyzer that flags
// order-sensitive folds over Go's randomized map iteration.
//
// Go randomizes map iteration order per run. Any loop that ranges over
// a map and (a) appends the elements to a slice, (b) writes rows or
// text to an output/report builder, or (c) accumulates floating-point
// values, bakes that random order into its result: table rows permute
// between runs, golden files flake, and float sums drift in the last
// ulp because addition is not associative. That is precisely the class
// of silent nondeterminism the byte-identical report contract (see
// cmd/bgpreport's golden test) cannot tolerate.
//
// The sanctioned idioms are: collect keys, sort, then iterate; or
// append first and sort the result afterwards. maporder recognizes the
// second form (a sort.* or slices.* call on the accumulated slice
// after the loop) and stays silent. Where the rewrite is mechanical —
// a string-keyed map ranged with plain identifiers — the diagnostic
// carries a suggested fix that hoists the keys into a sorted slice
// named sortedKeys (the fix assumes "sort" is imported and that the
// name sortedKeys is free in the enclosing scope).
package maporder

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive folds over randomized map iteration\n\n" +
		"Ranging over a map while appending to a slice, emitting table rows or\n" +
		"text, or accumulating floats makes the result depend on Go's randomized\n" +
		"map order. Sort the keys first, or sort the accumulated slice afterwards.",
	Run:       run,
	FactTypes: []analysis.Fact{(*SummaryFact)(nil)},
}

// A SummaryFact records that a package contains order-sensitive map
// folds; it rides the vet fact files so tooling can aggregate
// per-package verdicts without re-running the analysis.
type SummaryFact struct {
	Findings int
}

// AFact marks SummaryFact as a fact type.
func (*SummaryFact) AFact() {}

func run(pass *analysis.Pass) (interface{}, error) {
	count := 0
	report := pass.Report
	pass.Report = func(d analysis.Diagnostic) { count++; report(d) }
	defer func() {
		if count > 0 {
			pass.ExportPackageFact(&SummaryFact{Findings: count})
		}
	}()
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		m, ok := lintutil.RangedMap(pass.TypesInfo, rs)
		if !ok {
			return true
		}
		checkMapRange(pass, rs, m, enclosingFuncBody(stack))
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function
// enclosing the node whose stack is given, or nil at package level.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, m *types.Map, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, m, funcBody, n)
		case *ast.CallExpr:
			checkEmit(pass, rs, n)
		}
		return true
	})
}

// checkAssign flags append-folds and float-folds into variables that
// outlive the loop.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, m *types.Map, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	obj := rootObject(info, as.Lhs[0])
	if obj == nil || declaredWithin(obj, rs) {
		return
	}

	// x = append(x, ...): order of the appended elements is the map's
	// random iteration order.
	if as.Tok == token.ASSIGN {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			if len(call.Args) > 0 && rootObject(info, call.Args[0]) == obj {
				if sortedAfter(info, funcBody, rs, obj) {
					return
				}
				d := analysis.Diagnostic{
					Pos: as.Pos(),
					End: as.End(),
					Message: fmt.Sprintf(
						"append to %s inside map iteration bakes in random map order; sort the keys first or sort %s after the loop (maporder)",
						obj.Name(), obj.Name()),
				}
				if fix, ok := sortedKeysFix(pass, rs, m); ok {
					d.SuggestedFixes = []analysis.SuggestedFix{fix}
				}
				pass.Report(d)
				return
			}
		}
	}

	// Float accumulation: += -= *= /= (and x = x + e) reorder
	// non-associative float ops across runs.
	if _, isIndex := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr); isIndex {
		return // per-key writes (m2[k] += v) are order-independent
	}
	tv, ok := info.Types[as.Lhs[0]]
	if !ok || tv.Type == nil || !lintutil.IsFloat(tv.Type) {
		return
	}
	fold := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		fold = true
	case token.ASSIGN:
		if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok {
			fold = lintutil.UsesObject(info, bin, obj)
		}
	}
	if fold {
		d := analysis.Diagnostic{
			Pos: as.Pos(),
			End: as.End(),
			Message: fmt.Sprintf(
				"floating-point accumulation into %s inside map iteration is order-sensitive (float addition is not associative); iterate sorted keys (maporder)",
				obj.Name()),
		}
		if fix, ok := sortedKeysFix(pass, rs, m); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
	}
}

// checkEmit flags row/text emission in map order: report-builder
// AddRow, strings.Builder/bytes.Buffer writes, and fmt.Fprint* calls.
func checkEmit(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return
	}
	// fmt.Fprint* / fmt.Print* stream output in iteration order.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits output in random map order; iterate sorted keys (maporder)", fn.Name())
		}
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvObj := rootObject(info, sel.X)
	if recvObj == nil || declaredWithin(recvObj, rs) {
		return
	}
	switch {
	case fn.Name() == "AddRow":
		// The report.Table builder (and anything shaped like it).
		pass.Reportf(call.Pos(),
			"%s.AddRow inside map iteration emits table rows in random map order; iterate sorted keys (maporder)", recvObj.Name())
	case isTextSink(recvObj.Type()) &&
		(fn.Name() == "Write" || fn.Name() == "WriteString" || fn.Name() == "WriteByte" || fn.Name() == "WriteRune"):
		pass.Reportf(call.Pos(),
			"%s.%s inside map iteration emits text in random map order; iterate sorted keys (maporder)", recvObj.Name(), fn.Name())
	}
}

// isTextSink reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer).
func isTextSink(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// rootObject resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, x.f[i].g ...) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // receiver produced by a call: no stable object
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop variables and body-locals reset every
// iteration and carry no cross-iteration order).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after the range loop, the enclosing
// function sorts the accumulated slice: a sort.* or slices.* call
// mentioning obj, positioned after the loop. This blesses the
// append-then-sort idiom used throughout the tree.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if lintutil.UsesObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedKeysFix builds the mechanical sorted-keys rewrite when it is
// safe and simple: the map expression is a call-free operand (so
// re-evaluating it is sound), the key is a plain identifier, and the
// key type is string (so sort.Strings suffices). The rewrite is:
//
//	sortedKeys := make([]string, 0, len(M))
//	for K := range M {
//		sortedKeys = append(sortedKeys, K)
//	}
//	sort.Strings(sortedKeys)
//	for _, K := range sortedKeys {
//		V := M[K]   // only when the loop binds a value
//		...
//	}
func sortedKeysFix(pass *analysis.Pass, rs *ast.RangeStmt, m *types.Map) (analysis.SuggestedFix, bool) {
	basic, ok := m.Key().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String {
		return analysis.SuggestedFix{}, false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Tok != token.DEFINE {
		return analysis.SuggestedFix{}, false
	}
	if hasCall(rs.X) {
		return analysis.SuggestedFix{}, false
	}
	mapSrc, err := exprString(pass.Fset, rs.X)
	if err != nil {
		return analysis.SuggestedFix{}, false
	}

	prelude := fmt.Sprintf(
		"sortedKeys := make([]string, 0, len(%s))\nfor %s := range %s {\n\tsortedKeys = append(sortedKeys, %s)\n}\nsort.Strings(sortedKeys)\n",
		mapSrc, key.Name, mapSrc, key.Name)
	edits := []analysis.TextEdit{
		{Pos: rs.For, End: rs.For, NewText: []byte(prelude)},
		{Pos: rs.For, End: rs.Body.Lbrace, NewText: []byte(fmt.Sprintf("for _, %s := range sortedKeys ", key.Name))},
	}
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		edits = append(edits, analysis.TextEdit{
			Pos:     rs.Body.Lbrace + 1,
			End:     rs.Body.Lbrace + 1,
			NewText: []byte(fmt.Sprintf("\n%s := %s[%s]", val.Name, mapSrc, key.Name)),
		})
	}
	return analysis.SuggestedFix{
		Message:   "iterate over sorted keys (requires the sort import; uses the name sortedKeys)",
		TextEdits: edits,
	}, true
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func exprString(fset *token.FileSet, e ast.Expr) (string, error) {
	var buf bytes.Buffer
	err := printer.Fprint(&buf, fset, e)
	return buf.String(), err
}
