package callgraph_test

import (
	"reflect"
	"testing"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/linttest"
)

func TestCallgraph(t *testing.T) {
	res, store := linttest.RunAnalyzer(t, "testdata", callgraph.Analyzer, "cgtest")
	g, ok := res.(*callgraph.Result)
	if !ok || g == nil {
		t.Fatalf("result = %T, want *callgraph.Result", res)
	}

	byName := make(map[string]int) // function name -> resolved call count
	for fn, node := range g.Nodes {
		byName[fn.Name()] = len(node.Calls)
	}
	// A makes three resolvable calls: B (inside the nested literal),
	// and t.M; the call to the local variable f is dynamic and absent.
	if byName["A"] != 2 {
		t.Errorf("A has %d resolved calls, want 2 (B via closure, t.M)", byName["A"])
	}
	if byName["B"] != 1 {
		t.Errorf("B has %d resolved calls, want 1 (strings.ToUpper)", byName["B"])
	}
	if byName["leaf"] != 0 {
		t.Errorf("leaf has %d resolved calls, want 0", byName["leaf"])
	}

	var f callgraph.CalleesFact
	if !store.ImportObjectFactByPath("cgtest", "A", &f) {
		t.Fatal("no CalleesFact exported for cgtest.A")
	}
	want := []string{"cgtest.B", "cgtest.T.M"}
	if !reflect.DeepEqual(f.Callees, want) {
		t.Errorf("CalleesFact(A) = %v, want %v", f.Callees, want)
	}
	var mf callgraph.CalleesFact
	if !store.ImportObjectFactByPath("cgtest", "T.M", &mf) {
		t.Fatal("no CalleesFact exported for cgtest.T.M")
	}
	if want := []string{"strings.ToLower"}; !reflect.DeepEqual(mf.Callees, want) {
		t.Errorf("CalleesFact(T.M) = %v, want %v", mf.Callees, want)
	}
	if store.ImportObjectFactByPath("cgtest", "leaf", &f) {
		t.Error("leaf unexpectedly has a CalleesFact")
	}
}
