// Fixture for the callgraph fact pass: no diagnostics, only structure.
package cgtest

import "strings"

type T struct{}

func (T) M() string { return strings.ToLower("X") }

func A(t T) string {
	f := func() string { return B() } // nested literal attributed to A
	return f() + t.M()
}

func B() string {
	return strings.ToUpper("y")
}

func leaf() {} // calls nothing: no CalleesFact
