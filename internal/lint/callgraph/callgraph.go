// Package callgraph defines the bgplint fact pass that builds the
// static intra-package call graph and exports per-function callee
// facts, giving the interprocedural analyzers (seedtaint, idkind) a
// shared view of who calls whom across the whole module.
//
// The graph is deliberately static and syntactic: an edge exists for
// every call expression whose callee resolves to a declared function
// or method (lintutil.Callee). Calls through function values,
// interfaces, and deferred closures bound elsewhere are out of scope —
// the analyzers that consume the graph treat a missing edge as "no
// information", never as "safe".
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc: "build the static call graph and export per-function callee facts\n\n" +
		"A fact pass with no diagnostics of its own: for every declared function\n" +
		"and method it records the statically resolvable call sites (including\n" +
		"those inside nested function literals, attributed to the declaration)\n" +
		"and exports a CalleesFact, so dependent analyzers can follow dataflow\n" +
		"across function and package boundaries.",
	Run:       run,
	FactTypes: []analysis.Fact{(*CalleesFact)(nil)},
}

// A CalleesFact summarizes the statically resolved callees of one
// function for cross-package consumers, as "pkgpath.objpath" symbols,
// sorted and deduplicated.
type CalleesFact struct {
	Callees []string
}

// AFact marks CalleesFact as a fact type.
func (*CalleesFact) AFact() {}

// Sym renders fn as the symbol form used in CalleesFact
// ("pkgpath.Name" or "pkgpath.Recv.Name"), or "" when fn cannot be
// named across packages.
func Sym(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, ok := facts.ObjectPath(fn)
	if !ok {
		return ""
	}
	return fn.Pkg().Path() + "." + path
}

// A Call is one statically resolved call site.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callee is the invoked function or method; it may belong to
	// another package.
	Callee *types.Func
}

// A Node is one declared function or method of the package under
// analysis.
type Node struct {
	// Fn is the declared function object.
	Fn *types.Func
	// Decl is its syntax.
	Decl *ast.FuncDecl
	// Calls lists the statically resolved call sites lexically inside
	// Decl, in source order, including sites inside nested function
	// literals.
	Calls []Call
}

// Result is the callgraph analyzer's per-package result.
type Result struct {
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*Node
	// Order lists the nodes in source order, so consumers can seed
	// worklists and emit output deterministically without sorting the
	// Nodes map.
	Order []*Node
	// CallersOf maps a callee to the package-local nodes that call it
	// (each caller listed once, in source order), for worklist
	// propagation.
	CallersOf map[*types.Func][]*Node
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := &Result{
		Nodes:     make(map[*types.Func]*Node),
		CallersOf: make(map[*types.Func][]*Node),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.Callee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				node.Calls = append(node.Calls, Call{Site: call, Callee: callee})
				return true
			})
			res.Nodes[fn] = node
			res.Order = append(res.Order, node)
		}
	}

	for _, node := range res.Order {
		seen := make(map[*types.Func]bool)
		callees := make(map[string]bool)
		for _, c := range node.Calls {
			if !seen[c.Callee] {
				seen[c.Callee] = true
				res.CallersOf[c.Callee] = append(res.CallersOf[c.Callee], node)
			}
			if sym := Sym(c.Callee); sym != "" {
				callees[sym] = true
			}
		}
		if len(callees) == 0 {
			continue
		}
		list := make([]string, 0, len(callees))
		for sym := range callees {
			list = append(list, sym)
		}
		sort.Strings(list)
		pass.ExportObjectFact(node.Fn, &CalleesFact{Callees: list})
	}
	return res, nil
}
