// Package lintutil holds the small type- and syntax-query helpers the
// bgplint analyzers share.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Callee resolves the function or method a call expression invokes, or
// nil when the callee is not a declared function (a func-typed
// variable, a type conversion, a builtin).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr: // f[T1, T2](...)
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func PkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// IsFloat reports whether t's core type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// UsesObject reports whether any identifier under n resolves to obj.
func UsesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// RootIdent unwraps selector, index, slice, star, and paren wrappers
// and returns the base identifier an access chain is rooted at
// (e.tab.Errcodes → e, segs[0].Events → segs), or nil when the chain
// bottoms out in something else (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsNamedType reports whether t (after stripping one level of pointer)
// is the named type pkgPath.name for any of the given names.
func IsNamedType(t types.Type, pkgPath string, names ...string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// WalkStack walks root depth-first, calling fn for every node with the
// path of its ancestors (outermost first, excluding the node itself).
// The stack slice is reused between calls; callers must not retain it.
func WalkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(stack, n)
		stack = append(stack, n)
		return true
	})
}

// RangedMap reports whether rs ranges over a value of map type, and if
// so returns that map type.
func RangedMap(info *types.Info, rs *ast.RangeStmt) (*types.Map, bool) {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	return m, ok
}
