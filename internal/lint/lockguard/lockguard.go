// Package lockguard defines the bgplint analyzer that infers which
// struct fields a sync.Mutex guards and flags accesses that skip the
// lock.
//
// The inference is per struct type: a field is guarded by a mutex
// field of the same struct when at least one WRITE to it happens with
// that mutex held (a lock region, position-based: after x.mu.Lock()
// and before the next x.mu.Unlock(); a deferred unlock holds to the
// end of the function). Writes include plain assignment, IncDec,
// address-taking, and pointer-receiver method calls on a chain rooted
// at the field (e.stats.ObserveRAS(...) writes e.stats). Once a field
// is guarded, EVERY access — read or write — must hold one of its
// guarding mutexes.
//
// Three escape hatches keep the rule usable:
//
//   - Constructor exemption: accesses through a variable the function
//     itself created (&T{...}, new(T)) are exempt — nothing else can
//     see the value yet, so NewEngine-style setup needs no lock.
//   - Held-context methods: an unexported method whose every
//     statically known call site runs with the mutex held (or on a
//     constructor-fresh receiver, or inside another held-context
//     method) is itself analyzed as holding the lock — the
//     "queueSeal/flushSeals: called with e.mu held" convention,
//     verified instead of trusted. Verified methods export a
//     HoldsFact.
//   - Test files: _test.go code neither establishes guards nor gets
//     flagged; tests routinely poke single-threaded internals.
//
// Guarded-field sets are exported as a GuardedFieldsFact on the struct
// type, so a package that reaches into another package's exported
// guarded field without its lock is flagged at the access site.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flag accesses to mutex-guarded struct fields made without holding the lock\n\n" +
		"A field written with a sync.Mutex sibling held is inferred to be guarded\n" +
		"by it; every other access must then hold one of its guarding mutexes.\n" +
		"Helper methods whose every call site holds the lock are analyzed as\n" +
		"held-context (HoldsFact); guarded sets cross packages (GuardedFieldsFact);\n" +
		"constructor-fresh values and _test.go files are exempt.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*GuardedFieldsFact)(nil), (*HoldsFact)(nil)},
}

// A FieldGuard names one guarded field and the mutex fields guarding
// it, within one struct type.
type FieldGuard struct {
	Field   string
	Mutexes []string
}

// A GuardedFieldsFact attaches to a struct type whose fields are
// mutex-guarded, so accesses from other packages are checked too.
type GuardedFieldsFact struct {
	Guards []FieldGuard
}

// AFact marks GuardedFieldsFact as a fact type.
func (*GuardedFieldsFact) AFact() {}

func (f *GuardedFieldsFact) String() string {
	parts := make([]string, len(f.Guards))
	for i, g := range f.Guards {
		parts[i] = g.Field + ":" + strings.Join(g.Mutexes, "+")
	}
	return "guarded{" + strings.Join(parts, " ") + "}"
}

// A HoldsFact attaches to a method verified to run with the named
// receiver mutexes held at every statically known call site.
type HoldsFact struct {
	Mutexes []string
}

// AFact marks HoldsFact as a fact type.
func (*HoldsFact) AFact() {}

func (f *HoldsFact) String() string {
	return "holds{" + strings.Join(f.Mutexes, " ") + "}"
}

// lockEvent is one x.mu.Lock() / x.mu.Unlock() call, keyed by the
// access root and the mutex field name.
type lockEvent struct {
	pos  token.Pos
	lock bool
}

// access is one use of a (possibly guarded) field through a root
// identifier: root.field, or a chain rooted there.
type access struct {
	pos   token.Pos
	root  types.Object // variable the chain is rooted at
	typ   *types.Named // struct type owning the field
	field string
	write bool
	fn    *types.Func  // enclosing declared function, nil at package scope
	decl  *ast.FuncDecl
}

// fnInfo is the per-function lock state.
type fnInfo struct {
	decl   *ast.FuncDecl
	fn     *types.Func
	events map[evKey][]lockEvent // sorted by pos
	exempt map[types.Object]bool // constructor-fresh locals
	recv   types.Object          // receiver var, methods only
}

type evKey struct {
	root  types.Object
	mutex string
}

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Result
	structs map[*types.Named][]string // locked structs of this package → mutex field names
	fns     map[*types.Func]*fnInfo
	order   []*fnInfo
	accs    []access
	// heldCtx[fn][mutex] means fn is a verified held-context method for
	// its receiver's mutex.
	heldCtx map[*types.Func]map[string]bool
	// guards[type][field][mutex] is the inferred guard relation.
	guards map[*types.Named]map[string]map[string]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		graph:   pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		structs: make(map[*types.Named][]string),
		fns:     make(map[*types.Func]*fnInfo),
		heldCtx: make(map[*types.Func]map[string]bool),
		guards:  make(map[*types.Named]map[string]map[string]bool),
	}
	c.collectStructs()
	c.collectFunctions()
	c.inferHeldContexts()
	c.inferGuards()
	c.exportFacts()
	c.report()
	return nil, nil
}

// collectStructs finds this package's struct types that carry a
// sync.Mutex/RWMutex field.
func (c *checker) collectStructs() {
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || lintutil.IsTestFile(c.pass.Fset, tn.Pos()) {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mutexes []string
		for i := 0; i < st.NumFields(); i++ {
			if isMutex(st.Field(i).Type()) {
				mutexes = append(mutexes, st.Field(i).Name())
			}
		}
		if len(mutexes) > 0 {
			c.structs[named] = mutexes
		}
	}
}

func isMutex(t types.Type) bool {
	return lintutil.IsNamedType(t, "sync", "Mutex", "RWMutex")
}

// isAtomicOrSync reports field types the analyzer must not treat as
// data: mutexes themselves, other sync primitives, and sync/atomic
// values (atomicpub's domain).
func isAtomicOrSync(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// lockedStruct resolves t (after pointers) to a named struct with
// mutex fields — of this package or, via fact, another one. The mutex
// names come from the local table or the struct's own fields.
func (c *checker) lockedStruct(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := c.structs[named]; ok {
		return named, true
	}
	if named.Obj().Pkg() != nil && named.Obj().Pkg() != c.pass.Pkg {
		var fact GuardedFieldsFact
		if c.pass.ImportObjectFact(named.Obj(), &fact) {
			return named, true
		}
	}
	return nil, false
}

// collectFunctions gathers lock events, field accesses and
// constructor-fresh locals for every non-test function declaration.
func (c *checker) collectFunctions() {
	for _, node := range c.graph.Order {
		if lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
			continue
		}
		fi := &fnInfo{
			decl:   node.Decl,
			fn:     node.Fn,
			events: make(map[evKey][]lockEvent),
			exempt: make(map[types.Object]bool),
		}
		if r := node.Decl.Recv; r != nil && len(r.List) > 0 && len(r.List[0].Names) > 0 {
			fi.recv = c.pass.TypesInfo.Defs[r.List[0].Names[0]]
		}
		c.fns[node.Fn] = fi
		c.order = append(c.order, fi)
		c.scanBody(fi)
	}
	for _, fi := range c.order {
		for k := range fi.events {
			evs := fi.events[k]
			sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
			fi.events[k] = evs
		}
	}
}

// scanBody walks one function body, recording lock events, accesses,
// and constructor-fresh locals.
func (c *checker) scanBody(fi *fnInfo) {
	info := c.pass.TypesInfo
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.decl, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	lintutil.WalkStack(fi.decl, func(stack []ast.Node, n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Constructor-fresh locals: v := &T{...} / T{} / new(T).
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if named, ok := c.lockedStruct(obj.Type()); ok && isFreshValue(info, n.Rhs[i], named) {
					fi.exempt[obj] = true
				}
			}
		case *ast.CallExpr:
			c.scanCall(fi, n, deferred[n])
		case *ast.SelectorExpr:
			c.scanSelector(fi, stack, n)
		}
	})
}

// isFreshValue reports whether e constructs a brand-new value of named:
// &T{...}, T{...}, or new(T).
func isFreshValue(info *types.Info, e ast.Expr, named *types.Named) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[ast.Expr(e)]
		if !ok {
			return false
		}
		t := tv.Type
		if p, isP := t.(*types.Pointer); isP {
			t = p.Elem()
		}
		return t == named.Obj().Type()
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// scanCall records root.M.Lock()/Unlock() events. Deferred unlocks are
// dropped: they fire at return, so the region stays held.
func (c *checker) scanCall(fi *fnInfo, call *ast.CallExpr, isDeferred bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	var lock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return
	}
	mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, ok := ast.Unparen(mutexSel.X).(*ast.Ident)
	if !ok {
		return
	}
	rootObj := c.pass.TypesInfo.Uses[root]
	if rootObj == nil {
		return
	}
	if _, isVar := rootObj.(*types.Var); !isVar {
		return
	}
	if _, ok := c.lockedStruct(rootObj.Type()); !ok {
		return
	}
	fieldObj, ok := c.pass.TypesInfo.Uses[mutexSel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() || !isMutex(fieldObj.Type()) {
		return
	}
	if isDeferred {
		return
	}
	k := evKey{root: rootObj, mutex: fieldObj.Name()}
	fi.events[k] = append(fi.events[k], lockEvent{pos: call.Pos(), lock: lock})
}

// scanSelector records one base field access root.F where root is a
// variable of a locked struct type. Deeper selector hops, index
// expressions and the enclosing statement decide whether it is a
// write.
func (c *checker) scanSelector(fi *fnInfo, stack []ast.Node, sel *ast.SelectorExpr) {
	info := c.pass.TypesInfo
	root, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	rootObj := info.Uses[root]
	if rootObj == nil {
		return
	}
	if _, isVar := rootObj.(*types.Var); !isVar {
		return
	}
	named, ok := c.lockedStruct(rootObj.Type())
	if !ok {
		return
	}
	fieldObj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() || isAtomicOrSync(fieldObj.Type()) {
		return
	}
	// Only fields declared on the struct itself (not promoted ones from
	// embedded types; those belong to the embedded type's contract).
	if !structHasField(named, fieldObj.Name()) {
		return
	}
	c.accs = append(c.accs, access{
		pos:   sel.Sel.Pos(),
		root:  rootObj,
		typ:   named,
		field: fieldObj.Name(),
		write: isWriteContext(info, stack, sel),
		fn:    fi.fn,
		decl:  fi.decl,
	})
}

func structHasField(named *types.Named, name string) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// isWriteContext classifies the access: climb the selector/index chain
// upward from sel, then look at how the chain is used. A
// pointer-receiver method selected on the chain (e.stats.ObserveRAS)
// counts as a write — it mutates, or may mutate, the field.
func isWriteContext(info *types.Info, stack []ast.Node, sel *ast.SelectorExpr) bool {
	cur := ast.Node(sel)
	i := len(stack) - 1
climb:
	for ; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr:
			if p.X != cur {
				break climb
			}
			if fn, ok := info.Uses[p.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					_, isPtr := sig.Recv().Type().(*types.Pointer)
					return isPtr
				}
				return false
			}
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				break climb
			}
			cur = p
		case *ast.ParenExpr:
			cur = p
		default:
			break climb
		}
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == cur {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == cur
	case *ast.UnaryExpr:
		return p.Op == token.AND && p.X == cur
	}
	return false
}

// held reports whether mutex is held at pos for accesses through root
// in fi: the last lock event before pos is a Lock. A deferred unlock
// produced no event, so a Lock+defer-Unlock prologue holds to the end.
func (fi *fnInfo) held(root types.Object, mutex string, pos token.Pos) bool {
	evs := fi.events[evKey{root: root, mutex: mutex}]
	held := false
	for _, ev := range evs {
		if ev.pos >= pos {
			break
		}
		held = ev.lock
	}
	return held
}

// inferHeldContexts runs the greatest-fixpoint over unexported methods
// of locked structs: start by assuming every candidate holds every
// receiver mutex, then demote any (method, mutex) with a call site
// that provably does not hold it.
func (c *checker) inferHeldContexts() {
	type site struct {
		caller *fnInfo
		call   *ast.CallExpr
		root   types.Object
	}
	sites := make(map[*types.Func][]site)
	candidates := make(map[*types.Func]*types.Named)

	for _, fi := range c.order {
		fn := fi.fn
		if fi.recv == nil || fn.Exported() {
			continue
		}
		named, ok := c.lockedStruct(fi.recv.Type())
		if !ok || named.Obj().Pkg() != c.pass.Pkg {
			continue
		}
		for _, caller := range c.graph.CallersOf[fn] {
			callerFi := c.fns[caller.Fn]
			if callerFi == nil {
				continue // test-file caller: unknown context
			}
			for _, call := range caller.Calls {
				if call.Callee != fn {
					continue
				}
				fun, ok := ast.Unparen(call.Site.Fun).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				root, ok := ast.Unparen(fun.X).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := c.pass.TypesInfo.Uses[root]; obj != nil {
					sites[fn] = append(sites[fn], site{caller: callerFi, call: call.Site, root: obj})
				}
			}
		}
		if len(sites[fn]) > 0 {
			candidates[fn] = named
		}
	}

	for fn, named := range candidates {
		m := make(map[string]bool)
		for _, mu := range c.structs[named] {
			m[mu] = true
		}
		c.heldCtx[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn := range candidates {
			for mutex, ok := range c.heldCtx[fn] {
				if !ok {
					continue
				}
				for _, s := range sites[fn] {
					if s.caller.exempt[s.root] {
						continue
					}
					if s.caller.held(s.root, mutex, s.call.Pos()) {
						continue
					}
					// A held-context caller passes the context on, but only
					// through its own receiver.
					if s.root == s.caller.recv && c.heldCtx[s.caller.fn][mutex] {
						continue
					}
					c.heldCtx[fn][mutex] = false
					changed = true
					break
				}
			}
		}
	}
}

// heldAt reports whether the access holds mutex: an explicit lock
// region, or the enclosing method is held-context and the access goes
// through its receiver.
func (c *checker) heldAt(a access, mutex string) bool {
	fi := c.fns[a.fn]
	if fi == nil {
		return false
	}
	if fi.held(a.root, mutex, a.pos) {
		return true
	}
	return a.root == fi.recv && fi.recv != nil && c.heldCtx[a.fn][mutex]
}

// inferGuards builds the guard relation from the writes of this
// package's own locked structs.
func (c *checker) inferGuards() {
	for _, a := range c.accs {
		if !a.write || a.typ.Obj().Pkg() != c.pass.Pkg {
			continue
		}
		fi := c.fns[a.fn]
		if fi == nil || fi.exempt[a.root] {
			continue
		}
		for _, mutex := range c.structs[a.typ] {
			if c.heldAt(a, mutex) {
				g := c.guards[a.typ]
				if g == nil {
					g = make(map[string]map[string]bool)
					c.guards[a.typ] = g
				}
				if g[a.field] == nil {
					g[a.field] = make(map[string]bool)
				}
				g[a.field][mutex] = true
			}
		}
	}
}

// guardsOf returns the sorted guarding mutexes of (typ, field): local
// inference for this package's types, imported facts otherwise.
func (c *checker) guardsOf(typ *types.Named, field string) []string {
	if typ.Obj().Pkg() == c.pass.Pkg {
		set := c.guards[typ][field]
		if len(set) == 0 {
			return nil
		}
		out := make([]string, 0, len(set))
		for m := range set {
			out = append(out, m)
		}
		sort.Strings(out)
		return out
	}
	var fact GuardedFieldsFact
	if !c.pass.ImportObjectFact(typ.Obj(), &fact) {
		return nil
	}
	for _, g := range fact.Guards {
		if g.Field == field {
			return g.Mutexes
		}
	}
	return nil
}

func (c *checker) exportFacts() {
	for named := range c.structs {
		g := c.guards[named]
		if len(g) == 0 {
			continue
		}
		fields := make([]string, 0, len(g))
		for f := range g {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		fact := &GuardedFieldsFact{}
		for _, f := range fields {
			mus := make([]string, 0, len(g[f]))
			for m := range g[f] {
				mus = append(mus, m)
			}
			sort.Strings(mus)
			fact.Guards = append(fact.Guards, FieldGuard{Field: f, Mutexes: mus})
		}
		c.pass.ExportObjectFact(named.Obj(), fact)
	}
	for fn, m := range c.heldCtx {
		var mus []string
		for mu, ok := range m {
			if ok {
				mus = append(mus, mu)
			}
		}
		if len(mus) == 0 {
			continue
		}
		sort.Strings(mus)
		c.pass.ExportObjectFact(fn, &HoldsFact{Mutexes: mus})
	}
}

// report flags every access to a guarded field that holds none of its
// guarding mutexes. One suggested fix per method: wrap the body in
// Lock/defer Unlock when the method does no locking of its own.
func (c *checker) report() {
	fixed := make(map[*ast.FuncDecl]bool)
	for _, a := range c.accs {
		guards := c.guardsOf(a.typ, a.field)
		if len(guards) == 0 {
			continue
		}
		fi := c.fns[a.fn]
		if fi == nil || fi.exempt[a.root] {
			continue
		}
		held := false
		for _, mutex := range guards {
			if c.heldAt(a, mutex) {
				held = true
				break
			}
		}
		if held {
			continue
		}
		verb := "read"
		if a.write {
			verb = "write"
		}
		tn := a.typ.Obj().Name()
		d := analysis.Diagnostic{
			Pos: a.pos,
			Message: fmt.Sprintf(
				"%s of %s.%s without holding %s.%s; the field is accessed under that lock everywhere else (lockguard)",
				verb, tn, a.field, tn, strings.Join(guards, " or "+tn+".")),
		}
		if fix, ok := c.lockFix(a, guards[0]); ok && !fixed[a.decl] {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
			fixed[a.decl] = true
		}
		c.pass.Report(d)
	}
}

// lockFix offers to wrap the enclosing method in lock/defer-unlock,
// but only when the access goes through the receiver and the method
// performs no locking of its own (otherwise the insertion could
// deadlock or misplace the region).
func (c *checker) lockFix(a access, mutex string) (analysis.SuggestedFix, bool) {
	fi := c.fns[a.fn]
	if fi == nil || fi.recv == nil || a.root != fi.recv || fi.decl.Body == nil {
		return analysis.SuggestedFix{}, false
	}
	if len(fi.events) > 0 {
		return analysis.SuggestedFix{}, false
	}
	recvName := fi.recv.Name()
	if recvName == "" || recvName == "_" {
		return analysis.SuggestedFix{}, false
	}
	ins := fmt.Sprintf("\n\t%s.%s.Lock()\n\tdefer %s.%s.Unlock()\n", recvName, mutex, recvName, mutex)
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("acquire %s.%s for the whole method", recvName, mutex),
		TextEdits: []analysis.TextEdit{{
			Pos:     fi.decl.Body.Lbrace + 1,
			End:     fi.decl.Body.Lbrace + 1,
			NewText: []byte(ins),
		}},
	}, true
}
