// Stub of the standard sync package for the lockguard fixtures: the
// analyzer matches mutex types by package path and name only, so these
// empty shells keep fixture type-checking hermetic and fast.
package sync

// Mutex is a stub of sync.Mutex.
type Mutex struct{}

func (*Mutex) Lock()   {}
func (*Mutex) Unlock() {}

// RWMutex is a stub of sync.RWMutex.
type RWMutex struct{}

func (*RWMutex) Lock()    {}
func (*RWMutex) Unlock()  {}
func (*RWMutex) RLock()   {}
func (*RWMutex) RUnlock() {}
