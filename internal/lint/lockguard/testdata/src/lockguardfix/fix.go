// Fixture for lockguard's suggested fix: applying every fix must yield
// fix.go.golden (modulo gofmt).
package lockguardfix

import "sync"

type Gauge struct {
	mu sync.Mutex
	v  int
}

func (g *Gauge) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

func (g *Gauge) Bad() int {
	return g.v // want `read of Gauge.v without holding Gauge.mu`
}
