// Test files are exempt: poking guarded internals single-threaded is
// routine in tests, so none of these accesses may be flagged (and none
// may establish guards).
package lockguardtest

func pokeForTest(c *Counter) int {
	c.n = 42
	return c.n
}
