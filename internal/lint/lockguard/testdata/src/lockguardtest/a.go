// Positive and negative cases for lockguard: guard inference from
// locked writes, position-based lock regions, held-context helper
// methods, constructor exemption, and unguarded fields.
package lockguardtest

import "sync"

// Counter.n is guarded by mu (written under it in Inc and bump);
// Counter.free is never written under the lock, so it has no guard.
type Counter struct {
	mu   sync.Mutex
	n    int
	free int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Bad() int {
	return c.n // want `read of Counter.n without holding Counter.mu`
}

func (c *Counter) BadWrite() {
	c.n = 0 // want `write of Counter.n without holding Counter.mu`
}

// Free is unguarded: reading it without the lock is fine.
func (c *Counter) Free() int { return c.free }

// Region uses an explicit Lock/Unlock pair: the read in between is
// held, the one after is not.
func (c *Counter) Region() (int, int) {
	c.mu.Lock()
	held := c.n
	c.mu.Unlock()
	late := c.n // want `read of Counter.n without holding Counter.mu`
	return held, late
}

// bump is a held-context helper: its only call site (Do) holds mu, so
// its own access is analyzed under the lock and it earns a HoldsFact.
func (c *Counter) bump() { c.n++ }

func (c *Counter) Do() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// NewCounter touches n on a constructor-fresh value: exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 7
	return c
}

// RW exercises RWMutex and index-chain writes: m is guarded because
// Set writes it under the write lock; RLock regions count as held.
type RW struct {
	mu sync.RWMutex
	m  map[string]int
}

func (r *RW) Set(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *RW) BadGet(k string) int {
	return r.m[k] // want `read of RW.m without holding RW.mu`
}
