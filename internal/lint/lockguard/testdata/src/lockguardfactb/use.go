// Cross-package fact flow: Box.Val's guard was inferred while
// analyzing lockguardfacta; accessing it here without Box.Mu is
// flagged purely from the imported GuardedFieldsFact.
package lockguardfactb

import "lockguardfacta"

func Read(b *lockguardfacta.Box) int {
	return b.Val // want `read of Box.Val without holding Box.Mu`
}

func ReadLocked(b *lockguardfacta.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val
}
