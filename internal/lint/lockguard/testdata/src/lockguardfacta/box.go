// Fixture dependency for lockguard's cross-package test: analyzing
// this package exports a GuardedFieldsFact{Val: [Mu]} on Box that the
// importing fixture consumes.
package lockguardfacta

import "sync"

// Box exposes a guarded field across the package boundary.
type Box struct {
	Mu  sync.Mutex
	Val int
}

// Set establishes Mu as Val's guard.
func (b *Box) Set(v int) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.Val = v
}
