package lockguard_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockguard"
)

func TestLockguard(t *testing.T) {
	linttest.Run(t, "testdata", lockguard.Analyzer, "lockguardtest")
}

func TestCrossPackageGuards(t *testing.T) {
	linttest.Run(t, "testdata", lockguard.Analyzer, "lockguardfactb")
}

func TestSuggestedFix(t *testing.T) {
	linttest.RunWithSuggestedFixes(t, "testdata", lockguard.Analyzer, "lockguardfix")
}

// TestFactExport pins the two fact shapes: the guard relation on the
// struct type, and the held-context verdict on the helper method.
func TestFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", lockguard.Analyzer, "lockguardtest")

	var g lockguard.GuardedFieldsFact
	if !store.ImportObjectFactByPath("lockguardtest", "Counter", &g) {
		t.Fatal("no GuardedFieldsFact exported for lockguardtest.Counter")
	}
	if len(g.Guards) != 1 || g.Guards[0].Field != "n" ||
		len(g.Guards[0].Mutexes) != 1 || g.Guards[0].Mutexes[0] != "mu" {
		t.Errorf("GuardedFieldsFact for Counter = %v, want n guarded by mu only", g.Guards)
	}

	var h lockguard.HoldsFact
	if !store.ImportObjectFactByPath("lockguardtest", "Counter.bump", &h) {
		t.Fatal("no HoldsFact exported for Counter.bump")
	}
	if len(h.Mutexes) != 1 || h.Mutexes[0] != "mu" {
		t.Errorf("HoldsFact for Counter.bump = %v, want [mu]", h.Mutexes)
	}
}
