// Package sarif emits the subset of SARIF 2.1.0 that code-scanning
// services and editors consume: one run per invocation, one rule per
// analyzer, one result per finding with a physical location, a stable
// partial fingerprint, and a baselineState when a baseline was in
// play. The struct set is deliberately minimal — only fields bgplint
// populates — but field names and nesting follow the OASIS schema so
// the output validates.
package sarif

import (
	"encoding/json"
	"io"
)

// Version is the SARIF spec version emitted.
const Version = "2.1.0"

const schemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// A Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// A Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool identifies the analysis tool.
type Tool struct {
	Driver Component `json:"driver"`
}

// A Component describes the tool driver and its rules.
type Component struct {
	Name           string `json:"name"`
	Version        string `json:"version,omitempty"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules,omitempty"`
}

// A Rule is one analyzer (reportingDescriptor in the schema).
type Rule struct {
	ID               string      `json:"id"`
	ShortDescription Message     `json:"shortDescription"`
	DefaultConfig    *RuleConfig `json:"defaultConfiguration,omitempty"`
}

// RuleConfig carries the rule's default severity level.
type RuleConfig struct {
	Level string `json:"level"`
}

// A Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// A Result is one finding.
type Result struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             Message           `json:"message"`
	Locations           []Location        `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
	BaselineState       string            `json:"baselineState,omitempty"`
}

// A Location wraps the physical location of a finding.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file URI plus a region within it.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation is a repo-relative, slash-separated file path.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// A Region is a 1-based start position.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// fingerprintKey names bgplint's fingerprint scheme inside
// partialFingerprints; the suffix is the scheme version, bumped if the
// hashing recipe ever changes.
const fingerprintKey = "bgplintFingerprint/v1"

// A FindingInfo is the format-independent description of one finding
// that the caller (cmd/bgplint) assembles from the driver, the
// severity table, and the baseline.
type FindingInfo struct {
	RuleID        string
	Level         string // "error", "warning", or "note"
	Message       string
	URI           string // repo-relative, slash-separated
	Line, Column  int
	Fingerprint   string
	BaselineState string // "new", "unchanged", or "" when no baseline was given
}

// Build assembles a single-run SARIF log. rules should cover every
// RuleID that appears in results (extra rules are fine and document
// the full suite).
func Build(toolVersion string, rules []Rule, results []FindingInfo) *Log {
	rs := make([]Result, 0, len(results))
	for _, f := range results {
		rs = append(rs, Result{
			RuleID:  f.RuleID,
			Level:   f.Level,
			Message: Message{Text: f.Message},
			Locations: []Location{{
				PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: f.URI},
					Region:           Region{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
			PartialFingerprints: map[string]string{fingerprintKey: f.Fingerprint},
			BaselineState:       f.BaselineState,
		})
	}
	return &Log{
		Schema:  schemaURI,
		Version: Version,
		Runs: []Run{{
			Tool:    Tool{Driver: Component{Name: "bgplint", Version: toolVersion, Rules: rules}},
			Results: rs,
		}},
	}
}

// Encode writes the log as indented JSON with a trailing newline.
// encoding/json sorts map keys, so output is byte-deterministic for a
// given log.
func (l *Log) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
