// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, vendored here because this module
// builds in hermetic environments with no module proxy. It provides
// exactly what the bgplint analyzers need: an Analyzer descriptor, a
// per-package Pass with full type information, and Diagnostics that can
// carry mechanical SuggestedFixes.
//
// The subset is deliberately source-compatible with the upstream
// package for the features it implements, so the analyzers under
// internal/lint can be ported to the real framework by changing only
// their import path once golang.org/x/tools can be pinned in go.mod
// (see the note in go.mod).
//
// Flags and analyzer-specific result *types* checking are still
// omitted, but since bgplint v2 the subset includes Facts (serialized
// per-package summaries that let an analyzer see across package
// boundaries) and result dependencies between analyzers
// (Requires/ResultOf), both source-compatible with upstream.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must
	// be a valid Go identifier.
	Name string

	// Doc is the analyzer documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to a single package. It returns an
	// analyzer-specific result (consumed by dependent analyzers via
	// Pass.ResultOf) or an error.
	Run func(*Pass) (interface{}, error)

	// Requires lists analyzers that must run on the same package
	// before this one; their results are available in Pass.ResultOf.
	Requires []*Analyzer

	// FactTypes enumerates the concrete fact types (pointer values)
	// this analyzer imports or exports. Drivers use the list to
	// register fact types for serialization; an analyzer with no
	// FactTypes gets no cross-package state.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Fact is a serializable per-object or per-package summary an
// analyzer exports for dependent packages. Concrete fact types must be
// pointers to gob-encodable structs with exported fields.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// A Pass provides one analyzer run over one package: the syntax trees,
// the type-checked package, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	// ResultOf maps each analyzer in Requires to its result on this
	// package. The driver supplies it.
	ResultOf map[*Analyzer]interface{}

	// ImportObjectFact copies into fact the fact previously exported
	// for obj (by this pass or by a pass over the defining package)
	// and reports whether one existed. The driver supplies it.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportObjectFact associates fact with obj for later passes.
	// Facts attach only to package-level objects and methods; exports
	// on anything else are silently dropped, matching what can be
	// named from another package. The driver supplies it.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportPackageFact copies into fact the fact previously exported
	// for pkg and reports whether one existed. The driver supplies it.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// ExportPackageFact associates fact with the current package. The
	// driver supplies it.
	ExportPackageFact func(fact Fact)
}

// Reportf emits a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Expand returns analyzers plus every transitive Requires dependency,
// in a topological order: each analyzer appears after everything it
// requires, and duplicates are dropped. Drivers run analyzers over a
// package in this order so that Pass.ResultOf is always populated.
func Expand(analyzers []*Analyzer) []*Analyzer {
	var order []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the flagged region
	Category string    // optional: sub-category within the analyzer
	Message  string

	// SuggestedFixes are mechanical rewrites that resolve the
	// diagnostic. Each fix's edits must not overlap.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End means a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
