// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, vendored here because this module
// builds in hermetic environments with no module proxy. It provides
// exactly what the bgplint analyzers need: an Analyzer descriptor, a
// per-package Pass with full type information, and Diagnostics that can
// carry mechanical SuggestedFixes.
//
// The subset is deliberately source-compatible with the upstream
// package for the features it implements, so the analyzers under
// internal/lint can be ported to the real framework by changing only
// their import path once golang.org/x/tools can be pinned in go.mod
// (see the note in go.mod).
//
// Facts, result dependencies between analyzers (Requires/ResultOf),
// and flags are intentionally omitted: the four bgplint analyzers are
// all intraprocedural and fact-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must
	// be a valid Go identifier.
	Name string

	// Doc is the analyzer documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to a single package. It returns an
	// analyzer-specific result (unused by bgplint's analyzers, kept
	// for upstream compatibility) or an error.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run over one package: the syntax trees,
// the type-checked package, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. The driver supplies it.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the flagged region
	Category string    // optional: sub-category within the analyzer
	Message  string

	// SuggestedFixes are mechanical rewrites that resolve the
	// diagnostic. Each fix's edits must not overlap.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End means a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
