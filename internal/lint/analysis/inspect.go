package analysis

import "go/ast"

// Preorder calls fn for every node in every file, in depth-first
// source order. It is the moral equivalent of the upstream inspect
// analyzer's Preorder, without the shared-inspector plumbing (bgplint
// runs few analyzers over small packages; rebuilding the traversal per
// analyzer is cheap and keeps the framework dependency-free).
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// WithStack calls fn for every node with the stack of enclosing nodes,
// outermost (the *ast.File) first; the node itself is not on the
// stack. The callback's return value decides whether children are
// visited.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				// Pop event: only pushed (descended-into) nodes get one.
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
