// Package frozen defines the bgplint analyzer for freeze-point
// immutability: a value obtained from a freezing function — Freeze,
// Seal, SealEmpty, Sealed, Snapshot, by the serving stack's naming
// convention — is immutable from that moment on, because published
// epochs and concurrent readers share it by pointer.
//
// Three rules:
//
//   - Post-freeze mutation: a local assigned from a freezer call (or
//     ranged out of one) must not be written through again — no field
//     or element assignment, IncDec, delete, and no call of a method
//     known to mutate its receiver. Receiver mutation knowledge is an
//     intra-package fixpoint exported as a MutatesFact, so calling
//     store.Segment.AppendRow on a frozen segment is flagged from any
//     package.
//   - Alias escape from a freezer body: a freezer must not hand out
//     its receiver's own slice or map fields — returning r.F, placing
//     it in a composite literal, or storing it into another value's
//     field aliases mutable internals into the frozen result. Copies
//     (append/copy/maps.Clone results), full slice expressions
//     (s[:n:n]) and indexed elements are fine; the rule fires only on
//     the bare selector.
//   - Constructor alias leak: a constructor of a freezable type (one
//     with a freezer method) must not store a caller-owned slice or
//     map parameter directly into the value it builds — the caller
//     could mutate it after the freeze.
//
// Whether a callee is a freezer crosses package boundaries by fact
// (ImmutableAfterFact), never by name, so stdlib Snapshot-alikes don't
// trip the rule.
package frozen

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "frozen",
	Doc: "flag mutation of frozen values and aliases of mutable internals escaping a freeze point\n\n" +
		"Values returned by Freeze/Seal/SealEmpty/Sealed/Snapshot are shared with\n" +
		"concurrent readers and must never be written again; freezer bodies and\n" +
		"constructors of freezable types must copy or clip slice/map state instead\n" +
		"of aliasing it. Freezer identity crosses packages via ImmutableAfterFact,\n" +
		"receiver-mutation knowledge via MutatesFact.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*ImmutableAfterFact)(nil), (*MutatesFact)(nil)},
}

// An ImmutableAfterFact marks a function whose results are frozen:
// callers must treat them as immutable.
type ImmutableAfterFact struct{}

// AFact marks ImmutableAfterFact as a fact type.
func (*ImmutableAfterFact) AFact() {}

func (*ImmutableAfterFact) String() string { return "immutableAfter" }

// A MutatesFact marks a method that writes its receiver (directly or
// by calling other mutating methods on it), with the fields touched.
type MutatesFact struct {
	Fields []string
}

// AFact marks MutatesFact as a fact type.
func (*MutatesFact) AFact() {}

func (f *MutatesFact) String() string { return fmt.Sprintf("mutates%v", f.Fields) }

// freezerNames is the serving stack's freeze-point naming convention.
var freezerNames = map[string]bool{
	"Freeze": true, "Seal": true, "SealEmpty": true, "Sealed": true, "Snapshot": true,
}

type checker struct {
	pass     *analysis.Pass
	graph    *callgraph.Result
	freezers map[*types.Func]bool
	mutators map[*types.Func]map[string]bool // method → receiver fields written
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:     pass,
		graph:    pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		freezers: make(map[*types.Func]bool),
		mutators: make(map[*types.Func]map[string]bool),
	}
	c.collectFreezers()
	c.collectMutators()
	c.exportFacts()
	for _, node := range c.graph.Order {
		if lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		if c.freezers[node.Fn] {
			c.checkFreezerBody(node)
		}
		c.checkPostFreeze(node)
		c.checkConstructor(node)
	}
	return nil, nil
}

// collectFreezers marks this package's freezing functions: a freezer
// name plus at least one shareable result (pointer, slice, or map).
func (c *checker) collectFreezers() {
	for _, node := range c.graph.Order {
		if lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
			continue
		}
		if !freezerNames[node.Fn.Name()] {
			continue
		}
		sig, ok := node.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if shareable(sig.Results().At(i).Type()) {
				c.freezers[node.Fn] = true
				break
			}
		}
	}
}

// shareable reports result types whose mutation after publication
// corrupts readers: pointers to structs, slices, and maps. Value
// results (struct copies, scalars) are the caller's own.
func shareable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Struct)
		return ok
	case *types.Slice, *types.Map:
		_ = u
		return true
	}
	return false
}

// isFreezer resolves freezer-ness for any callee: local set for this
// package, ImmutableAfterFact across packages.
func (c *checker) isFreezer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.freezers[fn]
	}
	var fact ImmutableAfterFact
	return c.pass.ImportObjectFact(fn, &fact)
}

// mutatedFields resolves the receiver fields a method writes: local
// fixpoint for this package, MutatesFact across packages.
func (c *checker) mutatedFields(fn *types.Func) map[string]bool {
	if fn == nil {
		return nil
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.mutators[fn]
	}
	var fact MutatesFact
	if !c.pass.ImportObjectFact(fn, &fact) {
		return nil
	}
	m := make(map[string]bool, len(fact.Fields))
	for _, f := range fact.Fields {
		m[f] = true
	}
	return m
}

// collectMutators runs the intra-package fixpoint over methods: a
// method mutates its receiver when it writes a receiver-rooted chain,
// deletes from a receiver map, or calls another mutating method on the
// receiver (directly or through receiver fields).
func (c *checker) collectMutators() {
	recvOf := func(decl *ast.FuncDecl) types.Object {
		if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
			return nil
		}
		return c.pass.TypesInfo.Defs[decl.Recv.List[0].Names[0]]
	}
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			if lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
				continue
			}
			recv := recvOf(node.Decl)
			if recv == nil {
				continue
			}
			fields := c.mutators[node.Fn]
			grow := func(name string) {
				if fields == nil {
					fields = make(map[string]bool)
					c.mutators[node.Fn] = fields
				}
				if !fields[name] {
					fields[name] = true
					changed = true
				}
			}
			lintutil.WalkStack(node.Decl, func(stack []ast.Node, n ast.Node) {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if name, ok := recvField(c.pass.TypesInfo, recv, lhs); ok {
							grow(name)
						}
					}
				case *ast.IncDecStmt:
					if name, ok := recvField(c.pass.TypesInfo, recv, n.X); ok {
						grow(name)
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if b, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(n.Args) > 0 {
							if name, ok := recvField(c.pass.TypesInfo, recv, n.Args[0]); ok {
								grow(name)
							}
						}
						return
					}
					// recv.m(...) or recv.F.m(...) where m mutates.
					sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
					if !ok {
						return
					}
					root := lintutil.RootIdent(sel.X)
					if root == nil || c.pass.TypesInfo.Uses[root] != recv {
						return
					}
					callee := lintutil.Callee(c.pass.TypesInfo, n)
					if callee == nil {
						return
					}
					if sub := c.mutatedFields(callee); len(sub) > 0 {
						if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
							// Mutation lands in the receiver field the chain
							// goes through.
							if base, ok := baseField(c.pass.TypesInfo, recv, inner); ok {
								grow(base)
								return
							}
						}
						for f := range sub {
							grow(f)
						}
					}
				}
			})
		}
	}
}

// recvField reports whether e is a write target rooted at recv
// (recv.F, recv.F[i], recv.F.G...), returning the first field name.
func recvField(info *types.Info, recv types.Object, e ast.Expr) (string, bool) {
	root := lintutil.RootIdent(e)
	if root == nil || info.Uses[root] != recv {
		return "", false
	}
	if sel, ok := e.(*ast.SelectorExpr); ok || true {
		_ = sel
	}
	return baseFieldOfChain(info, recv, e)
}

// baseFieldOfChain digs to the first selector hop off recv in e.
func baseFieldOfChain(info *types.Info, recv types.Object, e ast.Expr) (string, bool) {
	var first *ast.SelectorExpr
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			first = x
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if info.Uses[x] != recv || first == nil {
				return "", false
			}
			if v, ok := info.Uses[first.Sel].(*types.Var); ok && v.IsField() {
				return first.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// baseField is baseFieldOfChain for an inner chain known to end at a
// selector.
func baseField(info *types.Info, recv types.Object, sel *ast.SelectorExpr) (string, bool) {
	return baseFieldOfChain(info, recv, sel)
}

func (c *checker) exportFacts() {
	for fn := range c.freezers {
		c.pass.ExportObjectFact(fn, &ImmutableAfterFact{})
	}
	for fn, fields := range c.mutators {
		list := make([]string, 0, len(fields))
		for f := range fields {
			list = append(list, f)
		}
		sort.Strings(list)
		c.pass.ExportObjectFact(fn, &MutatesFact{Fields: list})
	}
}

// checkPostFreeze flags writes through and mutator calls on locals
// bound to freezer results inside one function.
func (c *checker) checkPostFreeze(node *callgraph.Node) {
	info := c.pass.TypesInfo
	// frozen[obj] = position of the freeze; only later statements are
	// violations (the same ident may be re-bound).
	frozen := make(map[types.Object]token.Pos)
	frozenBy := make(map[types.Object]string)

	bind := func(id *ast.Ident, fn *types.Func) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !shareable(obj.Type()) {
			return
		}
		frozen[obj] = id.Pos()
		frozenBy[obj] = fn.Name()
	}

	freezeCallOf := func(e ast.Expr) *types.Func {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := lintutil.Callee(info, call)
		if fn != nil && c.isFreezer(fn) {
			return fn
		}
		return nil
	}

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if fn := freezeCallOf(n.Rhs[0]); fn != nil {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							bind(id, fn)
						}
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if fn := freezeCallOf(rhs); fn != nil && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						bind(id, fn)
					}
				}
			}
		case *ast.RangeStmt:
			if fn := freezeCallOf(n.X); fn != nil {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					bind(id, fn)
				}
			}
		}
		return true
	})
	if len(frozen) == 0 {
		return
	}

	report := func(pos token.Pos, obj types.Object, what string) {
		c.pass.Reportf(pos,
			"%s of %s, frozen by %s: published values are shared with concurrent readers and must not change (frozen)",
			what, obj.Name(), frozenBy[obj])
	}
	rootedFrozen := func(e ast.Expr, needHop bool) (types.Object, bool) {
		root := lintutil.RootIdent(e)
		if root == nil {
			return nil, false
		}
		obj := info.Uses[root]
		if obj == nil {
			return nil, false
		}
		pos, ok := frozen[obj]
		if !ok || root.Pos() <= pos {
			return nil, false
		}
		if needHop {
			if _, plain := e.(*ast.Ident); plain {
				return nil, false // rebinding the variable itself is fine
			}
		}
		return obj, true
	}

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, ok := rootedFrozen(lhs, true); ok {
					report(lhs.Pos(), obj, "write through frozen value")
				}
			}
		case *ast.IncDecStmt:
			if obj, ok := rootedFrozen(n.X, true); ok {
				report(n.X.Pos(), obj, "write through frozen value")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(n.Args) > 0 {
					if obj, ok := rootedFrozen(n.Args[0], false); ok {
						report(n.Args[0].Pos(), obj, "delete from frozen value")
					}
				}
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := rootedFrozen(sel.X, false)
			if !ok {
				return true
			}
			callee := lintutil.Callee(info, n)
			if callee == nil {
				return true
			}
			if len(c.mutatedFields(callee)) > 0 {
				report(n.Pos(), obj, fmt.Sprintf("call of mutating method %s on frozen value", callee.Name()))
			}
		}
		return true
	})
}

// checkFreezerBody flags bare receiver slice/map selectors escaping
// into the frozen result: returned, placed in composite literals, or
// stored into another value's field or element.
func (c *checker) checkFreezerBody(node *callgraph.Node) {
	info := c.pass.TypesInfo
	recv := types.Object(nil)
	if node.Decl.Recv != nil && len(node.Decl.Recv.List) > 0 && len(node.Decl.Recv.List[0].Names) > 0 {
		recv = info.Defs[node.Decl.Recv.List[0].Names[0]]
	}
	if recv == nil {
		return
	}
	lintutil.WalkStack(node.Decl, func(stack []ast.Node, n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !pureRecvSelector(info, recv, sel) {
			return
		}
		tv, ok := info.Types[ast.Expr(sel)]
		if !ok {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
		default:
			return
		}
		if len(stack) == 0 {
			return
		}
		escape := ""
		litIdx := -1 // stack index of the composite literal holding sel
		switch p := stack[len(stack)-1].(type) {
		case *ast.ReturnStmt:
			escape = "returned"
		case *ast.CompositeLit:
			escape = "stored in a composite literal"
			litIdx = len(stack) - 1
		case *ast.KeyValueExpr:
			if p.Value == ast.Expr(sel) && len(stack) >= 2 {
				if _, inLit := stack[len(stack)-2].(*ast.CompositeLit); inLit {
					escape = "stored in a composite literal"
					litIdx = len(stack) - 2
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != ast.Expr(sel) {
					continue
				}
				var lhs ast.Expr
				if len(p.Lhs) == len(p.Rhs) {
					lhs = p.Lhs[i]
				} else if len(p.Lhs) > 0 {
					lhs = p.Lhs[0]
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escape = "stored into another value"
				}
			}
		}
		if escape == "" {
			return
		}
		// A composite literal handed straight to a call is an
		// ephemeral view the callee consumes, not state escaping into
		// the frozen result.
		if litIdx > 0 {
		arg:
			for i := litIdx - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ParenExpr, *ast.UnaryExpr, *ast.KeyValueExpr, *ast.CompositeLit:
					continue
				case *ast.CallExpr:
					return
				default:
					break arg
				}
			}
		}
		c.pass.Reportf(sel.Pos(),
			"freezer %s: mutable field %s %s without a copy; clip (s[:n:n]) or copy it so the frozen value cannot be changed through the receiver (frozen)",
			node.Fn.Name(), sel.Sel.Name, escape)
	})
}

// pureRecvSelector reports whether sel is recv.F or recv.F.G... with
// only plain selector hops (no index, slice, or call in the chain).
func pureRecvSelector(info *types.Info, recv types.Object, sel *ast.SelectorExpr) bool {
	if v, ok := info.Uses[sel.Sel].(*types.Var); !ok || !v.IsField() {
		return false
	}
	e := sel.X
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x] == recv
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); !ok || !v.IsField() {
				return false
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkConstructor flags constructors of freezable types that store a
// caller-owned slice/map parameter straight into the value they build.
func (c *checker) checkConstructor(node *callgraph.Node) {
	info := c.pass.TypesInfo
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || len(node.Fn.Name()) < 4 || node.Fn.Name()[:3] != "New" {
		return
	}
	var built *types.Named
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if p, isP := t.(*types.Pointer); isP {
			t = p.Elem()
		}
		if named, isN := t.(*types.Named); isN && c.freezable(named) {
			built = named
			break
		}
	}
	if built == nil {
		return
	}
	params := make(map[types.Object]bool)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		switch p.Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			params[p] = true
		}
	}
	if len(params) == 0 {
		return
	}
	flag := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || !params[info.Uses[id]] {
			return
		}
		c.pass.Reportf(e.Pos(),
			"constructor %s stores caller-owned parameter %s in to-be-frozen %s without copying; a later caller write would leak through the freeze (frozen)",
			node.Fn.Name(), id.Name, built.Obj().Name())
	}
	ast.Inspect(node.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[ast.Expr(n)]
			if !ok {
				return true
			}
			t := tv.Type
			if p, isP := t.(*types.Pointer); isP {
				t = p.Elem()
			}
			if t != built.Obj().Type() {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					flag(kv.Value)
				} else {
					flag(el)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				root := lintutil.RootIdent(sel)
				if root == nil {
					continue
				}
				obj := info.Uses[root]
				if obj == nil {
					continue
				}
				t := obj.Type()
				if p, isP := t.(*types.Pointer); isP {
					t = p.Elem()
				}
				if t == built.Obj().Type() {
					flag(n.Rhs[i])
				}
			}
		}
		return true
	})
}

// freezable reports whether named has a freezer method in this
// package's set (methods of named whose *types.Func is a freezer).
func (c *checker) freezable(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if c.freezers[named.Method(i)] {
			return true
		}
	}
	// Pointer-receiver methods are on the named type's method list
	// already (NumMethods covers both for a defined type).
	return false
}
