// Cross-package fact flow: Freeze's freezer-ness and Add's
// receiver-mutation were inferred while analyzing frozenfacta; the
// violations here are caught purely from the imported facts.
package frozenfactb

import "frozenfacta"

func Bad(t *frozenfacta.Table) {
	s := t.Freeze()
	s.Add("x")       // want `call of mutating method Add on frozen value of s, frozen by Freeze`
	s.Names[0] = "y" // want `write through frozen value of s, frozen by Freeze`
}

func OK(t *frozenfacta.Table) int {
	s := t.Freeze()
	return len(s.Names)
}
