// Fixture dependency for frozen's cross-package test: analyzing this
// package exports ImmutableAfterFact on Table.Freeze and MutatesFact
// on Snap.Add, which the importing fixture consumes.
package frozenfacta

// Table freezes into Snap.
type Table struct {
	names []string
}

// Snap is the frozen form; Add mutates it.
type Snap struct {
	Names []string
}

// Freeze copies, so the freezer body is clean — but its result carries
// the immutable-after contract to every importing package.
func (t *Table) Freeze() *Snap {
	return &Snap{Names: append([]string(nil), t.names...)}
}

// Add mutates the receiver: MutatesFact{Names}.
func (s *Snap) Add(name string) {
	s.Names = append(s.Names, name)
}
