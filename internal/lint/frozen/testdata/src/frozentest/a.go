// Positive and negative cases for frozen: post-freeze mutation,
// mutating-method calls on frozen values, freezer-body alias escapes,
// and constructor parameter leaks.
package frozentest

// Table freezes into Snap; names/index are its mutable internals.
type Table struct {
	names []string
	index map[string]int
}

// Snap is the frozen form.
type Snap struct {
	Names []string
	Index map[string]int
}

// Freeze copies its internals: a clean freezer.
func (t *Table) Freeze() *Snap {
	return &Snap{
		Names: append([]string(nil), t.names...),
		Index: cloneMap(t.index),
	}
}

// Sealed hands out the raw names slice: the classic alias escape.
func (t *Table) Sealed() []string {
	return t.names // want `freezer Sealed: mutable field names returned without a copy`
}

// Snapshot stores the raw index map in the result literal.
func (t *Table) Snapshot() *Snap {
	return &Snap{
		Names: append([]string(nil), t.names...),
		Index: t.index, // want `freezer Snapshot: mutable field index stored in a composite literal without a copy`
	}
}

func cloneMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Bad mutates a frozen value: field/element writes and delete.
func Bad(t *Table) *Snap {
	s := t.Freeze()
	s.Names[0] = "x"  // want `write through frozen value of s, frozen by Freeze`
	s.Index["k"] = 1  // want `write through frozen value of s, frozen by Freeze`
	delete(s.Index, "k") // want `delete from frozen value of s, frozen by Freeze`
	return s
}

// Rebind shows that re-binding the variable itself is allowed: only
// writes *through* the frozen value are mutations.
func Rebind(t *Table) *Snap {
	s := t.Freeze()
	s = t.Freeze()
	return s
}

// ReadOnly uses of a frozen value are fine.
func ReadOnly(t *Table) int {
	s := t.Freeze()
	return len(s.Names) + s.Index["k"]
}

// Seg/Set mirror store.Segment/SegmentSet: Append mutates the
// receiver, Seal is a freezer, so Append-after-Seal is flagged via
// MutatesFact.
type Seg struct {
	rows []int
}

func (s *Seg) Append(v int) { s.rows = append(s.rows, v) }

func (s *Seg) Len() int { return len(s.rows) }

// Set owns segments; Seal freezes the active one.
type Set struct {
	segs   []*Seg
	active *Seg
}

func (ss *Set) Seal() *Seg {
	s := ss.active
	if s == nil {
		return nil
	}
	ss.segs = append(ss.segs, s)
	ss.active = nil
	return s
}

func BadAppend(ss *Set) {
	s := ss.Seal()
	s.Append(1) // want `call of mutating method Append on frozen value of s, frozen by Seal`
}

func OKLen(ss *Set) int {
	s := ss.Seal()
	return s.Len()
}

// NewTable leaks its caller-owned slice into the freezable Table;
// NewSafeTable copies it.
func NewTable(names []string) *Table {
	return &Table{names: names} // want `constructor NewTable stores caller-owned parameter names in to-be-frozen Table`
}

func NewSafeTable(names []string) *Table {
	return &Table{names: append([]string(nil), names...)}
}
