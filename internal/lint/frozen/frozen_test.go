package frozen_test

import (
	"testing"

	"repro/internal/lint/frozen"
	"repro/internal/lint/linttest"
)

func TestFrozen(t *testing.T) {
	linttest.Run(t, "testdata", frozen.Analyzer, "frozentest")
}

func TestCrossPackageFreeze(t *testing.T) {
	linttest.Run(t, "testdata", frozen.Analyzer, "frozenfactb")
}

// TestFactExport pins the fact shapes: freezers carry
// ImmutableAfterFact, receiver-mutators carry MutatesFact with the
// fields they touch.
func TestFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", frozen.Analyzer, "frozentest")

	var imm frozen.ImmutableAfterFact
	for _, path := range []string{"Table.Freeze", "Table.Sealed", "Table.Snapshot", "Set.Seal"} {
		if !store.ImportObjectFactByPath("frozentest", path, &imm) {
			t.Errorf("no ImmutableAfterFact exported for frozentest.%s", path)
		}
	}
	if store.ImportObjectFactByPath("frozentest", "Seg.Len", &imm) {
		t.Error("Seg.Len is not a freezer but has ImmutableAfterFact")
	}

	var mut frozen.MutatesFact
	if !store.ImportObjectFactByPath("frozentest", "Seg.Append", &mut) {
		t.Fatal("no MutatesFact exported for frozentest.Seg.Append")
	}
	if len(mut.Fields) != 1 || mut.Fields[0] != "rows" {
		t.Errorf("MutatesFact for Seg.Append = %v, want [rows]", mut.Fields)
	}
}
