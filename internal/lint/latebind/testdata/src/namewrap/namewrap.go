// Fixture wrapper package: Pretty returns a resolved name, so it
// exports a ResolvesFact and call sites in checked packages treat it
// like a direct symtab resolution. The package itself is not in the
// checked set, so nothing is flagged here.
package namewrap

import "symtab"

// Pretty transitively returns a Name() result: a resolver.
func Pretty(d *symtab.Dict, id symtab.ErrcodeID) string {
	return d.Name(id)
}

// Decorated chains through Pretty: the fixpoint marks it too.
func Decorated(d *symtab.Dict, id symtab.ErrcodeID) string {
	s := Pretty(d, id)
	return s
}

// Count consumes a resolution but returns no name: not a resolver.
func Count(d *symtab.Dict) int { return len(d.All()) }
