// Fixture report-boundary package: NOT in latebind's checked set, so
// resolving names into display maps, comparing them for ordering, and
// switching on them is the intended workflow here — no diagnostics.
package report

import "symtab"

func Render(d *symtab.Dict, ids []symtab.ErrcodeID) map[string]int {
	rows := make(map[string]int, len(ids))
	for _, id := range ids {
		rows[d.Name(id)]++
	}
	return rows
}

func Order(d *symtab.Dict, a, b symtab.ErrcodeID) bool {
	return d.Name(a) == d.Name(b)
}

func Label(d *symtab.Dict, id symtab.ErrcodeID) string {
	switch d.Name(id) {
	case "boot":
		return "startup"
	}
	return d.Name(id)
}
