// Fixture mirror of the repo's internal/symtab dictionaries: latebind
// recognizes resolution calls by (package named "symtab", method
// Name/All with a receiver), so this shadow participates in the
// invariant exactly like the real package.
package symtab

type ErrcodeID int32

type Dict struct {
	names []string
}

// Name resolves an ID back to its display string — a resolution.
func (d *Dict) Name(id ErrcodeID) string { return d.names[id] }

// All returns every resolved name — ranging over it yields resolved
// values.
func (d *Dict) All() []string { return d.names }

// Lookup goes the other way (string to ID) and is not a resolution.
func (d *Dict) Lookup(name string) (ErrcodeID, bool) {
	for i, n := range d.names {
		if n == name {
			return ErrcodeID(i), true
		}
	}
	return 0, false
}
