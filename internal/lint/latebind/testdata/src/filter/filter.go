// Fixture mirror of a cascade package: package NAME filter is in
// latebind's checked set, so resolved symbol names flowing back into
// identity roles are flagged here — exactly as in the real cascade.
package filter

import (
	"namewrap"
	"symtab"
)

// Tally re-keys on resolved names: the regression PR 5 paid to remove.
func Tally(d *symtab.Dict, ids []symtab.ErrcodeID) map[string]int {
	counts := make(map[string]int)
	for _, id := range ids {
		counts[d.Name(id)]++ // want `resolved symbol name used as a map key`
	}
	return counts
}

// Alias tracks resolution through a local variable.
func Alias(d *symtab.Dict, id symtab.ErrcodeID, counts map[string]int) {
	name := d.Name(id)
	counts[name]++       // want `resolved symbol name used as a map key`
	delete(counts, name) // want `resolved symbol name used as a map key`
}

// Compare flags identity comparison of resolved names.
func Compare(d *symtab.Dict, a, b symtab.ErrcodeID) bool {
	return d.Name(a) == d.Name(b) // want `resolved symbol name compared for identity`
}

// Dispatch flags switching on a resolved name.
func Dispatch(d *symtab.Dict, id symtab.ErrcodeID) int {
	switch d.Name(id) { // want `resolved symbol name switched on`
	case "boot":
		return 1
	}
	return 0
}

// Seed flags resolved names as map-literal keys.
func Seed(d *symtab.Dict, id symtab.ErrcodeID) map[string]bool {
	return map[string]bool{
		d.Name(id): true, // want `resolved symbol name used as a map-literal key`
	}
}

// RangeAll flags range values over All() used as keys.
func RangeAll(d *symtab.Dict, seen map[string]int) {
	for _, name := range d.All() {
		seen[name]++ // want `resolved symbol name used as a map key`
	}
}

// Wrapped reaches the same conclusion through another package's
// wrapper, via its exported ResolvesFact.
func Wrapped(d *symtab.Dict, id symtab.ErrcodeID, counts map[string]int) {
	counts[namewrap.Pretty(d, id)]++ // want `resolved symbol name used as a map key`
}

// Chained follows a two-deep wrapper chain.
func Chained(d *symtab.Dict, id symtab.ErrcodeID, counts map[string]int) {
	counts[namewrap.Decorated(d, id)]++ // want `resolved symbol name used as a map key`
}

// DomainMaps: a string-keyed map named for an ID-carrying domain is a
// re-keying regression by construction; the typed-ID form is the
// blessed one.
func DomainMaps() {
	errcodeCount := make(map[string]int) // want `string-keyed map "errcodeCount" over the errcode domain`
	_ = errcodeCount
	var locationSeen map[string]bool // want `string-keyed map "locationSeen" over the location domain`
	_ = locationSeen
	byID := make(map[symtab.ErrcodeID]int) // no diagnostic: keyed on the typed ID
	_ = byID
	lineCount := make(map[string]int) // no diagnostic: not an ID-carrying domain
	_ = lineCount
}

// Ingest-side strings never came OUT of the table, so keying and
// comparing on them is the intended workflow.
func Ingest(d *symtab.Dict, raw string, counts map[string]int) symtab.ErrcodeID {
	counts[raw]++
	if raw == "boot" {
		counts[raw]--
	}
	id, _ := d.Lookup(raw)
	return id
}
