// Package latebind defines the bgplint analyzer that enforces the
// dictionary-encoding invariant statically: inside the analysis
// cascade (filter, core, store, serve, predict, sched, stats) symbols
// travel as typed symtab IDs, and their string names are resolved only
// at the report boundary. PR 5 paid for that invariant — the cascade
// got 63% faster when its maps were re-keyed from strings to dense
// IDs — and this analyzer keeps anyone from quietly reintroducing
// string keys.
//
// A resolution is a call that turns an ID back into its name: the
// Name/All methods of a symtab dictionary or frozen view, or any
// function that transitively returns one of those results (tracked
// across packages by ResolvesFact, so a wrapper in a helper package is
// recognized at its call sites). Resolutions themselves are fine at
// the boundary — building report payloads, rendering JSON, ordering
// output by display name (classify's tie-break comparators depend on
// it). What gets flagged is a resolved name flowing back into an
// identity role inside a checked package:
//
//   - indexing a string-keyed map with a resolved name (or deleting by
//     one), directly or through a local variable or range over All()
//   - comparing resolved names with == / != or switching on one
//   - using a resolved name as a map-literal key
//   - declaring a string-keyed map over an ID-carrying domain
//     (a local whose name says errcode/exec/location/midplane/nodecard)
//
// Each of those has a typed-ID formulation that is both faster and
// collision-proof; the diagnostic says which.
package latebind

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "latebind",
	Doc: "keep symtab string resolution at the report boundary\n\n" +
		"Enforces the dictionary-encoding invariant inside the analysis cascade:\n" +
		"resolved symbol names (symtab Name/All results, tracked across wrapper\n" +
		"functions by ResolvesFact) must not be used as map keys, identity\n" +
		"comparands, or switch tags, and string-keyed maps over ID-carrying\n" +
		"domains are flagged; symbols travel as typed IDs until the report\n" +
		"boundary renders them.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*ResolvesFact)(nil)},
}

// A ResolvesFact marks a function whose results include a resolved
// symbol name, so call sites in other packages treat it like a direct
// symtab resolution.
type ResolvesFact struct{}

// AFact marks ResolvesFact as a fact type.
func (*ResolvesFact) AFact() {}

func (*ResolvesFact) String() string { return "resolves" }

// checkedPkgs names the cascade packages (by package name, so the
// linttest fixture mirrors are governed identically): everything
// between ingest and the report boundary. cmd/*, examples/*, the repro
// root, and the report renderers stay free to resolve.
var checkedPkgs = map[string]bool{
	"core":    true,
	"filter":  true,
	"predict": true,
	"sched":   true,
	"serve":   true,
	"stats":   true,
	"store":   true,
}

// domainWords are the ID-carrying domains of the symbol table; a
// string-keyed map whose name cites one is a re-keying regression by
// construction.
var domainWords = []string{"errcode", "errorcode", "exec", "location", "midplane", "nodecard"}

func run(pass *analysis.Pass) (interface{}, error) {
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Result)

	// Pass 1: which local functions return resolved names? Iterate to
	// a fixpoint so chains of wrappers are caught, then export
	// ResolvesFact for cross-package call sites.
	resolvers := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range graph.Order {
			if resolvers[n.Fn] {
				continue
			}
			rv := resolvedVars(pass, n, resolvers)
			returns := false
			ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
				ret, ok := nd.(*ast.ReturnStmt)
				if !ok || returns {
					return !returns
				}
				for _, res := range ret.Results {
					if isResolved(pass, res, rv, resolvers) {
						returns = true
					}
				}
				return true
			})
			if returns {
				resolvers[n.Fn] = true
				changed = true
			}
		}
	}
	for _, n := range graph.Order {
		if resolvers[n.Fn] {
			pass.ExportObjectFact(n.Fn, &ResolvesFact{})
		}
	}

	if !checkedPkgs[pass.Pkg.Name()] {
		return nil, nil
	}

	// Pass 2: flag identity uses of resolved names and domain-named
	// string-keyed maps, function by function in source order.
	for _, n := range graph.Order {
		rv := resolvedVars(pass, n, resolvers)
		lintutil.WalkStack(n.Decl.Body, func(stack []ast.Node, nd ast.Node) {
			switch x := nd.(type) {
			case *ast.IndexExpr:
				if !indexesStringMap(pass, x) {
					return
				}
				if isResolved(pass, x.Index, rv, resolvers) {
					pass.Reportf(x.Index.Pos(), "resolved symbol name used as a map key; key on the typed ID and resolve at the report boundary (latebind)")
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return
				}
				if isResolved(pass, x.X, rv, resolvers) || isResolved(pass, x.Y, rv, resolvers) {
					pass.Reportf(x.OpPos, "resolved symbol name compared for identity; compare the typed IDs instead (latebind)")
				}
			case *ast.KeyValueExpr:
				if len(stack) == 0 {
					return
				}
				lit, ok := stack[len(stack)-1].(*ast.CompositeLit)
				if !ok || !isStringMap(pass.TypesInfo.Types[lit].Type) {
					return
				}
				if isResolved(pass, x.Key, rv, resolvers) {
					pass.Reportf(x.Key.Pos(), "resolved symbol name used as a map-literal key; key on the typed ID and resolve at the report boundary (latebind)")
				}
			case *ast.SwitchStmt:
				if x.Tag != nil && isResolved(pass, x.Tag, rv, resolvers) {
					pass.Reportf(x.Tag.Pos(), "resolved symbol name switched on; switch on the typed ID instead (latebind)")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
					if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && isResolved(pass, x.Args[1], rv, resolvers) {
						pass.Reportf(x.Args[1].Pos(), "resolved symbol name used as a map key; key on the typed ID and resolve at the report boundary (latebind)")
					}
				}
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE {
					return
				}
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkDomainMap(pass, id)
					}
				}
			case *ast.ValueSpec:
				for _, name := range x.Names {
					checkDomainMap(pass, name)
				}
			}
		})
	}
	return nil, nil
}

// checkDomainMap flags a newly declared local whose type is a
// string-keyed map and whose name cites an ID-carrying domain.
func checkDomainMap(pass *analysis.Pass, id *ast.Ident) {
	v, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || !isStringMap(v.Type()) {
		return
	}
	lower := strings.ToLower(id.Name)
	for _, w := range domainWords {
		if strings.Contains(lower, w) {
			pass.Reportf(id.Pos(), "string-keyed map %q over the %s domain; key on the symtab typed ID and resolve at the report boundary (latebind)", id.Name, w)
			return
		}
	}
}

// resolvedVars collects the locals of one declaration bound to
// resolution results: x := v.Name(id), or a range value over v.All().
func resolvedVars(pass *analysis.Pass, n *callgraph.Node, resolvers map[*types.Func]bool) map[*types.Var]bool {
	rv := make(map[*types.Var]bool)
	// Two rounds so an alias of an already-marked var is caught even
	// when it lexically precedes nothing; local chains are short.
	for round := 0; round < 2; round++ {
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !isResolved(pass, x.Rhs[i], rv, resolvers) {
						continue
					}
					if v := localVar(pass, id); v != nil {
						rv[v] = true
					}
				}
			case *ast.RangeStmt:
				if !isResolutionCall(pass, x.X, resolvers) {
					return true
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					if v := localVar(pass, id); v != nil {
						rv[v] = true
					}
				}
			}
			return true
		})
	}
	return rv
}

func localVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// isResolved reports whether e yields a resolved symbol name: a direct
// resolution call, an index into an All() slice, or a local previously
// bound to one.
func isResolved(pass *analysis.Pass, e ast.Expr, rv map[*types.Var]bool, resolvers map[*types.Func]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return isResolutionCall(pass, x, resolvers)
	case *ast.IndexExpr:
		return isResolutionCall(pass, x.X, resolvers)
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[x].(*types.Var)
		return ok && rv[v]
	}
	return false
}

// isResolutionCall reports whether e is a call that resolves an ID to
// its display string: Name/All on a symtab dictionary or view, or any
// function carrying a ResolvesFact.
func isResolutionCall(pass *analysis.Pass, e ast.Expr, resolvers map[*types.Func]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := lintutil.Callee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	if callee.Pkg().Name() == "symtab" && (callee.Name() == "Name" || callee.Name() == "All") {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	if resolvers[callee] {
		return true
	}
	var rf ResolvesFact
	return pass.ImportObjectFact(callee, &rf)
}

// indexesStringMap reports whether x indexes a value whose underlying
// type is a string-keyed map.
func indexesStringMap(pass *analysis.Pass, x *ast.IndexExpr) bool {
	tv, ok := pass.TypesInfo.Types[x.X]
	if !ok || tv.Type == nil {
		return false
	}
	return isStringMap(tv.Type)
}

// isStringMap reports whether t's underlying type is a map keyed by a
// string-kinded type.
func isStringMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
