package latebind_test

import (
	"testing"

	"repro/internal/lint/latebind"
	"repro/internal/lint/linttest"
)

// TestLatebind checks both sides of the boundary: identity uses of
// resolved names are flagged inside the checked cascade package and
// nowhere in the report-boundary package.
func TestLatebind(t *testing.T) {
	linttest.Run(t, "testdata", latebind.Analyzer, "filter", "report")
}

// TestResolvesFactExport checks the wrapper fixture in isolation:
// functions returning resolved names (directly or through a chain)
// export the fact, consumers that return no name do not.
func TestResolvesFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", latebind.Analyzer, "namewrap")
	var rf latebind.ResolvesFact
	if !store.ImportObjectFactByPath("namewrap", "Pretty", &rf) {
		t.Error("no ResolvesFact exported for namewrap.Pretty")
	}
	if !store.ImportObjectFactByPath("namewrap", "Decorated", &rf) {
		t.Error("no ResolvesFact exported for namewrap.Decorated (wrapper chain)")
	}
	if store.ImportObjectFactByPath("namewrap", "Count", &rf) {
		t.Error("namewrap.Count unexpectedly carries a ResolvesFact")
	}
}
