// Fixture for the sharedfold analyzer: tasks must write index-keyed
// slots, never captured shared state.
package sharedfoldtest

import "parallel"

func goodIndexedSlots(n int) ([]int, error) {
	out := make([]int, n)
	err := parallel.ForEach(0, n, func(i int) error {
		out[i] = i * i // ok: index-keyed slot
		return nil
	})
	return out, err
}

func goodTaskLocal(n int) error {
	return parallel.ForEach(0, n, func(i int) error {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j // ok: task-local accumulator
		}
		_ = acc
		return nil
	})
}

func badAppend(n int) []int {
	var out []int
	_ = parallel.ForEach(0, n, func(i int) error {
		out = append(out, i) // want `assignment to captured variable out`
		return nil
	})
	return out
}

func badFold(n int) int {
	sum := 0
	_ = parallel.ForEach(0, n, func(i int) error {
		sum += i // want `assignment to captured variable sum`
		return nil
	})
	return sum
}

func badIncrement(n int) int {
	count := 0
	_ = parallel.ForEach(0, n, func(i int) error {
		count++ // want `increment of captured variable count`
		return nil
	})
	return count
}

func badMapWrite(n int) map[int]int {
	m := make(map[int]int)
	_ = parallel.ForEach(0, n, func(i int) error {
		m[i] = i // want `concurrent map write`
		return nil
	})
	return m
}

type fits struct {
	System      float64
	Application float64
}

func goodDoDisjointOutputs(n int) (float64, float64, error) {
	// Do's contract: distinct closures, each writing only its own
	// captured outputs — the sanctioned concurrent-stage pattern.
	var ir fits
	var sysErr, appErr error
	err := parallel.Do(0,
		func() error {
			ir.System, sysErr = 1.0, nil // ok: only this task writes ir.System
			return sysErr
		},
		func() error {
			ir.Application, appErr = 2.0, nil // ok: disjoint field
			return appErr
		},
	)
	return ir.System, ir.Application, err
}

func badDoSharedErr(n int) error {
	var firstErr error
	_ = parallel.Do(0,
		func() error {
			firstErr = nil // want `task closures 1 and 2 both write firstErr`
			return nil
		},
		func() error {
			firstErr = nil // want `task closures 2 and 1 both write firstErr`
			return nil
		},
	)
	return firstErr
}

func badDoWholeVsField(n int) fits {
	var ir fits
	_ = parallel.Do(0,
		func() error {
			ir = fits{} // want `task closures 1 and 2 both write ir`
			return nil
		},
		func() error {
			ir.System = 1 // want `task closures 2 and 1 both write ir\.System`
			return nil
		},
	)
	return ir
}

func badNestedClosure(n int) int {
	total := 0
	_ = parallel.ForEach(0, n, func(i int) error {
		add := func(v int) {
			total += v // want `assignment to captured variable total`
		}
		add(i)
		return nil
	})
	return total
}

func goodMapHelper(n int) ([]int, error) {
	return parallel.Map(0, n, func(i int) (int, error) {
		return 2 * i, nil // ok: results merge through return values
	})
}
