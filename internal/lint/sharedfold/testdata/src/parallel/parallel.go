// Fixture stub of the repo's internal/parallel pool: sharedfold
// matches pool entry points by package name + function name, so this
// stub triggers it exactly like the real package.
package parallel

func ForEach(workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func Map(workers, n int, fn func(i int) (int, error)) ([]int, error) {
	out := make([]int, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v // index-keyed slot: the sanctioned write
		return nil
	})
	return out, err
}

func Do(workers int, fns ...func() error) error {
	return ForEach(workers, len(fns), func(i int) error { return fns[i]() })
}
