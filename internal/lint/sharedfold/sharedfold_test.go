package sharedfold_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/sharedfold"
)

func TestSharedfold(t *testing.T) {
	linttest.Run(t, "testdata", sharedfold.Analyzer, "parallel", "sharedfoldtest")
}
