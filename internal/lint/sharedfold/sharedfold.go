// Package sharedfold defines the bgplint analyzer that guards the
// parallel engine's determinism contract at its call sites.
//
// internal/parallel promises byte-identical results at any worker
// count because every task writes only its own output slots and the
// pool merges them in index order. Two shapes of task exist, with two
// contracts:
//
//   - ForEach/Map run ONE closure once per index, concurrently. Any
//     write to captured state is shared between iterations: it races
//     and makes output scheduling-dependent. Only writes through
//     index-keyed slice/array slots (results[i] = ...) and the
//     closure's return value are safe.
//
//   - Do runs N DISTINCT closures once each. Its documented contract
//     is "each task must write only its own outputs": a closure may
//     write captured variables, but no piece of state may be written
//     by two different task closures. Overlap is checked at struct
//     field-path granularity (ir.System vs ir.Application are
//     disjoint outputs of one result struct).
//
// This is the race-and-determinism bug class PR 1's pool was designed
// out of; the race detector only catches it when two writes actually
// collide during a test run, sharedfold rejects it statically.
package sharedfold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "sharedfold",
	Doc: "flag parallel.ForEach/Map/Do task closures that write shared captured state\n\n" +
		"ForEach/Map tasks run the same closure concurrently per index: they must\n" +
		"write only index-keyed slots or return values. Do tasks are distinct\n" +
		"closures that may each write their own captured outputs, but no two may\n" +
		"write the same state.",
	Run:       run,
	FactTypes: []analysis.Fact{(*SummaryFact)(nil)},
}

// A SummaryFact records that a package contains shared-state writes in
// parallel task closures; it rides the vet fact files so tooling can
// aggregate per-package verdicts without re-running the analysis.
type SummaryFact struct {
	Findings int
}

// AFact marks SummaryFact as a fact type.
func (*SummaryFact) AFact() {}

// poolFuncs are the fan-out entry points whose task closures run
// concurrently. Matching is by function name within a package named
// "parallel", so the analyzer also fires on its test fixtures.
var poolFuncs = map[string]bool{"ForEach": true, "Map": true, "Do": true}

func run(pass *analysis.Pass) (interface{}, error) {
	count := 0
	report := pass.Report
	pass.Report = func(d analysis.Diagnostic) { count++; report(d) }
	defer func() {
		if count > 0 {
			pass.ExportPackageFact(&SummaryFact{Findings: count})
		}
	}()
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "parallel" || !poolFuncs[fn.Name()] {
			return
		}
		var tasks []*ast.FuncLit
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				tasks = append(tasks, lit)
			}
		}
		if fn.Name() == "Do" {
			checkDo(pass, tasks)
		} else {
			for _, task := range tasks {
				checkPerIndexTask(pass, fn.Name(), task)
			}
		}
	})
	return nil, nil
}

// A write records one mutation of captured state inside a task
// closure.
type write struct {
	pos  token.Pos
	obj  types.Object // root storage
	path []string     // field path from the root, e.g. [ir System]
	kind writeKind
	verb string // for diagnostics: "assignment to", "increment of", ...
}

type writeKind int

const (
	writePlain writeKind = iota // x = ..., x.f = ..., *p = ...
	writeSliceIndex             // xs[i] = ...: the per-index slot idiom
	writeMapIndex               // m[k] = ...: a concurrent map write when shared
)

// checkPerIndexTask enforces the strict ForEach/Map contract: the one
// closure runs for every index, so every captured write except a
// slice/array index slot is shared state.
func checkPerIndexTask(pass *analysis.Pass, pool string, task *ast.FuncLit) {
	for _, w := range collectWrites(pass, task) {
		switch w.kind {
		case writeSliceIndex:
			// results[i] = v: each index owns its slot.
		case writeMapIndex:
			pass.Reportf(w.pos,
				"write to captured map %s inside a parallel.%s task is a concurrent map write; collect per-index results in slice slots and merge after the fan-out (sharedfold)",
				pathString(w), pool)
		default:
			pass.Reportf(w.pos,
				"%s captured variable %s inside a parallel.%s task races across workers and makes output scheduling-dependent; write an index-keyed slot instead (sharedfold)",
				w.verb, pathString(w), pool)
		}
	}
}

// checkDo enforces Do's "each task writes only its own outputs"
// contract: writes are fine until two distinct closures touch
// overlapping state.
func checkDo(pass *analysis.Pass, tasks []*ast.FuncLit) {
	type taggedWrite struct {
		task int
		w    write
	}
	var all []taggedWrite
	for i, task := range tasks {
		for _, w := range collectWrites(pass, task) {
			all = append(all, taggedWrite{task: i, w: w})
		}
	}
	for _, tw := range all {
		for _, other := range all {
			if other.task != tw.task && overlap(tw.w, other.w) {
				pass.Reportf(tw.w.pos,
					"parallel.Do task closures %d and %d both write %s; concurrent tasks must write disjoint outputs (sharedfold)",
					tw.task+1, other.task+1, pathString(tw.w))
				break
			}
		}
	}
}

// overlap reports whether two writes can alias: same root object and
// one field path a prefix of the other (writing ir overlaps writing
// ir.System; ir.System and ir.Application are disjoint).
func overlap(a, b write) bool {
	if a.obj != b.obj {
		return false
	}
	n := len(a.path)
	if len(b.path) < n {
		n = len(b.path)
	}
	for i := 0; i < n; i++ {
		if a.path[i] != b.path[i] {
			return false
		}
	}
	return true
}

// collectWrites gathers every mutation of captured state in the task
// body, including inside nested closures (whatever they write outlives
// the task just the same).
func collectWrites(pass *analysis.Pass, task *ast.FuncLit) []write {
	var out []write
	record := func(lhs ast.Expr, verb string) {
		if w, ok := classifyWrite(pass.TypesInfo, task, lhs, verb); ok {
			out = append(out, w)
		}
	}
	ast.Inspect(task.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs, "assignment to")
			}
		case *ast.IncDecStmt:
			verb := "increment of"
			if n.Tok == token.DEC {
				verb = "decrement of"
			}
			record(n.X, verb)
		}
		return true
	})
	return out
}

// classifyWrite resolves one lvalue to (root object, field path, kind)
// and reports whether it mutates captured state.
func classifyWrite(info *types.Info, task *ast.FuncLit, lhs ast.Expr, verb string) (write, bool) {
	lhs = ast.Unparen(lhs)
	w := write{pos: lhs.Pos(), verb: verb, kind: writePlain}

	if ix, ok := lhs.(*ast.IndexExpr); ok {
		w.kind = writeSliceIndex
		if tv, ok := info.Types[ix.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				w.kind = writeMapIndex
			}
		}
		lhs = ix.X
	}
	obj, path := resolvePath(info, lhs)
	if obj == nil || !capturedBy(task, obj) {
		return write{}, false
	}
	w.obj, w.path = obj, path
	return w, true
}

// resolvePath walks x.f.g[i].h style lvalues to the root object and
// the selector path from it. Index and deref steps keep the path of
// their operand (writing xs[i] writes "into" xs; writing *p writes
// through p).
func resolvePath(info *types.Info, e ast.Expr) (types.Object, []string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return nil, nil
		}
		return obj, []string{x.Name}
	case *ast.SelectorExpr:
		obj, path := resolvePath(info, x.X)
		if obj == nil {
			return nil, nil
		}
		return obj, append(path, x.Sel.Name)
	case *ast.IndexExpr:
		return resolvePath(info, x.X)
	case *ast.StarExpr:
		return resolvePath(info, x.X)
	default:
		return nil, nil
	}
}

func pathString(w write) string { return strings.Join(w.path, ".") }

// capturedBy reports whether obj is declared outside the task closure
// (and is a variable — writes to captured funcs/types are impossible).
func capturedBy(task *ast.FuncLit, obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < task.Pos() || obj.Pos() >= task.End()
}
