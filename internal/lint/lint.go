// Package lint is the registry of bgplint's determinism and
// parallel-safety analyzers. cmd/bgplint runs them all; see each
// analyzer package for the invariant it encodes and DESIGN.md
// ("Determinism invariants") for why the invariants exist.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/detrand"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seedflow"
	"repro/internal/lint/sharedfold"
)

// Analyzers returns the full bgplint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		seedflow.Analyzer,
		sharedfold.Analyzer,
	}
}
