// Package lint is the registry of bgplint's determinism,
// parallel-safety, and concurrency-invariant analyzers. cmd/bgplint
// runs them all; see each analyzer package for the invariant it
// encodes and DESIGN.md ("Determinism invariants", "Concurrency
// invariants") for why the invariants exist.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicpub"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/commitseq"
	"repro/internal/lint/detrand"
	"repro/internal/lint/errcode"
	"repro/internal/lint/frozen"
	"repro/internal/lint/idkind"
	"repro/internal/lint/lockguard"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seedtaint"
	"repro/internal/lint/sharedfold"
)

// Analyzers returns the full bgplint suite, in stable order.
// callgraph is a fact-only pass (it never reports) that the
// interprocedural analyzers consume for propagation.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicpub.Analyzer,
		callgraph.Analyzer,
		commitseq.Analyzer,
		detrand.Analyzer,
		errcode.Analyzer,
		frozen.Analyzer,
		idkind.Analyzer,
		lockguard.Analyzer,
		maporder.Analyzer,
		seedtaint.Analyzer,
		sharedfold.Analyzer,
	}
}

// Severity maps an analyzer name to its reporting tier. "error"
// findings gate CI; "warning" findings surface in reports (and SARIF)
// but reviewers may baseline them; "note" analyzers exist only for
// their facts and never report. Unknown names default to "warning" so
// a future analyzer is never silently promoted to a gate.
func Severity(analyzer string) string {
	switch analyzer {
	case detrand.Analyzer.Name,
		maporder.Analyzer.Name,
		sharedfold.Analyzer.Name,
		seedtaint.Analyzer.Name,
		errcode.Analyzer.Name,
		lockguard.Analyzer.Name,
		frozen.Analyzer.Name,
		atomicpub.Analyzer.Name,
		commitseq.Analyzer.Name:
		return "error"
	case idkind.Analyzer.Name:
		return "warning"
	case callgraph.Analyzer.Name:
		return "note"
	}
	return "warning"
}
