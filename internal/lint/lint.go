// Package lint is the registry of bgplint's determinism,
// parallel-safety, concurrency-invariant, and hot-path performance
// analyzers. cmd/bgplint runs them all; see each analyzer package for
// the invariant it encodes and DESIGN.md ("Determinism invariants",
// "Concurrency invariants", "Hot-path invariants") for why the
// invariants exist.
package lint

import (
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicpub"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/commitseq"
	"repro/internal/lint/detrand"
	"repro/internal/lint/errcode"
	"repro/internal/lint/frozen"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/idkind"
	"repro/internal/lint/latebind"
	"repro/internal/lint/lockguard"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seedtaint"
	"repro/internal/lint/sharedfold"
)

// ToolVersion labels SARIF output and the -V line; it is the single
// place the suite version is spelled. Bump alongside analyzer
// additions: 2.0 = determinism suite, 3.0 = concurrency suite,
// 4.0 = hot-path performance suite (hotpath, latebind, warn tier).
const ToolVersion = "4.0"

// Severity tiers. SevError findings always gate CI; SevWarn findings
// print but only gate under -strict (perf smells shouldn't hard-fail
// like determinism bugs do); SevNote analyzers exist only for their
// facts and never report.
const (
	SevError = "error"
	SevWarn  = "warning"
	SevNote  = "note"
)

// Analyzers returns the full bgplint suite, in stable order.
// callgraph is a fact-only pass (it never reports) that the
// interprocedural analyzers consume for propagation.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicpub.Analyzer,
		callgraph.Analyzer,
		commitseq.Analyzer,
		detrand.Analyzer,
		errcode.Analyzer,
		frozen.Analyzer,
		hotpath.Analyzer,
		idkind.Analyzer,
		latebind.Analyzer,
		lockguard.Analyzer,
		maporder.Analyzer,
		seedtaint.Analyzer,
		sharedfold.Analyzer,
	}
}

// Severity maps an analyzer name to its reporting tier. Unknown names
// default to SevWarn so a future analyzer is never silently promoted
// to a gate.
func Severity(analyzer string) string {
	switch analyzer {
	case detrand.Analyzer.Name,
		maporder.Analyzer.Name,
		sharedfold.Analyzer.Name,
		seedtaint.Analyzer.Name,
		errcode.Analyzer.Name,
		lockguard.Analyzer.Name,
		frozen.Analyzer.Name,
		atomicpub.Analyzer.Name,
		commitseq.Analyzer.Name:
		return SevError
	case idkind.Analyzer.Name,
		hotpath.Analyzer.Name,
		latebind.Analyzer.Name:
		return SevWarn
	case callgraph.Analyzer.Name:
		return SevNote
	}
	return SevWarn
}

// Failing reports whether a fresh finding of the given severity fails
// the run. Errors always fail; warnings fail only under -strict; notes
// never fail (and never report in practice).
func Failing(severity string, strict bool) bool {
	switch severity {
	case SevError:
		return true
	case SevWarn:
		return strict
	}
	return false
}

// A RuleMeta describes one analyzer for rule tables (SARIF, usage
// text, README drift tests): its registry name, severity tier, and the
// first line of its Doc.
type RuleMeta struct {
	Name     string
	Severity string
	Summary  string
}

// Rules returns one RuleMeta per registered analyzer, in registry
// order, so every rule table in the tool is derived from the same
// registry and cannot drift from it.
func Rules() []RuleMeta {
	analyzers := Analyzers()
	rules := make([]RuleMeta, 0, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		rules = append(rules, RuleMeta{Name: a.Name, Severity: Severity(a.Name), Summary: doc})
	}
	return rules
}
