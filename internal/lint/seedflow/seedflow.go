// Package seedflow defines the bgplint analyzer that polices seed
// provenance: every random source in the pipeline must be derived from
// a Config.Seed-style value, so that one seed determines the whole
// campaign.
//
// The repo's discipline (internal/sched/engine.go builds its rng as
// rand.New(rand.NewSource(cfg.Seed)); faultgen, workload and
// checkpoint thread seeds the same way) means re-running with the same
// Config reproduces every draw. A rand.NewSource(time.Now().UnixNano())
// — the canonical Go idiom everywhere else — or a bare magic-number
// seed in shipped code silently severs that chain. seedflow accepts an
// argument that mentions a seed-named identifier or field (seed,
// Seed, baseSeed, cfg.Seed, deriveSeed(...)), and accepts literal
// seeds in _test.go files, where pinned constants are the point.
package seedflow

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flag random sources whose seed is not derived from a Config.Seed-style value\n\n" +
		"rand.NewSource (and the math/rand/v2 constructors) must be fed a value\n" +
		"traceable to a configuration seed — an identifier or field whose name\n" +
		"ends in \"seed\"/\"Seed\", or a derivation thereof. Literal seeds are\n" +
		"allowed only in _test.go files.",
	Run: run,
}

// sourceCtors are the constructors whose argument is a seed:
// math/rand.NewSource(int64) and the math/rand/v2 generators.
var sourceCtors = map[string]map[string]bool{
	"math/rand":    {"NewSource": true},
	"math/rand/v2": {"NewPCG": true, "NewChaCha8": true},
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		ctors, ok := sourceCtors[fn.Pkg().Path()]
		if !ok || !ctors[fn.Name()] {
			return
		}
		for _, arg := range call.Args {
			if seedDerived(arg) {
				return
			}
		}
		if allLiterals(call.Args) && lintutil.IsTestFile(pass.Fset, call.Pos()) {
			return // pinned test seeds are the point of seeding
		}
		pass.Reportf(call.Pos(),
			"%s.%s argument is not derived from a Config.Seed-style value; thread the campaign seed (or a deriveSeed(...) of it) so one seed reproduces the whole run (seedflow)",
			fn.Pkg().Name(), fn.Name())
	})
	return nil, nil
}

// seedDerived reports whether the expression mentions a seed-named
// identifier, field, or function: seed, Seed, cfg.Seed, baseSeed,
// deriveSeed(x), SeedForShard(i)... The check is syntactic taint — it
// asks "did a seed flow in here", not "is the arithmetic sound".
func seedDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			lower := strings.ToLower(id.Name)
			if lower == "seed" || strings.HasSuffix(lower, "seed") || strings.Contains(lower, "seed") {
				found = true
			}
		}
		return !found
	})
	return found
}

// allLiterals reports whether every argument is built purely from
// literals (42, uint64(7), [32]byte{...}), with no variables.
func allLiterals(args []ast.Expr) bool {
	for _, a := range args {
		literal := true
		ast.Inspect(a, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Type names in conversions are fine; anything
				// lower-level would need type info, so accept only
				// universe-scope type-ish names and digits.
				if !isTypeName(n.Name) {
					literal = false
				}
			case *ast.BasicLit, nil:
			case *ast.CallExpr, *ast.CompositeLit, *ast.UnaryExpr, *ast.BinaryExpr, *ast.ParenExpr, *ast.ArrayType:
			default:
				_ = n
			}
			return literal
		})
		if !literal {
			return false
		}
	}
	return true
}

var typeNames = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"byte": true, "rune": true, "uintptr": true,
}

func isTypeName(s string) bool { return typeNames[s] }
