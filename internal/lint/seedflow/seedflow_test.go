package seedflow_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/seedflow"
)

func TestSeedflow(t *testing.T) {
	linttest.Run(t, "testdata", seedflow.Analyzer, "seedflowtest")
}
