// Fixture for the seedflow analyzer: every random source must trace
// back to a Config.Seed-style value.
package seedflowtest

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

type Config struct{ Seed int64 }

func goodConfigSeed(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func goodDerived(cfg Config, shard int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(cfg.Seed, shard)))
}

func goodLocalSeedVar(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1))
}

func goodV2(cfg Config) *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(cfg.Seed), 0))
}

func deriveSeed(seed int64, shard int) int64 {
	return seed*1000003 + int64(shard)
}

func badWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `not derived from a Config\.Seed-style value`
}

func badMagicLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `not derived from a Config\.Seed-style value`
}

func badOpaqueVar(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x)) // want `not derived from a Config\.Seed-style value`
}

func badV2Literal() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `not derived from a Config\.Seed-style value`
}
