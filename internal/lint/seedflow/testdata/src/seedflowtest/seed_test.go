package seedflowtest

import "math/rand"

// Literal seeds in _test.go files are the sanctioned way to pin a
// campaign: no diagnostics here.
func pinnedCampaign() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func pinnedConverted() *rand.Rand {
	return rand.New(rand.NewSource(int64(7)))
}
