// Package seedtaint defines the bgplint analyzer that polices seed
// provenance interprocedurally: every random source in the pipeline
// must be fed a value traceable to a Config.Seed-style origin — a
// seed-named identifier or field, a -seed flag registration, or a
// SubSeed/deriveSeed-style split — through any number of calls.
//
// It replaces the older seedflow analyzer, which only inspected the
// literal argument expression of rand.NewSource. seedtaint understands
// that a function which merely forwards its parameter into a seed sink
// is not itself at fault: the obligation to supply provenance moves to
// its callers. Concretely, if F(x) passes x to rand.NewSource, F's
// first parameter becomes a seed sink (exported as a SinkFact so the
// obligation crosses package boundaries), and a call F(42) in shipped
// code is flagged where the unseeded value actually enters the chain.
//
// Accepted provenance, checked syntactically on the value's def-use
// chain: any identifier whose name contains "seed" (seed, Seed,
// cfg.Seed, baseSeed, SubSeed(...), deriveSeed(...)), or a flag
// registration whose flag name mentions "seed". Literal seeds are
// allowed only in _test.go files, where pinned constants are the
// point. A value that reaches a sink with neither provenance nor a
// parameter to blame is reported at that call site.
package seedtaint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedtaint",
	Doc: "flag random-source seeds that are not derived from a Config.Seed-style value, across calls\n\n" +
		"rand.NewSource (and the math/rand/v2 constructors) must be fed a value\n" +
		"traceable to a configuration seed. Functions that forward a parameter\n" +
		"into a seed sink become sinks themselves (a SinkFact visible across\n" +
		"packages); the diagnostic lands where an unseeded value first enters\n" +
		"the chain. Literal seeds are allowed only in _test.go files.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*SinkFact)(nil)},
}

// A SinkFact marks a function whose listed parameters (0-based) flow
// into a random-source seed without independent provenance: callers
// must supply seed-derived values there.
type SinkFact struct {
	Params []int
}

// AFact marks SinkFact as a fact type.
func (*SinkFact) AFact() {}

func (f *SinkFact) String() string {
	return fmt.Sprintf("seedsink%v", f.Params)
}

// builtinSinks are the ground-truth sinks: constructor parameters that
// ARE the seed. math/rand.NewSource(seed) and the math/rand/v2
// generators.
var builtinSinks = map[string]map[string][]int{
	"math/rand":    {"NewSource": {0}},
	"math/rand/v2": {"NewPCG": {0, 1}, "NewChaCha8": {0}},
}

type checker struct {
	pass   *analysis.Pass
	graph  *callgraph.Result
	sinks  map[*types.Func][]int       // package-local sink params, grown to fixpoint
	params map[*types.Func]map[*types.Var]int
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:   pass,
		graph:  pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		sinks:  make(map[*types.Func][]int),
		params: make(map[*types.Func]map[*types.Var]int),
	}

	// Fixpoint: a function whose parameter reaches a sink becomes a
	// sink, which may in turn promote its callers. Monotone over the
	// finite set of (function, param) pairs, so this terminates.
	worklist := append([]*callgraph.Node(nil), c.graph.Order...)
	for len(worklist) > 0 {
		node := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if c.propagate(node) {
			worklist = append(worklist, c.graph.CallersOf[node.Fn]...)
		}
	}
	for fn, idxs := range c.sinks {
		sort.Ints(idxs)
		pass.ExportObjectFact(fn, &SinkFact{Params: idxs})
	}

	// Reporting pass, over files in source order so output is
	// deterministic: flag sites where a ground (parameterless,
	// provenance-free) value enters the sink chain.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := c.graph.Nodes[fn]
			if node == nil {
				continue
			}
			c.report(node)
		}
	}
	return nil, nil
}

// sinkParams returns the seed-sink parameter indices of fn: builtin
// constructors, package-local fixpoint state, or an imported fact.
func (c *checker) sinkParams(fn *types.Func) []int {
	if fn.Pkg() != nil {
		if ctors, ok := builtinSinks[fn.Pkg().Path()]; ok {
			return ctors[fn.Name()]
		}
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.sinks[fn]
	}
	var fact SinkFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// classifyCall classifies the sink-relevant arguments of one call as
// a unit: provenance on ANY sink argument satisfies the whole call
// (NewPCG(cfg.Seed, 0) is fine — the stream selector need not be
// seed-derived), otherwise params is the union of parameter indices
// the sink arguments depend on.
func (c *checker) classifyCall(node *callgraph.Node, call callgraph.Call, idxs []int) (ok bool, params map[int]bool) {
	params = make(map[int]bool)
	for _, idx := range idxs {
		if idx >= len(call.Site.Args) {
			continue
		}
		res := c.classify(node, call.Site.Args[idx], nil)
		if res.ok {
			return true, nil
		}
		for p := range res.params {
			params[p] = true
		}
	}
	return false, params
}

// propagate promotes node.Fn's parameters that flow into a sink call
// without provenance; it reports whether the sink set grew.
func (c *checker) propagate(node *callgraph.Node) bool {
	changed := false
	for _, call := range node.Calls {
		idxs := c.sinkParams(call.Callee)
		if len(idxs) == 0 {
			continue
		}
		ok, params := c.classifyCall(node, call, idxs)
		if ok {
			continue
		}
		for p := range params {
			if c.addSink(node.Fn, p) {
				changed = true
			}
		}
	}
	return changed
}

func (c *checker) addSink(fn *types.Func, idx int) bool {
	for _, have := range c.sinks[fn] {
		if have == idx {
			return false
		}
	}
	c.sinks[fn] = append(c.sinks[fn], idx)
	return true
}

// report flags the ground violations in node: sink calls with no seed
// provenance on any sink argument and no parameter to pass the
// obligation to.
func (c *checker) report(node *callgraph.Node) {
	reported := make(map[*ast.CallExpr]bool)
	for _, call := range node.Calls {
		idxs := c.sinkParams(call.Callee)
		if len(idxs) == 0 || reported[call.Site] {
			continue
		}
		ok, params := c.classifyCall(node, call, idxs)
		if ok || len(params) > 0 {
			continue
		}
		sinkArgs := make([]ast.Expr, 0, len(idxs))
		for _, idx := range idxs {
			if idx < len(call.Site.Args) {
				sinkArgs = append(sinkArgs, call.Site.Args[idx])
			}
		}
		if allLiterals(sinkArgs) && lintutil.IsTestFile(c.pass.Fset, call.Site.Pos()) {
			continue // pinned test seeds are the point of seeding
		}
		callee := call.Callee
		if isBuiltinSink(callee) {
			c.pass.Reportf(call.Site.Pos(),
				"%s.%s argument is not derived from a Config.Seed-style value; thread the campaign seed (or a SubSeed-style derivation of it) so one seed reproduces the whole run (seedtaint)",
				callee.Pkg().Name(), callee.Name())
		} else {
			c.pass.Reportf(call.Site.Pos(),
				"argument #%d to %s.%s flows to a random-source seed without seed provenance; pass a value derived from the campaign seed (seedtaint)",
				idxs[0]+1, callee.Pkg().Name(), callee.Name())
		}
		reported[call.Site] = true
	}
}

// taint is the classification of one value expression.
type taint struct {
	// ok means seed provenance was found somewhere in the value's
	// def-use chain.
	ok bool
	// params holds the enclosing function's parameter indices the
	// value depends on; when ok is false and params is empty the value
	// is ground — nobody upstream can fix it.
	params map[int]bool
}

// classify determines where the value of e comes from, chasing local
// variable assignments inside node's body. visiting guards against
// assignment cycles (x = x + 1).
func (c *checker) classify(node *callgraph.Node, e ast.Expr, visiting map[types.Object]bool) taint {
	res := taint{params: make(map[int]bool)}
	if seedDerived(e) {
		res.ok = true
		return res
	}
	info := c.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if res.ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isSeedFlagCall(info, n) {
				res.ok = true
				return false
			}
		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if idx, isParam := c.paramIndex(node.Fn, v); isParam {
				res.params[idx] = true
				return true
			}
			sub := c.classifyVar(node, v, visiting)
			if sub.ok {
				res.ok = true
				return false
			}
			for p := range sub.params {
				res.params[p] = true
			}
		}
		return true
	})
	return res
}

// classifyVar chases the assignments to local variable v inside node's
// body and merges the classification of every right-hand side.
func (c *checker) classifyVar(node *callgraph.Node, v *types.Var, visiting map[types.Object]bool) taint {
	res := taint{params: make(map[int]bool)}
	if v.Pkg() != c.pass.Pkg || node.Decl.Body == nil {
		return res
	}
	if visiting == nil {
		visiting = make(map[types.Object]bool)
	}
	if visiting[v] {
		return res
	}
	visiting[v] = true
	defer delete(visiting, v)

	info := c.pass.TypesInfo
	owns := func(id *ast.Ident) bool {
		return info.Defs[id] == v || info.Uses[id] == v
	}
	merge := func(rhs ast.Expr) {
		sub := c.classify(node, rhs, visiting)
		if sub.ok {
			res.ok = true
		}
		for p := range sub.params {
			res.params[p] = true
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !owns(id) {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					merge(st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					merge(st.Rhs[0]) // x, y := f(...): blame the call
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if !owns(id) {
					continue
				}
				if i < len(st.Values) {
					merge(st.Values[i])
				} else if len(st.Values) == 1 {
					merge(st.Values[0])
				}
			}
		}
		return true
	})
	return res
}

// paramIndex resolves v as a declared parameter of fn.
func (c *checker) paramIndex(fn *types.Func, v *types.Var) (int, bool) {
	m, ok := c.params[fn]
	if !ok {
		m = make(map[*types.Var]int)
		if sig, sok := fn.Type().(*types.Signature); sok {
			for i := 0; i < sig.Params().Len(); i++ {
				m[sig.Params().At(i)] = i
			}
		}
		c.params[fn] = m
	}
	idx, ok := m[v]
	return idx, ok
}

func isBuiltinSink(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	ctors, ok := builtinSinks[fn.Pkg().Path()]
	return ok && len(ctors[fn.Name()]) > 0
}

// isSeedFlagCall recognizes flag registrations that define the
// campaign seed: flag.Int64("seed", ...), fs.Uint64("base-seed", ...).
// The flag NAME carries the provenance even when no identifier does.
func isSeedFlagCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "flag" {
		return false
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.BasicLit); ok &&
			strings.Contains(strings.ToLower(lit.Value), "seed") {
			return true
		}
	}
	return false
}

// seedDerived reports whether the expression mentions a seed-named
// identifier, field, or function: seed, Seed, cfg.Seed, baseSeed,
// SubSeed(x), SeedForShard(i)... The check is syntactic taint — it
// asks "did a seed flow in here", not "is the arithmetic sound".
func seedDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if strings.Contains(strings.ToLower(id.Name), "seed") {
				found = true
			}
		}
		return !found
	})
	return found
}

// allLiterals reports whether every expression is built purely from
// literals (42, uint64(7), [32]byte{...}), with no variables.
func allLiterals(args []ast.Expr) bool {
	for _, a := range args {
		literal := true
		ast.Inspect(a, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if !typeNames[n.Name] {
					literal = false
				}
			case *ast.BasicLit, nil:
			case *ast.CallExpr, *ast.CompositeLit, *ast.UnaryExpr, *ast.BinaryExpr, *ast.ParenExpr, *ast.ArrayType:
			default:
				_ = n
			}
			return literal
		})
		if !literal {
			return false
		}
	}
	return true
}

var typeNames = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"byte": true, "rune": true, "uintptr": true,
}
