package seedtaint_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/seedtaint"
)

func TestSeedtaint(t *testing.T) {
	linttest.Run(t, "testdata", seedtaint.Analyzer, "seedtainttest")
}

// TestSeedtaintPolicyRegistry covers the sched policy-registry
// pattern: a Policy constructing a private rand.New instead of drawing
// from the engine-provided seeded RNG is flagged.
func TestSeedtaintPolicyRegistry(t *testing.T) {
	linttest.Run(t, "testdata", seedtaint.Analyzer, "policyreg")
}

// TestSinkFactExport checks the dependency fixture in isolation: its
// forwarding constructor must export a SinkFact on its first parameter
// (and report nothing, which linttest.Run on the importing fixture
// already enforces).
func TestSinkFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", seedtaint.Analyzer, "seedsink")
	var f seedtaint.SinkFact
	if !store.ImportObjectFactByPath("seedsink", "Make", &f) {
		t.Fatal("no SinkFact exported for seedsink.Make")
	}
	if len(f.Params) != 1 || f.Params[0] != 0 {
		t.Errorf("SinkFact for seedsink.Make = %v, want [0]", f.Params)
	}
}
