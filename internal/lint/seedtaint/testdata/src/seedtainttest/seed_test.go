package seedtainttest

import (
	"math/rand"

	"seedsink"
)

// Literal seeds in _test.go files are the sanctioned way to pin a
// campaign: no diagnostics here, even through a forwarding sink.
func pinnedCampaign() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func pinnedConverted() *rand.Rand {
	return rand.New(rand.NewSource(int64(7)))
}

func pinnedThroughSink() *rand.Rand {
	return seedsink.Make(3)
}
