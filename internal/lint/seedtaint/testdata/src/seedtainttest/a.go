// Fixture for the seedtaint analyzer: every random source must trace
// back to a Config.Seed-style value, through any number of calls.
package seedtainttest

import (
	"flag"
	"math/rand"
	randv2 "math/rand/v2"
	"time"

	"seedsink"
)

type Config struct{ Seed int64 }

func goodConfigSeed(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func goodDerived(cfg Config, shard int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(cfg.Seed, shard)))
}

func goodLocalSeedVar(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1))
}

func goodV2(cfg Config) *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(cfg.Seed), 0))
}

func goodFlag() *rand.Rand {
	f := flag.Int64("seed", 1, "campaign seed")
	return rand.New(rand.NewSource(*f))
}

func goodLocalChain(cfg Config) *rand.Rand {
	s := cfg.Seed*1000003 + 17
	return rand.New(rand.NewSource(s))
}

func deriveSeed(seed int64, shard int) int64 {
	return seed*1000003 + int64(shard)
}

func badWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `not derived from a Config\.Seed-style value`
}

func badMagicLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `not derived from a Config\.Seed-style value`
}

func badV2Literal() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `not derived from a Config\.Seed-style value`
}

func badLocalChain() *rand.Rand {
	x := time.Now().UnixNano()
	return rand.New(rand.NewSource(x)) // want `not derived from a Config\.Seed-style value`
}

// forward passes its parameter straight into the sink: not a violation
// here — the obligation moves to forward's callers via a SinkFact.
func forward(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x))
}

// wrap adds a second hop to the chain.
func wrap(y int64) *rand.Rand {
	return forward(y + 3)
}

func goodForwardCaller(cfg Config) *rand.Rand {
	return forward(cfg.Seed)
}

func badForwardCaller() *rand.Rand {
	return forward(time.Now().UnixNano()) // want `argument #1 to seedtainttest\.forward flows to a random-source seed`
}

func badTwoHop() *rand.Rand {
	return wrap(99) // want `argument #1 to seedtainttest\.wrap flows to a random-source seed`
}

// The sink obligation crosses package boundaries: seedsink.Make
// forwards its argument to rand.NewSource, so an unseeded literal here
// is flagged via the imported SinkFact.
func badCrossPackage() *rand.Rand {
	return seedsink.Make(7) // want `argument #1 to seedsink\.Make flows to a random-source seed`
}

func goodCrossPackage(cfg Config) *rand.Rand {
	return seedsink.Make(deriveSeed(cfg.Seed, 4))
}
