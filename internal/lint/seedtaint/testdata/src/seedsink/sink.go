// Fixture dependency for the seedtaint cross-package test: Make
// forwards its parameter into rand.NewSource, so analyzing this
// package exports a SinkFact{Params: [0]} that the importing fixture
// consumes.
package seedsink

import "math/rand"

func Make(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x))
}
