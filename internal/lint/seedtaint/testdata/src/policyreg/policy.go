// Fixture for the seedtaint analyzer: the sched policy-registry
// pattern. A Policy must draw all randomness from the engine-provided,
// seed-derived generator it is handed through its Env; a policy that
// constructs a private rand.New from a literal or the wall clock
// breaks the determinism contract and is flagged.
package policyreg

import (
	"math/rand"
	"time"
)

type env struct{ rng *rand.Rand }

func (e env) RNG() *rand.Rand { return e.rng }

type goodPolicy struct{}

func (goodPolicy) place(e env, n int) int {
	return e.RNG().Intn(n) // ok: the engine's seeded RNG
}

type rogueLiteralPolicy struct{}

func (rogueLiteralPolicy) place(_ env, n int) int {
	rng := rand.New(rand.NewSource(42)) // want `not derived from a Config\.Seed-style value`
	return rng.Intn(n)
}

type rogueClockPolicy struct{}

func (rogueClockPolicy) place(_ env, n int) int {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) // want `not derived from a Config\.Seed-style value`
	return rng.Intn(n)
}

// seeded construction stays legal when the seed value is threaded in
// from the engine configuration.
type engineConfig struct{ Seed int64 }

func newEngineRNG(cfg engineConfig) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}
