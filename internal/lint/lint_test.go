package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/sarif"
)

// TestRegistry pins the analyzer suite's shape: thirteen analyzers in
// stable alphabetical order, each with a name, a one-line doc summary,
// and a severity in one of the three tiers. A new analyzer that forgets
// a Severity case lands in SevWarn by design (never silently a gate),
// but it must still be deliberate — so the tier sets are spelled out
// here and drift fails loudly.
func TestRegistry(t *testing.T) {
	analyzers := lint.Analyzers()
	if len(analyzers) != 13 {
		t.Fatalf("registry has %d analyzers, want 13", len(analyzers))
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q has empty Name or Doc", a.Name)
		}
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("registry not in alphabetical order: %v", names)
	}

	wantTier := map[string]string{
		"atomicpub": lint.SevError, "commitseq": lint.SevError,
		"detrand": lint.SevError, "errcode": lint.SevError,
		"frozen": lint.SevError, "lockguard": lint.SevError,
		"maporder": lint.SevError, "seedtaint": lint.SevError,
		"sharedfold": lint.SevError,
		"hotpath":    lint.SevWarn, "idkind": lint.SevWarn,
		"latebind":  lint.SevWarn,
		"callgraph": lint.SevNote,
	}
	for _, n := range names {
		if got, want := lint.Severity(n), wantTier[n]; got != want {
			t.Errorf("Severity(%q) = %q, want %q", n, got, want)
		}
	}
	// Unknown analyzers default to warning, never to a gate.
	if got := lint.Severity("no-such-analyzer"); got != lint.SevWarn {
		t.Errorf("Severity(unknown) = %q, want %q", got, lint.SevWarn)
	}
}

// TestFailing is the exit-contract truth table: errors always fail,
// warnings fail only under -strict, notes never fail.
func TestFailing(t *testing.T) {
	cases := []struct {
		sev    string
		strict bool
		want   bool
	}{
		{lint.SevError, false, true},
		{lint.SevError, true, true},
		{lint.SevWarn, false, false},
		{lint.SevWarn, true, true},
		{lint.SevNote, false, false},
		{lint.SevNote, true, false},
	}
	for _, c := range cases {
		if got := lint.Failing(c.sev, c.strict); got != c.want {
			t.Errorf("Failing(%q, strict=%v) = %v, want %v", c.sev, c.strict, got, c.want)
		}
	}
}

// TestRulesMatchRegistry checks that the shared rule metadata — the
// source of the SARIF rule table, the usage text, and the README table
// — has exactly one entry per registered analyzer, in registry order,
// with a non-empty summary and the registry's severity.
func TestRulesMatchRegistry(t *testing.T) {
	analyzers := lint.Analyzers()
	rules := lint.Rules()
	if len(rules) != len(analyzers) {
		t.Fatalf("Rules() has %d entries, registry has %d", len(rules), len(analyzers))
	}
	for i, r := range rules {
		if r.Name != analyzers[i].Name {
			t.Errorf("rules[%d] = %q, want registry order %q", i, r.Name, analyzers[i].Name)
		}
		if r.Summary == "" {
			t.Errorf("rule %q has an empty summary", r.Name)
		}
		if strings.Contains(r.Summary, "\n") {
			t.Errorf("rule %q summary is not a single line: %q", r.Name, r.Summary)
		}
		if r.Severity != lint.Severity(r.Name) {
			t.Errorf("rule %q severity %q != Severity(%q) %q", r.Name, r.Severity, r.Name, lint.Severity(r.Name))
		}
	}
}

// TestSARIFRuleCount builds a SARIF report the way cmd/bgplint does —
// one sarif.Rule per Rules() entry — and asserts the emitted rule table
// matches the registry size with the registry's severity levels, so the
// artifact CI uploads can never under-report the suite.
func TestSARIFRuleCount(t *testing.T) {
	metas := lint.Rules()
	rules := make([]sarif.Rule, 0, len(metas))
	for _, m := range metas {
		rules = append(rules, sarif.Rule{
			ID:               m.Name,
			ShortDescription: sarif.Message{Text: m.Summary},
			DefaultConfig:    &sarif.RuleConfig{Level: m.Severity},
		})
	}
	var buf bytes.Buffer
	if err := sarif.Build(lint.ToolVersion, rules, nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got, want := strings.Count(out, `"id":`), len(lint.Analyzers()); got != want {
		t.Errorf("SARIF report carries %d rule ids, want %d (one per analyzer)", got, want)
	}
	for _, m := range metas {
		if !strings.Contains(out, `"id": "`+m.Name+`"`) && !strings.Contains(out, `"id":"`+m.Name+`"`) {
			t.Errorf("SARIF report has no rule entry for %q", m.Name)
		}
	}
	if !strings.Contains(out, lint.ToolVersion) {
		t.Errorf("SARIF report does not carry ToolVersion %s", lint.ToolVersion)
	}
}

// TestREADMETableMatchesRegistry keeps the README's analyzer table in
// lockstep with the registry: one `name` | severity row per analyzer,
// no rows for analyzers that no longer exist. callgraph's fact-only row
// is part of the table like any other.
func TestREADMETableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\| (error|warning|note) \\|")
	rows := make(map[string]string)
	for _, m := range rowRe.FindAllStringSubmatch(string(data), -1) {
		rows[m[1]] = m[2]
	}
	for _, r := range lint.Rules() {
		sev, ok := rows[r.Name]
		if !ok {
			t.Errorf("README analyzer table has no row for %q", r.Name)
			continue
		}
		if sev != r.Severity {
			t.Errorf("README lists %q as %s, registry says %s", r.Name, sev, r.Severity)
		}
		delete(rows, r.Name)
	}
	for name := range rows {
		t.Errorf("README analyzer table lists %q, which is not in the registry", name)
	}
}
