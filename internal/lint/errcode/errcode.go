// Package errcode defines the bgplint analyzer that cross-checks
// ERRCODE usage in the pipeline packages against the Intrepid catalog
// (internal/errcat) at analysis time. The lint binary links the real
// catalog, so the checks can never drift from the data they guard.
//
// In internal/simulate, internal/faultgen, and internal/report it
// reports:
//
//   - a record emitted with Severity SevFatal whose ErrCode constant is
//     not one of the catalog's 82 FATAL types;
//   - a catalog ERRCODE emitted with a non-FATAL severity (the catalog
//     is, by construction, the FATAL population — even the two
//     false-fatal alarms carry severity FATAL);
//   - an errcat.Code composite literal whose Class or Interrupting
//     contradicts the catalog entry of the same name (ground-truth
//     drift);
//   - any code-shaped string constant ("_bgp_err_…", "bg_…",
//     ALL_CAPS_WITH_UNDERSCORES) that is not a catalog name — the typo
//     check for Lookup arguments and ad-hoc comparisons. Free-form
//     strings ("boot_progress") are not code-shaped and never flagged.
//
// Functions that forward a string parameter into an ErrCode field are
// emitters: the parameter index is exported as a CodeParamFact
// (propagated through the call graph), so a literal passed to an
// emitter in another package is validated against the catalog too.
package errcode

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"repro/internal/errcat"
	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "cross-check ERRCODE strings and severity/class pairings against the Intrepid catalog\n\n" +
		"Every ERRCODE constant emitted as FATAL by simulate, faultgen, or\n" +
		"report must name one of the catalog's 82 types; catalog codes must be\n" +
		"emitted FATAL; errcat.Code literals must not contradict the catalog's\n" +
		"ground truth. String parameters that flow into ErrCode fields are\n" +
		"tracked as facts, so the checks follow helper calls across packages.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*CodeParamFact)(nil)},
}

// A CodeParamFact marks a function whose listed parameters (0-based)
// are used as ERRCODE strings: literal arguments there must be catalog
// names.
type CodeParamFact struct {
	Params []int
}

// AFact marks CodeParamFact as a fact type.
func (*CodeParamFact) AFact() {}

// restricted matches the packages whose emissions are checked; the
// catalog-owning errcat package itself is deliberately outside it (its
// format strings would trip the shape check).
var restricted = regexp.MustCompile(`(^|/)internal/(simulate|faultgen|report)(/|$)`)

// codeShape matches strings that look like ERRCODE names: the Blue
// Gene/P kernel prefixes and the ALL_CAPS_WITH_UNDERSCORES families.
// It gates reporting in ERRCODE contexts (record literals, errcat.Code
// literals, emitter arguments).
var codeShape = regexp.MustCompile(`^(_bgp_|bg_)[a-z0-9_]+$|^[A-Z][A-Z0-9]*(_[A-Z0-9]+)+$`)

// sweepShape is the stricter shape the context-free sweep uses: only
// the kernel prefixes are distinctive enough to claim outside an
// ERRCODE position. ALL_CAPS names are shared with RAS message IDs
// (MMCS_INFO_01) and ordinary constants, so a bare uppercase literal
// is not evidence of an ERRCODE.
var sweepShape = regexp.MustCompile(`^(_bgp_|bg_)[a-z0-9_]+$`)

// catalog is the linked-in ground truth.
var catalog = errcat.Intrepid()

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Result
	sinks   map[*types.Func][]int // package-local ERRCODE params
	params  map[*types.Func]map[*types.Var]int
	handled map[token.Pos]bool // string positions checked in context
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		graph:   pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		sinks:   make(map[*types.Func][]int),
		params:  make(map[*types.Func]map[*types.Var]int),
		handled: make(map[token.Pos]bool),
	}

	// Fact fixpoint: a parameter used as an ErrCode field value — or
	// forwarded to another emitter's code parameter — makes its
	// function an emitter. Runs in every package so helpers anywhere
	// are summarized.
	worklist := append([]*callgraph.Node(nil), c.graph.Order...)
	for len(worklist) > 0 {
		node := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if c.findEmitterParams(node) {
			worklist = append(worklist, c.graph.CallersOf[node.Fn]...)
		}
	}
	for fn, idxs := range c.sinks {
		sort.Ints(idxs)
		pass.ExportObjectFact(fn, &CodeParamFact{Params: idxs})
	}

	// Reporting is gated to the pipeline packages.
	if !restricted.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CompositeLit:
			c.checkRecordLit(n)
			c.checkCodeLit(n)
		case *ast.CallExpr:
			c.checkEmitterCall(n)
		}
	})
	// The shape sweep runs last so in-context strings stay claimed by
	// the richer checks above.
	pass.Preorder(func(n ast.Node) {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || c.handled[lit.Pos()] {
			return
		}
		if s, ok := c.stringVal(lit); ok && sweepShape.MatchString(s) {
			if _, known := catalog.Lookup(s); !known {
				c.pass.Reportf(lit.Pos(), "ERRCODE %q is not in the Intrepid catalog (errcode)", s)
			}
		}
	})
	return nil, nil
}

// codeParams resolves a callee's ERRCODE parameter indices: local
// fixpoint state for this package, an imported fact otherwise.
func (c *checker) codeParams(fn *types.Func) []int {
	if fn.Pkg() == c.pass.Pkg {
		return c.sinks[fn]
	}
	var fact CodeParamFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// findEmitterParams grows the sink set of node.Fn; reports change.
func (c *checker) findEmitterParams(node *callgraph.Node) bool {
	changed := false
	promote := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if idx, isParam := c.paramIndex(node.Fn, v); isParam {
			if c.addSink(node.Fn, idx) {
				changed = true
			}
		}
	}
	ast.Inspect(node.Decl, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "ErrCode" {
					promote(kv.Value)
				}
			}
		}
		return true
	})
	for _, call := range node.Calls {
		for _, idx := range c.codeParams(call.Callee) {
			if idx < len(call.Site.Args) {
				promote(call.Site.Args[idx])
			}
		}
	}
	return changed
}

func (c *checker) addSink(fn *types.Func, idx int) bool {
	for _, have := range c.sinks[fn] {
		if have == idx {
			return false
		}
	}
	c.sinks[fn] = append(c.sinks[fn], idx)
	return true
}

func (c *checker) paramIndex(fn *types.Func, v *types.Var) (int, bool) {
	m, ok := c.params[fn]
	if !ok {
		m = make(map[*types.Var]int)
		if sig, sok := fn.Type().(*types.Signature); sok {
			for i := 0; i < sig.Params().Len(); i++ {
				m[sig.Params().At(i)] = i
			}
		}
		c.params[fn] = m
	}
	idx, ok := m[v]
	return idx, ok
}

// checkRecordLit validates composite literals with an ErrCode field
// (raslog.Record and friends) against the catalog, using the sibling
// Severity field as context.
func (c *checker) checkRecordLit(cl *ast.CompositeLit) {
	var codeExpr ast.Expr
	var code string
	sevName := ""
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "ErrCode":
			if s, ok := c.stringVal(kv.Value); ok {
				codeExpr, code = kv.Value, s
			}
		case "Severity":
			sevName = c.constName(kv.Value, "Sev")
		}
	}
	if codeExpr == nil {
		return
	}
	c.handled[codeExpr.Pos()] = true
	_, known := catalog.Lookup(code)
	switch {
	case sevName == "SevFatal" && !known:
		c.pass.Reportf(codeExpr.Pos(), "ERRCODE %q is not in the Intrepid catalog (errcode)", code)
	case sevName != "" && sevName != "SevFatal" && known:
		c.pass.Reportf(codeExpr.Pos(),
			"catalog code %q is a FATAL ERRCODE but is emitted with severity %s (errcode)", code, sevName)
	case sevName == "" && !known && codeShape.MatchString(code):
		c.pass.Reportf(codeExpr.Pos(), "ERRCODE %q is not in the Intrepid catalog (errcode)", code)
	}
}

// checkCodeLit validates errcat.Code composite literals: duplicating a
// catalog entry with different ground truth is drift.
func (c *checker) checkCodeLit(cl *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Code" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "errcat" {
		return
	}
	var name string
	var nameExpr, classExpr, intExpr ast.Expr
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if s, ok := c.stringVal(kv.Value); ok {
				name, nameExpr = s, kv.Value
			}
		case "Class":
			classExpr = kv.Value
		case "Interrupting":
			intExpr = kv.Value
		}
	}
	if nameExpr == nil {
		return
	}
	c.handled[nameExpr.Pos()] = true
	entry, known := catalog.Lookup(name)
	if !known {
		if codeShape.MatchString(name) {
			c.pass.Reportf(nameExpr.Pos(), "ERRCODE %q is not in the Intrepid catalog (errcode)", name)
		}
		return
	}
	if classExpr != nil {
		if got := c.constName(classExpr, "Class"); got != "" {
			want := "ClassSystem"
			if entry.Class == errcat.ClassApplication {
				want = "ClassApplication"
			}
			if got != want {
				c.pass.Reportf(classExpr.Pos(),
					"code %q drifts from the Intrepid catalog: Class there is %s (errcode)", name, entry.Class)
			}
		}
	}
	if intExpr != nil {
		if tv, ok := c.pass.TypesInfo.Types[intExpr]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
			if constant.BoolVal(tv.Value) != entry.Interrupting {
				c.pass.Reportf(intExpr.Pos(),
					"code %q drifts from the Intrepid catalog: Interrupting there is %v (errcode)", name, entry.Interrupting)
			}
		}
	}
}

// checkEmitterCall validates constant-string arguments in ERRCODE
// positions of emitter calls: those ARE codes, so any non-catalog
// value — shaped or not — is a finding.
func (c *checker) checkEmitterCall(call *ast.CallExpr) {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for _, idx := range c.codeParams(fn) {
		if idx >= len(call.Args) {
			continue
		}
		s, ok := c.stringVal(call.Args[idx])
		if !ok {
			continue
		}
		c.handled[call.Args[idx].Pos()] = true
		if _, known := catalog.Lookup(s); !known {
			c.pass.Reportf(call.Args[idx].Pos(),
				"argument #%d to %s is ERRCODE %q, which is not in the Intrepid catalog (errcode)",
				idx+1, fn.Name(), s)
		}
	}
}

// stringVal resolves e as a compile-time string constant (literal or
// named constant reference).
func (c *checker) stringVal(e ast.Expr) (string, bool) {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constName resolves e as a reference to a named constant whose name
// starts with prefix ("Sev…", "Class…") and returns that name.
func (c *checker) constName(e ast.Expr, prefix string) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := c.pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || len(obj.Name()) < len(prefix) || obj.Name()[:len(prefix)] != prefix {
		return ""
	}
	return obj.Name()
}
