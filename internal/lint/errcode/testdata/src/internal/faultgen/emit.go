// Fixture dependency for the errcode cross-package test: Emit forwards
// its code parameter into an ErrCode field, so analyzing this package
// exports a CodeParamFact{Params: [0]} that the importing fixture's
// call sites are checked against.
package faultgen

import "raslog"

func Emit(code string, sev raslog.Severity) raslog.Record {
	return raslog.Record{ErrCode: code, Severity: sev}
}

// EmitDefault adds a propagation hop: its parameter reaches the
// ErrCode field through Emit.
func EmitDefault(code string) raslog.Record {
	return Emit(code, raslog.SevFatal)
}
