// Fixture for the errcode analyzer: ERRCODE strings and severity /
// class pairings in the pipeline packages must agree with the real
// Intrepid catalog linked into the lint binary.
package simulate

import (
	"errcat"
	"raslog"

	"internal/faultgen"
)

func goodFatal() raslog.Record {
	return raslog.Record{ErrCode: "_bgp_err_kernel_panic_00", Severity: raslog.SevFatal}
}

func goodNamedFamily() raslog.Record {
	return raslog.Record{ErrCode: "MMCS_BOOT_FAILURE_3", Severity: raslog.SevFatal}
}

// Free-form noise codes are not code-shaped and carry no severity
// obligation.
func goodNoise() raslog.Record {
	return raslog.Record{ErrCode: "boot_progress", Severity: raslog.SevInfo}
}

func badUnknownFatal() raslog.Record {
	return raslog.Record{ErrCode: "_bgp_err_kernel_panic_99", Severity: raslog.SevFatal} // want `ERRCODE "_bgp_err_kernel_panic_99" is not in the Intrepid catalog`
}

func badSeverity() raslog.Record {
	return raslog.Record{ErrCode: "BULK_POWER_FATAL", Severity: raslog.SevWarning} // want `catalog code "BULK_POWER_FATAL" is a FATAL ERRCODE but is emitted with severity SevWarning`
}

func goodCodeLit() errcat.Code {
	return errcat.Code{Name: "BULK_POWER_FATAL", Class: errcat.ClassSystem, Interrupting: false}
}

func badCodeDrift() errcat.Code {
	return errcat.Code{Name: "BULK_POWER_FATAL", Class: errcat.ClassApplication, Interrupting: true} // want `code "BULK_POWER_FATAL" drifts from the Intrepid catalog: Class there is system` `code "BULK_POWER_FATAL" drifts from the Intrepid catalog: Interrupting there is false`
}

// A shaped string anywhere in a pipeline package must be a catalog
// name — the typo check for ad-hoc comparisons and Lookup arguments.
func badShapedTypo(got string) bool {
	return got == "_bgp_err_tore_fatal_sum" // want `ERRCODE "_bgp_err_tore_fatal_sum" is not in the Intrepid catalog`
}

func goodShapedKnown(got string) bool {
	return got == "_bgp_err_torus_fatal_sum"
}

// RAS message IDs share the ALL_CAPS shape but are a different
// namespace: outside an ErrCode position the sweep must ignore them.
func goodMsgID() string {
	return "MMCS_INFO_01"
}

// Emitter calls resolve through CodeParamFact, including across the
// package boundary and through a propagation hop.
func badEmitterCall() raslog.Record {
	return faultgen.Emit("MMCS_BOOT_FAILURE_9", raslog.SevFatal) // want `argument #1 to Emit is ERRCODE "MMCS_BOOT_FAILURE_9", which is not in the Intrepid catalog`
}

func goodEmitterCall() raslog.Record {
	return faultgen.Emit("MMCS_BOOT_FAILURE_4", raslog.SevFatal)
}

func badEmitterHop() raslog.Record {
	return faultgen.EmitDefault("CARD_POWER_FAULT_7") // want `argument #1 to EmitDefault is ERRCODE "CARD_POWER_FAULT_7", which is not in the Intrepid catalog`
}

func goodEmitterHop() raslog.Record {
	return faultgen.EmitDefault("CARD_POWER_FAULT_2")
}
