// Fixture mirror of internal/raslog: errcode keys on the ErrCode and
// Severity field names and the Sev* constant names, which this mirror
// reproduces.
package raslog

type Severity int

const (
	SevUnknown Severity = iota
	SevDebug
	SevTrace
	SevInfo
	SevWarning
	SevError
	SevFatal
)

type Record struct {
	ErrCode  string
	Severity Severity
}
