// Fixture mirror of internal/errcat's types: errcode keys on the
// package name "errcat", the Code type name, and the Class* constant
// names. The catalog itself is NOT mirrored — the analyzer links the
// real Intrepid() catalog.
package errcat

type Class int

const (
	ClassSystem Class = iota
	ClassApplication
)

type Code struct {
	Name         string
	Class        Class
	Interrupting bool
	Weight       float64
}
