package errcode_test

import (
	"testing"

	"repro/internal/lint/errcode"
	"repro/internal/lint/linttest"
)

func TestErrcode(t *testing.T) {
	linttest.Run(t, "testdata", errcode.Analyzer, "internal/simulate")
}

// TestCodeParamFactExport checks the emitter fixture in isolation:
// both the direct ErrCode-field use and the one-hop forward must yield
// a CodeParamFact on parameter 0.
func TestCodeParamFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", errcode.Analyzer, "internal/faultgen")
	for _, fn := range []string{"Emit", "EmitDefault"} {
		var f errcode.CodeParamFact
		if !store.ImportObjectFactByPath("internal/faultgen", fn, &f) {
			t.Fatalf("no CodeParamFact exported for faultgen.%s", fn)
		}
		if len(f.Params) != 1 || f.Params[0] != 0 {
			t.Errorf("CodeParamFact(%s) = %v, want [0]", fn, f.Params)
		}
	}
}
