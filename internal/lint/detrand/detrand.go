// Package detrand defines the bgplint analyzer that bans ambient
// nondeterminism — the process-global math/rand source and the wall
// clock — inside the simulation core.
//
// The paper's 12 observations are reproducible only because every
// stage of the pipeline is a pure function of Config.Seed. The
// simulation packages therefore thread an explicit *rand.Rand (see
// internal/sched/engine.go, which builds its rng from cfg.Seed) and
// model time as simulated timestamps. A single rand.Intn or time.Now
// smuggled into those packages silently breaks seed-reproducibility
// and the byte-identical-output contract of the parallel engine, and
// no test reliably catches it. detrand makes it a lint error instead.
package detrand

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand and wall-clock calls in the seeded simulation packages\n\n" +
		"Within internal/{simulate,sched,faultgen,workload,core,filter,checkpoint,stats},\n" +
		"randomness must flow through an explicitly threaded *rand.Rand built from\n" +
		"Config.Seed, and time must be simulated, never read from the host clock.\n" +
		"Flags calls to math/rand (and math/rand/v2) package-level functions that\n" +
		"draw from the global source, and calls to time.Now/Since/Until.",
	Run:       run,
	FactTypes: []analysis.Fact{(*SummaryFact)(nil)},
}

// A SummaryFact records that a package contains ambient-nondeterminism
// call sites; it rides the vet fact files so tooling can aggregate
// per-package verdicts without re-running the analysis.
type SummaryFact struct {
	Findings int
}

// AFact marks SummaryFact as a fact type.
func (*SummaryFact) AFact() {}

// restricted matches the import paths of the packages that must stay
// seed-deterministic. Matching is by path suffix segments so the
// analyzer also fires on its own test fixtures.
var restricted = regexp.MustCompile(`(^|/)internal/(simulate|sched|faultgen|workload|core|filter|checkpoint|stats)(/|$)`)

// allowedRandFuncs are the math/rand package-level functions that do
// not touch the global source: they construct new generators, whose
// seed provenance the seedtaint analyzer polices separately.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// wallClockFuncs are the time package functions that read the host
// clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !restricted.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	count := 0
	report := pass.Report
	pass.Report = func(d analysis.Diagnostic) { count++; report(d) }
	defer func() {
		if count > 0 {
			pass.ExportPackageFact(&SummaryFact{Findings: count})
		}
	}()
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// Tests may use the clock (timeouts, benchmarks) and ad-hoc
		// randomness; the determinism contract covers shipped code.
		if lintutil.IsTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // methods (e.g. on a threaded *rand.Rand) are the sanctioned path
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !allowedRandFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to %s.%s uses the process-global random source; thread a *rand.Rand derived from Config.Seed instead (detrand)",
					fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to time.%s reads the wall clock inside a seeded simulation package; derive times from the simulated clock instead (detrand)",
					fn.Name())
			}
		}
	})
	return nil, nil
}
