// Fixture for the detrand analyzer: the policy-registry pattern in
// internal/sched. A Policy hook drawing from the process-global rand
// (instead of the engine-provided, seed-derived generator threaded
// through the Env) is a diagnostic; the Env-threaded draw is not.
package sched

import "math/rand"

type partition struct{ Start, Size int }

type env struct{ rng *rand.Rand }

func (e env) RNG() *rand.Rand { return e.rng }

type policyFunc func(e env, cands []partition) partition

var registry = map[string]policyFunc{}

func registerPolicy(name string, p policyFunc) { registry[name] = p }

func badGlobalDrawPolicy(e env, cands []partition) partition {
	return cands[rand.Intn(len(cands))] // want `process-global random source`
}

func goodEnvDrawPolicy(e env, cands []partition) partition {
	return cands[e.RNG().Intn(len(cands))] // ok: engine-provided seeded RNG
}
