// Fixture for the detrand analyzer: this package path matches the
// restricted set (internal/simulate), so ambient nondeterminism is a
// diagnostic.
package simulate

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func badGlobalRand(n int) int {
	return rand.Intn(n) // want `process-global random source`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global random source`
}

func badGlobalRandV2() uint64 {
	return randv2.Uint64() // want `process-global random source`
}

func badWallClock() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock`
}

func goodThreadedRng(rng *rand.Rand, n int) int {
	return rng.Intn(n) // ok: methods on a threaded *rand.Rand
}

func goodConstructors(seed int64) *rand.Rand {
	// Constructors are allowed here; seedtaint polices their arguments.
	return rand.New(rand.NewSource(seed))
}

func goodSimulatedTime(epoch time.Time, offset time.Duration) time.Time {
	return epoch.Add(offset) // ok: simulated clock arithmetic
}
