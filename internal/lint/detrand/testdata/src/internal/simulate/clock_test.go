package simulate

import (
	"math/rand"
	"time"
)

// Test files are exempt: timeouts and ad-hoc randomness are fine in
// tests, the determinism contract covers shipped code.
func elapsedForBenchmark() (time.Time, int) {
	return time.Now(), rand.Int()
}
