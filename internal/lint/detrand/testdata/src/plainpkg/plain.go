// Fixture: a package outside the restricted set; detrand stays silent
// even for the patterns it would flag inside the simulation core.
package plainpkg

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
