package detrand_test

import (
	"testing"

	"repro/internal/lint/detrand"
	"repro/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata", detrand.Analyzer,
		"internal/simulate", // restricted: fixture carries want expectations
		"internal/sched",    // restricted: the policy-registry pattern
		"plainpkg",          // unrestricted: same patterns, zero diagnostics
	)
}
