// Package facts is the fact store behind the bgplint framework's
// cross-package analysis: a map from (package path, object path, fact
// type) to fact values, with a gob serialization used by the vet-tool
// protocol (facts ride in the .vetx files the go command threads
// between units) and shared in-process by the standalone driver and
// the linttest harness.
//
// Facts are keyed by *paths*, not object identity, because the same
// package is materialized twice during analysis: once type-checked
// from source (when it is the unit under analysis) and once imported
// from export data (when a dependent package is). A path key resolves
// against either instance.
package facts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"

	"repro/internal/lint/analysis"
)

// key identifies one fact: the owning package, the object path within
// it ("" for package-level facts), and the concrete fact type name.
type key struct {
	pkg string
	obj string
	typ reflect.Type
}

// Store holds the facts accumulated across an analysis run.
type Store struct {
	m map[key]analysis.Fact
}

// NewStore returns an empty fact store.
func NewStore() *Store { return &Store{m: make(map[key]analysis.Fact)} }

// ObjectPath returns a stable intra-package path for obj: "Name" for
// package-level objects, "Recv.Name" for methods. ok is false for
// locals, struct fields, and anything else a fact cannot usefully
// attach to across packages.
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFn := obj.(*types.Func); isFn {
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// ExportObjectFact records fact for obj. Exports on objects facts
// cannot attach to (locals, fields) are dropped silently.
func (s *Store) ExportObjectFact(obj types.Object, fact analysis.Fact) {
	path, ok := ObjectPath(obj)
	if !ok {
		return
	}
	s.m[key{obj.Pkg().Path(), path, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the stored fact for obj into fact and
// reports whether one existed.
func (s *Store) ImportObjectFact(obj types.Object, fact analysis.Fact) bool {
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	got, ok := s.m[key{obj.Pkg().Path(), path, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ImportObjectFactByPath is ImportObjectFact keyed by explicit paths,
// for tests and tools that have no types.Object in hand.
func (s *Store) ImportObjectFactByPath(pkgPath, objPath string, fact analysis.Fact) bool {
	got, ok := s.m[key{pkgPath, objPath, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportPackageFact records fact for the package with the given path.
func (s *Store) ExportPackageFact(pkgPath string, fact analysis.Fact) {
	s.m[key{pkgPath, "", reflect.TypeOf(fact)}] = fact
}

// ImportPackageFact copies the stored fact for pkg into fact and
// reports whether one existed.
func (s *Store) ImportPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	if pkg == nil {
		return false
	}
	got, ok := s.m[key{pkg.Path(), "", reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// BindPass wires the pass's fact callbacks to this store.
func (s *Store) BindPass(pass *analysis.Pass) {
	pass.ImportObjectFact = s.ImportObjectFact
	pass.ExportObjectFact = s.ExportObjectFact
	pass.ImportPackageFact = s.ImportPackageFact
	pass.ExportPackageFact = func(fact analysis.Fact) {
		s.ExportPackageFact(pass.Pkg.Path(), fact)
	}
}

// Len returns the number of stored facts.
func (s *Store) Len() int { return len(s.m) }

// gobFact is the wire form of one fact.
type gobFact struct {
	Pkg  string
	Obj  string
	Fact analysis.Fact
}

// Register registers every fact type of every analyzer (and its
// transitive Requires) with gob, so stores can be serialized through
// the vet protocol. Safe to call repeatedly.
func Register(analyzers []*analysis.Analyzer) {
	for _, a := range analysis.Expand(analyzers) {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes the store deterministically (sorted by package,
// object, then fact type name).
func (s *Store) Encode() ([]byte, error) {
	list := make([]gobFact, 0, len(s.m))
	for k, f := range s.m {
		list = append(list, gobFact{Pkg: k.pkg, Obj: k.obj, Fact: f})
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(list); err != nil {
		return nil, fmt.Errorf("facts: encode: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Empty input (the
// go command probes tools with empty vetx files) is a no-op.
func (s *Store) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var list []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&list); err != nil {
		return fmt.Errorf("facts: decode: %v", err)
	}
	for _, gf := range list {
		if gf.Fact == nil {
			continue
		}
		s.m[key{gf.Pkg, gf.Obj, reflect.TypeOf(gf.Fact)}] = gf.Fact
	}
	return nil
}
