package facts

import (
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/analysis"
)

type testFact struct{ N int }

func (*testFact) AFact() {}

type pkgFact struct{ Tag string }

func (*pkgFact) AFact() {}

func checkSrc(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := new(types.Config).Check("example.com/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const src = `package p
type T struct{}
func (t T) M() {}
func F(x int) {}
`

func TestObjectPath(t *testing.T) {
	pkg := checkSrc(t, src)
	fObj := pkg.Scope().Lookup("F")
	if p, ok := ObjectPath(fObj); !ok || p != "F" {
		t.Errorf("ObjectPath(F) = %q, %v", p, ok)
	}
	tObj := pkg.Scope().Lookup("T").(*types.TypeName)
	m, _, _ := types.LookupFieldOrMethod(tObj.Type(), true, pkg, "M")
	if p, ok := ObjectPath(m); !ok || p != "T.M" {
		t.Errorf("ObjectPath(T.M) = %q, %v", p, ok)
	}
	// Parameters are not package-level: no path.
	sig := fObj.Type().(*types.Signature)
	if _, ok := ObjectPath(sig.Params().At(0)); ok {
		t.Error("ObjectPath of a parameter should fail")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	gob.Register(&testFact{})
	gob.Register(&pkgFact{})

	pkg := checkSrc(t, src)
	fObj := pkg.Scope().Lookup("F")

	s := NewStore()
	s.ExportObjectFact(fObj, &testFact{N: 7})
	s.ExportPackageFact(pkg.Path(), &pkgFact{Tag: "deterministic"})

	var of testFact
	if !s.ImportObjectFact(fObj, &of) || of.N != 7 {
		t.Fatalf("ImportObjectFact = %+v", of)
	}
	var pf pkgFact
	if !s.ImportPackageFact(pkg, &pf) || pf.Tag != "deterministic" {
		t.Fatalf("ImportPackageFact = %+v", pf)
	}

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Decode(data); err != nil {
		t.Fatal(err)
	}
	// The decoded store resolves the same facts: re-check the package
	// from scratch so object identity differs but paths match.
	pkg2 := checkSrc(t, src)
	var of2 testFact
	if !s2.ImportObjectFact(pkg2.Scope().Lookup("F"), &of2) || of2.N != 7 {
		t.Fatalf("decoded ImportObjectFact = %+v", of2)
	}
	var pf2 pkgFact
	if !s2.ImportPackageFact(pkg2, &pf2) || pf2.Tag != "deterministic" {
		t.Fatalf("decoded ImportPackageFact = %+v", pf2)
	}
	if err := s2.Decode(nil); err != nil {
		t.Fatalf("Decode(empty) = %v", err)
	}
}

func TestMissingFact(t *testing.T) {
	pkg := checkSrc(t, src)
	s := NewStore()
	var f testFact
	if s.ImportObjectFact(pkg.Scope().Lookup("F"), &f) {
		t.Error("ImportObjectFact on empty store succeeded")
	}
	if s.ImportPackageFact(pkg, &pkgFact{}) {
		t.Error("ImportPackageFact on empty store succeeded")
	}
}

func TestExpandOrder(t *testing.T) {
	base := &analysis.Analyzer{Name: "base"}
	mid := &analysis.Analyzer{Name: "mid", Requires: []*analysis.Analyzer{base}}
	top := &analysis.Analyzer{Name: "top", Requires: []*analysis.Analyzer{mid, base}}
	order := analysis.Expand([]*analysis.Analyzer{top, base})
	if len(order) != 3 || order[0] != base || order[1] != mid || order[2] != top {
		names := make([]string, len(order))
		for i, a := range order {
			names[i] = a.Name
		}
		t.Errorf("Expand order = %v, want [base mid top]", names)
	}
}
