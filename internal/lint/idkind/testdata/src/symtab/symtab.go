// Fixture mirror of the repo's internal/symtab typed dictionary IDs.
// idkind matches these by (package named "symtab", type name), so this
// mirror participates in the type-driven kind inference exactly like
// the real package.
package symtab

type ErrcodeID int32

type LocationID int32

type ExecID int32

type JobID int32
