// Fixture for the symtab typed-ID kinds: the dictionary IDs
// (ErrcodeID, LocationID, ExecID, JobID) are distinct index spaces, and
// a conversion between two of them keeps the operand's kind — the
// classic mixup is laundering a LocationID into an ErrcodeID slot
// through an explicit conversion, which the type checker accepts.
package idkindtest

import "symtab"

func goodIDRoundTrip(n int) symtab.ErrcodeID {
	code := symtab.ErrcodeID(n) // plain int carries no kind; the conversion's type does
	return code
}

func goodIDWiden(code symtab.ErrcodeID) int {
	return int(code)
}

func badIDConversion(loc symtab.LocationID) symtab.ErrcodeID {
	code := symtab.ErrcodeID(loc) // want `assigning a location value to a errcode variable`
	return code
}

func badExecConversion(e symtab.ExecID) symtab.JobID {
	j := symtab.JobID(e) // want `assigning a exec value to a job variable`
	return j
}

func badIDCompare(code symtab.ErrcodeID, loc symtab.LocationID) bool {
	return int32(code) == int32(loc) // want `cross-kind comparison: errcode vs location`
}

func goodIDIndex(byLocation []string, loc symtab.LocationID) string {
	return byLocation[loc]
}

func badIDIndex(byLocation []string, code symtab.ErrcodeID) string {
	return byLocation[code] // want `indexing a location-keyed container with a errcode index`
}

func badJobIndex(jobs []string, code symtab.ErrcodeID) string {
	return jobs[int(code)] // want `indexing a job-keyed container with a errcode index`
}

func goodJobIndex(jobs []string, j symtab.JobID) string {
	return jobs[int(j)]
}
