// Fixture for the idkind analyzer: integer expressions must stay in
// their own Blue Gene/P index space.
package idkindtest

import (
	"bgp"

	"idhelpers"
)

type Loc struct{ Rack, Midplane int }

func goodConversionDown(mp int) int {
	rack := mp / bgp.MidplanesPerRack
	return rack
}

func goodConversionUp(rack, sub int) int {
	mp := rack*bgp.MidplanesPerRack + sub
	return mp
}

func goodOffsets(mp int) int {
	next := mp + 1
	return next
}

func badAssign(rack, mp int) int {
	rack = mp // want `assigning a midplane value to a rack variable`
	return rack
}

func badDefine(rack int) int {
	mp := rack // want `assigning a rack value to a midplane variable`
	return mp
}

func badCompare(rack, mp int) bool {
	return rack == mp // want `cross-kind comparison: rack vs midplane`
}

func badLoopBound(counts []int) int {
	s := 0
	for mp := 0; mp < bgp.NumRacks; mp++ { // want `cross-kind comparison: midplane vs rack`
		s += counts[mp]
	}
	return s
}

func goodLoopBound() int {
	s := 0
	for mp := 0; mp < bgp.NumMidplanes; mp++ {
		s += mp
	}
	return s
}

// Loop variables with silent names inherit the bound's kind.
func badInferredLoop(racks []int) int {
	perMidplane := make([]int, bgp.NumMidplanes)
	s := 0
	for i := 0; i < bgp.NumRacks; i++ {
		s += perMidplane[i] // want `indexing a midplane-keyed container with a rack index`
		s += racks[i]
	}
	return s
}

func badIndex(mp int) int {
	racks := make([]int, bgp.NumRacks)
	return racks[mp] // want `indexing a rack-keyed container with a midplane index`
}

func goodIndex(mp int) int {
	perMidplane := make([]int, bgp.NumMidplanes)
	return perMidplane[mp]
}

func badRange(byRack []int, perMidplane []int) int {
	s := 0
	for i := range byRack {
		s += perMidplane[i] // want `indexing a midplane-keyed container with a rack index`
	}
	return s
}

func badCallLocal(rack int) int {
	return useMidplane(rack) // want `argument #1 to useMidplane is a rack index but the parameter expects a midplane index`
}

func useMidplane(mp int) int { return mp }

func badCallCross(rack int) int {
	return idhelpers.FillMidplane(rack) // want `argument #1 to FillMidplane is a rack index but the parameter expects a midplane index`
}

func goodCallCross(mp int) int {
	return idhelpers.FillMidplane(mp)
}

func goodCallConverted(rack int) int {
	return idhelpers.FillMidplane(rack * bgp.MidplanesPerRack)
}

func badBgpCall(rack int) string {
	return bgp.MidplaneLocation(rack) // want `argument #1 to MidplaneLocation is a rack index but the parameter expects a midplane index`
}

func badComposite(mp int) Loc {
	return Loc{Rack: mp, Midplane: mp} // want `field Rack assigned a midplane value but holds a rack index`
}

func goodComposite(rack, mp int) Loc {
	return Loc{Rack: rack, Midplane: mp}
}

// Counts are not indices: no kind, no diagnostics.
func goodCounts(numRacks, rackCount int) bool {
	nodesPerCard := bgp.NodesPerNodeCard
	return numRacks*rackCount > nodesPerCard
}

// len() of a kind-keyed container is a bound in that space.
func badLenBound(racks []int, perMidplane []int) int {
	s := 0
	for i := 0; i < len(racks); i++ {
		s += perMidplane[i] // want `indexing a midplane-keyed container with a rack index`
	}
	return s
}
