// Fixture mirror of the repo's internal/bgp geometry package: idkind
// recognizes these constants by (package name "bgp", constant name),
// so the mirror exercises the same inference paths the real tree hits.
package bgp

const (
	NumRacks             = 40
	MidplanesPerRack     = 2
	NumMidplanes         = NumRacks * MidplanesPerRack
	NodeCardsPerMidplane = 16
	NodesPerNodeCard     = 32
	NumNodes             = NumMidplanes * NodeCardsPerMidplane * NodesPerNodeCard
)

// MidplaneLocation gets a ParamKindsFact{[Midplane]} from its
// parameter name, like the real constructor.
func MidplaneLocation(mp int) string {
	_ = mp
	return ""
}
