// Fixture dependency for the idkind cross-package test: FillMidplane's
// parameter kind is inferred from its name and exported as a
// ParamKindsFact that the importing fixture checks against.
package idhelpers

func FillMidplane(mp int) int { return mp * 3 }

func CountNodes(total int) int { return total } // no kind: no fact
