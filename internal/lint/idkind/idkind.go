// Package idkind defines the bgplint analyzer that type-checks the
// repo's *domain index spaces*. Blue Gene/P entities are addressed by
// small integers in several incompatible spaces — rack (0–39), global
// midplane (0–79), node card within a midplane (0–15), global compute
// node (0–40959) — plus job and partition identifiers, and Go's `int`
// happily lets a rack index flow into a midplane slot. idkind infers a
// Kind for integer expressions and flags cross-kind assignments,
// comparisons, container indexing, composite-literal fields, and call
// arguments.
//
// Inference is deliberately conservative (Unknown never reports):
//   - names: an identifier, field, or function mentioning rack /
//     midplane (mp) / nodecard (nc) / node / job / partition /
//     errcode / location / exec carries that kind; count-ish names
//     (numRacks, nodesPerCard, rackCount) carry none.
//   - typed symbol IDs: an expression whose static type is one of the
//     symtab dictionary IDs (ErrcodeID, LocationID, ExecID, JobID)
//     carries the corresponding kind, and a conversion between two of
//     them keeps the operand's kind — so
//     symtab.ErrcodeID(locID) is a location value flowing into an
//     errcode slot, and is flagged.
//   - geometry constants: a bound from the bgp package (NumRacks,
//     NumMidplanes, NodeCardsPerMidplane, NumNodes) gives loop
//     variables and comparisons the corresponding kind, so
//     `for mp := 0; mp < bgp.NumRacks` is a finding, not an inference.
//   - conversions: mp / bgp.MidplanesPerRack is a rack;
//     rack * bgp.MidplanesPerRack (+ j) is a midplane; adding or
//     subtracting a constant preserves the kind.
//   - containers: racks := make([]T, bgp.NumRacks), a perMidplane /
//     byRack name, or a [80]T array type fixes the index space of the
//     subscript.
//
// Parameter kinds inferred from names are exported as a
// ParamKindsFact, so a call site in another package that passes a rack
// where a midplane parameter is declared is flagged there.
package idkind

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "idkind",
	Doc: "flag integer expressions that mix Blue Gene/P index spaces (rack, midplane, node card, node, job, partition, errcode, location, exec)\n\n" +
		"Index kinds are inferred from names, bgp geometry constants, the\n" +
		"symtab typed dictionary IDs, and recognized conversion arithmetic;\n" +
		"assignments, comparisons, container subscripts, composite-literal\n" +
		"fields, and call arguments that mix two known kinds are reported.\n" +
		"Parameter kinds are exported as facts so the check crosses package\n" +
		"boundaries.",
	Run:       run,
	FactTypes: []analysis.Fact{(*ParamKindsFact)(nil)},
}

// Kind is one domain index space.
type Kind uint8

const (
	Unknown Kind = iota
	Rack
	Midplane
	NodeCard
	Node
	Job
	Partition
	Errcode
	Location
	Exec
)

var kindNames = [...]string{"unknown", "rack", "midplane", "node-card", "node", "job", "partition", "errcode", "location", "exec"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// A ParamKindsFact records the name-inferred index kind of each
// parameter of a function, aligned by position (Unknown where no kind
// was inferred). Exported only when at least one parameter has a kind.
type ParamKindsFact struct {
	Kinds []Kind
}

// AFact marks ParamKindsFact as a fact type.
func (*ParamKindsFact) AFact() {}

func (f *ParamKindsFact) String() string {
	parts := make([]string, len(f.Kinds))
	for i, k := range f.Kinds {
		parts[i] = k.String()
	}
	return "paramkinds(" + strings.Join(parts, ",") + ")"
}

// boundConsts maps bgp geometry constants that bound an index space to
// that space's kind; matching is by (package named "bgp", const name),
// so the testdata mirror of the geometry package participates too.
var boundConsts = map[string]Kind{
	"NumRacks":             Rack,
	"NumMidplanes":         Midplane,
	"NodeCardsPerMidplane": NodeCard,
	"NumNodes":             Node,
}

// arrayLenKinds maps distinctive array lengths to the index space they
// imply. Only the unambiguous lengths participate: 40 and 16 are too
// common ([16]byte digests, ...) to claim.
var arrayLenKinds = map[int64]Kind{
	80:    Midplane,
	40960: Node,
}

type checker struct {
	pass *analysis.Pass
	// varKinds holds index kinds established by loop bounds, range
	// statements, and := bindings, for variables whose names say
	// nothing themselves.
	varKinds map[types.Object]Kind
	// containerKeys holds the index space of a slice or map subscript,
	// established by make(..., bgp.NumX) bindings.
	containerKeys map[types.Object]Kind
	// paramKinds caches name-inferred parameter kinds of package-local
	// functions.
	paramKinds map[*types.Func][]Kind
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:          pass,
		varKinds:      make(map[types.Object]Kind),
		containerKeys: make(map[types.Object]Kind),
		paramKinds:    make(map[*types.Func][]Kind),
	}
	c.bindAndExport()
	c.check()
	return nil, nil
}

// bindAndExport is the inference pre-pass: it records loop-variable
// and container bindings for the whole package and exports parameter
// kind facts, before any checking reads them.
func (c *checker) bindAndExport() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				c.exportParamKinds(n)
			case *ast.ForStmt:
				c.bindForLoop(n)
			case *ast.RangeStmt:
				c.bindRange(n)
			case *ast.AssignStmt:
				c.bindAssign(n.Lhs, n.Rhs)
			case *ast.ValueSpec:
				idents := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					idents[i] = id
				}
				c.bindAssign(idents, n.Values)
			}
			return true
		})
	}
}

func (c *checker) exportParamKinds(fd *ast.FuncDecl) {
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	kinds := make([]Kind, sig.Params().Len())
	any := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isIntType(p.Type()) {
			continue
		}
		if k := nameKind(p.Name()); k != Unknown {
			kinds[i] = k
			any = true
		}
	}
	c.paramKinds[fn] = kinds
	if any {
		c.pass.ExportObjectFact(fn, &ParamKindsFact{Kinds: kinds})
	}
}

// bindForLoop gives `for i := 0; i < bgp.NumMidplanes; i++` loop
// variables the bound's kind — but only when the variable's own name
// is silent, so a mis-named loop (`for rack := 0; rack < NumMidplanes`)
// stays a finding rather than becoming an inference.
func (c *checker) bindForLoop(fs *ast.ForStmt) {
	as, ok := fs.Init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || nameKind(id.Name) != Unknown || countish(id.Name) {
		return
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return
	}
	cx, ok := cond.X.(*ast.Ident)
	if !ok || c.objOf(cx) == nil || c.objOf(cx) != c.objOf(id) {
		return
	}
	if k := c.kindOf(cond.Y); k != Unknown {
		c.varKinds[c.objOf(id)] = k
	}
}

func (c *checker) bindRange(rs *ast.RangeStmt) {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || nameKind(id.Name) != Unknown || countish(id.Name) {
		return
	}
	obj := c.objOf(id)
	if obj == nil {
		return
	}
	if k := c.containerKeyKind(rs.X); k != Unknown {
		c.varKinds[obj] = k
	}
}

// bindAssign propagates kinds into silent names: `i := rack` makes i a
// rack; `xs := make([]T, bgp.NumRacks)` makes xs rack-subscripted.
func (c *checker) bindAssign(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.objOf(id)
		if obj == nil {
			continue
		}
		if k := c.makeKeyKind(rhs[i]); k != Unknown {
			if containerNameKind(id.Name) == Unknown {
				c.containerKeys[obj] = k
			}
			continue
		}
		if nameKind(id.Name) != Unknown || countish(id.Name) {
			continue
		}
		// A variable of a typed-ID type carries its kind in the type;
		// binding it to the initializer's kind would mask a mis-kinded
		// conversion (code := symtab.ErrcodeID(loc)).
		if typeKind(c.pass.TypesInfo.TypeOf(id)) != Unknown {
			continue
		}
		if _, bound := c.varKinds[obj]; bound {
			continue
		}
		if k := c.kindOf(rhs[i]); k != Unknown {
			c.varKinds[obj] = k
		}
	}
}

// makeKeyKind recognizes make([]T, K) / make([]T, 0, K) with a
// kind-bearing capacity and returns the container's subscript kind.
func (c *checker) makeKeyKind(e ast.Expr) Kind {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return Unknown
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return Unknown
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return Unknown
	}
	if _, isSlice := c.pass.TypesInfo.TypeOf(call.Args[0]).(*types.Slice); !isSlice {
		return Unknown
	}
	for _, sz := range call.Args[1:] {
		if k := c.kindOf(sz); k != Unknown {
			return k
		}
	}
	return Unknown
}

// check is the reporting pass.
func (c *checker) check() {
	c.pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i := range n.Lhs {
				c.checkPair(n.Lhs[i], n.Rhs[i], "assigning a %s value to a %s variable (idkind)")
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return
			}
			for i := range n.Names {
				c.checkPair(n.Names[i], n.Values[i], "assigning a %s value to a %s variable (idkind)")
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				c.checkCompare(n)
			}
		case *ast.IndexExpr:
			c.checkIndex(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			c.checkComposite(n)
		}
	})
}

// checkPair reports when dst and src are integer expressions of two
// different known kinds. The format receives (src kind, dst kind).
func (c *checker) checkPair(dst, src ast.Expr, format string) {
	if !c.isIntExpr(dst) || !c.isIntExpr(src) {
		return
	}
	dk, sk := c.kindOf(dst), c.kindOf(src)
	if dk == Unknown || sk == Unknown || dk == sk {
		return
	}
	c.pass.Reportf(dst.Pos(), format, sk, dk)
}

func (c *checker) checkCompare(be *ast.BinaryExpr) {
	if !c.isIntExpr(be.X) || !c.isIntExpr(be.Y) {
		return
	}
	xk, yk := c.kindOf(be.X), c.kindOf(be.Y)
	if xk == Unknown || yk == Unknown || xk == yk {
		return
	}
	c.pass.Reportf(be.Pos(), "cross-kind comparison: %s vs %s (idkind)", xk, yk)
}

func (c *checker) checkIndex(ie *ast.IndexExpr) {
	if !c.isIntExpr(ie.Index) {
		return
	}
	ck := c.containerKeyKind(ie.X)
	ik := c.kindOf(ie.Index)
	if ck == Unknown || ik == Unknown || ck == ik {
		return
	}
	c.pass.Reportf(ie.Index.Pos(), "indexing a %s-keyed container with a %s index (idkind)", ck, ik)
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	kinds := c.paramKindsOf(fn)
	if kinds == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	n := len(call.Args)
	if n > len(kinds) {
		n = len(kinds)
	}
	if sig.Variadic() && n > len(kinds)-1 {
		n = len(kinds) - 1 // the variadic slot aggregates; skip it
	}
	for i := 0; i < n; i++ {
		if kinds[i] == Unknown || !c.isIntExpr(call.Args[i]) {
			continue
		}
		ak := c.kindOf(call.Args[i])
		if ak == Unknown || ak == kinds[i] {
			continue
		}
		c.pass.Reportf(call.Args[i].Pos(),
			"argument #%d to %s is a %s index but the parameter expects a %s index (idkind)",
			i+1, fn.Name(), ak, kinds[i])
	}
}

func (c *checker) checkComposite(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !c.isIntExpr(kv.Value) {
			continue
		}
		fk := nameKind(key.Name)
		vk := c.kindOf(kv.Value)
		if fk == Unknown || vk == Unknown || fk == vk {
			continue
		}
		c.pass.Reportf(kv.Value.Pos(), "field %s assigned a %s value but holds a %s index (idkind)", key.Name, vk, fk)
	}
}

// paramKindsOf resolves a callee's parameter kinds: the local cache
// for this package's functions, an imported fact otherwise.
func (c *checker) paramKindsOf(fn *types.Func) []Kind {
	if fn.Pkg() == c.pass.Pkg {
		return c.paramKinds[fn]
	}
	var fact ParamKindsFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Kinds
	}
	return nil
}

// kindOf infers the index kind of an integer expression: syntactic
// inference (names, geometry bounds, sanctioned arithmetic) first, then
// the expression's static type when it is one of the symtab typed IDs.
// Syntactic inference wins so a conversion like symtab.ErrcodeID(loc)
// keeps the operand's kind rather than laundering it through the
// target type.
func (c *checker) kindOf(e ast.Expr) Kind {
	if k := c.synKind(e); k != Unknown {
		return k
	}
	return typeKind(c.pass.TypesInfo.TypeOf(e))
}

func (c *checker) synKind(e ast.Expr) Kind {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return c.identKind(e)
	case *ast.SelectorExpr:
		if obj := c.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			if k := geomConstKind(obj); k != Unknown {
				return k
			}
		}
		if countish(e.Sel.Name) {
			return Unknown
		}
		return nameKind(e.Sel.Name)
	case *ast.CallExpr:
		return c.callKind(e)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return c.kindOf(e.X)
		}
	case *ast.BinaryExpr:
		return c.binaryKind(e)
	}
	return Unknown
}

func (c *checker) identKind(id *ast.Ident) Kind {
	obj := c.objOf(id)
	if obj != nil {
		if k, ok := c.varKinds[obj]; ok {
			return k
		}
		if k := geomConstKind(obj); k != Unknown {
			return k
		}
	}
	if countish(id.Name) {
		return Unknown
	}
	return nameKind(id.Name)
}

// callKind handles conversions (int(mp) keeps mp's kind), len() of a
// kind-keyed container (a bound in that space), and named accessors
// (loc.MidplaneIndex() is a midplane).
func (c *checker) callKind(call *ast.CallExpr) Kind {
	info := c.pass.TypesInfo
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return c.kindOf(call.Args[0])
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return c.containerKeyKind(call.Args[0])
			}
		}
	}
	fn := lintutil.Callee(info, call)
	if fn == nil || countish(fn.Name()) {
		return Unknown
	}
	return nameKind(fn.Name())
}

// binaryKind recognizes the sanctioned kind arithmetic:
//
//	mp / MidplanesPerRack            → rack
//	rack * MidplanesPerRack [+ sub]  → midplane
//	kind ± constant                  → kind
func (c *checker) binaryKind(be *ast.BinaryExpr) Kind {
	switch be.Op {
	case token.QUO:
		if c.isMidplanesPerRack(be.Y) && c.kindOf(be.X) == Midplane {
			return Rack
		}
	case token.MUL:
		if (c.isMidplanesPerRack(be.Y) && c.kindOf(be.X) == Rack) ||
			(c.isMidplanesPerRack(be.X) && c.kindOf(be.Y) == Rack) {
			return Midplane
		}
	case token.ADD, token.SUB:
		xk, yk := c.kindOf(be.X), c.kindOf(be.Y)
		if c.isConst(be.Y) && !c.isConst(be.X) {
			return xk
		}
		if be.Op == token.ADD && c.isConst(be.X) && !c.isConst(be.Y) {
			return yk
		}
		// rack*MidplanesPerRack + m: the product decides.
		if xk == Midplane && yk == Unknown {
			if mul, ok := unparen(be.X).(*ast.BinaryExpr); ok && mul.Op == token.MUL {
				return Midplane
			}
		}
	}
	return Unknown
}

func (c *checker) isMidplanesPerRack(e ast.Expr) bool {
	var obj types.Object
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj = c.objOf(e)
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[e.Sel]
	}
	return obj != nil && obj.Name() == "MidplanesPerRack" && isBgpConst(obj)
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// containerKeyKind infers the index space of a container's subscript:
// an explicit make-binding, a by/per/plural name, or a distinctive
// array length.
func (c *checker) containerKeyKind(e ast.Expr) Kind {
	var obj types.Object
	var name string
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj, name = c.objOf(e), e.Name
	case *ast.SelectorExpr:
		obj, name = c.pass.TypesInfo.Uses[e.Sel], e.Sel.Name
	}
	if obj != nil {
		if k, ok := c.containerKeys[obj]; ok {
			return k
		}
	}
	if k := containerNameKind(name); k != Unknown {
		return k
	}
	if t := c.pass.TypesInfo.TypeOf(e); t != nil {
		if arr, ok := t.Underlying().(*types.Array); ok {
			return arrayLenKinds[arr.Len()]
		}
	}
	return Unknown
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) isIntExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	return t != nil && isIntType(t)
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// geomConstKind maps a reference to a bgp geometry bound (NumRacks,
// NumMidplanes, ...) to the index space it bounds.
func geomConstKind(obj types.Object) Kind {
	if !isBgpConst(obj) {
		return Unknown
	}
	return boundConsts[obj.Name()]
}

func isBgpConst(obj types.Object) bool {
	if _, isConst := obj.(*types.Const); !isConst {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "bgp"
}

// symtabTypeKinds maps the typed dictionary IDs of internal/symtab to
// their index kinds; matching is by (package named "symtab", type
// name), so the testdata mirror participates like the bgp one.
var symtabTypeKinds = map[string]Kind{
	"ErrcodeID":  Errcode,
	"LocationID": Location,
	"ExecID":     Exec,
	"JobID":      Job,
}

// typeKind maps an expression's static type to an index kind when the
// type is one of the symtab typed IDs.
func typeKind(t types.Type) Kind {
	named, ok := t.(*types.Named)
	if !ok {
		return Unknown
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "symtab" {
		return Unknown
	}
	return symtabTypeKinds[obj.Name()]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- name lexicon ---

var kindTokens = map[string]Kind{
	"rack":      Rack,
	"midplane":  Midplane,
	"mp":        Midplane,
	"nodecard":  NodeCard,
	"nc":        NodeCard,
	"node":      Node,
	"job":       Job,
	"partition": Partition,
	"errcode":   Errcode,
	"location":  Location,
	"exec":      Exec,
}

var countTokens = map[string]bool{
	"num": true, "count": true, "total": true, "per": true,
	"size": true, "len": true, "cap": true, "max": true, "min": true,
	"width": true, "stride": true,
}

// nameKind infers a scalar index kind from a name: exactly one kind
// token, no count tokens, singular form. "mp", "rackIdx", "jobID" →
// kind; "numRacks", "nodesPerCard", "racks" → Unknown.
func nameKind(name string) Kind {
	toks := splitTokens(name)
	k := Unknown
	for i := 0; i < len(toks); i++ {
		tok := toks[i]
		if countTokens[tok] {
			return Unknown
		}
		tk := kindTokens[tok]
		if tok == "node" && i+1 < len(toks) && toks[i+1] == "card" {
			tk = NodeCard
			i++
		}
		if tk == Unknown {
			continue
		}
		if k != Unknown && k != tk {
			return Unknown // two different kinds in one name: ambiguous
		}
		k = tk
	}
	return k
}

// NameKind exposes the name lexicon for tests and tooling: the scalar
// index kind a bare name implies, Unknown for count-ish names.
func NameKind(name string) Kind {
	if countish(name) {
		return Unknown
	}
	return nameKind(name)
}

// countish reports whether the name is a count, bound, or extent
// rather than an index.
func countish(name string) bool {
	for _, tok := range splitTokens(name) {
		if countTokens[tok] {
			return true
		}
	}
	return false
}

var pluralTokens = map[string]Kind{
	"racks": Rack, "midplanes": Midplane, "mps": Midplane,
	"nodecards": NodeCard, "nodes": Node, "jobs": Job, "partitions": Partition,
	"errcodes": Errcode, "locations": Location, "execs": Exec,
}

// containerNameKind infers the subscript space of a container from its
// name: a plural kind ("racks", "midplanes"), or a by-/per- prefix
// ("byRack", "perMidplane").
func containerNameKind(name string) Kind {
	toks := splitTokens(name)
	for i := 0; i < len(toks); i++ {
		tok := toks[i]
		if k, ok := pluralTokens[tok]; ok {
			return k
		}
		if tok == "node" && i+1 < len(toks) && toks[i+1] == "cards" {
			return NodeCard
		}
		if (tok == "by" || tok == "per") && i+1 < len(toks) {
			rest := toks[i+1]
			if k := kindTokens[rest]; k != Unknown {
				if rest == "node" && i+2 < len(toks) && toks[i+2] == "card" {
					return NodeCard
				}
				return k
			}
		}
	}
	return Unknown
}

// splitTokens lowers a Go identifier into word tokens: camelCase,
// underscores, and digit boundaries all split.
func splitTokens(name string) []string {
	var toks []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			toks = append(toks, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// Split at lower→Upper and at the last capital of an
			// acronym run (IDs, HTTPServer).
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return toks
}
