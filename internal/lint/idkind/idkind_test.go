package idkind_test

import (
	"testing"

	"repro/internal/lint/idkind"
	"repro/internal/lint/linttest"
)

func TestIdkind(t *testing.T) {
	linttest.Run(t, "testdata", idkind.Analyzer, "idkindtest")
}

// TestParamKindsFactExport checks the dependency fixture in isolation:
// kind-named parameters produce a fact, kindless ones do not.
func TestParamKindsFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", idkind.Analyzer, "idhelpers")
	var f idkind.ParamKindsFact
	if !store.ImportObjectFactByPath("idhelpers", "FillMidplane", &f) {
		t.Fatal("no ParamKindsFact exported for idhelpers.FillMidplane")
	}
	if len(f.Kinds) != 1 || f.Kinds[0] != idkind.Midplane {
		t.Errorf("ParamKindsFact(FillMidplane) = %v, want [midplane]", f.Kinds)
	}
	if store.ImportObjectFactByPath("idhelpers", "CountNodes", &f) {
		t.Error("CountNodes unexpectedly has a ParamKindsFact")
	}
}

func TestNameLexicon(t *testing.T) {
	cases := []struct {
		name string
		want idkind.Kind
	}{
		{"mp", idkind.Midplane},
		{"rackIdx", idkind.Rack},
		{"jobID", idkind.Job},
		{"nodeCard", idkind.NodeCard},
		{"nc", idkind.NodeCard},
		{"partition", idkind.Partition},
		{"numRacks", idkind.Unknown},
		{"rackCount", idkind.Unknown},
		{"nodesPerCard", idkind.Unknown},
		{"racks", idkind.Unknown},
		{"tmp", idkind.Unknown},
		{"rackMidplane", idkind.Unknown},
		{"errcodeID", idkind.Errcode},
		{"locationIdx", idkind.Location},
		{"execID", idkind.Exec},
		{"errcodeCount", idkind.Unknown},
		{"loc", idkind.Unknown}, // deliberately not in the lexicon; the symtab types carry the kind
	}
	for _, c := range cases {
		if got := idkind.NameKind(c.name); got != c.want {
			t.Errorf("NameKind(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
