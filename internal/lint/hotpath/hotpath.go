// Package hotpath defines the bgplint analyzer that keeps the
// per-event paths of the pipeline allocation-free. PR 4 made ingest
// zero-alloc and PR 5 made the cascade integer-keyed; the runtime
// bgpbench gate defends those wins but cannot say which line regressed
// or catch an allocation a fixed benchmark input never exercises. This
// analyzer defends them statically.
//
// Hotness starts at declared roots — the ingest/cascade/serve entry
// points named in rootList, plus every Benchmark* body — and a HotFact
// propagates through the callgraph: a function called from a hot loop
// (or called at all from a per-event function) is itself per-event.
// Inside hot code the analyzer flags the allocation-bearing constructs
// the escape analyzer would charge to the per-event path: fmt.* calls,
// string(b)/[]byte(s) conversions, interface boxing at call sites,
// per-call map/slice composite literals, append-in-loop without
// preallocated capacity, and escaping closure captures.
//
// Two hotness tiers keep the signal honest. A per-event root (a record
// unmarshaler, the incremental cascade's Feed) is hot throughout its
// body; a per-call root (filter.Pipeline, Engine.IngestRAS) is called
// once per batch, so only its loop bodies — and everything they call —
// are per-event. Constructs on amortized-cold paths (blocks that end
// by returning an error or panicking) are exempt: error formatting on
// a reject path is not a per-event cost.
//
// Cross-package enforcement is fact-based: every function exports an
// AllocFact summarizing its allocation-bearing constructs, and a call
// from a hot loop to a helper in another package that carries a
// non-empty AllocFact (and no HotFact of its own — already-governed
// helpers report at their own definition) is flagged at the call site,
// so a helper called from a hot loop in another package is held to the
// same standard.
//
// Calls into the sort and slices packages are exempt from the boxing
// and closure checks: deterministic ordering is a correctness
// invariant here (see detrand/maporder) and its cost is accepted.
// Likewise the functions in exemptList — the bounded interning
// helpers — are sanctioned allocation points: their allocations are
// amortized by a cache and are the mechanism that keeps everything
// else allocation-free.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/facts"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag allocation-bearing constructs on the per-event hot paths\n\n" +
		"Propagates a HotFact from the declared ingest/cascade/serve roots (and\n" +
		"Benchmark* bodies) through the callgraph and flags fmt.* calls,\n" +
		"string/[]byte conversions, interface boxing, per-call map/slice\n" +
		"literals, append without preallocation, and escaping closures inside\n" +
		"hot functions; AllocFact export holds helpers called from hot loops in\n" +
		"other packages to the same standard.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*HotFact)(nil), (*AllocFact)(nil)},
}

// A RootKind says how hot a function is.
type RootKind uint8

const (
	// NotHot means unreachable from any root.
	NotHot RootKind = iota
	// PerCall marks a function invoked roughly once per batch or
	// request: only its loop bodies are per-event.
	PerCall
	// PerEvent marks a function whose whole body runs once per record,
	// event, or query.
	PerEvent
)

func (k RootKind) String() string {
	switch k {
	case PerCall:
		return "per-call"
	case PerEvent:
		return "per-event"
	}
	return "not-hot"
}

// A HotFact marks a function reachable from a hot root, so dependent
// packages know a callee is already governed in its defining package.
type HotFact struct {
	Kind RootKind
}

// AFact marks HotFact as a fact type.
func (*HotFact) AFact() {}

func (f *HotFact) String() string { return "hot(" + f.Kind.String() + ")" }

// An AllocFact summarizes a function's allocation-bearing constructs
// for cross-package call-site checks, as short sorted descriptors.
type AllocFact struct {
	Constructs []string
}

// AFact marks AllocFact as a fact type.
func (*AllocFact) AFact() {}

func (f *AllocFact) String() string { return "allocs(" + strings.Join(f.Constructs, ", ") + ")" }

// A Root declares one hot entry point, keyed by package NAME (not
// path) plus object path, so the same table governs the real module
// and the linttest fixture mirrors.
type Root struct {
	Sym  string
	Kind RootKind
}

// rootList is the declared hot surface of the pipeline: the streaming
// codec, the symbol-table interners, the columnar store appenders, the
// filter cascade, the serving engine's ingest/query/publish entry
// points, and the per-scan analysis passes. Keep sorted by Sym.
var rootList = []Root{
	{"core.Analysis.Features", PerCall},
	{"core.Analyze", PerCall},
	{"core.AnalyzeStream", PerCall},
	{"filter.Incremental.Feed", PerEvent},
	{"filter.Pipeline", PerCall},
	{"filter.PipelineFromLog", PerCall},
	{"filter.Spatial", PerCall},
	{"filter.Temporal", PerCall},
	{"joblog.Job.AppendLine", PerEvent},
	{"joblog.Job.UnmarshalFields", PerEvent},
	{"joblog.Reader.Next", PerEvent},
	{"raslog.Columnarize", PerCall},
	{"raslog.Reader.Next", PerEvent},
	{"raslog.Record.AppendLine", PerEvent},
	{"raslog.Record.UnmarshalFields", PerEvent},
	{"serve.Engine.IngestJobs", PerCall},
	{"serve.Engine.IngestRAS", PerCall},
	{"serve.Engine.Publish", PerCall},
	{"serve.Epoch.Query", PerEvent},
	{"serve.Server.query", PerEvent},
	{"store.Events.Append", PerEvent},
	{"store.Segment.AppendRow", PerEvent},
	{"store.SegmentSet.Append", PerEvent},
	{"symtab.Dict.Intern", PerEvent},
	{"symtab.Int64Dict.Intern", PerEvent},
}

// exemptList names the sanctioned allocation points: the bounded
// interning helpers whose allocations are amortized by their caches,
// and the segment-seal durability path, which runs once per sealed
// segment with fsync dominating any allocation it makes. Their bodies
// are not scanned and they export no AllocFact.
var exemptList = []Root{
	{"joblog.decoder.partition", PerEvent},
	{"joblog.decoder.str", PerEvent},
	{"joblog.intern.str", PerEvent},
	{"raslog.fieldScratch.str", PerEvent},
	{"raslog.intern.str", PerEvent},
	{"serve.persister.path", PerCall},
	{"serve.persister.writeSeal", PerCall},
	{"symtab.Dict.Intern", PerEvent},
	{"symtab.Int64Dict.Intern", PerEvent},
}

var (
	roots   = make(map[string]RootKind, len(rootList))
	exempts = make(map[string]bool, len(exemptList))
)

func init() {
	for _, r := range rootList {
		roots[r.Sym] = r.Kind
	}
	for _, r := range exemptList {
		exempts[r.Sym] = true
	}
}

// Roots returns the declared hot entry points, sorted by symbol.
// cmd/bgpescape shares the table for its zero-escape assertions.
func Roots() []Root {
	out := make([]Root, len(rootList))
	copy(out, rootList)
	return out
}

// keyOf renders fn as "pkgname.objpath", the form rootList uses, or ""
// when fn has no package or object path.
func keyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, ok := facts.ObjectPath(fn)
	if !ok {
		return ""
	}
	return fn.Pkg().Name() + "." + path
}

// callCtx is the lexical context of one call site within its
// declaration: whether it sits in a loop body and whether it sits on
// an amortized-cold (return-error/panic) path.
type callCtx struct {
	inLoop bool
	cold   bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Result)

	// Seed hotness from the root table and Benchmark* bodies, then
	// propagate through the local callgraph to a fixpoint: a callee of
	// a per-event function, or any callee invoked from a loop of a hot
	// function, is itself per-event; other callees of per-call
	// functions are per-call.
	hot := make(map[*types.Func]RootKind, len(graph.Order))
	ctx := make(map[*ast.CallExpr]callCtx)
	var work []*callgraph.Node
	for _, n := range graph.Order {
		lintutil.WalkStack(n.Decl.Body, func(stack []ast.Node, nd ast.Node) {
			if call, ok := nd.(*ast.CallExpr); ok {
				ctx[call] = callCtx{inLoop: inLoop(stack, call.Pos()), cold: coldContext(stack)}
			}
		})
		k := roots[keyOf(n.Fn)]
		if n.Decl.Recv == nil && strings.HasPrefix(n.Fn.Name(), "Benchmark") && k == NotHot {
			k = PerCall
		}
		if k != NotHot {
			hot[n.Fn] = k
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		k := hot[n.Fn]
		for _, c := range n.Calls {
			callee, ok := graph.Nodes[c.Callee]
			if !ok {
				continue
			}
			if ctx[c.Site].cold {
				continue // amortized-cold call sites conduct no heat
			}
			t := PerCall
			if k == PerEvent || ctx[c.Site].inLoop {
				t = PerEvent
			}
			if t > hot[c.Callee] {
				hot[c.Callee] = t
				work = append(work, callee)
			}
		}
	}

	for _, n := range graph.Order {
		kind := hot[n.Fn]
		if exempts[keyOf(n.Fn)] {
			if kind != NotHot {
				pass.ExportObjectFact(n.Fn, &HotFact{Kind: kind})
			}
			continue
		}
		allocs := scanConstructs(pass, n, kind)
		if kind != NotHot {
			pass.ExportObjectFact(n.Fn, &HotFact{Kind: kind})
			if !strings.HasPrefix(n.Fn.Name(), "Benchmark") {
				checkCallBoundaries(pass, n, kind, ctx)
			}
		}
		if len(allocs) > 0 {
			sort.Strings(allocs)
			pass.ExportObjectFact(n.Fn, &AllocFact{Constructs: allocs})
		}
	}
	return nil, nil
}

// scanConstructs walks one declaration, reports allocation-bearing
// constructs in hot context, and returns the deduplicated descriptor
// list for the function's AllocFact (hot or not — callers in other
// packages decide whether the summary matters).
func scanConstructs(pass *analysis.Pass, n *callgraph.Node, kind RootKind) []string {
	prealloc, declPos := sliceDecls(pass, n.Decl.Body)
	seen := make(map[string]bool)
	var allocs []string
	record := func(desc string) {
		if !seen[desc] {
			seen[desc] = true
			allocs = append(allocs, desc)
		}
	}
	hotWord := func(stack []ast.Node, pos token.Pos) string {
		if inLoop(stack, pos) {
			return "loop"
		}
		return "path"
	}
	lintutil.WalkStack(n.Decl.Body, func(stack []ast.Node, nd ast.Node) {
		cold := false // computed lazily; coldContext is the common gate
		hotHere := func(pos token.Pos) bool {
			if kind == NotHot {
				return false
			}
			if kind == PerCall && !inLoop(stack, pos) {
				return false
			}
			return !cold
		}
		switch x := nd.(type) {
		case *ast.CallExpr:
			if desc, msg := classifyConversion(pass, x); desc != "" {
				if noAllocConversion(stack, x, desc) {
					return
				}
				if cold = coldContext(stack); !cold {
					record(desc)
				}
				if hotHere(x.Pos()) {
					pass.Reportf(x.Pos(), "%s allocates on a hot %s; %s (hotpath)",
						msg, hotWord(stack, x.Pos()), conversionAdvice(desc))
				}
				return
			}
			if isBuiltinAppend(pass, x) {
				loop := innermostLoop(stack, x.Pos())
				if loop == nil || len(x.Args) < 2 || x.Ellipsis.IsValid() {
					return
				}
				id, ok := ast.Unparen(x.Args[0]).(*ast.Ident)
				if !ok {
					return
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok || prealloc[v] {
					return
				}
				pos, tracked := declPos[v]
				if !tracked || pos >= loop.Pos() {
					return
				}
				if cold = coldContext(stack); !cold {
					record("append without preallocation")
				}
				if hotHere(x.Pos()) {
					pass.Reportf(x.Pos(), "append to %s in a hot loop without preallocated capacity; size it with make(..., 0, n) before the loop (hotpath)", id.Name)
				}
				return
			}
			if callee := lintutil.Callee(pass.TypesInfo, x); callee != nil && callee.Pkg() != nil {
				switch callee.Pkg().Path() {
				case "fmt":
					if cold = coldContext(stack); !cold {
						record("fmt." + callee.Name() + " call")
					}
					if hotHere(x.Pos()) {
						pass.Reportf(x.Pos(), "call to fmt.%s allocates on a hot %s; use strconv/append-based formatting or move it off the per-event path (hotpath)",
							callee.Name(), hotWord(stack, x.Pos()))
					}
					return
				case "sort", "slices":
					// Deterministic-ordering calls are sanctioned; see
					// the package comment.
					return
				}
			}
			if arg := boxedArg(pass, x); arg != nil {
				if cold = coldContext(stack); !cold {
					record("interface boxing")
				}
				if hotHere(x.Pos()) {
					pass.Reportf(arg.Pos(), "%s is boxed into an interface argument on a hot %s; use a concrete parameter type or hoist the call (hotpath)",
						types.ExprString(arg), hotWord(stack, arg.Pos()))
				}
			}
		case *ast.CompositeLit:
			for _, anc := range stack {
				if _, ok := anc.(*ast.CompositeLit); ok {
					return // count only the outermost literal
				}
			}
			tv, ok := pass.TypesInfo.Types[x]
			if !ok || tv.Type == nil {
				return
			}
			var what string
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				what = "map"
			case *types.Slice:
				what = "slice"
			default:
				return
			}
			if cold = coldContext(stack); !cold {
				record(what + " literal")
			}
			if hotHere(x.Pos()) {
				pass.Reportf(x.Pos(), "%s literal allocates on a hot %s; hoist it off the per-event path or reuse a cleared %s (hotpath)",
					what, hotWord(stack, x.Pos()), what)
			}
		case *ast.FuncLit:
			name, escapes := escapingClosure(pass, stack, x, n.Decl)
			if !escapes {
				return
			}
			if cold = coldContext(stack); !cold {
				record("escaping closure")
			}
			if hotHere(x.Pos()) {
				pass.Reportf(x.Pos(), "closure capturing %s escapes on a hot %s; hoist the closure or pass state explicitly (hotpath)",
					name, hotWord(stack, x.Pos()))
			}
		}
	})
	return allocs
}

// checkCallBoundaries flags calls from hot context in this package to
// helpers in other packages that carry a non-empty AllocFact and no
// HotFact: the helper is held to the hot caller's standard even though
// its own package never sees the heat.
func checkCallBoundaries(pass *analysis.Pass, n *callgraph.Node, kind RootKind, ctx map[*ast.CallExpr]callCtx) {
	for _, c := range n.Calls {
		cc := ctx[c.Site]
		if cc.cold {
			continue
		}
		if kind != PerEvent && !cc.inLoop {
			continue
		}
		if c.Callee.Pkg() == nil || c.Callee.Pkg() == pass.Pkg {
			continue
		}
		key := keyOf(c.Callee)
		if _, governed := roots[key]; governed || exempts[key] {
			continue
		}
		if sig, ok := c.Callee.Type().(*types.Signature); ok {
			res := sig.Results()
			if res.Len() == 1 && types.Identical(res.At(0).Type(), errorType) {
				continue // pure error constructors run only on reject paths
			}
		}
		var hf HotFact
		if pass.ImportObjectFact(c.Callee, &hf) {
			continue // already governed in its defining package
		}
		var af AllocFact
		if !pass.ImportObjectFact(c.Callee, &af) || len(af.Constructs) == 0 {
			continue
		}
		word := "path"
		if cc.inLoop {
			word = "loop"
		}
		pass.Reportf(c.Site.Pos(), "hot %s calls %s, which allocates (%s); hoist the call or make the helper allocation-free (hotpath)",
			word, key, strings.Join(af.Constructs, ", "))
	}
}

var errorType = types.Universe.Lookup("error").Type()

// noAllocConversion reports whether a string([]byte) conversion sits in
// a context the compiler compiles without allocating: a switch tag, an
// == / != operand, or a map-probe key. A map STORE retains the key and
// still allocates, so m[string(b)] on an assignment left side (or under
// ++/--) stays flagged.
func noAllocConversion(stack []ast.Node, call *ast.CallExpr, desc string) bool {
	if desc != "string([]byte) conversion" {
		return false
	}
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); !ok {
			break
		}
		i--
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.SwitchStmt:
		return p.Tag != nil && ast.Unparen(p.Tag) == call
	case *ast.BinaryExpr:
		if p.Op != token.EQL && p.Op != token.NEQ {
			return false
		}
		return ast.Unparen(p.X) == call || ast.Unparen(p.Y) == call
	case *ast.IndexExpr:
		if ast.Unparen(p.Index) != call {
			return false
		}
		for j := i - 1; j >= 0; j-- {
			switch q := stack[j].(type) {
			case *ast.ParenExpr:
				continue
			case *ast.AssignStmt:
				for _, lhs := range q.Lhs {
					if ast.Unparen(lhs) == p {
						return false
					}
				}
			case *ast.IncDecStmt:
				return ast.Unparen(q.X) != p
			case *ast.UnaryExpr:
				return q.Op != token.AND
			}
			break
		}
		return true
	}
	return false
}

// classifyConversion recognizes the two per-event conversion allocs:
// string(b) of a byte slice and []byte(s) of a string.
func classifyConversion(pass *analysis.Pass, call *ast.CallExpr) (desc, msg string) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", ""
	}
	src, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || src.Type == nil {
		return "", ""
	}
	if src.Value != nil {
		return "", "" // constant-folded conversion: no runtime cost
	}
	switch {
	case isString(tv.Type) && isByteSlice(src.Type):
		return "string([]byte) conversion", "string(...) conversion of a byte slice"
	case isByteSlice(tv.Type) && isString(src.Type):
		return "[]byte(string) conversion", "[]byte(...) conversion of a string"
	}
	return "", ""
}

func conversionAdvice(desc string) string {
	if strings.HasPrefix(desc, "string") {
		return "intern the string or keep the bytes"
	}
	return "reuse a scratch buffer"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// boxedArg returns the first call argument converted into an interface
// parameter with an allocating boxing (concrete, non-pointer-shaped,
// non-constant value), or nil.
func boxedArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // spread: the slice passes through unboxed
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || at.Value != nil {
			continue // untyped nil and constants box without allocating
		}
		if _, isIface := at.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		return arg
	}
	return nil
}

// pointerShaped reports whether values of t fit an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// escapingClosure reports whether fl is a function literal that both
// captures variables of the enclosing declaration and flows somewhere
// that forces a heap closure: a non-sort call argument, a goroutine, a
// return value, a channel send, a composite literal, or a store into a
// field or element. It returns the first captured variable's name.
func escapingClosure(pass *analysis.Pass, stack []ast.Node, fl *ast.FuncLit, decl *ast.FuncDecl) (string, bool) {
	if len(stack) == 0 {
		return "", false
	}
	captured := ""
	ast.Inspect(fl.Body, func(nd ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		// Captured: declared inside the enclosing declaration but
		// outside the literal (receiver and parameters included).
		if v.Pos() >= decl.Pos() && v.Pos() < fl.Pos() {
			captured = v.Name()
		}
		return true
	})
	if captured == "" {
		return "", false // static closures are allocated once
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if parent.Fun == fl {
			// Immediately invoked: only a goroutine launch escapes.
			if len(stack) >= 2 {
				_, isGo := stack[len(stack)-2].(*ast.GoStmt)
				return captured, isGo
			}
			return "", false
		}
		if len(stack) >= 2 {
			if _, isDefer := stack[len(stack)-2].(*ast.DeferStmt); isDefer {
				return "", false
			}
		}
		if callee := lintutil.Callee(pass.TypesInfo, parent); callee != nil && callee.Pkg() != nil {
			switch callee.Pkg().Path() {
			case "sort", "slices":
				return "", false // sanctioned ordering calls
			}
		}
		return captured, true
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return captured, true
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				return captured, true
			}
		}
	}
	return "", false
}

// sliceDecls records, for every slice-typed local defined in body,
// where it was declared and whether the initializer preallocated
// capacity (make with a cap or nonzero len, or a non-empty literal).
// Initializers we cannot judge (call results, multi-value assigns)
// count as preallocated so the append check stays quiet on them.
func sliceDecls(pass *analysis.Pass, body *ast.BlockStmt) (prealloc map[*types.Var]bool, declPos map[*types.Var]token.Pos) {
	prealloc = make(map[*types.Var]bool)
	declPos = make(map[*types.Var]token.Pos)
	note := func(id *ast.Ident, sized bool) {
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		declPos[v] = id.Pos()
		prealloc[v] = sized
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if len(x.Rhs) == len(x.Lhs) {
					note(id, initializerSized(pass, x.Rhs[i]))
				} else {
					note(id, true) // multi-value: cannot judge
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					note(name, initializerSized(pass, x.Values[i]))
				} else {
					note(name, false) // var s []T: nil, zero capacity
				}
			}
		}
		return true
	})
	return prealloc, declPos
}

// initializerSized reports whether a slice initializer carries
// capacity: make with an explicit cap or a nonzero len, or a literal
// with elements. Unknown initializers count as sized.
func initializerSized(pass *analysis.Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		if len(x.Args) >= 3 {
			return true
		}
		if len(x.Args) == 2 {
			tv, ok := pass.TypesInfo.Types[x.Args[1]]
			return !ok || tv.Value == nil || tv.Value.String() != "0"
		}
		return true
	case *ast.CompositeLit:
		return len(x.Elts) > 0
	}
	return true
}

// innermostLoop returns the nearest enclosing for/range statement whose
// per-iteration region contains pos, or nil.
func innermostLoop(stack []ast.Node, pos token.Pos) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.ForStmt:
			if covers(x.Body, pos) || covers(x.Cond, pos) || covers(x.Post, pos) {
				return x
			}
		case *ast.RangeStmt:
			if covers(x.Body, pos) {
				return x
			}
		}
	}
	return nil
}

// inLoop reports whether pos sits in the per-iteration region of any
// enclosing loop (a range expression or a for-init runs once and does
// not count).
func inLoop(stack []ast.Node, pos token.Pos) bool {
	return innermostLoop(stack, pos) != nil
}

func covers(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// coldContext reports whether the innermost statement context is
// amortized-cold: inside an if-block or switch-case that terminates by
// returning, panicking, or branching out. Error formatting on a reject
// path is not a per-event cost.
func coldContext(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.BlockStmt:
			if i > 0 {
				if _, isIf := stack[i-1].(*ast.IfStmt); isIf && terminates(x.List) {
					return true
				}
			}
		case *ast.CaseClause:
			if terminates(x.Body) {
				return true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // heat restarts inside loops and literals
		}
	}
	return false
}

// terminates reports whether a statement list ends by leaving the
// surrounding flow: return, panic, or an explicit branch. A trailing
// if whose body terminates also counts — `if err != nil { return err }`
// at the end of a guarded block marks the whole block as a validating
// slow path (e.g. a parse fallback that delegates near-misses).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		return terminates(last.Body.List)
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
