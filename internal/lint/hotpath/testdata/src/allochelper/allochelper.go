// Fixture helper package outside the hot set: nothing here is a root,
// so no diagnostics land in this package — but each function exports
// its AllocFact, and hot loops in other packages that call an
// allocation-bearing helper are flagged at the call site.
package allochelper

// Grow allocates per call (map literal, append growth); a hot
// cross-package caller is held to this summary.
func Grow(n int) map[string]int {
	m := map[string]int{}
	var keys []string
	for i := 0; i < n; i++ {
		keys = append(keys, "k")
		m["k"]++
	}
	_ = keys
	return m
}

// Describe allocates too, but returns a single error: pure error
// constructors run only on reject paths, so hot callers skip it.
func Describe(n int) error {
	parts := map[string]int{"n": n}
	_ = parts
	return nil
}

// Clean is allocation-free; hot callers stay quiet on it.
func Clean(n int) int { return n * 2 }
