// Fixture shadow of the standard fmt package: hotpath matches fmt.*
// calls by package path, and linttest resolves fixture packages before
// GOROOT source, so this two-function stub triggers the check without
// compiling the real fmt (and its dependency cone) from source.
package fmt

func Sprintf(format string, args ...interface{}) string { return format }

func Sprint(args ...interface{}) string { return "" }

func Errorf(format string, args ...interface{}) error { return nil }
