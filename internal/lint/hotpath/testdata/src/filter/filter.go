// Fixture mirror of the cascade: package NAME filter puts Pipeline and
// Temporal in hotpath's root table as per-call roots — invoked once
// per batch, so only their loop bodies (and everything called from
// them) are per-event.
package filter

import (
	"fmt"

	"allochelper"
)

// Pipeline is a per-call root: batch setup outside the loop is
// amortized and stays quiet; the same constructs inside the loop are
// per-event.
func Pipeline(events [][]byte) []string {
	scratch := map[string]int{}                // no diagnostic: per-call setup
	header := fmt.Sprintf("n=%d", len(events)) // no diagnostic: per-call setup
	out := make([]string, 0, len(events))
	for _, e := range events {
		if len(e) == 0 {
			header = fmt.Sprintf("short at %d", len(out)) // no diagnostic: cold reject path
			return out
		}
		name := string(e) // want `string\(\.\.\.\) conversion of a byte slice allocates on a hot loop`
		scratch[name]++
		out = append(out, name)
	}
	_ = header
	return out
}

// Temporal exercises the cross-package call boundary: a hot loop
// calling an allocation-bearing helper in another package is flagged
// at the call site via the helper's exported AllocFact.
func Temporal(events [][]byte) int {
	total := 0
	for range events {
		total += allochelper.Clean(total) // no diagnostic: allocation-free helper
		m := allochelper.Grow(total)      // want `hot loop calls allochelper\.Grow, which allocates`
		total += len(m)
		if total < 0 {
			_ = allochelper.Describe(total) // no diagnostic: pure error constructor
		}
	}
	return total
}

// BenchmarkCascade is seeded per-call like any Benchmark* body: its
// loop constructs are flagged, but benchmarks skip the cross-package
// boundary check — they exist to call what they measure.
func BenchmarkCascade(n int) {
	for i := 0; i < n; i++ {
		_ = fmt.Sprintf("i=%d", i) // want `call to fmt\.Sprintf allocates on a hot loop`
		_ = allochelper.Grow(i)    // no diagnostic: benchmark bodies are boundary-exempt
	}
}
