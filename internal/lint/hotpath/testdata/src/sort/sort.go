// Fixture shadow of the standard sort package: calls into sort are
// sanctioned (deterministic ordering is a correctness invariant), so
// the boxing and closure checks must stay quiet on them.
package sort

func Slice(x interface{}, less func(i, j int) bool) {}
