// Fixture mirror of the ingest codec: hotpath keys its root table by
// package NAME plus object path, so this package's
// Record.UnmarshalFields is the per-event root
// raslog.Record.UnmarshalFields and its whole body is hot.
package raslog

import (
	"fmt"
	"sort"
)

type Record struct {
	name string
	run  func() int
	m    map[string]int
}

// UnmarshalFields is a per-event root: every allocation-bearing
// construct in its body (and in everything it calls) is per-event.
func (r *Record) UnmarshalFields(b []byte) error {
	r.name = string(b)                  // want `string\(\.\.\.\) conversion of a byte slice allocates on a hot path; intern the string or keep the bytes`
	msg := fmt.Sprintf("rec %d", len(b)) // want `call to fmt\.Sprintf allocates on a hot path`
	_ = msg
	raw := []byte(r.name) // want `\[\]byte\(\.\.\.\) conversion of a string allocates on a hot path; reuse a scratch buffer`
	_ = raw
	counts := map[string]int{} // want `map literal allocates on a hot path`
	_ = counts
	pair := []int{1, 2} // want `slice literal allocates on a hot path`
	_ = pair
	r.run = func() int { return len(r.name) } // want `closure capturing r escapes on a hot path`
	r.classify(b)
	r.expand(nil)
	r.box(point{})
	r.order(pair)
	return r.reject(b)
}

// reject is not a root; it inherits per-event heat from
// UnmarshalFields through the callgraph — except on its cold reject
// path, where error formatting is amortized away.
func (r *Record) reject(b []byte) error {
	key := fmt.Sprint(len(b)) // want `call to fmt\.Sprint allocates on a hot path`
	_ = key
	if len(b) == 0 {
		return fmt.Errorf("empty record") // cold reject path: no diagnostic
	}
	return nil
}

// classify exercises the conversion contexts the compiler compiles
// without allocating: switch tags, equality operands, and map probes
// stay quiet; a map STORE retains its key and is flagged.
func (r *Record) classify(b []byte) int {
	switch string(b) { // no diagnostic: switch-tag conversion does not allocate
	case "boot":
		return 1
	}
	if string(b) == "halt" { // no diagnostic: == operand does not allocate
		return 2
	}
	if n, ok := r.m[string(b)]; ok { // no diagnostic: map probe does not allocate
		return n
	}
	r.m[string(b)] = 1 // want `string\(\.\.\.\) conversion of a byte slice allocates on a hot path`
	return 0
}

// expand exercises the append-preallocation check: appends into an
// unsized slice from a hot loop are flagged, sized ones are not.
func (r *Record) expand(bs [][]byte) []int {
	var out []int
	sized := make([]int, 0, len(bs))
	for _, b := range bs {
		n := len(b)
		out = append(out, n) // want `append to out in a hot loop without preallocated capacity`
		sized = append(sized, n)
	}
	_ = sized
	return out
}

type point struct{ x, y int }

func sinkAny(v interface{}) {}

// box exercises interface boxing at call sites: a concrete struct
// value allocates, pointer-shaped and constant arguments do not.
func (r *Record) box(p point) {
	sinkAny(p)  // want `p is boxed into an interface argument on a hot path`
	sinkAny(&p) // no diagnostic: pointer-shaped values fit the interface word
	sinkAny(3)  // no diagnostic: constants box without allocating
}

// order's closure and interface argument are sanctioned: deterministic
// ordering is a correctness invariant (see detrand/maporder).
func (r *Record) order(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Summary is unreachable from any root: the same constructs stay quiet
// here, though its AllocFact is still exported for cross-package use.
func Summary(rs []Record) string {
	m := map[string]int{}
	for i := range rs {
		m[rs[i].name]++
	}
	return fmt.Sprint(len(m))
}
