package hotpath_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/hotpath"
	"repro/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata", hotpath.Analyzer, "raslog", "filter")
}

// TestRootTable pins the root table's shape: sorted, duplicate-free,
// and every symbol of the "pkg.Name" or "pkg.Recv.Name" form, so
// cmd/bgpescape's consumers can parse it by cutting on the first dot.
func TestRootTable(t *testing.T) {
	rs := hotpath.Roots()
	if len(rs) == 0 {
		t.Fatal("empty root table")
	}
	syms := make([]string, 0, len(rs))
	for _, r := range rs {
		if r.Kind != hotpath.PerCall && r.Kind != hotpath.PerEvent {
			t.Errorf("root %s has kind %v, want per-call or per-event", r.Sym, r.Kind)
		}
		if parts := strings.Split(r.Sym, "."); len(parts) < 2 || len(parts) > 3 {
			t.Errorf("root sym %q is not pkg.Name or pkg.Recv.Name", r.Sym)
		}
		syms = append(syms, r.Sym)
	}
	if !sort.StringsAreSorted(syms) {
		t.Errorf("root table not sorted: %v", syms)
	}
	for i := 1; i < len(syms); i++ {
		if syms[i] == syms[i-1] {
			t.Errorf("duplicate root %q", syms[i])
		}
	}
	// Roots returns a copy: mutating it must not poison the table.
	rs[0].Sym = "mutated"
	if hotpath.Roots()[0].Sym == "mutated" {
		t.Error("Roots() exposes the internal table")
	}
}

// TestHotFactExport checks hotness propagation end to end on the
// fixture: the per-event root exports PerEvent, heat reaches its
// helpers through the callgraph, and unreachable functions export no
// HotFact but still export their AllocFact for cross-package callers.
func TestHotFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", hotpath.Analyzer, "raslog")

	var hf hotpath.HotFact
	if !store.ImportObjectFactByPath("raslog", "Record.UnmarshalFields", &hf) {
		t.Fatal("no HotFact on the declared root Record.UnmarshalFields")
	}
	if hf.Kind != hotpath.PerEvent {
		t.Errorf("root kind = %v, want per-event", hf.Kind)
	}
	for _, helper := range []string{"Record.reject", "Record.classify", "Record.expand", "sinkAny"} {
		if !store.ImportObjectFactByPath("raslog", helper, &hf) || hf.Kind != hotpath.PerEvent {
			t.Errorf("heat did not propagate to %s (fact=%v kind=%v)", helper,
				store.ImportObjectFactByPath("raslog", helper, &hf), hf.Kind)
		}
	}
	if store.ImportObjectFactByPath("raslog", "Summary", &hf) {
		t.Error("Summary is unreachable from any root but carries a HotFact")
	}
	var af hotpath.AllocFact
	if !store.ImportObjectFactByPath("raslog", "Summary", &af) {
		t.Fatal("Summary exports no AllocFact")
	}
	want := []string{"fmt.Sprint call", "map literal"}
	if strings.Join(af.Constructs, "|") != strings.Join(want, "|") {
		t.Errorf("Summary AllocFact = %v, want %v", af.Constructs, want)
	}
}

// TestPerCallFactExport checks the second tier: a per-call root
// exports PerCall, while its loop callees would be per-event.
func TestPerCallFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", hotpath.Analyzer, "filter")
	var hf hotpath.HotFact
	if !store.ImportObjectFactByPath("filter", "Pipeline", &hf) || hf.Kind != hotpath.PerCall {
		t.Errorf("Pipeline HotFact = %v, want per-call", hf.Kind)
	}
	if !store.ImportObjectFactByPath("filter", "BenchmarkCascade", &hf) || hf.Kind != hotpath.PerCall {
		t.Errorf("BenchmarkCascade HotFact = %v, want per-call (benchmark seeding)", hf.Kind)
	}
}
