// Package atomicpub defines the bgplint analyzer for atomic
// publication discipline: a field or package-level variable of type
// sync/atomic.Pointer[T], atomic.Value, or one of the scalar atomic
// types is a publication point, and the only safe way to touch it is
// through its own methods — every read via Load, every replacement via
// Store/Swap/CompareAndSwap. This is the exact contract
// serve.Engine.epoch depends on for lock-free readers.
//
// Three rules:
//
//   - Plain access: any use of an atomic variable that is not the
//     receiver of a sync/atomic method call is flagged — plain reads,
//     assignments, copies (which tear the internal state), taking its
//     address, comparisons, and composite-literal initialization.
//   - Publish-then-mutate: after a local value is passed to
//     Store/Swap/CompareAndSwap it is shared with concurrent readers;
//     later writes through it race. Argument positions that publish
//     cross function boundaries via PublishesFact.
//   - Load-then-mutate: a value obtained from Load (directly or via a
//     function marked PublishedFact, such as serve.Engine.Epoch) is
//     shared; writing through it races with every other reader.
package atomicpub

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicpub",
	Doc: "enforce publication discipline on atomic.Pointer/atomic.Value fields\n\n" +
		"Atomic publication points must only be touched via Load/Store/Swap/\n" +
		"CompareAndSwap, and a value that has been published (Stored) or observed\n" +
		"(Loaded) must never be mutated afterwards — concurrent readers hold it.\n" +
		"Publication flows cross package boundaries via PublishesFact (parameters\n" +
		"that reach a Store) and PublishedFact (results that come from a Load).",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*PublishesFact)(nil), (*PublishedFact)(nil)},
}

// A PublishesFact marks a function that stores one or more of its
// parameters into an atomic publication point: arguments in Params
// positions are shared with concurrent readers after the call.
type PublishesFact struct {
	Params []int
}

// AFact marks PublishesFact as a fact type.
func (*PublishesFact) AFact() {}

func (f *PublishesFact) String() string { return fmt.Sprintf("publishes%v", f.Params) }

// A PublishedFact marks a function whose result is a published value —
// it returns an atomic Load result (or another PublishedFact call, or
// a value it Stored itself), so callers must treat it as shared.
type PublishedFact struct{}

// AFact marks PublishedFact as a fact type.
func (*PublishedFact) AFact() {}

func (*PublishedFact) String() string { return "published" }

// atomicTypeNames are the named types in sync/atomic whose values are
// publication points. Plain scalar atomics included: copying or plainly
// reading them defeats the memory-ordering guarantees just the same.
var atomicTypeNames = []string{
	"Pointer", "Value", "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr",
}

type checker struct {
	pass      *analysis.Pass
	graph     *callgraph.Result
	publishes map[*types.Func]map[int]bool
	published map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		publishes: make(map[*types.Func]map[int]bool),
		published: make(map[*types.Func]bool),
	}
	c.inferPublishes()
	c.inferPublished()
	c.exportFacts()
	for _, node := range c.graph.Order {
		if lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		c.checkPlainAccess(node)
		c.checkMutateAfterShare(node)
	}
	return nil, nil
}

// isAtomicType reports whether t is (a pointer to) one of the
// sync/atomic publication types, including generic instantiations
// like atomic.Pointer[Epoch].
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, n := range atomicTypeNames {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// atomicMethodCall reports whether call invokes a method declared in
// sync/atomic (Load/Store/Swap/CompareAndSwap/Add/Or/And...), and if
// so returns its name and receiver expression.
func atomicMethodCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, false
	}
	return fn.Name(), sel.X, true
}

// atomicObj resolves e to the variable object of an atomic-typed field
// or package-level var it names (x.epoch → Engine.epoch's *types.Var),
// or nil.
func atomicObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isAtomicType(v.Type()) {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && isAtomicType(v.Type()) {
			return v
		}
	}
	return nil
}

// checkPlainAccess flags every appearance of an atomic variable that
// is not the receiver of a sync/atomic method call, and composite
// literals that initialize one by key.
func (c *checker) checkPlainAccess(node *callgraph.Node) {
	info := c.pass.TypesInfo
	lintutil.WalkStack(node.Decl, func(stack []ast.Node, n ast.Node) {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			// T{epoch: ...} — the zero value is the only valid initializer.
			key, ok := n.Key.(*ast.Ident)
			if !ok {
				return
			}
			if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() && isAtomicType(v.Type()) {
				c.pass.Reportf(n.Pos(),
					"atomic field %s initialized by composite literal; start from the zero value and publish with Store (atomicpub)", key.Name)
			}
			return
		case *ast.SelectorExpr:
			v, ok := info.Uses[n.Sel].(*types.Var)
			if !ok || !isAtomicType(v.Type()) {
				return
			}
			if c.legalAtomicUse(stack, n) {
				return
			}
			c.pass.Reportf(n.Sel.Pos(),
				"plain access of atomic variable %s; go through Load/Store/Swap/CompareAndSwap (atomicpub)", n.Sel.Name)
		case *ast.Ident:
			// Package-level atomic var used bare.
			v, ok := info.Uses[n].(*types.Var)
			if !ok || v.IsField() || !isAtomicType(v.Type()) {
				return
			}
			// Skip the Sel half of a selector (handled above) and
			// declaration sites.
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
					return
				}
			}
			if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return // a local of atomic type; its field/method uses are caught above
			}
			if c.legalAtomicUse(stack, n) {
				return
			}
			c.pass.Reportf(n.Pos(),
				"plain access of atomic variable %s; go through Load/Store/Swap/CompareAndSwap (atomicpub)", n.Name)
		}
	})
}

// legalAtomicUse reports whether the atomic-typed expression e, with
// ancestor stack, is in the one legal position: receiver of a
// sync/atomic method call, possibly behind & or parens.
func (c *checker) legalAtomicUse(stack []ast.Node, e ast.Expr) bool {
	info := c.pass.TypesInfo
	cur := ast.Node(e)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p
				continue
			}
			return false
		case *ast.SelectorExpr:
			if p.X != cur {
				return false
			}
			// e.epoch.Load — the selected member must be a sync/atomic
			// method and the grandparent the call itself.
			fn, ok := info.Uses[p.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return false
			}
			if i == 0 {
				return false
			}
			call, ok := stack[i-1].(*ast.CallExpr)
			return ok && ast.Unparen(call.Fun) == ast.Expr(p)
		default:
			return false
		}
	}
	return false
}

// storeValueArg returns the argument expression that becomes shared
// when call is an atomic publish: Store(v) and Swap(v) share arg 0,
// CompareAndSwap(old, new) shares arg 1.
func storeValueArg(name string, call *ast.CallExpr) ast.Expr {
	switch name {
	case "Store", "Swap":
		if len(call.Args) >= 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) >= 2 {
			return call.Args[1]
		}
	}
	return nil
}

// inferPublishes computes, per function, which parameters flow into an
// atomic Store value position — directly or through a call to another
// publishing function — as a callgraph fixpoint (seedtaint-style).
func (c *checker) inferPublishes() {
	info := c.pass.TypesInfo
	paramIndex := func(fn *types.Func, obj types.Object) int {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return -1
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return i
			}
		}
		return -1
	}
	publishedParams := func(fn *types.Func) map[int]bool {
		if fn == nil {
			return nil
		}
		if fn.Pkg() == c.pass.Pkg {
			return c.publishes[fn]
		}
		var fact PublishesFact
		if !c.pass.ImportObjectFact(fn, &fact) {
			return nil
		}
		m := make(map[int]bool, len(fact.Params))
		for _, p := range fact.Params {
			m[p] = true
		}
		return m
	}

	work := append([]*callgraph.Node(nil), c.graph.Order...)
	inWork := make(map[*types.Func]bool, len(work))
	for _, n := range work {
		inWork[n.Fn] = true
	}
	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		inWork[node.Fn] = false
		if lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
			continue
		}
		grown := false
		mark := func(obj types.Object) {
			i := paramIndex(node.Fn, obj)
			if i < 0 {
				return
			}
			set := c.publishes[node.Fn]
			if set == nil {
				set = make(map[int]bool)
				c.publishes[node.Fn] = set
			}
			if !set[i] {
				set[i] = true
				grown = true
			}
		}
		ast.Inspect(node.Decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, recv, isAtomic := atomicMethodCall(info, call); isAtomic {
				if atomicObj(info, recv) == nil {
					return true
				}
				if arg := storeValueArg(name, call); arg != nil {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							mark(obj)
						}
					}
				}
				return true
			}
			callee := lintutil.Callee(info, call)
			for p := range publishedParams(callee) {
				if p < len(call.Args) {
					if id, ok := ast.Unparen(call.Args[p]).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							mark(obj)
						}
					}
				}
			}
			return true
		})
		if grown {
			for _, caller := range c.graph.CallersOf[node.Fn] {
				if !inWork[caller.Fn] {
					inWork[caller.Fn] = true
					work = append(work, caller)
				}
			}
		}
	}
}

// inferPublished marks functions whose results are shared values: the
// function returns a Load result, a call of another published-result
// function, or an ident it Stored itself earlier in the body (the
// store-then-return idiom of serve.Engine.Publish).
func (c *checker) inferPublished() {
	info := c.pass.TypesInfo
	isPublishedFn := func(fn *types.Func) bool {
		if fn == nil {
			return false
		}
		if fn.Pkg() == c.pass.Pkg {
			return c.published[fn]
		}
		var fact PublishedFact
		return c.pass.ImportObjectFact(fn, &fact)
	}
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			if c.published[node.Fn] || lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
				continue
			}
			// Idents stored into an atomic point in this body.
			stored := make(map[types.Object]bool)
			ast.Inspect(node.Decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, recv, isAtomic := atomicMethodCall(info, call)
				if !isAtomic || atomicObj(info, recv) == nil {
					return true
				}
				if arg := storeValueArg(name, call); arg != nil {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							stored[obj] = true
						}
					}
				}
				return true
			})
			isLoadOrPublished := func(e ast.Expr) bool {
				call, ok := ast.Unparen(e).(*ast.CallExpr)
				if !ok {
					return false
				}
				if name, recv, isAtomic := atomicMethodCall(info, call); isAtomic {
					return name == "Load" && atomicObj(info, recv) != nil
				}
				return isPublishedFn(lintutil.Callee(info, call))
			}
			found := false
			ast.Inspect(node.Decl, func(n ast.Node) bool {
				if found {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if isLoadOrPublished(res) {
						found = true
						return false
					}
					if id, ok := ast.Unparen(res).(*ast.Ident); ok && stored[info.Uses[id]] {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				c.published[node.Fn] = true
				changed = true
			}
		}
	}
}

func (c *checker) exportFacts() {
	for fn, set := range c.publishes {
		params := make([]int, 0, len(set))
		for p := range set {
			params = append(params, p)
		}
		sort.Ints(params)
		c.pass.ExportObjectFact(fn, &PublishesFact{Params: params})
	}
	for fn := range c.published {
		c.pass.ExportObjectFact(fn, &PublishedFact{})
	}
}

// checkMutateAfterShare flags writes through locals that have been
// published (passed to Store/Swap/CompareAndSwap or a PublishesFact
// position) or observed (assigned from Load or a PublishedFact call).
func (c *checker) checkMutateAfterShare(node *callgraph.Node) {
	info := c.pass.TypesInfo
	// shared[obj] = pos where the value became shared, with the verb.
	shared := make(map[types.Object]token.Pos)
	how := make(map[types.Object]string)
	mark := func(id *ast.Ident, verb string) {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return
		}
		if _, ok := shared[obj]; !ok {
			shared[obj] = id.Pos()
			how[obj] = verb
		}
	}
	isPublishedFn := func(fn *types.Func) bool {
		if fn == nil {
			return false
		}
		if fn.Pkg() == c.pass.Pkg {
			return c.published[fn]
		}
		var fact PublishedFact
		return c.pass.ImportObjectFact(fn, &fact)
	}
	publishedParams := func(fn *types.Func) map[int]bool {
		if fn == nil {
			return nil
		}
		if fn.Pkg() == c.pass.Pkg {
			return c.publishes[fn]
		}
		var fact PublishesFact
		if !c.pass.ImportObjectFact(fn, &fact) {
			return nil
		}
		m := make(map[int]bool, len(fact.Params))
		for _, p := range fact.Params {
			m[p] = true
		}
		return m
	}

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, recv, isAtomic := atomicMethodCall(info, n); isAtomic {
				if atomicObj(info, recv) == nil {
					return true
				}
				if arg := storeValueArg(name, n); arg != nil {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						mark(id, "published by "+name)
					}
				}
				return true
			}
			callee := lintutil.Callee(info, n)
			for p := range publishedParams(callee) {
				if p < len(n.Args) {
					if id, ok := ast.Unparen(n.Args[p]).(*ast.Ident); ok {
						mark(id, "published via "+callee.Name())
					}
				}
			}
		case *ast.AssignStmt:
			// v := x.Load() / v := eng.Epoch()
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				verb := ""
				if name, recv, isAtomic := atomicMethodCall(info, call); isAtomic {
					if name == "Load" && atomicObj(info, recv) != nil {
						verb = "observed via Load"
					}
				} else if fn := lintutil.Callee(info, call); isPublishedFn(fn) {
					verb = "observed via " + fn.Name()
				}
				if verb == "" {
					continue
				}
				var lhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				} else if len(n.Rhs) == 1 && len(n.Lhs) > 0 {
					lhs = n.Lhs[0]
				}
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					mark(id, verb)
				}
			}
		}
		return true
	})
	if len(shared) == 0 {
		return
	}

	ast.Inspect(node.Decl, func(n ast.Node) bool {
		check := func(e ast.Expr) {
			root := lintutil.RootIdent(e)
			if root == nil {
				return
			}
			obj := info.Uses[root]
			if obj == nil {
				return
			}
			pos, ok := shared[obj]
			if !ok || root.Pos() <= pos {
				return
			}
			if _, plain := e.(*ast.Ident); plain {
				return // rebinding the local is fine
			}
			c.pass.Reportf(e.Pos(),
				"write through %s after it was %s; concurrent readers already hold the value (atomicpub)",
				obj.Name(), how[obj])
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}
