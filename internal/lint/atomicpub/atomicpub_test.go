package atomicpub_test

import (
	"testing"

	"repro/internal/lint/atomicpub"
	"repro/internal/lint/linttest"
)

func TestAtomicpub(t *testing.T) {
	linttest.Run(t, "testdata", atomicpub.Analyzer, "atomicpubtest")
}

func TestCrossPackagePublication(t *testing.T) {
	linttest.Run(t, "testdata", atomicpub.Analyzer, "atomicpubfactb")
}

// TestFactExport pins the publication facts: parameters that reach a
// Store, and results that come from a Load.
func TestFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", atomicpub.Analyzer, "atomicpubtest")

	var pub atomicpub.PublishesFact
	if !store.ImportObjectFactByPath("atomicpubtest", "Engine.install", &pub) {
		t.Fatal("no PublishesFact exported for Engine.install")
	}
	if len(pub.Params) != 1 || pub.Params[0] != 0 {
		t.Errorf("PublishesFact for Engine.install = %v, want [0]", pub.Params)
	}
	if !store.ImportObjectFactByPath("atomicpubtest", "Engine.Publish", &pub) {
		t.Error("no PublishesFact exported for Engine.Publish")
	}

	var pd atomicpub.PublishedFact
	if !store.ImportObjectFactByPath("atomicpubtest", "Engine.Current", &pd) {
		t.Fatal("no PublishedFact exported for Engine.Current")
	}
	if store.ImportObjectFactByPath("atomicpubtest", "Engine.BadCopy", &pd) {
		t.Error("Engine.BadCopy does not return a Load result but has PublishedFact")
	}
}
