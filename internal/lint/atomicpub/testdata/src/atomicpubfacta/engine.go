// Fixture dependency for atomicpub's cross-package test: analyzing
// this package exports PublishesFact{0} on Engine.Publish and
// PublishedFact on Engine.Current, which the importing fixture
// consumes.
package atomicpubfacta

import "sync/atomic"

// Epoch is the published value.
type Epoch struct {
	Seq int
}

// Engine publishes epochs through an atomic pointer.
type Engine struct {
	epoch atomic.Pointer[Epoch]
}

// Publish stores its parameter: callers lose mutation rights on it.
func (e *Engine) Publish(ep *Epoch) {
	e.epoch.Store(ep)
}

// Current returns the shared value: callers must not write through it.
func (e *Engine) Current() *Epoch {
	return e.epoch.Load()
}
