// Stub of the standard sync/atomic package for the atomicpub
// fixtures: the analyzer matches types and methods by package path
// only, so these shells keep fixture type-checking hermetic and fast.
package atomic

// Pointer is a stub of atomic.Pointer[T].
type Pointer[T any] struct{ p *T }

func (x *Pointer[T]) Load() *T       { return x.p }
func (x *Pointer[T]) Store(v *T)     { x.p = v }
func (x *Pointer[T]) Swap(v *T) *T   { old := x.p; x.p = v; return old }
func (x *Pointer[T]) CompareAndSwap(old, new *T) bool {
	if x.p == old {
		x.p = new
		return true
	}
	return false
}

// Value is a stub of atomic.Value.
type Value struct{ v any }

func (v *Value) Load() any   { return v.v }
func (v *Value) Store(x any) { v.v = x }

// Int64 is a stub of atomic.Int64.
type Int64 struct{ v int64 }

func (x *Int64) Load() int64       { return x.v }
func (x *Int64) Store(v int64)     { x.v = v }
func (x *Int64) Add(d int64) int64 { x.v += d; return x.v }
