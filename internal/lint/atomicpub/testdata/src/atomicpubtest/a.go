// Positive and negative cases for atomicpub: plain access of atomic
// variables, publish-then-mutate, and load-then-mutate, with the
// publication facts flowing through local helpers.
package atomicpubtest

import "sync/atomic"

// Epoch is the published value.
type Epoch struct {
	Seq   int
	Stats []int
}

// Engine publishes epochs through an atomic pointer.
type Engine struct {
	epoch atomic.Pointer[Epoch]
	hits  atomic.Int64
}

// Proper discipline: Store to publish, Load to read.
func (e *Engine) Publish(ep *Epoch) {
	e.epoch.Store(ep)
}

// Current returns a Load result: it earns a PublishedFact.
func (e *Engine) Current() *Epoch {
	return e.epoch.Load()
}

// install forwards its parameter to Store: PublishesFact{0}.
func (e *Engine) install(ep *Epoch) {
	e.epoch.Store(ep)
}

// BadCopy copies the atomic value — the state tears.
func (e *Engine) BadCopy() atomic.Int64 {
	return e.hits // want `plain access of atomic variable hits`
}

// BadAssign replaces the atomic wholesale instead of Storing.
func (e *Engine) BadAssign(v atomic.Int64) {
	e.hits = v // want `plain access of atomic variable hits`
}

// BadLit initializes an atomic field by composite literal.
func NewBadEngine() *Engine {
	return &Engine{
		hits: atomic.Int64{}, // want `atomic field hits initialized by composite literal`
	}
}

// BadPublishThenMutate writes the value after Store: readers already
// hold it.
func (e *Engine) BadPublishThenMutate(seq int) {
	ep := &Epoch{Seq: seq}
	e.epoch.Store(ep)
	ep.Seq++ // want `write through ep after it was published by Store`
}

// BadLoadThenMutate writes a value observed via Load.
func (e *Engine) BadLoadThenMutate() {
	ep := e.epoch.Load()
	ep.Seq = 9 // want `write through ep after it was observed via Load`
}

// BadViaPublished writes a value observed through Current's
// PublishedFact.
func BadViaPublished(e *Engine) {
	ep := e.Current()
	ep.Stats[0] = 1 // want `write through ep after it was observed via Current`
}

// BadViaPublishes writes a value handed to install's publishing
// parameter.
func BadViaPublishes(e *Engine) {
	ep := &Epoch{}
	e.install(ep)
	ep.Seq = 2 // want `write through ep after it was published via install`
}

// OK builds the value fully before publishing and only reads after.
func OK(e *Engine) int {
	ep := &Epoch{Seq: 1}
	ep.Stats = append(ep.Stats, 7)
	e.epoch.Store(ep)
	cur := e.Current()
	return cur.Seq + len(cur.Stats)
}

// Global exercises package-level atomic vars.
var Global atomic.Int64

func BumpGlobal() { Global.Add(1) }

func BadGlobalCopy() int64 {
	g := Global // want `plain access of atomic variable Global`
	return g.Load()
}
