// Cross-package fact flow: Publish's publishing parameter and
// Current's published result were inferred while analyzing
// atomicpubfacta; the violations here are caught purely from the
// imported facts.
package atomicpubfactb

import "atomicpubfacta"

func Bad(e *atomicpubfacta.Engine) {
	ep := &atomicpubfacta.Epoch{}
	e.Publish(ep)
	ep.Seq = 3 // want `write through ep after it was published via Publish`
}

func Bad2(e *atomicpubfacta.Engine) {
	ep := e.Current()
	ep.Seq = 4 // want `write through ep after it was observed via Current`
}

func OK(e *atomicpubfacta.Engine) int {
	ep := &atomicpubfacta.Epoch{Seq: 1}
	e.Publish(ep)
	return e.Current().Seq
}
