// Package driver loads type-checked packages for bgplint without
// golang.org/x/tools/go/packages (unavailable offline; see the note in
// go.mod). It shells out to `go list -export -deps -json`, which
// compiles dependencies into the build cache and reports the export
// data file for each, then parses only the target packages' sources
// and type-checks them against that export data — the same strategy
// go/packages uses in LoadTypes mode.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Load lists patterns (e.g. "./...") in dir, compiles export data for
// the dependency graph, and type-checks every non-standard-library
// target package from source. Test files are not loaded; run bgplint
// through `go vet -vettool` to cover test packages as well.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	index := make(map[string]*listPackage)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		lp := p
		index[lp.ImportPath] = &lp
		if !lp.DepOnly && !lp.Standard && !strings.HasSuffix(lp.ImportPath, ".test") {
			roots = append(roots, &lp)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, root := range roots {
		if root.Error != nil {
			return nil, fmt.Errorf("%s: %s", root.ImportPath, root.Error.Err)
		}
		if len(root.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, root, index)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one target package against the export
// data of its dependencies.
func check(fset *token.FileSet, root *listPackage, index map[string]*listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range root.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := root.ImportMap[path]; ok {
			path = mapped
		}
		dep, ok := index[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q (imported by %s)", path, root.ImportPath)
		}
		return os.Open(dep.Export)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(root.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", root.ImportPath, err)
	}
	return &Package{
		ImportPath: root.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// A Finding is one diagnostic with its analyzer attached, position-
// resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies every analyzer to every package and returns the findings
// sorted by position (file, line, column) then analyzer — a stable
// order regardless of package load order.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	less := func(a, b Finding) bool {
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	}
	// Insertion sort: finding counts are tiny and this keeps the
	// driver free of sort-helper indirection.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j-1], fs[j] = fs[j], fs[j-1]
		}
	}
}
