// Package driver loads type-checked packages for bgplint without
// golang.org/x/tools/go/packages (unavailable offline; see the note in
// go.mod). It shells out to `go list -export -deps -json`, which
// compiles dependencies into the build cache and reports the export
// data file for each, then parses only the target packages' sources
// and type-checks them against that export data — the same strategy
// go/packages uses in LoadTypes mode.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

// bgplint's exit-code contract, shared by the standalone and vet
// paths: findings and tool failures are distinguishable in CI.
const (
	// ExitClean means no (new) findings.
	ExitClean = 0
	// ExitFindings means the analyzers reported at least one finding
	// not suppressed by a baseline.
	ExitFindings = 1
	// ExitFailure means the analysis itself could not run: load,
	// typecheck, or analyzer error.
	ExitFailure = 2
)

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Deps       []string
	Error      *struct{ Err string }
}

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// Root marks packages named by the load patterns; non-root
	// module packages are loaded only so fact-producing analyzers can
	// summarize them for their dependents, and never report.
	Root bool
}

// Load lists patterns (e.g. "./...") in dir, compiles export data for
// the dependency graph, and type-checks every in-module package from
// source: the pattern-named packages as diagnostic roots, plus any
// module-local dependencies as fact-only packages, ordered so that a
// package always follows its dependencies (fact passes see their
// imports' summaries). Test files are not loaded; run bgplint through
// `go vet -vettool` to cover test packages as well.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	index := make(map[string]*listPackage)
	roots := make(map[string]bool)
	var order []string // go list -deps emits dependencies first
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		lp := p
		if _, dup := index[lp.ImportPath]; dup {
			continue // overlapping patterns list a package twice
		}
		index[lp.ImportPath] = &lp
		if lp.Standard || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		order = append(order, lp.ImportPath)
		if !lp.DepOnly {
			roots[lp.ImportPath] = true
		}
	}

	// Re-order defensively: emit each package after its (loaded)
	// dependencies even if go list's stream order ever changes.
	sorted := topoSort(order, index)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, path := range sorted {
		lp := index[path]
		if lp.Error != nil {
			if !roots[path] {
				continue
			}
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, lp, index)
		if err != nil {
			return nil, err
		}
		pkg.Root = roots[path]
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// topoSort orders the loadable package paths so dependencies precede
// dependents, breaking ties by the original go list order.
func topoSort(order []string, index map[string]*listPackage) []string {
	var out []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		if lp, ok := index[path]; ok {
			for _, dep := range lp.Deps {
				if dlp, ok := index[dep]; ok && !dlp.Standard {
					visit(dep)
				}
			}
		}
		state[path] = 2
		out = append(out, path)
	}
	for _, path := range order {
		visit(path)
	}
	return out
}

// check parses and type-checks one target package against the export
// data of its dependencies.
func check(fset *token.FileSet, root *listPackage, index map[string]*listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range root.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := root.ImportMap[path]; ok {
			path = mapped
		}
		dep, ok := index[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q (imported by %s)", path, root.ImportPath)
		}
		return os.Open(dep.Export)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(root.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", root.ImportPath, err)
	}
	return &Package{
		ImportPath: root.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// A Finding is one diagnostic with its analyzer attached, position-
// resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies every analyzer (plus its transitive Requires) to every
// package, threading facts from dependencies to dependents, and
// returns the findings sorted by position (file, line, column) then
// analyzer — a stable order regardless of package load order — with
// exact duplicates removed. Diagnostics are collected only from Root
// packages and only for the analyzers named by the caller; required
// fact passes run silently.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	facts.Register(analyzers)
	store := facts.NewStore()
	order := analysis.Expand(analyzers)
	requested := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		results := make(map[*analysis.Analyzer]interface{}, len(order))
		for _, a := range order {
			a := a
			report := func(analysis.Diagnostic) {}
			if pkg.Root && requested[a] {
				report = func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				}
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    report,
				ResultOf:  results,
			}
			store.BindPass(pass)
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			results[a] = res
		}
	}
	return sortAndDedupe(findings), nil
}

// sortAndDedupe orders findings by (file, line, column, analyzer,
// message) and drops exact duplicates, so output is deterministic
// across `go list` package orderings and a package matched by two
// patterns reports once.
func sortAndDedupe(fs []Finding) []Finding {
	less := func(a, b Finding) bool {
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	}
	// Insertion sort: finding counts are tiny and this keeps the
	// driver free of sort-helper indirection.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j-1], fs[j] = fs[j], fs[j-1]
		}
	}
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
