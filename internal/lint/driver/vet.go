// Vet-tool protocol support: `go vet -vettool=bgplint` invokes the
// tool once per package with a JSON config file describing sources,
// dependency export data, and dependency fact files, after probing it
// with -V=full (cache key) and -flags (supported flags). This file
// implements that protocol the way x/tools' go/analysis/unitchecker
// does, including cross-package facts: dependency facts are read from
// the .vetx files named by PackageVetx, and the unit's own facts
// (merged with its dependencies', so transitive consumers need only
// direct entries) are gob-encoded to VetxOutput.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

// vetConfig mirrors the fields of unitchecker.Config the go command
// writes; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full: a self-describing line the go
// command uses as the vet result cache key, so editing bgplint
// invalidates cached vet results.
func PrintVersion(w io.Writer) error {
	progname := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel buildID=%02x\n", progname, h.Sum(nil))
	return err
}

// PrintFlags implements -flags: the JSON list of tool flags the go
// command may forward. bgplint keeps none beyond the protocol ones.
func PrintFlags(w io.Writer) error {
	_, err := fmt.Fprintln(w, "[]")
	return err
}

// RunVetUnit executes one vet unit of work: parse the cfg file, read
// dependency facts from their .vetx files, type-check the package
// against the export data the go command already built, run the
// analyzers (fact passes always; reporting passes unless VetxOnly),
// write the merged fact set to VetxOutput, and report diagnostics.
//
// Exit codes follow the bgplint contract (not unitchecker's):
// 0 clean, 1 findings, 2 tool or load failure. failing says whether a
// finding from the named analyzer fails the unit; every finding prints
// regardless, so warn-tier diagnostics surface in go vet output
// without failing the build. A nil failing fails on everything.
func RunVetUnit(cfgFile string, analyzers []*analysis.Analyzer, failing func(analyzer string) bool, stderr io.Writer) int {
	if failing == nil {
		failing = func(string) bool { return true }
	}
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitFailure
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "bgplint: parsing %s: %v\n", cfgFile, err)
		return ExitFailure
	}

	facts.Register(analyzers)
	store := facts.NewStore()
	deps := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		deps = append(deps, dep)
	}
	sort.Strings(deps) // deterministic read order (and error reporting)
	for _, dep := range deps {
		vetx := cfg.PackageVetx[dep]
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dependency facts degrade to local analysis
		}
		if err := store.Decode(data); err != nil {
			fmt.Fprintf(stderr, "bgplint: %s: %v\n", vetx, err)
			return ExitFailure
		}
	}

	// succeed writes the (possibly empty) fact file the go command
	// expects before a clean early return.
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return ExitClean
		}
		data, err := store.Encode()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return ExitFailure
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return ExitFailure
		}
		return ExitClean
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			fmt.Fprintln(stderr, err)
			return ExitFailure
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(stderr, "bgplint: %s: %v\n", cfg.ImportPath, err)
		return ExitFailure
	}

	order := analysis.Expand(analyzers)
	requested := make(map[*analysis.Analyzer]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a] = true
	}
	// In VetxOnly mode the go command only wants this package's facts
	// for later units; run only the fact-producing analyzers plus
	// whatever they require for their ResultOf.
	factNeeded := make(map[*analysis.Analyzer]bool)
	for _, a := range order {
		if producesFacts(a) {
			for _, dep := range analysis.Expand([]*analysis.Analyzer{a}) {
				factNeeded[dep] = true
			}
		}
	}
	var findings []Finding
	results := make(map[*analysis.Analyzer]interface{}, len(order))
	for _, a := range order {
		a := a
		if cfg.VetxOnly && !factNeeded[a] {
			continue
		}
		report := func(analysis.Diagnostic) {}
		if !cfg.VetxOnly && requested[a] {
			report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report:    report,
			ResultOf:  results,
		}
		store.BindPass(pass)
		res, err := a.Run(pass)
		if err != nil {
			fmt.Fprintf(stderr, "bgplint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return ExitFailure
		}
		results[a] = res
	}

	exit := writeVetx()
	if exit != ExitClean {
		return exit
	}
	fail := false
	for _, f := range sortAndDedupe(findings) {
		fmt.Fprintf(stderr, "%s: %s\n", f.Pos, f.Message)
		if failing(f.Analyzer) {
			fail = true
		}
	}
	if fail {
		return ExitFindings
	}
	return ExitClean
}

// producesFacts reports whether a (or anything it requires) declares
// fact types.
func producesFacts(a *analysis.Analyzer) bool {
	for _, dep := range analysis.Expand([]*analysis.Analyzer{a}) {
		if len(dep.FactTypes) > 0 {
			return true
		}
	}
	return false
}
