// Vet-tool protocol support: `go vet -vettool=bgplint` invokes the
// tool once per package with a JSON config file describing sources and
// dependency export data, after probing it with -V=full (cache key)
// and -flags (supported flags). This file implements that protocol the
// way x/tools' go/analysis/unitchecker does, minus cross-package
// facts, which the bgplint analyzers do not use.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint/analysis"
)

// vetConfig mirrors the fields of unitchecker.Config the go command
// writes; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full: a self-describing line the go
// command uses as the vet result cache key, so editing bgplint
// invalidates cached vet results.
func PrintVersion(w io.Writer) error {
	progname := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel buildID=%02x\n", progname, h.Sum(nil))
	return err
}

// PrintFlags implements -flags: the JSON list of tool flags the go
// command may forward. bgplint keeps none beyond the protocol ones.
func PrintFlags(w io.Writer) error {
	_, err := fmt.Fprintln(w, "[]")
	return err
}

// RunVetUnit executes one vet unit of work: parse the cfg file,
// type-check the package against the export data the go command
// already built, run the analyzers, and report diagnostics. The
// returned exit code follows unitchecker: 0 clean, 1 tool error, 2
// diagnostics found.
func RunVetUnit(cfgFile string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "bgplint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the facts file to exist even though
	// bgplint's analyzers are fact-free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "bgplint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
				exit = 2
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "bgplint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	return exit
}
