// Package commitseq defines the bgplint analyzer for the durable
// commit protocol the persistence layer depends on: write to a temp
// file, fsync it, then atomically os.Rename it into place — and once
// the rename (the commit point) has happened, nothing else in the
// function may write. A crash between an unsynced write and the rename
// can commit a manifest whose bytes never reached disk; a write after
// the rename reorders the commit so readers can observe a manifest
// that names files still being written.
//
// Two rules, per function:
//
//   - rename-without-sync: an os.Rename preceded by file creation or
//     writes but no (*os.File).Sync in between is flagged at the
//     rename — the commit can land before its payload.
//   - effect-after-commit: any create, write, or sync positioned after
//     the function's last commit point is flagged — the directory
//     entry must be the final effectful step.
//
// Helpers that perform the rename on the caller's behalf (directly or
// transitively) carry a CommitStepFact, so a call to
// persister.writeSeal counts as a commit point in its callers.
package commitseq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "commitseq",
	Doc: "check the temp-file write → fsync → rename commit protocol\n\n" +
		"Within a function that commits via os.Rename (directly or through a\n" +
		"CommitStepFact helper), the temp file must be fsynced before the rename\n" +
		"and the rename must be the last effectful step — no creates, writes, or\n" +
		"syncs after the commit point.",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*CommitStepFact)(nil)},
}

// A CommitStepFact marks a function that performs a directory-entry
// commit (os.Rename) itself or through its callees; calls to it count
// as commit points in the caller's sequence.
type CommitStepFact struct{}

// AFact marks CommitStepFact as a fact type.
func (*CommitStepFact) AFact() {}

func (*CommitStepFact) String() string { return "commitStep" }

// opKind classifies the effectful operations the protocol orders.
type opKind int

const (
	opCreate opKind = iota // os.Create / os.OpenFile / os.CreateTemp
	opWrite                // os.WriteFile, (*os.File).Write/WriteString/WriteAt/ReadFrom/Truncate
	opSync                 // (*os.File).Sync
	opCommit               // os.Rename or a CommitStepFact call
)

var kindNoun = map[opKind]string{
	opCreate: "file creation",
	opWrite:  "write",
	opSync:   "fsync",
}

type op struct {
	pos    token.Pos
	kind   opKind
	direct bool // opCommit only: a literal os.Rename, not a helper call
}

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Result
	commits map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		graph:   pass.ResultOf[callgraph.Analyzer].(*callgraph.Result),
		commits: make(map[*types.Func]bool),
	}
	c.inferCommitSteps()
	for fn := range c.commits {
		c.pass.ExportObjectFact(fn, &CommitStepFact{})
	}
	for _, node := range c.graph.Order {
		if lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		c.checkSequence(node)
	}
	return nil, nil
}

// isCommitStep resolves commit-step-ness for any callee.
func (c *checker) isCommitStep(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if lintutil.PkgFunc(fn, "os", "Rename") {
		return true
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.commits[fn]
	}
	var fact CommitStepFact
	return c.pass.ImportObjectFact(fn, &fact)
}

// inferCommitSteps marks this package's functions that rename directly
// or call another commit step, as a callgraph fixpoint.
func (c *checker) inferCommitSteps() {
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			if c.commits[node.Fn] || lintutil.IsTestFile(c.pass.Fset, node.Decl.Pos()) {
				continue
			}
			for _, call := range node.Calls {
				if c.isCommitStep(call.Callee) {
					c.commits[node.Fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// classify maps a call expression to a protocol op, or ok=false.
func (c *checker) classify(call *ast.CallExpr) (op, bool) {
	info := c.pass.TypesInfo
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return op{}, false
	}
	pos := call.Pos()
	// Package-level os functions.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
			switch fn.Name() {
			case "Create", "OpenFile", "CreateTemp":
				return op{pos: pos, kind: opCreate}, true
			case "WriteFile":
				return op{pos: pos, kind: opWrite}, true
			case "Rename":
				return op{pos: pos, kind: opCommit, direct: true}, true
			}
			return op{}, false
		}
		if c.isCommitStep(fn) {
			return op{pos: pos, kind: opCommit}, true
		}
		return op{}, false
	}
	// Methods: (*os.File) effects, or commit-step helper methods.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if lintutil.IsNamedType(recv.Type(), "os", "File") {
			switch fn.Name() {
			case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate":
				return op{pos: pos, kind: opWrite}, true
			case "Sync":
				return op{pos: pos, kind: opSync}, true
			}
			return op{}, false
		}
		if c.isCommitStep(fn) {
			return op{pos: pos, kind: opCommit}, true
		}
	}
	return op{}, false
}

// checkSequence collects the function's ops in source order and
// applies the two protocol rules.
func (c *checker) checkSequence(node *callgraph.Node) {
	var ops []op
	ast.Inspect(node.Decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if o, ok := c.classify(call); ok {
			ops = append(ops, o)
		}
		return true
	})
	if len(ops) == 0 {
		return
	}

	// Rule 1: each direct rename needs a sync between the writes it
	// commits and itself.
	for i, o := range ops {
		if o.kind != opCommit || !o.direct {
			continue
		}
		wrote, synced := false, false
		for _, prev := range ops[:i] {
			switch prev.kind {
			case opCreate, opWrite:
				wrote = true
			case opSync:
				synced = true
			}
		}
		if wrote && !synced {
			c.pass.Reportf(o.pos,
				"os.Rename commits a file that was written without an fsync; call Sync before the rename or a crash can commit unwritten bytes (commitseq)")
		}
	}

	// Rule 2: nothing effectful after the last commit point.
	last := -1
	for i, o := range ops {
		if o.kind == opCommit {
			last = i
		}
	}
	if last < 0 {
		return
	}
	for _, o := range ops[last+1:] {
		if o.kind == opCommit {
			continue
		}
		c.pass.Reportf(o.pos,
			"%s after the commit point; the rename must be the last effectful step so a crash never half-commits (commitseq)",
			kindNoun[o.kind])
	}
}
