package commitseq_test

import (
	"testing"

	"repro/internal/lint/commitseq"
	"repro/internal/lint/linttest"
)

func TestCommitseq(t *testing.T) {
	linttest.Run(t, "testdata", commitseq.Analyzer, "commitseqtest")
}

func TestCrossPackageCommitStep(t *testing.T) {
	linttest.Run(t, "testdata", commitseq.Analyzer, "commitseqfactb")
}

// TestFactExport pins the commit-step fact: helpers that rename
// (directly or transitively) carry it, pure writers do not.
func TestFactExport(t *testing.T) {
	_, store := linttest.RunAnalyzer(t, "testdata", commitseq.Analyzer, "commitseqtest")

	var cs commitseq.CommitStepFact
	if !store.ImportObjectFactByPath("commitseqtest", "commitHelper", &cs) {
		t.Fatal("no CommitStepFact exported for commitseqtest.commitHelper")
	}
	for _, path := range []string{"GoodCommit", "BadViaHelper"} {
		if !store.ImportObjectFactByPath("commitseqtest", path, &cs) {
			t.Errorf("no CommitStepFact exported for commitseqtest.%s (commits transitively)", path)
		}
	}
	if store.ImportObjectFactByPath("commitseqtest", "OKNoCommit", &cs) {
		t.Error("commitseqtest.OKNoCommit never renames but has CommitStepFact")
	}
}
