// Stub of the standard os package for the commitseq fixtures: the
// analyzer matches functions and methods by package path and name
// only, so these shells keep fixture type-checking hermetic and fast.
package os

// FileMode is a stub of os.FileMode.
type FileMode uint32

// File is a stub of os.File.
type File struct{}

func (*File) Write(b []byte) (int, error)       { return len(b), nil }
func (*File) WriteString(s string) (int, error) { return len(s), nil }
func (*File) Sync() error                       { return nil }
func (*File) Close() error                      { return nil }

func Create(name string) (*File, error)                            { return &File{}, nil }
func OpenFile(name string, flag int, perm FileMode) (*File, error) { return &File{}, nil }
func CreateTemp(dir, pattern string) (*File, error)                { return &File{}, nil }
func WriteFile(name string, data []byte, perm FileMode) error      { return nil }
func Rename(oldpath, newpath string) error                         { return nil }
func Remove(name string) error                                     { return nil }
