// Fixture dependency for commitseq's cross-package test: analyzing
// this package exports CommitStepFact on Commit, which the importing
// fixture consumes.
package commitseqfacta

import "os"

// Commit performs the directory-entry commit for its callers.
func Commit(tmp, final string) error {
	return os.Rename(tmp, final)
}
