// Cross-package fact flow: Commit's commit-step-ness was inferred
// while analyzing commitseqfacta; the write after it is flagged purely
// from the imported CommitStepFact.
package commitseqfactb

import (
	"commitseqfacta"
	"os"
)

func Bad(data []byte) error {
	if err := os.WriteFile("x.tmp", data, 0); err != nil {
		return err
	}
	if err := commitseqfacta.Commit("x.tmp", "x"); err != nil {
		return err
	}
	return os.WriteFile("x.log", data, 0) // want `write after the commit point`
}

func OK(data []byte) error {
	if err := os.WriteFile("x.tmp", data, 0); err != nil {
		return err
	}
	return commitseqfacta.Commit("x.tmp", "x")
}
