// Positive and negative cases for commitseq: rename-without-sync,
// effect-after-commit, and commit-step helpers.
package commitseqtest

import "os"

// GoodCommit is the blessed sequence: create, write, sync, close,
// rename last.
func GoodCommit(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// BadNoSync commits bytes that may still sit in the page cache.
func BadNoSync(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	return os.Rename(tmp, final) // want `os.Rename commits a file that was written without an fsync`
}

// BadWriteAfter writes after the commit point.
func BadWriteAfter(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.Close()
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return os.WriteFile(final+".meta", data, 0) // want `write after the commit point`
}

// BadCreateAfter opens a new file after committing.
func BadCreateAfter(tmp, final string, data []byte) error {
	os.WriteFile(tmp, data, 0)
	f, _ := os.Create(tmp)
	f.Write(data)
	f.Sync()
	f.Close()
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	f2, err := os.Create(tmp + ".next") // want `file creation after the commit point`
	if err != nil {
		return err
	}
	return f2.Close()
}

// commitHelper renames on the caller's behalf: CommitStepFact.
func commitHelper(tmp, final string) error {
	return os.Rename(tmp, final)
}

// BadViaHelper: the helper call is the commit point; the write after
// it is flagged even though no os.Rename appears here.
func BadViaHelper(tmp, final string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0); err != nil {
		return err
	}
	if err := commitHelper(tmp, final); err != nil {
		return err
	}
	return os.WriteFile(tmp+".log", data, 0) // want `write after the commit point`
}

// OKViaHelper commits last through the helper.
func OKViaHelper(tmp, final string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0); err != nil {
		return err
	}
	return commitHelper(tmp, final)
}

// OKNoCommit never renames: writes in any order are fine.
func OKNoCommit(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0); err != nil {
		return err
	}
	return os.WriteFile(path+".2", data, 0)
}
