// Package linttest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest for the vendored
// framework in internal/lint/analysis. Fixtures live in a GOPATH-style
// tree (testdata/src/<pkgpath>/*.go); expectations are `// want "rx"`
// comments on the line a diagnostic must land on; suggested fixes are
// checked by applying every fix and comparing against a gofmt-ed
// <file>.golden sibling.
//
// Fixture packages may import each other (resolved inside testdata/src
// first) and the standard library (resolved by compiling stdlib from
// GOROOT source, which needs no network or pre-built export data).
//
// Analyzers with Requires and FactTypes are supported: required
// analyzers run first on every package, and before a fixture package
// is analyzed, the analyzer suite runs over its fixture dependencies
// (imports resolved under testdata/src) with a shared fact store, so
// `// want` expectations can assert cross-package fact flow.
package linttest

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

// Run loads each fixture package under dir/src and checks the
// analyzer's diagnostics against the // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range pkgpaths {
		diags, pkg, err := l.analyze(a, path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		checkWants(t, l.fset, pkg, diags)
	}
}

// RunWithSuggestedFixes is Run plus fix application: for every fixture
// file with a .golden sibling, all suggested fixes are applied, the
// result gofmt-ed, and compared byte-for-byte against the (gofmt-ed)
// golden.
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range pkgpaths {
		diags, pkg, err := l.analyze(a, path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		checkWants(t, l.fset, pkg, diags)
		applyFixes(t, l.fset, pkg, diags)
	}
}

type loader struct {
	root     string // testdata dir; fixtures under root/src
	fset     *token.FileSet
	pkgs     map[string]*fixturePkg
	std      types.ImporterFrom
	store    *facts.Store
	analyzed map[string]bool // fixture pkgs already run for facts
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     dir,
		fset:     fset,
		pkgs:     make(map[string]*fixturePkg),
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		store:    facts.NewStore(),
		analyzed: make(map[string]bool),
	}
}

// analyze runs a (with its Requires) on the fixture package at path,
// after running the full suite over the package's fixture dependencies
// so imported facts are populated. Only a's own diagnostics on the
// target package are returned.
func (l *loader) analyze(a *analysis.Analyzer, path string) ([]analysis.Diagnostic, *fixturePkg, error) {
	fp, err := l.load(path)
	if err != nil {
		return nil, nil, err
	}
	for _, dep := range l.fixtureDeps(fp, map[string]bool{path: true}) {
		if _, _, err := l.runOn(a, dep, false); err != nil {
			return nil, nil, err
		}
	}
	diags, fp, err := l.runOn(a, path, true)
	return diags, fp, err
}

// fixtureDeps returns the transitive fixture-package imports of fp, in
// dependency order (imports before importers).
func (l *loader) fixtureDeps(fp *fixturePkg, seen map[string]bool) []string {
	var deps []string
	for _, f := range fp.files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			if _, statErr := os.Stat(filepath.Join(l.root, "src", path)); statErr != nil {
				continue // standard library
			}
			seen[path] = true
			if dfp, err := l.load(path); err == nil {
				deps = append(deps, l.fixtureDeps(dfp, seen)...)
			}
			deps = append(deps, path)
		}
	}
	return deps
}

// runOn executes a's Requires closure on one fixture package, binding
// the shared fact store, and returns a's diagnostics when collect is
// set. Fact-only runs are memoized per package.
func (l *loader) runOn(a *analysis.Analyzer, path string, collect bool) ([]analysis.Diagnostic, *fixturePkg, error) {
	if !collect {
		if l.analyzed[path] {
			return nil, nil, nil
		}
		l.analyzed[path] = true
	}
	fp, err := l.load(path)
	if err != nil {
		return nil, nil, err
	}
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	for _, one := range analysis.Expand([]*analysis.Analyzer{a}) {
		report := func(analysis.Diagnostic) {}
		if collect && one == a {
			report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		}
		pass := &analysis.Pass{
			Analyzer:  one,
			Fset:      l.fset,
			Files:     fp.files,
			Pkg:       fp.pkg,
			TypesInfo: fp.info,
			Report:    report,
			ResultOf:  results,
		}
		l.store.BindPass(pass)
		res, err := one.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzer %s on %s: %v", one.Name, path, err)
		}
		results[one] = res
	}
	return diags, fp, nil
}

// RunAnalyzer loads the fixture package at dir/src/<path> (running the
// suite over its fixture dependencies first) and returns a's result
// value and the shared fact store, for tests that assert on results or
// exported facts rather than diagnostics.
func RunAnalyzer(t *testing.T, dir string, a *analysis.Analyzer, path string) (interface{}, *facts.Store) {
	t.Helper()
	l := newLoader(dir)
	fp, err := l.load(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, dep := range l.fixtureDeps(fp, map[string]bool{path: true}) {
		if _, _, err := l.runOn(a, dep, false); err != nil {
			t.Fatalf("%s: %v", dep, err)
		}
	}
	results := make(map[*analysis.Analyzer]interface{})
	for _, one := range analysis.Expand([]*analysis.Analyzer{a}) {
		pass := &analysis.Pass{
			Analyzer:  one,
			Fset:      l.fset,
			Files:     fp.files,
			Pkg:       fp.pkg,
			TypesInfo: fp.info,
			Report:    func(analysis.Diagnostic) {},
			ResultOf:  results,
		}
		l.store.BindPass(pass)
		res, err := one.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s on %s: %v", one.Name, path, err)
		}
		results[one] = res
	}
	return results[a], l.store
}

// Import implements types.Importer: fixture packages shadow the
// standard library, which is compiled from source as a fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, "src", path)); err == nil {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, fp.err
	}
	fp := &fixturePkg{}
	l.pkgs[path] = fp // pre-register: fixture import cycles fail in the checker, not here

	dir := filepath.Join(l.root, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		fp.err = err
		return fp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			fp.err = err
			return fp, err
		}
		fp.files = append(fp.files, f)
	}
	if len(fp.files) == 0 {
		fp.err = fmt.Errorf("no Go files in %s", dir)
		return fp, fp.err
	}

	fp.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	fp.pkg, fp.err = conf.Check(path, l.fset, fp.files, fp.info)
	return fp, fp.err
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants matches diagnostics against // want expectations, both
// directions.
func checkWants(t *testing.T, fset *token.FileSet, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	type want struct {
		file string
		line int
		rx   *regexp.Regexp
		used bool
	}
	var wants []*want

	for _, f := range fp.files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, q := range splitQuoted(t, m[1]) {
					rx, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, q, err)
					}
					wants = append(wants, &want{file: filename, line: line, rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b"`.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("want expectation must be quoted strings, got %q", s)
		}
		prefix, rest, err := nextQuoted(s)
		if err != nil {
			t.Fatalf("bad want expectation %q: %v", s, err)
		}
		out = append(out, prefix)
		s = strings.TrimSpace(rest)
	}
	return out
}

func nextQuoted(s string) (val, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			val, err := strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// applyFixes applies every suggested fix and compares each file that
// has a .golden sibling.
func applyFixes(t *testing.T, fset *token.FileSet, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				tf := fset.File(te.Pos)
				if tf == nil {
					t.Fatalf("fix edit with invalid pos")
				}
				perFile[tf.Name()] = append(perFile[tf.Name()], edit{
					start: tf.Offset(te.Pos),
					end:   tf.Offset(te.End),
					text:  te.NewText,
				})
			}
		}
	}

	for _, f := range fp.files {
		filename := fset.Position(f.Pos()).Filename
		goldenPath := filename + ".golden"
		golden, err := os.ReadFile(goldenPath)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Fatal(err)
		}
		edits := perFile[filename]
		// Ascending by start; zero-length insertions before
		// replacements at the same offset, so a prelude inserted at a
		// statement lands before the statement's own rewrite.
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return (edits[i].start == edits[i].end) && (edits[j].start != edits[j].end)
		})
		var out []byte
		prev := 0
		for _, e := range edits {
			if e.start < prev {
				t.Fatalf("%s: overlapping suggested-fix edits", filename)
			}
			out = append(out, src[prev:e.start]...)
			out = append(out, e.text...)
			prev = e.end
		}
		out = append(out, src[prev:]...)

		gotFmt, err := format.Source(out)
		if err != nil {
			t.Errorf("%s: fixed source does not parse: %v\n----\n%s", filename, err, out)
			continue
		}
		wantFmt, err := format.Source(golden)
		if err != nil {
			t.Fatalf("%s: golden does not parse: %v", goldenPath, err)
		}
		if string(gotFmt) != string(wantFmt) {
			t.Errorf("%s: suggested fixes do not produce golden.\n--- got ---\n%s\n--- want ---\n%s", filename, gotFmt, wantFmt)
		}
	}
}
