// Package baseline gives bgplint a ratchet: a committed inventory of
// known findings, keyed by stable fingerprints, so CI fails only on
// NEW findings while existing debt is paid down incrementally.
//
// Fingerprints deliberately exclude line and column numbers. A finding
// is identified by (analyzer, file, message, occurrence index), where
// the occurrence index counts identical triples within one run in the
// driver's sorted order. Unrelated edits that shift a finding up or
// down its file leave its fingerprint — and the baseline — unchanged;
// only introducing a genuinely new finding (or duplicating an existing
// one) produces an unknown fingerprint.
package baseline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint/driver"
)

// Version is the baseline file schema version.
const Version = 1

// An Entry is one suppressed finding. Analyzer, File, Message, and
// Severity are redundant with the fingerprint (Severity is not hashed
// at all, so retiering an analyzer never churns fingerprints); they
// are stored so a reviewer can audit what a baseline hides — and which
// tier of debt it is — without rerunning the tool.
type Entry struct {
	Fingerprint string `json:"fingerprint"`
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Message     string `json:"message"`
	Severity    string `json:"severity,omitempty"`
}

// A File is a parsed baseline.
type File struct {
	Version int     `json:"version"`
	Entries []Entry `json:"findings"`
}

// Fingerprint hashes one finding identity. occurrence disambiguates
// identical (analyzer, file, message) triples: the Nth copy in sorted
// order always hashes the same, so the scheme has multiset semantics
// without storing counts.
func Fingerprint(analyzer, file, message string, occurrence int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d", analyzer, file, message, occurrence)))
	return hex.EncodeToString(h[:8])
}

// Fingerprints computes the fingerprint of each finding, positionally.
// fs must be in the driver's sorted order so occurrence indices are
// deterministic. rel maps a position's filename to the repo-relative,
// slash-separated form stored in baselines.
func Fingerprints(fs []driver.Finding, rel func(string) string) []string {
	seen := make(map[string]int)
	out := make([]string, len(fs))
	for i, f := range fs {
		file := rel(f.Pos.Filename)
		k := f.Analyzer + "|" + file + "|" + f.Message
		out[i] = Fingerprint(f.Analyzer, file, f.Message, seen[k])
		seen[k]++
	}
	return out
}

// FromFindings builds a baseline covering every given finding. fps
// must be the parallel slice from Fingerprints; severityOf maps an
// analyzer name to its tier for the audit column (nil leaves it out).
func FromFindings(fs []driver.Finding, fps []string, rel func(string) string, severityOf func(string) string) *File {
	bl := &File{Version: Version, Entries: []Entry{}}
	for i, f := range fs {
		e := Entry{
			Fingerprint: fps[i],
			Analyzer:    f.Analyzer,
			File:        rel(f.Pos.Filename),
			Message:     f.Message,
		}
		if severityOf != nil {
			e.Severity = severityOf(f.Analyzer)
		}
		bl.Entries = append(bl.Entries, e)
	}
	sort.Slice(bl.Entries, func(i, j int) bool {
		a, b := bl.Entries[i], bl.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Fingerprint < b.Fingerprint
	})
	return bl
}

// Load reads and validates a baseline file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl File
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if bl.Version != Version {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, bl.Version, Version)
	}
	return &bl, nil
}

// WriteFile writes the baseline as stable, human-diffable JSON.
func (bl *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Suppressed reports, positionally, whether each fingerprint is
// covered by the baseline.
func (bl *File) Suppressed(fps []string) []bool {
	known := make(map[string]bool, len(bl.Entries))
	for _, e := range bl.Entries {
		known[e.Fingerprint] = true
	}
	out := make([]bool, len(fps))
	for i, fp := range fps {
		out[i] = known[fp]
	}
	return out
}
