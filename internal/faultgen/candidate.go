package faultgen

import (
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
)

// Candidate is one pre-drawn fault-candidate event of the machine-wide
// thinning envelope: everything the scheduler engine would otherwise
// draw live at an evFaultCand — arrival time, target midplane, the
// thinning uniform, and the code/repair draws used only if the
// candidate is accepted. Pre-drawing the whole stream once lets a
// policy matrix replay the identical ground-truth fault process against
// every policy, no matter how many RNG draws each policy's own
// decisions consume.
type Candidate struct {
	// At is the candidate's arrival time.
	At time.Time
	// Midplane is the candidate's target midplane.
	Midplane int
	// U is the thinning uniform compared against hazard/MaxHazard; the
	// candidate fires iff U < hazard/MaxHazard at replay time (hazard
	// still depends on live engine state: occupancy, wear, environment).
	U float64
	// Code is the system ERRCODE the occurrence carries if accepted.
	Code errcat.Code
	// Repair is the sticky-failure repair duration if Code is sticky.
	Repair time.Duration
}

// Candidates pre-draws the full candidate stream for a campaign over
// [start, end) from rng. It mirrors the engine's live loop: the first
// candidate is always drawn, and each candidate whose arrival is still
// before end draws a successor — so the stream ends with the first
// candidate at or past end, exactly like the live event chain.
func (m *Model) Candidates(rng *rand.Rand, start, end time.Time) []Candidate {
	var out []Candidate
	t := start.Add(m.DrawCandidateGap(rng))
	for {
		out = append(out, Candidate{
			At:       t,
			Midplane: rng.Intn(bgp.NumMidplanes),
			U:        rng.Float64(),
			Code:     m.DrawSystemCode(rng),
			Repair:   m.DrawRepair(rng),
		})
		if !t.Before(end) {
			return out
		}
		t = t.Add(m.DrawCandidateGap(rng))
	}
}
