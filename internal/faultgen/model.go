// Package faultgen models the ground-truth fault behaviour of the
// simulated Blue Gene/P machine: per-midplane system-failure hazards
// (with the wide-job reliability penalty the paper hypothesizes and a
// few "lemon" midplanes), sticky failures that leave hardware faulty
// until repaired, and the emission of redundant RAS record storms for
// each fatal occurrence, plus non-fatal background noise.
//
// The thinning interface lets the discrete-event scheduler drive a
// non-homogeneous Poisson process: the engine draws candidate events at
// MaxHazard and accepts each with HazardAt/MaxHazard evaluated against
// live machine occupancy.
package faultgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
)

// Model parameterizes the ground-truth system-failure process.
type Model struct {
	// Catalog supplies the ERRCODE population.
	Catalog *errcat.Catalog

	// BaseRate is the baseline per-midplane fatal-occurrence rate in
	// events per second while the midplane hosts no wide job.
	BaseRate float64
	// WideBoost multiplies the hazard while the midplane is part of a
	// partition of at least WideSize midplanes. This is the mechanism
	// behind Observation 5: wide jobs involve more complicated system
	// configuration and interaction, reducing reliability. The paper's
	// Table VI implies the per-midplane-hour interruption rate of the
	// widest jobs is orders of magnitude above narrow jobs, so this
	// boost is large.
	WideBoost float64
	// WideSize is the width threshold (midplanes) for the boost.
	WideSize int
	// WearGain, WearTau and WearCap model accumulated wide-job wear: a
	// midplane's hazard is multiplied by min(1 + WearGain × E, WearCap),
	// where E is its wide-exposure in hours decayed exponentially with
	// time constant WearTau. The stress of capability runs (power,
	// thermal, network reconfiguration) outlives the jobs, so
	// wide-exercised midplanes also fail while idle — which is how the
	// paper can observe both the wide-job/failure correlation (Obs. 5)
	// and a large share of fatal events on idle hardware (Obs. 7).
	WearGain float64
	WearTau  time.Duration
	WearCap  float64
	// LemonBoost holds extra hazard factors for unreliable midplanes
	// (the paper's worst midplanes 58, 60, 61).
	LemonBoost map[int]float64

	// EnvSigma and EnvCap model a doubly-stochastic environment: each
	// campaign day carries a lognormal hazard multiplier with log-stddev
	// EnvSigma, capped at EnvCap. Machine-room conditions (thermal
	// events, storage weather, software rollouts) vary day to day, which
	// is what gives real failure interarrivals their decreasing-hazard
	// Weibull shape even after redundancy removal (Table IV's 0.573).
	EnvSigma, EnvCap float64

	// RepairMeanShort and RepairMeanLong parameterize the bimodal
	// repair-time distribution of sticky failures: a fraction
	// RepairShortProb of failures are reboot-fixable quickly; the rest
	// need lengthy hardware/software service.
	RepairMeanShort, RepairMeanLong time.Duration
	// RepairShortProb is the probability of a short repair.
	RepairShortProb float64
	// AdminAccel is the factor (< 1) applied to the remaining repair
	// time each time the sticky failure interrupts another job: repeated
	// interruptions attract administrator attention (the recovery
	// process that lowers the k=3 resubmission risk in Figure 7).
	AdminAccel float64

	systemCodes []errcat.Code
	sysWeights  []float64
	maxLemon    float64
}

// DefaultModel returns the Intrepid-like fault model over the given
// catalog. The base rate is calibrated so a 237-day campaign yields a
// few hundred independent fatal events after filtering, matching the
// paper's 549.
func DefaultModel(cat *errcat.Catalog) *Model {
	m := &Model{
		Catalog:   cat,
		BaseRate:  1.0 / (86400 * 1500), // baseline fatal per midplane per ~1500 days
		WideBoost: 60,
		WideSize:  32,
		WearGain:  8,
		WearTau:   48 * time.Hour,
		WearCap:   65,
		LemonBoost: map[int]float64{
			57: 2.5, 59: 3.0, 60: 2.8, // the paper's hot midplanes 58/60/61 (1-indexed)
		},
		RepairMeanShort: 40 * time.Minute,
		RepairMeanLong:  10 * time.Hour,
		RepairShortProb: 0.45,
		AdminAccel:      0.35,
		EnvSigma:        1.10,
		EnvCap:          5.0,
	}
	m.init()
	return m
}

func (m *Model) init() {
	m.systemCodes = nil
	m.sysWeights = nil
	for _, c := range m.Catalog.ByClass(errcat.ClassSystem) {
		m.systemCodes = append(m.systemCodes, c)
		m.sysWeights = append(m.sysWeights, c.Weight)
	}
	m.maxLemon = 1
	for _, f := range m.LemonBoost {
		if f > m.maxLemon {
			m.maxLemon = f
		}
	}
}

// Validate checks the model's parameters.
func (m *Model) Validate() error {
	if m.Catalog == nil {
		return fmt.Errorf("faultgen: nil catalog")
	}
	if m.BaseRate <= 0 {
		return fmt.Errorf("faultgen: non-positive base rate %v", m.BaseRate)
	}
	if m.WideBoost < 1 {
		return fmt.Errorf("faultgen: wide boost %v < 1", m.WideBoost)
	}
	if m.AdminAccel <= 0 || m.AdminAccel > 1 {
		return fmt.Errorf("faultgen: admin accel %v outside (0,1]", m.AdminAccel)
	}
	if m.WearGain < 0 || m.WearCap < 1 || m.WearTau <= 0 {
		return fmt.Errorf("faultgen: bad wear parameters gain=%v cap=%v tau=%v",
			m.WearGain, m.WearCap, m.WearTau)
	}
	if m.EnvSigma < 0 || m.EnvCap < 1 {
		return fmt.Errorf("faultgen: bad environment parameters sigma=%v cap=%v", m.EnvSigma, m.EnvCap)
	}
	if len(m.systemCodes) == 0 {
		return fmt.Errorf("faultgen: catalog has no system codes")
	}
	return nil
}

// EnvMultipliers draws one hazard multiplier per campaign day:
// lognormal with unit mean (before capping), capped at EnvCap.
func (m *Model) EnvMultipliers(rng *rand.Rand, days int) []float64 {
	out := make([]float64, days)
	for i := range out {
		v := math.Exp(rng.NormFloat64()*m.EnvSigma - m.EnvSigma*m.EnvSigma/2)
		if v > m.EnvCap {
			v = m.EnvCap
		}
		out[i] = v
	}
	return out
}

// WearMultiplier returns the hazard multiplier for a midplane with the
// given decayed wide-exposure (hours).
func (m *Model) WearMultiplier(exposureHours float64) float64 {
	mult := 1 + m.WearGain*exposureHours
	if mult > m.WearCap {
		mult = m.WearCap
	}
	return mult
}

// HazardAt returns the instantaneous fatal-occurrence rate of midplane
// mp. hostsWide reports whether a wide job is running there now;
// exposureHours is the midplane's decayed wide-exposure (used only when
// no wide job is running).
func (m *Model) HazardAt(mp int, hostsWide bool, exposureHours float64) float64 {
	h := m.BaseRate
	if f, ok := m.LemonBoost[mp]; ok {
		h *= f
	}
	if hostsWide {
		return h * m.WideBoost
	}
	return h * m.WearMultiplier(exposureHours)
}

// MaxHazard returns an upper bound on any midplane's hazard (including
// the environment multiplier), for Poisson thinning.
func (m *Model) MaxHazard() float64 {
	worst := m.WideBoost
	if m.WearCap > worst {
		worst = m.WearCap
	}
	env := m.EnvCap
	if env < 1 {
		env = 1
	}
	return m.BaseRate * m.maxLemon * worst * env
}

// TotalMaxRate returns the machine-wide candidate rate (thinning
// envelope across all midplanes).
func (m *Model) TotalMaxRate() float64 { return m.MaxHazard() * bgp.NumMidplanes }

// DrawCandidateGap draws the time to the next candidate event of the
// machine-wide envelope process.
func (m *Model) DrawCandidateGap(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() / m.TotalMaxRate() * float64(time.Second))
}

// DrawSystemCode draws a system-failure ERRCODE by weight (includes the
// two non-interrupting alarm types).
func (m *Model) DrawSystemCode(rng *rand.Rand) errcat.Code {
	total := 0.0
	for _, w := range m.sysWeights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range m.sysWeights {
		u -= w
		if u < 0 {
			return m.systemCodes[i]
		}
	}
	return m.systemCodes[len(m.systemCodes)-1]
}

// DrawRepair draws a sticky failure's repair duration from the bimodal
// mixture.
func (m *Model) DrawRepair(rng *rand.Rand) time.Duration {
	mean := m.RepairMeanLong
	if rng.Float64() < m.RepairShortProb {
		mean = m.RepairMeanShort
	}
	d := rng.ExpFloat64() * float64(mean)
	if d < float64(time.Minute) {
		d = float64(time.Minute)
	}
	return time.Duration(d)
}

// DetectionDelay draws the gap between a fault striking an occupied
// midplane and the job's termination (fault detection plus crash).
func DetectionDelay(rng *rand.Rand) time.Duration {
	return time.Duration((5 + rng.ExpFloat64()*30) * float64(time.Second))
}

// ReallocKillDelay draws how long a job freshly scheduled onto a
// still-faulty midplane survives before the sticky failure interrupts
// it: minutes-scale (the job boots, touches the broken unit, dies).
func ReallocKillDelay(rng *rand.Rand) time.Duration {
	d := 60 + rng.ExpFloat64()*180
	return time.Duration(d * float64(time.Second))
}
