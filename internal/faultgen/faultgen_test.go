package faultgen

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/raslog"
)

func TestDefaultModelValid(t *testing.T) {
	m := DefaultModel(errcat.Intrepid())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateErrors(t *testing.T) {
	cat := errcat.Intrepid()
	m := DefaultModel(cat)
	m.Catalog = nil
	if err := m.Validate(); err == nil {
		t.Error("nil catalog accepted")
	}
	m = DefaultModel(cat)
	m.BaseRate = 0
	if err := m.Validate(); err == nil {
		t.Error("zero base rate accepted")
	}
	m = DefaultModel(cat)
	m.WideBoost = 0.5
	if err := m.Validate(); err == nil {
		t.Error("wide boost < 1 accepted")
	}
	m = DefaultModel(cat)
	m.AdminAccel = 0
	if err := m.Validate(); err == nil {
		t.Error("zero admin accel accepted")
	}
}

func TestHazardOrdering(t *testing.T) {
	m := DefaultModel(errcat.Intrepid())
	base := m.HazardAt(5, false, 0)
	worn := m.HazardAt(5, false, 2)
	wide := m.HazardAt(5, true, 0)
	if !(base < worn && worn < wide) {
		t.Errorf("hazard ordering violated: base %v, worn %v, wide %v", base, worn, wide)
	}
	lemon := m.HazardAt(59, false, 0)
	if !(lemon > base) {
		t.Errorf("lemon hazard %v not above base %v", lemon, base)
	}
	// Wear saturates at WearCap.
	if m.WearMultiplier(1e9) != m.WearCap {
		t.Errorf("WearMultiplier not capped: %v", m.WearMultiplier(1e9))
	}
	if m.WearMultiplier(0) != 1 {
		t.Errorf("WearMultiplier(0) = %v, want 1", m.WearMultiplier(0))
	}
	// Thinning envelope dominates every reachable hazard.
	for mp := 0; mp < bgp.NumMidplanes; mp++ {
		for _, exp := range []float64{0, 1, 5, 100, 1e6} {
			for _, w := range []bool{false, true} {
				if m.HazardAt(mp, w, exp) > m.MaxHazard()+1e-18 {
					t.Fatalf("hazard(mp=%d,wide=%v,exp=%v) exceeds MaxHazard", mp, w, exp)
				}
			}
		}
	}
	if m.TotalMaxRate() != m.MaxHazard()*bgp.NumMidplanes {
		t.Error("TotalMaxRate inconsistent")
	}
}

func TestDrawSystemCodeOnlySystem(t *testing.T) {
	m := DefaultModel(errcat.Intrepid())
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		c := m.DrawSystemCode(rng)
		if c.Class != errcat.ClassSystem {
			t.Fatalf("drew non-system code %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(seen) < 30 {
		t.Errorf("only %d distinct system codes drawn; weights too skewed?", len(seen))
	}
}

func TestDrawRepairBimodal(t *testing.T) {
	m := DefaultModel(errcat.Intrepid())
	rng := rand.New(rand.NewSource(2))
	short, long := 0, 0
	for i := 0; i < 5000; i++ {
		d := m.DrawRepair(rng)
		if d < time.Minute {
			t.Fatalf("repair %v below floor", d)
		}
		if d < 2*time.Hour {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("repair distribution not bimodal: short=%d long=%d", short, long)
	}
}

func TestDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if d := DetectionDelay(rng); d < 5*time.Second {
			t.Fatalf("detection delay %v below floor", d)
		}
		if d := ReallocKillDelay(rng); d < time.Minute {
			t.Fatalf("realloc kill delay %v below floor", d)
		}
	}
}

func TestEmitFaultStorm(t *testing.T) {
	cat := errcat.Intrepid()
	code, _ := cat.Lookup(errcat.CodeRASStorm)
	e := NewEmitter(DefaultEmitterConfig(), 1)
	at := time.Date(2009, 2, 1, 12, 0, 0, 0, time.UTC)
	e.EmitFault(at, code, []int{10, 11})
	recs := e.Records()
	if len(recs) < 2*DefaultEmitterConfig().DupMin {
		t.Fatalf("storm too small: %d records", len(recs))
	}
	mps := map[int]bool{}
	for _, r := range recs {
		if r.ErrCode != code.Name || r.Severity != raslog.SevFatal {
			t.Fatalf("wrong code/severity: %+v", r)
		}
		if r.EventTime.Before(at) || r.EventTime.After(at.Add(DefaultEmitterConfig().StormSpread)) {
			t.Fatalf("record outside storm window: %v", r.EventTime)
		}
		loc, err := bgp.ParseLocation(r.Location)
		if err != nil {
			t.Fatalf("bad location %q: %v", r.Location, err)
		}
		for _, mp := range loc.Midplanes() {
			mps[mp] = true
		}
	}
	if !mps[10] || !mps[11] {
		t.Errorf("storm midplanes = %v, want 10 and 11", mps)
	}
	// First record of the storm carries the exact fault time.
	if !recs[0].EventTime.Equal(at) {
		t.Errorf("first record at %v, want %v", recs[0].EventTime, at)
	}
}

func TestEmitFaultCapsMidplanes(t *testing.T) {
	cat := errcat.Intrepid()
	code, _ := cat.Lookup(errcat.CodeRASStorm)
	cfg := DefaultEmitterConfig()
	cfg.MaxMidplanes = 2
	e := NewEmitter(cfg, 1)
	e.EmitFault(time.Unix(0, 0).UTC(), code, []int{0, 1, 2, 3, 4})
	mps := map[int]bool{}
	for _, r := range e.Records() {
		loc, _ := bgp.ParseLocation(r.Location)
		for _, mp := range loc.Midplanes() {
			mps[mp] = true
		}
	}
	if len(mps) > 2 {
		t.Errorf("storm touched %d midplanes, cap 2", len(mps))
	}
}

func TestEmitFaultEmpty(t *testing.T) {
	e := NewEmitter(DefaultEmitterConfig(), 1)
	e.EmitFault(time.Now(), errcat.Code{}, nil)
	if len(e.Records()) != 0 {
		t.Error("empty midplane list emitted records")
	}
}

func TestEmitNoiseVolumeAndSeverities(t *testing.T) {
	cfg := DefaultEmitterConfig()
	e := NewEmitter(cfg, 7)
	start := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	e.EmitNoise(start, end, 100)
	recs := e.Records()
	if want := int(cfg.NoisePerFatal * 100); len(recs) != want {
		t.Fatalf("noise volume = %d, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Severity == raslog.SevFatal {
			t.Fatal("noise emitted FATAL record")
		}
		if r.EventTime.Before(start) || !r.EventTime.Before(end) {
			t.Fatalf("noise outside campaign: %v", r.EventTime)
		}
		if _, err := bgp.ParseLocation(r.Location); err != nil {
			t.Fatalf("bad noise location %q", r.Location)
		}
	}
}

func TestRenumber(t *testing.T) {
	t0 := time.Unix(1000, 0).UTC()
	recs := []raslog.Record{
		{RecID: 9, Severity: raslog.SevInfo, Component: raslog.CompMMCS, EventTime: t0.Add(time.Hour), Location: "R00-M0"},
		{RecID: 4, Severity: raslog.SevFatal, Component: raslog.CompKernel, EventTime: t0, Location: "R00-M1"},
	}
	out := Renumber(recs)
	if out[0].RecID != 1 || out[1].RecID != 2 {
		t.Errorf("RecIDs = %d,%d", out[0].RecID, out[1].RecID)
	}
	if out[0].EventTime.After(out[1].EventTime) {
		t.Error("not time-sorted")
	}
}

func TestEmitterDeterminism(t *testing.T) {
	cat := errcat.Intrepid()
	code, _ := cat.Lookup(errcat.CodeDDRController)
	mk := func() []raslog.Record {
		e := NewEmitter(DefaultEmitterConfig(), 42)
		e.EmitFault(time.Unix(5000, 0).UTC(), code, []int{3})
		return e.Records()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
