package faultgen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/errcat"
	"repro/internal/raslog"
)

// GroundFault is one ground-truth fatal occurrence: the oracle record
// tests score the analysis pipeline against. It never enters the
// pipeline itself.
type GroundFault struct {
	// Time is when the fault occurred.
	Time time.Time
	// Code is the ERRCODE type.
	Code errcat.Code
	// Midplane is the global midplane the fault struck (for shared-
	// file-system application errors it is the midplane of the job that
	// triggered it).
	Midplane int
	// InterruptedJobs lists the IDs of jobs this occurrence killed.
	InterruptedJobs []int64
	// Idle reports that no job was running at the fault location.
	Idle bool
	// Redundant marks occurrences that are ground-truth job-related
	// redundancy: the same underlying sticky failure or the same latent
	// bug re-reported through a later job.
	Redundant bool
}

// EmitterConfig controls the redundancy volume of the RAS stream.
type EmitterConfig struct {
	// DupMin and DupMax bound the temporal duplicates emitted per
	// reporting location (uniform draw).
	DupMin, DupMax int
	// StormSpread is the time window over which duplicates scatter.
	StormSpread time.Duration
	// LocationsPerMidplane is how many distinct sub-locations of an
	// affected midplane report the event (parallel jobs report from all
	// allocated nodes; we sample).
	LocationsPerMidplane int
	// MaxMidplanes caps how many midplanes of a wide job's partition
	// report (the rest are dropped by the control system's own
	// throttling).
	MaxMidplanes int
	// NoisePerFatal is the number of non-fatal background records
	// emitted per fatal record, reproducing the raw log's
	// 2,084,392-to-33,370 ratio (~62) at full scale.
	NoisePerFatal float64
}

// DefaultEmitterConfig mirrors the Intrepid record-volume ratios.
func DefaultEmitterConfig() EmitterConfig {
	return EmitterConfig{
		DupMin:               2,
		DupMax:               8,
		StormSpread:          4 * time.Minute,
		LocationsPerMidplane: 3,
		MaxMidplanes:         8,
		NoisePerFatal:        62,
	}
}

// Emitter generates RAS records. It assigns RecIDs sequentially in
// emission order; callers should sort the final stream by time and
// renumber via Renumber if they interleave sources.
type Emitter struct {
	cfg  EmitterConfig
	rng  *rand.Rand
	recs []raslog.Record
}

// NewEmitter returns an emitter with its own deterministic rng.
func NewEmitter(cfg EmitterConfig, seed int64) *Emitter {
	return &Emitter{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Records returns the emitted records (shared slice).
func (e *Emitter) Records() []raslog.Record { return e.recs }

// location picks a reporting location of the right hierarchy level for
// the code's component within midplane mp.
func (e *Emitter) location(code errcat.Code, mp int) bgp.Location {
	switch code.Component {
	case raslog.CompCard:
		switch e.rng.Intn(3) {
		case 0:
			return bgp.ServiceCardLocation(mp)
		case 1:
			return bgp.LinkCardLocation(mp, e.rng.Intn(bgp.LinkCardsPerMidplane))
		default:
			return bgp.NodeCardLocation(mp, e.rng.Intn(bgp.NodeCardsPerMidplane))
		}
	case raslog.CompKernel, raslog.CompDiags:
		return bgp.ComputeNodeLocation(mp, e.rng.Intn(bgp.NodeCardsPerMidplane), e.rng.Intn(bgp.NodesPerNodeCard))
	case raslog.CompMC, raslog.CompBareMetal:
		return bgp.ServiceCardLocation(mp)
	default: // MMCS and anything else reports at midplane granularity
		return bgp.MidplaneLocation(mp)
	}
}

// EmitFault emits the redundant record storm for one fatal occurrence
// across the affected midplanes (the faulty midplane plus, when a
// parallel job was interrupted, the job's whole partition). The first
// midplane is treated as the fault's origin and always reports; when
// the list exceeds MaxMidplanes (control-system throttling), the
// remainder is sampled uniformly rather than truncated, so wide-job
// storms are not biased toward partition starts.
func (e *Emitter) EmitFault(at time.Time, code errcat.Code, midplanes []int) {
	if len(midplanes) == 0 {
		return
	}
	mps := midplanes
	if len(mps) > e.cfg.MaxMidplanes {
		sampled := make([]int, 0, e.cfg.MaxMidplanes)
		sampled = append(sampled, mps[0])
		rest := append([]int(nil), mps[1:]...)
		e.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		sampled = append(sampled, rest[:e.cfg.MaxMidplanes-1]...)
		mps = sampled
	}
	for _, mp := range mps {
		nLoc := 1 + e.rng.Intn(e.cfg.LocationsPerMidplane)
		for l := 0; l < nLoc; l++ {
			loc := e.location(code, mp)
			dups := e.cfg.DupMin
			if e.cfg.DupMax > e.cfg.DupMin {
				dups += e.rng.Intn(e.cfg.DupMax - e.cfg.DupMin + 1)
			}
			for d := 0; d < dups; d++ {
				off := time.Duration(e.rng.Float64() * float64(e.cfg.StormSpread))
				if d == 0 {
					off = 0
				}
				e.append(raslog.Record{
					MsgID:        code.MsgID,
					Component:    code.Component,
					SubComponent: code.SubComponent,
					ErrCode:      code.Name,
					Severity:     raslog.SevFatal,
					EventTime:    at.Add(off),
					Flags:        "DefaultControlEventListener",
					Location:     loc.String(),
					Serial:       e.serial(),
					Message:      code.Message,
				})
			}
		}
	}
}

// EmitNoise emits the non-fatal background volume for a campaign
// spanning [start, end): INFO/WARNING/ERROR records at random
// locations, volume NoisePerFatal × nFatal.
func (e *Emitter) EmitNoise(start, end time.Time, nFatal int) {
	n := int(e.cfg.NoisePerFatal * float64(nFatal))
	span := end.Sub(start)
	if n <= 0 || span <= 0 {
		return
	}
	sevs := []raslog.Severity{raslog.SevInfo, raslog.SevWarning, raslog.SevError}
	sevW := []float64{0.62, 0.30, 0.08}
	kinds := []struct {
		comp  raslog.Component
		msgID string
		code  string
		sub   string
		msg   string
	}{
		{raslog.CompMMCS, "MMCS_INFO_01", "boot_progress", "BOOT", "partition boot progress"},
		{raslog.CompKernel, "KERN_INFO_02", "ecc_corrected", "DDR", "correctable ECC single-symbol error"},
		{raslog.CompCard, "CARD_INFO_03", "env_reading", "ENV", "environmental reading out of nominal band"},
		{raslog.CompMC, "MC_INFO_04", "pgood_transition", "PGOOD", "power-good transition"},
		{raslog.CompKernel, "KERN_WARN_05", "torus_retransmit", "TORUS", "torus link retransmit"},
		{raslog.CompBareMetal, "BM_INFO_06", "svc_action", "SVC", "service action logged"},
	}
	for i := 0; i < n; i++ {
		u := e.rng.Float64()
		sev := sevs[2]
		switch {
		case u < sevW[0]:
			sev = sevs[0]
		case u < sevW[0]+sevW[1]:
			sev = sevs[1]
		}
		k := kinds[e.rng.Intn(len(kinds))]
		mp := e.rng.Intn(bgp.NumMidplanes)
		var loc bgp.Location
		if e.rng.Intn(2) == 0 {
			loc = bgp.ComputeNodeLocation(mp, e.rng.Intn(bgp.NodeCardsPerMidplane), e.rng.Intn(bgp.NodesPerNodeCard))
		} else {
			loc = bgp.NodeCardLocation(mp, e.rng.Intn(bgp.NodeCardsPerMidplane))
		}
		e.append(raslog.Record{
			MsgID:        k.msgID,
			Component:    k.comp,
			SubComponent: k.sub,
			ErrCode:      k.code,
			Severity:     sev,
			EventTime:    start.Add(time.Duration(e.rng.Float64() * float64(span))),
			Flags:        "DefaultControlEventListener",
			Location:     loc.String(),
			Serial:       e.serial(),
			Message:      k.msg,
		})
	}
}

func (e *Emitter) append(r raslog.Record) {
	r.RecID = int64(len(e.recs) + 1)
	e.recs = append(e.recs, r)
}

func (e *Emitter) serial() string {
	return fmt.Sprintf("44V%07dK%04d", e.rng.Intn(1e7), e.rng.Intn(1e4))
}

// Renumber sorts records by event time and reassigns sequential RecIDs,
// matching the append-order semantics of the real log.
func Renumber(recs []raslog.Record) []raslog.Record {
	s := raslog.NewStore(recs)
	out := append([]raslog.Record(nil), s.All()...)
	for i := range out {
		out[i].RecID = int64(i + 1)
	}
	return out
}
