package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// benchRows builds one canonical 4096-row segment image — the default
// seal budget, so the encode/scan numbers reflect a production-sized
// segment.
func benchRows(n int) []testRow {
	rng := rand.New(rand.NewSource(42))
	return sortRows(randomRows(rng, n))
}

// BenchmarkSegmentEncode measures the canonical columnar encoding of a
// seal-budget-sized segment into a reused buffer.
func BenchmarkSegmentEncode(b *testing.B) {
	d := segmentFromRows(0, benchRows(DefaultSealRows))
	buf, err := AppendSegment(nil, d)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendSegment(buf[:0], d)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentScan measures a FATAL-masked scan of one committed
// segment file through the mmap-backed reader.
func BenchmarkSegmentScan(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, SegmentFileName(0))
	if err := CommitSegment(path, segmentFromRows(0, benchRows(DefaultSealRows))); err != nil {
		b.Fatal(err)
	}
	sf, err := OpenSegment(path)
	if err != nil {
		b.Fatal(err)
	}
	defer sf.Close()
	b.SetBytes(int64(sf.Rows()) * RowBytes)
	b.ReportAllocs()
	b.ResetTimer()
	var rows int64
	for i := 0; i < b.N; i++ {
		n, err := sf.Scan(Query{SevMask: 1 << 6}, func(Row) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		rows = n
	}
	if rows == 0 {
		b.Fatal("scan matched no rows")
	}
}

// BenchmarkSegmentMerge measures the k-way merge across eight segment
// files back into one ordered stream.
func BenchmarkSegmentMerge(b *testing.B) {
	const parts = 8
	rows := benchRows(parts * 512)
	dir := b.TempDir()
	for i := 0; i < parts; i++ {
		d := segmentFromRows(i, rows[i*512:(i+1)*512])
		if err := CommitSegment(filepath.Join(dir, SegmentFileName(i)), d); err != nil {
			b.Fatal(err)
		}
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer cat.Close()
	b.SetBytes(int64(len(rows)) * RowBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cat.Merge(Query{})
		if err != nil {
			b.Fatal(err)
		}
		var got int64
		for {
			_, ok, err := m.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			got++
		}
		if got != int64(len(rows)) {
			b.Fatal(fmt.Sprintf("merged %d rows, want %d", got, len(rows)))
		}
	}
}
