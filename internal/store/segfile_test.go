package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/symtab"
)

// testRow is a fully named row for building expectation streams.
type testRow struct {
	recID, timeNS int64
	code, loc     string
	comp, sev     int32
}

// randomRows draws n rows with deliberately clumped times (ties
// included), a small vocabulary, and both FATAL and noise severities.
func randomRows(rng *rand.Rand, n int) []testRow {
	rows := make([]testRow, n)
	for i := range rows {
		rows[i] = testRow{
			recID:  int64(i + 1),
			timeNS: int64(rng.Intn(n/2+1)) * 1_000_000_000,
			code:   fmt.Sprintf("code_%d", rng.Intn(7)),
			loc:    fmt.Sprintf("R0%d-M0", rng.Intn(5)),
			comp:   int32(rng.Intn(8)),
			sev:    int32(3 + rng.Intn(4)), // INFO..FATAL
		}
	}
	return rows
}

// sortRows stable-sorts by (time, recID) — the single-block reference
// order.
func sortRows(rows []testRow) []testRow {
	out := append([]testRow(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].timeNS != out[j].timeNS {
			return out[i].timeNS < out[j].timeNS
		}
		return out[i].recID < out[j].recID
	})
	return out
}

// segmentFromRows localizes one already-sorted slice of rows into the
// canonical on-disk form.
func segmentFromRows(seq int, rows []testRow) *SegmentData {
	d := &SegmentData{Seq: seq}
	codeIDs := map[string]symtab.ErrcodeID{}
	locIDs := map[string]symtab.LocationID{}
	for i, r := range rows {
		if i == 0 || r.timeNS < d.MinTime {
			d.MinTime = r.timeNS
		}
		if i == 0 || r.timeNS > d.MaxTime {
			d.MaxTime = r.timeNS
		}
		d.SevBits |= 1 << uint(r.sev)
		d.CompBits |= 1 << uint(r.comp)
		c, ok := codeIDs[r.code]
		if !ok {
			c = symtab.ErrcodeID(len(d.Codes))
			codeIDs[r.code] = c
			d.Codes = append(d.Codes, r.code)
		}
		l, ok := locIDs[r.loc]
		if !ok {
			l = symtab.LocationID(len(d.Locs))
			locIDs[r.loc] = l
			d.Locs = append(d.Locs, r.loc)
		}
		d.Events.Append(r.recID, r.timeNS, c, l, r.comp, r.sev)
	}
	return d
}

// writeSegments partitions sorted rows at the given boundaries and
// commits one segment file per part, returning the catalog directory.
func writeSegments(t *testing.T, rows []testRow, bounds []int) string {
	t.Helper()
	dir := t.TempDir()
	prev := 0
	seq := 0
	for _, b := range append(bounds, len(rows)) {
		if b <= prev {
			continue
		}
		d := segmentFromRows(seq, rows[prev:b])
		if err := CommitSegment(filepath.Join(dir, SegmentFileName(seq)), d); err != nil {
			t.Fatalf("commit segment %d: %v", seq, err)
		}
		seq++
		prev = b
	}
	return dir
}

// drain pulls every row out of a merge reader.
func drain(t *testing.T, m *MergeReader) []Row {
	t.Helper()
	var out []Row
	for {
		row, ok, err := m.Next()
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

func checkRows(t *testing.T, got []Row, want []testRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		w := Row{RecID: want[i].recID, TimeNS: want[i].timeNS, Code: want[i].code,
			Loc: want[i].loc, Comp: want[i].comp, Sev: want[i].sev}
		if got[i] != w {
			t.Fatalf("row %d: got %+v, want %+v", i, got[i], w)
		}
	}
}

// TestMergeEquivalenceRandomBoundaries is the segmented-vs-single-block
// equivalence suite at the store level: for several seeds, random rows
// are split at random segment boundaries, written to disk, and merged
// back; the merged stream — and the global symtab numbering obtained by
// re-interning it — must equal a single stable sort of the whole input.
func TestMergeEquivalenceRandomBoundaries(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := randomRows(rng, 200+rng.Intn(200))
		sorted := sortRows(rows)

		nb := rng.Intn(6)
		bounds := make([]int, nb)
		for i := range bounds {
			bounds[i] = rng.Intn(len(sorted) + 1)
		}
		sort.Ints(bounds)

		dir := writeSegments(t, sorted, bounds)
		cat, err := OpenCatalog(dir)
		if err != nil {
			t.Fatalf("seed %d: OpenCatalog: %v", seed, err)
		}

		m, err := cat.Merge(Query{})
		if err != nil {
			t.Fatalf("seed %d: Merge: %v", seed, err)
		}
		got := drain(t, m)
		checkRows(t, got, sorted)

		// Re-interning the merged names must reproduce the single-block
		// first-seen numbering exactly — the symtab delta remap.
		var single, merged symtab.Dict[symtab.ErrcodeID]
		for _, r := range sorted {
			single.Intern(r.code)
		}
		for _, r := range got {
			merged.Intern(r.Code)
		}
		if s, m2 := single.Names(), merged.Names(); len(s) != len(m2) {
			t.Fatalf("seed %d: %d vs %d interned codes", seed, len(s), len(m2))
		} else {
			for i := range s {
				if s[i] != m2[i] {
					t.Fatalf("seed %d: global ID %d is %q merged but %q single-block", seed, i, m2[i], s[i])
				}
			}
		}

		// A filtered merge must equal filtering the reference stream.
		q := Query{SevMask: 1 << 6}
		m, err = cat.Merge(q)
		if err != nil {
			t.Fatalf("seed %d: filtered Merge: %v", seed, err)
		}
		var fatals []testRow
		for _, r := range sorted {
			if r.sev == 6 {
				fatals = append(fatals, r)
			}
		}
		checkRows(t, drain(t, m), fatals)
		cat.Close()
	}
}

func TestZoneMapPushdown(t *testing.T) {
	// Two disjoint eras and disjoint severity classes: era queries and
	// severity queries must each skip a segment without scanning it.
	era1 := []testRow{
		{1, 1_000, "a", "L1", 1, 6},
		{2, 2_000, "b", "L2", 1, 6},
	}
	era2 := []testRow{
		{3, 1_000_000, "c", "L3", 2, 4},
		{4, 2_000_000, "c", "L1", 2, 4},
	}
	dir := t.TempDir()
	for seq, rows := range [][]testRow{era1, era2} {
		if err := CommitSegment(filepath.Join(dir, SegmentFileName(seq)), segmentFromRows(seq, rows)); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	cases := []struct {
		name     string
		q        Query
		wantSkip int
		wantRows int
	}{
		{"unfiltered", Query{}, 0, 4},
		{"era1 time window", Query{MaxTimeNS: 10_000}, 1, 2},
		{"era2 time window", Query{MinTimeNS: 500_000}, 1, 2},
		{"fatal only", Query{SevMask: 1 << 6}, 1, 2},
		{"warning only", Query{SevMask: 1 << 4}, 1, 2},
		{"code c", Query{Code: "c"}, 1, 2},
		{"loc L1", Query{Loc: "L1"}, 0, 2},
		{"absent code", Query{Code: "nope"}, 2, 0},
	}
	for _, tc := range cases {
		m, err := cat.Merge(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := drain(t, m)
		st := m.Stats()
		if st.Skipped != tc.wantSkip || len(got) != tc.wantRows {
			t.Errorf("%s: skipped %d segments and yielded %d rows, want %d/%d",
				tc.name, st.Skipped, len(got), tc.wantSkip, tc.wantRows)
		}
		if int(st.Rows) != len(got) || st.Segments != 2 || st.Scanned != 2-st.Skipped {
			t.Errorf("%s: inconsistent stats %+v", tc.name, st)
		}
	}
}

// TestStreamedReaderMatchesMmap forces the buffered sequential backend
// and requires the same rows the mapped backend yields.
func TestStreamedReaderMatchesMmap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := sortRows(randomRows(rng, 300))
	dir := writeSegments(t, rows, []int{100, 200})
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	m, err := cat.Merge(Query{})
	if err != nil {
		t.Fatal(err)
	}
	mapped := drain(t, m)

	for _, sf := range cat.Segments() {
		if sf.mm != nil {
			if err := munmapFile(sf.mm); err != nil {
				t.Fatal(err)
			}
			sf.mm = nil
		}
		if sf.Mapped() {
			t.Fatal("segment still reports mapped")
		}
	}
	m, err = cat.Merge(Query{})
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, m)
	if len(mapped) != len(streamed) {
		t.Fatalf("streamed %d rows, mapped %d", len(streamed), len(mapped))
	}
	for i := range mapped {
		if mapped[i] != streamed[i] {
			t.Fatalf("row %d differs: mmap %+v, streamed %+v", i, mapped[i], streamed[i])
		}
	}
}

func TestCatalogSpan(t *testing.T) {
	rows := []testRow{{1, 5_000, "a", "L", 1, 6}, {2, 9_000, "a", "L", 1, 6}}
	dir := writeSegments(t, rows, []int{1})
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	minNS, maxNS, ok := cat.Span()
	if !ok || minNS != 5_000 || maxNS != 9_000 {
		t.Fatalf("Span() = %d, %d, %v", minNS, maxNS, ok)
	}
	empty, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if _, _, ok := empty.Span(); ok {
		t.Fatal("empty catalog reports a span")
	}
}
