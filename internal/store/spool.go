package store

// Spool is the bounded-memory run writer behind coanalyze -mem-budget:
// an external merge sort whose runs are segment files. Rows arrive in
// file order (not time order); the spool buffers them, and whenever the
// buffered payload exceeds the budget it stable-sorts the larger class
// buffer by (time, RecID) and commits it as one segment-file run. The
// catalog of runs then merges back into one time-ordered stream.
//
// Rows are partitioned into two class buffers — fatal and non-fatal —
// so each run is pure-class. That is what gives the zone maps something
// to refute: the filter cascade's query carries the FATAL severity
// mask, so every noise run is skipped from its header alone, and only
// fatal runs are reopened and merged.
//
// Determinism: within a class, rows flush in arrival order and each run
// is stable-sorted, so rows with equal (time, RecID) keys appear in
// arrival order within a run and runs are cataloged in flush order —
// the merge's tie-break by catalog position therefore reproduces the
// exact order a single stable sort of the whole input would give.
// Across classes the order of equal keys is not preserved, which is
// invisible to the cascade: its query admits one class only.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/symtab"
)

// SpoolStats describes what a spool did, for the -mem-budget summary
// line (and the CI assertion that a budgeted run actually spilled).
type SpoolStats struct {
	// Rows is the total rows added.
	Rows int64
	// Runs is the number of run files committed.
	Runs int
	// Flushes is how many runs were forced out by the budget (Finish's
	// final flushes are not counted).
	Flushes int
	// SpilledBytes is the total size of the committed run files.
	SpilledBytes int64
}

// spoolBuf buffers one class of rows in arrival order. Code and
// location names are interned on arrival into per-buffer dictionaries
// (so the buffer holds integers, not strings) and remapped to the
// sorted first-seen numbering at flush time.
type spoolBuf struct {
	recID, timeNS []int64
	code          []symtab.ErrcodeID
	loc           []symtab.LocationID
	comp, sev     []int32
	codes         symtab.Dict[symtab.ErrcodeID]
	locs          symtab.Dict[symtab.LocationID]
	weight        int64
}

func (b *spoolBuf) add(recID, timeNS int64, code, loc string, comp, sev int32, weight int64) {
	b.recID = append(b.recID, recID)
	b.timeNS = append(b.timeNS, timeNS)
	b.code = append(b.code, b.codes.Intern(code))
	b.loc = append(b.loc, b.locs.Intern(loc))
	b.comp = append(b.comp, comp)
	b.sev = append(b.sev, sev)
	b.weight += weight
}

func (b *spoolBuf) reset() {
	b.recID = b.recID[:0]
	b.timeNS = b.timeNS[:0]
	b.code = b.code[:0]
	b.loc = b.loc[:0]
	b.comp = b.comp[:0]
	b.sev = b.sev[:0]
	b.codes = symtab.Dict[symtab.ErrcodeID]{}
	b.locs = symtab.Dict[symtab.LocationID]{}
	b.weight = 0
}

// Spool accumulates rows and spills sorted runs once the buffered
// payload exceeds Budget. Create with NewSpool, Add every row, then
// Finish to flush the tails and open the catalog of runs.
type Spool struct {
	dir    string
	budget int64

	fatal spoolBuf
	noise spoolBuf

	seq   int
	stats SpoolStats
	done  bool
}

// NewSpool returns a spool writing its runs under dir. A budget <= 0
// means unbounded buffering: Finish writes at most one run per class.
func NewSpool(dir string, budget int64) *Spool {
	return &Spool{dir: dir, budget: budget}
}

// Add buffers one row. fatal selects the class buffer; weight is the
// row's contribution to the budget (the caller's currency — coanalyze
// uses the record's encoded line length). When the buffered weight
// exceeds the budget, the larger buffer is flushed to a run.
func (sp *Spool) Add(recID, timeNS int64, code, loc string, comp, sev int32, fatal bool, weight int64) error {
	if sp.done {
		return fmt.Errorf("store: Add after Finish")
	}
	b := &sp.noise
	if fatal {
		b = &sp.fatal
	}
	b.add(recID, timeNS, code, loc, comp, sev, weight)
	sp.stats.Rows++
	if sp.budget > 0 && sp.fatal.weight+sp.noise.weight > sp.budget {
		big := &sp.fatal
		if sp.noise.weight > sp.fatal.weight {
			big = &sp.noise
		}
		sp.stats.Flushes++
		if err := sp.flush(big); err != nil {
			return err
		}
	}
	return nil
}

// flush stable-sorts b by (time, RecID), remaps its arrival-order local
// IDs to the sorted first-seen numbering the segment format requires,
// and commits the run.
func (sp *Spool) flush(b *spoolBuf) error {
	n := len(b.recID)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if b.timeNS[i] != b.timeNS[j] {
			return b.timeNS[i] < b.timeNS[j]
		}
		return b.recID[i] < b.recID[j]
	})
	d := &SegmentData{Seq: sp.seq, Events: *NewEvents(n)}
	codeMap := make([]symtab.ErrcodeID, b.codes.Len())
	locMap := make([]symtab.LocationID, b.locs.Len())
	for i := range codeMap {
		codeMap[i] = symtab.NoErrcode
	}
	for i := range locMap {
		locMap[i] = symtab.NoLocation
	}
	for k, i := range order {
		t := b.timeNS[i]
		if k == 0 || t < d.MinTime {
			d.MinTime = t
		}
		if k == 0 || t > d.MaxTime {
			d.MaxTime = t
		}
		if c := b.comp[i]; c >= 0 && c < 64 {
			d.CompBits |= 1 << uint(c)
		}
		if s := b.sev[i]; s >= 0 && s < 64 {
			d.SevBits |= 1 << uint(s)
		}
		lc := codeMap[b.code[i]]
		if lc == symtab.NoErrcode {
			lc = symtab.ErrcodeID(len(d.Codes))
			codeMap[b.code[i]] = lc
			d.Codes = append(d.Codes, b.codes.Name(b.code[i]))
		}
		ll := locMap[b.loc[i]]
		if ll == symtab.NoLocation {
			ll = symtab.LocationID(len(d.Locs))
			locMap[b.loc[i]] = ll
			d.Locs = append(d.Locs, b.locs.Name(b.loc[i]))
		}
		d.Events.Append(b.recID[i], t, lc, ll, b.comp[i], b.sev[i])
	}
	path := filepath.Join(sp.dir, SegmentFileName(sp.seq))
	if err := CommitSegment(path, d); err != nil {
		return err
	}
	sp.seq++
	sp.stats.Runs++
	if st, err := os.Stat(path); err == nil {
		sp.stats.SpilledBytes += st.Size()
	}
	b.reset()
	return nil
}

// Finish flushes the remaining class buffers and opens the catalog of
// committed runs. The spool cannot be used afterwards.
func (sp *Spool) Finish() (*Catalog, SpoolStats, error) {
	if sp.done {
		return nil, sp.stats, fmt.Errorf("store: Finish called twice")
	}
	sp.done = true
	if err := sp.flush(&sp.fatal); err != nil {
		return nil, sp.stats, err
	}
	if err := sp.flush(&sp.noise); err != nil {
		return nil, sp.stats, err
	}
	cat, err := OpenCatalog(sp.dir)
	if err != nil {
		return nil, sp.stats, err
	}
	return cat, sp.stats, nil
}

// Stats returns the spool's counters so far.
func (sp *Spool) Stats() SpoolStats { return sp.stats }
