package store

import "repro/internal/symtab"

// Time-partitioned segments for the serving layer (internal/serve): a
// long-running ingester appends rows to one active segment at a time,
// seals it when it reaches its row budget, and publishes immutable
// views of the whole set. Sealing is what makes epoch publication and
// crash recovery cheap — a sealed segment never changes, so published
// epochs share sealed segments by pointer and the recovery path only
// re-reads the unsealed tail.
//
// The concurrency contract mirrors symtab: a single writer appends and
// seals under its own serialization (the serving layer's ingest lock),
// and Snapshot captures a frozen view — sealed segments shared, the
// active segment's columns clipped to their current length. Appending
// to a Go slice beyond a previously captured length never moves or
// mutates the elements below that length, so earlier views stay valid
// while the writer keeps appending.

// Segment is one time-contiguous run of rows. MinTime/MaxTime are the
// row time-zone bounds maintained on append (equal to the first/last
// row times, since the writer appends in time order).
type Segment struct {
	Events
	// Seq is the segment's position in the stream, starting at 0.
	Seq int
	// MinTime and MaxTime bound the row times, in Unix nanoseconds;
	// both are zero while the segment is empty.
	MinTime, MaxTime int64
	sealed           bool

	// rows is the row count frozen at seal time. Len reads it instead
	// of the columns so that published epochs sharing this segment by
	// pointer keep reporting the right count after a spill drops the
	// columns: rows is written once, before the segment is ever shared.
	rows int

	// sevBits and compBits accumulate the severity/component zone
	// bitmaps on append (all enum values are < 64).
	sevBits, compBits uint64
	// zoneCodes and zoneLocs are the global-ID zone sets, built at seal
	// time; nil while the segment is active.
	zoneCodes *Set[symtab.ErrcodeID]
	zoneLocs  *Set[symtab.LocationID]

	// spilled segments have committed their rows to path and dropped
	// their columns; only the zone state above stays resident.
	spilled bool
	path    string
}

// Sealed reports whether the segment will never change again.
func (s *Segment) Sealed() bool { return s.sealed }

// Len returns the segment's row count. For sealed segments it reads
// the count frozen at seal time, which stays correct — and race-free
// for concurrent epoch readers — after a spill drops the columns.
func (s *Segment) Len() int {
	if s.sealed {
		return s.rows
	}
	return s.Events.Len()
}

// Spilled reports whether the segment's columns live on disk only.
func (s *Segment) Spilled() bool { return s.spilled }

// SpillPath returns the segment file path of a spilled segment, or "".
func (s *Segment) SpillPath() string { return s.path }

// AppendRow adds one row and maintains the time-zone bounds. It is the
// building block both for SegmentSet.Append and for recovery, which
// reconstructs a sealed segment row-by-row from its persisted lines
// before SegmentSet.Restore re-attaches it. Appending to a sealed
// segment is a programmer error.
func (s *Segment) AppendRow(recID, timeNS int64, code symtab.ErrcodeID, loc symtab.LocationID, comp, sev int32) {
	if s.sealed {
		panic("store: AppendRow on a sealed segment")
	}
	if s.Events.Len() == 0 || timeNS < s.MinTime {
		s.MinTime = timeNS
	}
	if timeNS > s.MaxTime {
		s.MaxTime = timeNS
	}
	if comp >= 0 && comp < 64 {
		s.compBits |= 1 << uint(comp)
	}
	if sev >= 0 && sev < 64 {
		s.sevBits |= 1 << uint(sev)
	}
	s.Events.Append(recID, timeNS, code, loc, comp, sev)
}

// seal freezes the row count and builds the global-ID zone sets; it is
// the common tail of Seal and Restore and must run before the segment
// is shared.
func (s *Segment) seal() {
	s.sealed = true
	s.clip()
	s.rows = s.Events.Len()
	s.zoneCodes = NewSet[symtab.ErrcodeID](0)
	s.zoneLocs = NewSet[symtab.LocationID](0)
	for i := 0; i < s.rows; i++ {
		s.zoneCodes.Add(s.Events.Code[i])
		s.zoneLocs.Add(s.Events.Loc[i])
	}
}

// SegmentSet is the writer-side collection: zero or more sealed
// segments plus at most one active (growing) segment.
type SegmentSet struct {
	// SealRows is the row budget of a segment; Append seals the active
	// segment and opens a fresh one when it fills. Zero means the
	// DefaultSealRows budget.
	SealRows int

	sealed []*Segment
	active *Segment
}

// DefaultSealRows is the segment row budget when SegmentSet.SealRows is
// zero: small enough that a crash loses little, large enough that the
// per-segment overhead (a manifest write and an fsync) stays off the
// per-record path.
const DefaultSealRows = 4096

// Append adds one row to the active segment, opening one if needed, and
// returns the segment that was sealed by this append (or nil). The
// caller persists the sealed segment before acknowledging the rows —
// that is the durability boundary.
func (ss *SegmentSet) Append(recID, timeNS int64, code symtab.ErrcodeID, loc symtab.LocationID, comp, sev int32) *Segment {
	if ss.active == nil {
		ss.active = &Segment{Seq: len(ss.sealed)}
	}
	ss.active.AppendRow(recID, timeNS, code, loc, comp, sev)
	budget := ss.SealRows
	if budget <= 0 {
		budget = DefaultSealRows
	}
	if ss.active.Events.Len() >= budget {
		return ss.Seal()
	}
	return nil
}

// clip caps every column at its current length (cap == len) so a
// sealed segment can never grow through an aliased slice: an append
// through any retained reference is forced to reallocate instead of
// writing into the shared backing arrays.
func (s *Segment) clip() {
	e := &s.Events
	e.RecID = e.RecID[:len(e.RecID):len(e.RecID)]
	e.Time = e.Time[:len(e.Time):len(e.Time)]
	e.Code = e.Code[:len(e.Code):len(e.Code)]
	e.Loc = e.Loc[:len(e.Loc):len(e.Loc)]
	e.Comp = e.Comp[:len(e.Comp):len(e.Comp)]
	e.Sev = e.Sev[:len(e.Sev):len(e.Sev)]
}

// Seal closes the active segment (if any) and returns it; subsequent
// appends open a new segment.
func (ss *SegmentSet) Seal() *Segment {
	s := ss.active
	if s == nil || s.Events.Len() == 0 {
		return nil
	}
	s.seal()
	ss.sealed = append(ss.sealed, s)
	ss.active = nil
	return s
}

// SealEmpty seals the active segment if it has rows, and otherwise
// seals and returns a fresh empty segment claiming the next sequence
// number. The serving layer uses the empty case as a durable
// checkpoint record: its manifest commits cumulative counters, ingest
// cursors and pending jobs even when no filtered row arrived since the
// last seal — e.g. a shutdown after a stretch of noise-only ingest.
func (ss *SegmentSet) SealEmpty() *Segment {
	if s := ss.Seal(); s != nil {
		return s
	}
	s := &Segment{Seq: len(ss.sealed)}
	s.seal()
	ss.sealed = append(ss.sealed, s)
	return s
}

// Restore re-attaches an already-sealed segment during recovery.
// Segments must be restored in Seq order before any Append.
func (ss *SegmentSet) Restore(s *Segment) {
	s.Seq = len(ss.sealed)
	s.seal()
	ss.sealed = append(ss.sealed, s)
}

// Sealed returns the sealed segments in Seq order. The slice is
// clipped (cap == len) so a caller's append reallocates instead of
// racing the writer's next Seal.
func (ss *SegmentSet) Sealed() []*Segment {
	return ss.sealed[:len(ss.sealed):len(ss.sealed)]
}

// Rows returns the total row count across sealed and active segments.
func (ss *SegmentSet) Rows() int {
	n := 0
	for _, s := range ss.sealed {
		n += s.Events.Len()
	}
	if ss.active != nil {
		n += ss.active.Events.Len()
	}
	return n
}

// Snapshot returns an immutable view of the set as of now: the sealed
// segments shared by pointer, plus — when the active segment is
// non-empty — a frozen copy of its header whose columns are clipped to
// the current length. The writer may keep appending; rows below the
// clipped lengths never change.
func (ss *SegmentSet) Snapshot() []*Segment {
	out := make([]*Segment, len(ss.sealed), len(ss.sealed)+1)
	copy(out, ss.sealed)
	if a := ss.active; a != nil && a.Events.Len() > 0 {
		frozen := &Segment{
			Seq:     a.Seq,
			MinTime: a.MinTime,
			MaxTime: a.MaxTime,
			sealed:  false,
			Events: Events{
				RecID: a.Events.RecID[:len(a.Events.RecID):len(a.Events.RecID)],
				Time:  a.Events.Time[:len(a.Events.Time):len(a.Events.Time)],
				Code:  a.Events.Code[:len(a.Events.Code):len(a.Events.Code)],
				Loc:   a.Events.Loc[:len(a.Events.Loc):len(a.Events.Loc)],
				Comp:  a.Events.Comp[:len(a.Events.Comp):len(a.Events.Comp)],
				Sev:   a.Events.Sev[:len(a.Events.Sev):len(a.Events.Sev)],
			},
		}
		out = append(out, frozen)
	}
	return out
}
