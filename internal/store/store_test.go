package store

import (
	"testing"

	"repro/internal/symtab"
)

func TestEventsAppend(t *testing.T) {
	e := NewEvents(2)
	e.Append(1, 100, symtab.ErrcodeID(0), symtab.LocationID(3), 2, 5)
	e.Append(2, 200, symtab.ErrcodeID(1), symtab.LocationID(0), 1, 4)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if e.RecID[1] != 2 || e.Time[1] != 200 || e.Code[1] != 1 || e.Loc[1] != 0 || e.Comp[1] != 1 || e.Sev[1] != 4 {
		t.Fatalf("row 1 mismatch: %+v", e)
	}
}

func TestSet(t *testing.T) {
	var s Set[symtab.ErrcodeID]
	if s.Has(0) || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if !s.Add(5) {
		t.Fatal("first Add(5) reported duplicate")
	}
	if s.Add(5) {
		t.Fatal("second Add(5) reported new")
	}
	if !s.Has(5) || s.Has(4) || s.Has(6) {
		t.Fatal("membership wrong around 5")
	}
	// Growth across word boundaries.
	for _, id := range []symtab.ErrcodeID{63, 64, 127, 128, 1000} {
		if !s.Add(id) {
			t.Fatalf("Add(%d) reported duplicate", id)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	for _, id := range []symtab.ErrcodeID{5, 63, 64, 127, 128, 1000} {
		if !s.Has(id) {
			t.Fatalf("Has(%d) = false", id)
		}
	}
	if s.Has(999) || s.Has(1001) {
		t.Fatal("false membership near 1000")
	}

	pre := NewSet[symtab.JobID](100)
	if !pre.Add(99) || pre.Len() != 1 || !pre.Has(99) {
		t.Fatal("pre-sized set misbehaves")
	}
}
