package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentCodec throws arbitrary bytes at the segment reader. The
// contract under fuzzing: decoding never panics, every rejection is a
// structured *FormatError, and every accepted decode is canonical —
// re-encoding reproduces exactly the bytes that were consumed.
func FuzzSegmentCodec(f *testing.F) {
	valid, err := AppendSegment(nil, goldenSegment())
	if err != nil {
		f.Fatal(err)
	}
	empty, err := AppendSegment(nil, &SegmentData{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), valid...))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("BGPSEG1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error is not a *FormatError: %v", err)
			}
			return
		}
		enc, err := AppendSegment(nil, d)
		if err != nil {
			t.Fatalf("accepted decode does not re-encode: %v", err)
		}
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode is not the consumed prefix (%d of %d bytes)", len(enc), len(data))
		}
	})
}
