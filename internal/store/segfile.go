package store

// Reader side of the segmented store: OpenSegment reads only a file's
// header — zone map and local vocabularies — and defers the column
// payload until a scan actually needs it, backed by an mmap of the file
// when the platform provides one and by buffered sequential reads
// otherwise. Catalog opens a directory of segments and MergeReader
// drains any subset of them as one (Time, RecID)-ordered stream,
// skipping every segment whose zone map refutes the predicate without
// touching its columns.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Query is the pushdown predicate the zone maps answer. The zero value
// matches every row.
type Query struct {
	// MinTimeNS and MaxTimeNS bound the event time, inclusive; zero
	// means unbounded on that side (campaign timestamps are nowhere
	// near 1970, so the conflation is harmless).
	MinTimeNS, MaxTimeNS int64
	// SevMask admits rows whose severity bit is set; zero admits all.
	// Build it as 1<<uint(sev).
	SevMask uint64
	// Code and Loc, when non-empty, require an exact ERRCODE or
	// location-code match.
	Code, Loc string
}

// ZoneMap is what a reader learns about a segment from its header
// alone: enough to decide whether any row can match a Query.
type ZoneMap struct {
	// Rows is the segment's row count.
	Rows int
	// MinTime and MaxTime bound the row times (unix ns).
	MinTime, MaxTime int64
	// SevBits and CompBits have bit v set iff some row carries that
	// severity/component value.
	SevBits, CompBits uint64
	// Codes and Locs are the segment's local vocabularies (its symtab
	// delta) in first-seen row order; presence in the slice is the
	// errcode/location zone predicate.
	Codes, Locs []string

	codeIdx, locIdx map[string]int32
}

// index builds the name→local-ID lookups.
func (z *ZoneMap) index() {
	z.codeIdx = make(map[string]int32, len(z.Codes))
	for i, n := range z.Codes {
		z.codeIdx[n] = int32(i)
	}
	z.locIdx = make(map[string]int32, len(z.Locs))
	for i, n := range z.Locs {
		z.locIdx[n] = int32(i)
	}
}

// Admits reports whether the zone map leaves room for a row matching q.
// A false answer is definitive — the segment can be skipped unread; a
// true answer still requires the row filter.
func (z *ZoneMap) Admits(q Query) bool {
	if z.Rows == 0 {
		return false
	}
	if q.MinTimeNS != 0 && z.MaxTime < q.MinTimeNS {
		return false
	}
	if q.MaxTimeNS != 0 && z.MinTime > q.MaxTimeNS {
		return false
	}
	if q.SevMask != 0 && z.SevBits&q.SevMask == 0 {
		return false
	}
	if q.Code != "" {
		if _, ok := z.codeIdx[q.Code]; !ok {
			return false
		}
	}
	if q.Loc != "" {
		if _, ok := z.locIdx[q.Loc]; !ok {
			return false
		}
	}
	return true
}

// Row is one merged, name-resolved event row — what scans and merges
// yield. Code and Loc are names (not IDs): resolving per-segment local
// IDs through the segment's own vocabulary is what makes rows from
// different segments comparable, and re-interning the names in merge
// order is what remaps the per-segment symtab deltas onto a global
// table (see MergeReader).
type Row struct {
	RecID  int64
	TimeNS int64
	Code   string
	Loc    string
	Comp   int32
	Sev    int32
}

// ScanStats counts what a scan or merge touched; the pushdown tests
// and the coanalyze -mem-budget summary read them.
type ScanStats struct {
	// Segments is how many segments the predicate was consulted for.
	Segments int
	// Skipped is how many of those the zone maps refuted — their column
	// payloads were never read.
	Skipped int
	// Scanned is how many segments had columns read.
	Scanned int
	// Rows is how many rows passed the row filter and were yielded.
	Rows int64
}

// SegmentFile is one on-disk segment opened for reading. Opening reads
// and verifies only the header; the column payload is touched lazily,
// through the mapping when mmap is available and through buffered
// sequential reads otherwise.
type SegmentFile struct {
	path string
	f    *os.File
	mm   []byte // whole-file mapping; nil on platforms without mmap
	zone ZoneMap
	seq  int
	size int64
	// colOff is the file offset of the columns section.
	colOff int64
}

// OpenSegment opens path and decodes its header, zone map and
// vocabularies. The file size is validated against the declared row
// count, so truncation surfaces here rather than mid-scan.
func OpenSegment(path string) (*SegmentFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h, err := readHeader(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := h.colOff + int64(h.rows)*RowBytes + 4; st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path,
			formatErr("columns", "file is %d bytes, %d rows need %d", st.Size(), h.rows, want))
	}
	sf := &SegmentFile{
		path: path,
		f:    f,
		seq:  h.seq,
		size: st.Size(),
		zone: ZoneMap{
			Rows:     h.rows,
			MinTime:  h.minTime,
			MaxTime:  h.maxTime,
			SevBits:  h.sevBits,
			CompBits: h.compBits,
			Codes:    h.codes,
			Locs:     h.locs,
		},
		colOff: h.colOff,
	}
	sf.zone.index()
	// Best effort: fall back to the streamed reader when the platform
	// (or the filesystem) refuses to map the file.
	if mm, err := mmapFile(f, st.Size()); err == nil {
		sf.mm = mm
	}
	return sf, nil
}

// Path returns the file path the segment was opened from.
func (sf *SegmentFile) Path() string { return sf.path }

// Seq returns the segment's sequence number.
func (sf *SegmentFile) Seq() int { return sf.seq }

// Rows returns the segment's row count.
func (sf *SegmentFile) Rows() int { return sf.zone.Rows }

// Zone returns the segment's zone map.
func (sf *SegmentFile) Zone() *ZoneMap { return &sf.zone }

// Mapped reports whether the column payload is memory-mapped.
func (sf *SegmentFile) Mapped() bool { return sf.mm != nil }

// Close unmaps and closes the file.
func (sf *SegmentFile) Close() error {
	var mErr error
	if sf.mm != nil {
		mErr = munmapFile(sf.mm)
		sf.mm = nil
	}
	if err := sf.f.Close(); err != nil {
		return err
	}
	return mErr
}

// ReadAll decodes the whole segment, re-verifying both CRCs.
func (sf *SegmentFile) ReadAll() (*SegmentData, error) {
	d, err := ReadSegment(bufio.NewReaderSize(io.NewSectionReader(sf.f, 0, sf.size), 1<<16))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sf.path, err)
	}
	return d, nil
}

// cursor walks one segment's rows in order, applying a row filter; the
// k-way merge pulls from one cursor per admitted segment.
type cursor struct {
	sf *SegmentFile
	n  int
	i  int

	// Resolved local-ID filter; a -2 sentinel means "filter name absent
	// from this segment" and would have been caught by Admits.
	q       Query
	codeID  int32
	locID   int32
	hasCode bool
	hasLoc  bool

	// Streamed backend: one buffered reader per column section.
	recR, timeR, codeR, locR, compR, sevR *bufio.Reader

	// current row, local IDs
	recID, timeNS        int64
	code, loc, comp, sev int32
}

func (sf *SegmentFile) newCursor(q Query) *cursor {
	c := &cursor{sf: sf, n: sf.zone.Rows, q: q}
	if q.Code != "" {
		c.codeID, c.hasCode = sf.zone.codeIdx[q.Code], true
	}
	if q.Loc != "" {
		c.locID, c.hasLoc = sf.zone.locIdx[q.Loc], true
	}
	if sf.mm == nil {
		n := int64(sf.zone.Rows)
		col := func(off, width int64) *bufio.Reader {
			return bufio.NewReaderSize(io.NewSectionReader(sf.f, sf.colOff+off, n*width), 1<<15)
		}
		c.recR = col(0, 8)
		c.timeR = col(8*n, 8)
		c.codeR = col(16*n, 4)
		c.locR = col(20*n, 4)
		c.compR = col(24*n, 4)
		c.sevR = col(28*n, 4)
	}
	return c
}

func read64(r *bufio.Reader) (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func read32(r *bufio.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(b[:])), nil
}

// load decodes row i into the cursor. The streamed backend reads every
// column sequentially, so load must be called for each row in order.
func (c *cursor) load() error {
	if mm := c.sf.mm; mm != nil {
		off := c.sf.colOff
		n := int64(c.n)
		i := int64(c.i)
		c.recID = int64(binary.LittleEndian.Uint64(mm[off+8*i:]))
		c.timeNS = int64(binary.LittleEndian.Uint64(mm[off+8*n+8*i:]))
		c.code = int32(binary.LittleEndian.Uint32(mm[off+16*n+4*i:]))
		c.loc = int32(binary.LittleEndian.Uint32(mm[off+20*n+4*i:]))
		c.comp = int32(binary.LittleEndian.Uint32(mm[off+24*n+4*i:]))
		c.sev = int32(binary.LittleEndian.Uint32(mm[off+28*n+4*i:]))
		return nil
	}
	var err error
	if c.recID, err = read64(c.recR); err == nil {
		if c.timeNS, err = read64(c.timeR); err == nil {
			if c.code, err = read32(c.codeR); err == nil {
				if c.loc, err = read32(c.locR); err == nil {
					if c.comp, err = read32(c.compR); err == nil {
						c.sev, err = read32(c.sevR)
					}
				}
			}
		}
	}
	if err != nil {
		return fmt.Errorf("%s: %w", c.sf.path, formatErr("columns", "row %d: %v", c.i, err))
	}
	return nil
}

// match applies the row filter to the loaded row.
func (c *cursor) match() bool {
	if c.q.MinTimeNS != 0 && c.timeNS < c.q.MinTimeNS {
		return false
	}
	if c.q.MaxTimeNS != 0 && c.timeNS > c.q.MaxTimeNS {
		return false
	}
	if c.q.SevMask != 0 && (c.sev < 0 || c.sev > 63 || c.q.SevMask&(1<<uint(c.sev)) == 0) {
		return false
	}
	if c.hasCode && c.code != c.codeID {
		return false
	}
	if c.hasLoc && c.loc != c.locID {
		return false
	}
	return true
}

// next advances to the next matching row; ok is false at end of
// segment. Local IDs out of the vocabulary range surface as errors
// here (OpenSegment cannot see them without reading the columns).
func (c *cursor) next() (ok bool, err error) {
	for ; c.i < c.n; c.i++ {
		if err := c.load(); err != nil {
			return false, err
		}
		if int(c.code) >= len(c.sf.zone.Codes) || c.code < 0 ||
			int(c.loc) >= len(c.sf.zone.Locs) || c.loc < 0 {
			return false, fmt.Errorf("%s: %w", c.sf.path,
				formatErr("columns", "row %d: local ID outside the vocabulary", c.i))
		}
		if c.match() {
			c.i++
			return true, nil
		}
	}
	return false, nil
}

// row materializes the current row with names resolved through the
// segment's local vocabulary.
func (c *cursor) row() Row {
	return Row{
		RecID:  c.recID,
		TimeNS: c.timeNS,
		Code:   c.sf.zone.Codes[c.code],
		Loc:    c.sf.zone.Locs[c.loc],
		Comp:   c.comp,
		Sev:    c.sev,
	}
}

// Scan visits every row of the segment matching q, in row order.
func (sf *SegmentFile) Scan(q Query, visit func(Row) error) (int64, error) {
	c := sf.newCursor(q)
	var rows int64
	for {
		ok, err := c.next()
		if err != nil {
			return rows, err
		}
		if !ok {
			return rows, nil
		}
		rows++
		if err := visit(c.row()); err != nil {
			return rows, err
		}
	}
}

// Catalog is a directory of segment files opened for reading, in
// lexical (= sequence, = time) order.
type Catalog struct {
	segs []*SegmentFile
}

// OpenCatalog opens every *.seg file under dir. An empty or absent
// directory yields an empty catalog.
func OpenCatalog(dir string) (*Catalog, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	c := &Catalog{}
	for _, name := range names {
		sf, err := OpenSegment(name)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.segs = append(c.segs, sf)
	}
	return c, nil
}

// Segments returns the opened segments in order.
func (c *Catalog) Segments() []*SegmentFile { return c.segs }

// Close closes every segment.
func (c *Catalog) Close() error {
	var first error
	for _, sf := range c.segs {
		if err := sf.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.segs = nil
	return first
}

// Span returns the time bounds over all non-empty segments, from zone
// maps alone.
func (c *Catalog) Span() (minNS, maxNS int64, ok bool) {
	for _, sf := range c.segs {
		z := sf.Zone()
		if z.Rows == 0 {
			continue
		}
		if !ok || z.MinTime < minNS {
			minNS = z.MinTime
		}
		if !ok || z.MaxTime > maxNS {
			maxNS = z.MaxTime
		}
		ok = true
	}
	return minNS, maxNS, ok
}

// MergeReader drains several segments as one stream ordered by
// (TimeNS, RecID). Each segment is a sorted run, so this is a k-way
// heap merge; ties across segments break by catalog position, which —
// because runs are written in input order — makes the merged order of
// equal keys exactly the stable input order the single-block path
// sorts into. Yielded rows carry names, so feeding them to a fresh
// symtab table re-interns the per-segment deltas in global first-seen
// order: the remap that keeps segment-path output byte-identical to
// the single-block path.
type MergeReader struct {
	heap  []*mergeEntry
	stats ScanStats
}

type mergeEntry struct {
	c   *cursor
	idx int // catalog position, the tie-break
}

// Merge builds a MergeReader over the catalog's segments whose zone
// maps admit q; refuted segments are counted and skipped unread.
func (c *Catalog) Merge(q Query) (*MergeReader, error) {
	m := &MergeReader{}
	for idx, sf := range c.segs {
		m.stats.Segments++
		if !sf.zone.Admits(q) {
			m.stats.Skipped++
			continue
		}
		m.stats.Scanned++
		cur := sf.newCursor(q)
		ok, err := cur.next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.push(&mergeEntry{c: cur, idx: idx})
		}
	}
	return m, nil
}

// less orders heap entries by (TimeNS, RecID, catalog position).
func (m *MergeReader) less(a, b *mergeEntry) bool {
	if a.c.timeNS != b.c.timeNS {
		return a.c.timeNS < b.c.timeNS
	}
	if a.c.recID != b.c.recID {
		return a.c.recID < b.c.recID
	}
	return a.idx < b.idx
}

func (m *MergeReader) push(e *mergeEntry) {
	m.heap = append(m.heap, e)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[p]) {
			break
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *MergeReader) sift() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[small]) {
			small = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
}

// Next yields the next row in (TimeNS, RecID) order; ok is false when
// the merge is drained.
func (m *MergeReader) Next() (row Row, ok bool, err error) {
	if len(m.heap) == 0 {
		return Row{}, false, nil
	}
	top := m.heap[0]
	row = top.c.row()
	m.stats.Rows++
	advanced, err := top.c.next()
	if err != nil {
		return Row{}, false, err
	}
	if advanced {
		m.sift()
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
		if last > 0 {
			m.sift()
		}
	}
	return row, true, nil
}

// Stats returns what the merge consulted, skipped and yielded so far.
func (m *MergeReader) Stats() ScanStats { return m.stats }
