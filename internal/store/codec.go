package store

// On-disk segment format (version 1). A segment file is one sealed,
// time-contiguous columnar run plus everything a reader needs to
// decide — without touching the column payload — whether the segment
// can contain a row matching a predicate: the zone map (row count,
// min/max event time, severity/component bitmaps) and the segment's
// symtab delta (the local ERRCODE and location vocabularies, in
// first-seen row order). The column payload stores Code/Loc as
// segment-local dense IDs; a reader remaps them onto whatever global
// table it is merging into (see MergeReader).
//
// Layout, all integers little-endian:
//
//	offset 0    magic "BGPSEG1\n" (8 bytes; the digit is the format
//	            version — a version bump changes the magic)
//	            u32 headerLen — byte length of the header payload
//	            header payload:
//	              u32 version (== SegmentFormatVersion; redundant with
//	                  the magic so version errors are first-class)
//	              u32 seq
//	              u32 rows
//	              i64 minTime, i64 maxTime (unix ns; 0/0 when empty)
//	              u64 sevBits, u64 compBits (bit v set ⇔ some row has
//	                  that severity/component value; values are < 64)
//	              u32 nCodes, then nCodes × (uvarint len + bytes)
//	              u32 nLocs,  then nLocs  × (uvarint len + bytes)
//	            u32 headerCRC — IEEE CRC-32 of the header payload
//	columns     rows×8 RecID | rows×8 Time | rows×4 Code | rows×4 Loc |
//	            rows×4 Comp | rows×4 Sev   (Code/Loc are local IDs)
//	            u32 columnsCRC — IEEE CRC-32 of the columns section
//
// The encoding is canonical: rows are sorted by (Time, RecID), local
// IDs are assigned in first-seen row order, and the zone map is derived
// from the rows. ReadSegment validates all of that, so decode→encode is
// byte-identity — the property FuzzSegmentCodec and the golden-file
// compatibility test pin. Files are committed via temp file + fsync +
// rename (CommitSegment), the same protocol the commitseq lint analyzer
// enforces for the serve manifests.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/symtab"
)

// SegmentFormatVersion is the on-disk segment format version this
// package reads and writes. Bump it (and segMagic's digit) on any
// byte-layout change; the golden-file test fails with that instruction
// when the encoding drifts without a bump.
const SegmentFormatVersion = 1

// segMagic opens every segment file; the digit tracks the version.
const segMagic = "BGPSEG1\n"

// RowBytes is the fixed column payload per row (8+8+4+4+4+4).
const RowBytes = 32

// maxHeaderBytes bounds the declared header length so a corrupt length
// field cannot drive a huge allocation.
const maxHeaderBytes = 1 << 26

// FormatError is the structured error every segment decode failure
// reduces to: truncation, corruption, a version mismatch, or a
// non-canonical encoding. Decoders never panic on arbitrary input.
type FormatError struct {
	// Section locates the failure: "magic", "version", "header",
	// "columns", or "crc".
	Section string
	Msg     string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("store: bad segment (%s): %s", e.Section, e.Msg)
}

func formatErr(section, format string, args ...any) error {
	return &FormatError{Section: section, Msg: fmt.Sprintf(format, args...)}
}

// SegmentData is the in-memory form of one segment file: the rows with
// segment-local Code/Loc IDs plus the local vocabularies that give them
// names. Build one from a sealed in-memory segment with Segment.Data or
// from a sorted run with the Spool; decode one with ReadSegment.
type SegmentData struct {
	// Seq is the segment's position in its stream.
	Seq int
	// MinTime and MaxTime bound the Time column (both zero when empty).
	MinTime, MaxTime int64
	// SevBits and CompBits have bit v set iff some row carries that
	// severity/component value.
	SevBits, CompBits uint64
	// Codes and Locs are the local vocabularies in first-seen row
	// order; the Code/Loc columns of Events index into them.
	Codes, Locs []string
	// Events holds the rows; Code/Loc are local IDs.
	Events Events
}

// validate checks the canonical-encoding invariants AppendSegment
// requires and ReadSegment guarantees. section tags the FormatError.
func (d *SegmentData) validate(section string) error {
	e := &d.Events
	n := len(e.RecID)
	if len(e.Time) != n || len(e.Code) != n || len(e.Loc) != n || len(e.Comp) != n || len(e.Sev) != n {
		return formatErr(section, "ragged columns: %d/%d/%d/%d/%d/%d rows",
			n, len(e.Time), len(e.Code), len(e.Loc), len(e.Comp), len(e.Sev))
	}
	var minT, maxT int64
	var sevBits, compBits uint64
	seenCodes, seenLocs := 0, 0
	for i := 0; i < n; i++ {
		if i > 0 && (e.Time[i] < e.Time[i-1] || (e.Time[i] == e.Time[i-1] && e.RecID[i] < e.RecID[i-1])) {
			return formatErr(section, "row %d out of (Time, RecID) order", i)
		}
		if i == 0 || e.Time[i] < minT {
			minT = e.Time[i]
		}
		if e.Time[i] > maxT {
			maxT = e.Time[i]
		}
		if e.Comp[i] < 0 || e.Comp[i] > 63 || e.Sev[i] < 0 || e.Sev[i] > 63 {
			return formatErr(section, "row %d: component %d / severity %d outside the bitmap range [0, 63]",
				i, e.Comp[i], e.Sev[i])
		}
		sevBits |= 1 << uint(e.Sev[i])
		compBits |= 1 << uint(e.Comp[i])
		// Local IDs must be dense and assigned in first-seen row order:
		// a row may reuse an already-seen ID or mint exactly the next one.
		switch c := int(e.Code[i]); {
		case c >= 0 && c < seenCodes:
		case c == seenCodes && c < len(d.Codes):
			seenCodes++
		default:
			return formatErr(section, "row %d: code ID %d breaks first-seen-order numbering (%d of %d assigned)",
				i, c, seenCodes, len(d.Codes))
		}
		switch l := int(e.Loc[i]); {
		case l >= 0 && l < seenLocs:
		case l == seenLocs && l < len(d.Locs):
			seenLocs++
		default:
			return formatErr(section, "row %d: location ID %d breaks first-seen-order numbering (%d of %d assigned)",
				i, l, seenLocs, len(d.Locs))
		}
	}
	if seenCodes != len(d.Codes) || seenLocs != len(d.Locs) {
		return formatErr(section, "unused vocabulary entries: %d/%d codes, %d/%d locations referenced",
			seenCodes, len(d.Codes), seenLocs, len(d.Locs))
	}
	if d.MinTime != minT || d.MaxTime != maxT {
		return formatErr(section, "zone time bounds [%d, %d] disagree with rows [%d, %d]",
			d.MinTime, d.MaxTime, minT, maxT)
	}
	if d.SevBits != sevBits || d.CompBits != compBits {
		return formatErr(section, "zone bitmaps disagree with rows")
	}
	if d.Seq < 0 {
		return formatErr(section, "negative sequence %d", d.Seq)
	}
	return nil
}

// AppendSegment appends the canonical encoding of d to dst and returns
// the extended slice. It fails (without writing) when d violates the
// canonical invariants — unsorted rows, non-first-seen local IDs, or a
// zone map that disagrees with the rows.
func AppendSegment(dst []byte, d *SegmentData) ([]byte, error) {
	if err := d.validate("encode"); err != nil {
		return dst, err
	}
	hdr := make([]byte, 0, 64+16*(len(d.Codes)+len(d.Locs)))
	hdr = binary.LittleEndian.AppendUint32(hdr, SegmentFormatVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d.Seq))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d.Events.Len()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.MinTime))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.MaxTime))
	hdr = binary.LittleEndian.AppendUint64(hdr, d.SevBits)
	hdr = binary.LittleEndian.AppendUint64(hdr, d.CompBits)
	hdr = appendNames(hdr, d.Codes)
	hdr = appendNames(hdr, d.Locs)
	if len(hdr) > maxHeaderBytes {
		return dst, formatErr("encode", "header %d bytes exceeds the %d-byte bound", len(hdr), maxHeaderBytes)
	}

	dst = append(dst, segMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(hdr)))
	dst = append(dst, hdr...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(hdr))

	colStart := len(dst)
	e := &d.Events
	for _, v := range e.RecID {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range e.Time {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range e.Code {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, v := range e.Loc {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, v := range e.Comp {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, v := range e.Sev {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[colStart:])), nil
}

func appendNames(dst []byte, names []string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	return dst
}

// WriteSegment writes the canonical encoding of d to w.
func WriteSegment(w io.Writer, d *SegmentData) error {
	b, err := AppendSegment(nil, d)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// CommitSegment durably writes d at path: the encoding lands in a .tmp
// sibling, is fsynced, and is renamed into place, so a crash leaves
// either the old file or the new one — never a torn segment. The rename
// is the commit point and the last effectful step.
func CommitSegment(path string, d *SegmentData) error {
	b, err := AppendSegment(nil, d)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// segHeader is the decoded header + zone section of a segment file.
type segHeader struct {
	seq              int
	rows             int
	minTime, maxTime int64
	sevBits          uint64
	compBits         uint64
	codes, locs      []string
	// colOff is the file offset of the columns section.
	colOff int64
}

// readHeader decodes the magic, header payload and header CRC from r.
func readHeader(r io.Reader) (*segHeader, error) {
	var pre [len(segMagic) + 4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, formatErr("magic", "truncated before the header: %v", err)
	}
	if string(pre[:len(segMagic)]) != segMagic {
		if string(pre[:6]) == segMagic[:6] {
			return nil, formatErr("version", "segment written by format %q, this reader supports %q — bump SegmentFormatVersion handling before reading it",
				string(pre[:len(segMagic)]), segMagic)
		}
		return nil, formatErr("magic", "not a segment file (got % x)", pre[:len(segMagic)])
	}
	hlen := binary.LittleEndian.Uint32(pre[len(segMagic):])
	// 44 fixed bytes plus two (possibly empty) vocabulary counts.
	if hlen < 52 || hlen > maxHeaderBytes {
		return nil, formatErr("header", "implausible header length %d", hlen)
	}
	buf := make([]byte, hlen+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, formatErr("header", "truncated header: %v", err)
	}
	hdr, crc := buf[:hlen], binary.LittleEndian.Uint32(buf[hlen:])
	if got := crc32.ChecksumIEEE(hdr); got != crc {
		return nil, formatErr("crc", "header checksum %08x, want %08x", got, crc)
	}

	h := &segHeader{}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != SegmentFormatVersion {
		return nil, formatErr("version", "format version %d, this reader supports %d — bump SegmentFormatVersion handling before reading it",
			v, SegmentFormatVersion)
	}
	h.seq = int(int32(binary.LittleEndian.Uint32(hdr[4:])))
	h.rows = int(int32(binary.LittleEndian.Uint32(hdr[8:])))
	if h.seq < 0 || h.rows < 0 {
		return nil, formatErr("header", "negative seq %d or row count %d", h.seq, h.rows)
	}
	h.minTime = int64(binary.LittleEndian.Uint64(hdr[12:]))
	h.maxTime = int64(binary.LittleEndian.Uint64(hdr[20:]))
	h.sevBits = binary.LittleEndian.Uint64(hdr[28:])
	h.compBits = binary.LittleEndian.Uint64(hdr[36:])
	rest := hdr[44:]
	var err error
	if h.codes, rest, err = readNames(rest, h.rows); err != nil {
		return nil, err
	}
	if h.locs, rest, err = readNames(rest, h.rows); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, formatErr("header", "%d trailing header bytes", len(rest))
	}
	h.colOff = int64(len(segMagic)) + 4 + int64(hlen) + 4
	return h, nil
}

// readNames decodes one length-prefixed vocabulary from b. Each entry
// names at least one row, so the count is bounded by rows.
func readNames(b []byte, rows int) ([]string, []byte, error) {
	if len(b) < 4 {
		return nil, nil, formatErr("header", "truncated vocabulary count")
	}
	n := int(int32(binary.LittleEndian.Uint32(b)))
	b = b[4:]
	if n < 0 || n > rows {
		return nil, nil, formatErr("header", "vocabulary of %d entries for %d rows", n, rows)
	}
	names := make([]string, n)
	seen := make(map[string]struct{}, n)
	for i := range names {
		l, k := binary.Uvarint(b)
		if k <= 0 || l > uint64(len(b)-k) {
			return nil, nil, formatErr("header", "truncated vocabulary entry %d", i)
		}
		// Reject overlong varints: the canonical encoding is unique, so
		// decode→encode stays byte-identity.
		if k != len(binary.AppendUvarint(nil, l)) {
			return nil, nil, formatErr("header", "non-minimal length varint at vocabulary entry %d", i)
		}
		names[i] = string(b[k : k+int(l)])
		if _, dup := seen[names[i]]; dup {
			return nil, nil, formatErr("header", "duplicate vocabulary entry %q", names[i])
		}
		seen[names[i]] = struct{}{}
		b = b[k+int(l):]
	}
	return names, b, nil
}

// ReadSegment decodes one full segment from r, verifying both CRCs and
// every canonical invariant: the returned data re-encodes to exactly
// the bytes read. All failures — truncation, corruption, version drift
// — surface as *FormatError; arbitrary input never panics.
func ReadSegment(r io.Reader) (*SegmentData, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	// Read the columns in bounded chunks so a corrupt row count on a
	// short stream fails after at most one chunk instead of driving a
	// rows-sized allocation up front.
	want := h.rows*RowBytes + 4
	cols := make([]byte, 0, min(want, 1<<20))
	chunk := make([]byte, 1<<20)
	for len(cols) < want {
		c := chunk[:min(len(chunk), want-len(cols))]
		k, err := io.ReadFull(r, c)
		cols = append(cols, c[:k]...)
		if err != nil {
			return nil, formatErr("columns", "truncated columns (%d of %d bytes): %v", len(cols), want, err)
		}
	}
	payload, crc := cols[:h.rows*RowBytes], binary.LittleEndian.Uint32(cols[h.rows*RowBytes:])
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, formatErr("crc", "columns checksum %08x, want %08x", got, crc)
	}

	d := &SegmentData{
		Seq:      h.seq,
		MinTime:  h.minTime,
		MaxTime:  h.maxTime,
		SevBits:  h.sevBits,
		CompBits: h.compBits,
		Codes:    h.codes,
		Locs:     h.locs,
		Events:   *NewEvents(h.rows),
	}
	e := &d.Events
	n := h.rows
	for i := 0; i < n; i++ {
		e.RecID = append(e.RecID, int64(binary.LittleEndian.Uint64(payload[8*i:])))
	}
	for i := 0; i < n; i++ {
		e.Time = append(e.Time, int64(binary.LittleEndian.Uint64(payload[8*n+8*i:])))
	}
	for i := 0; i < n; i++ {
		e.Code = append(e.Code, symtab.ErrcodeID(int32(binary.LittleEndian.Uint32(payload[16*n+4*i:]))))
	}
	for i := 0; i < n; i++ {
		e.Loc = append(e.Loc, symtab.LocationID(int32(binary.LittleEndian.Uint32(payload[20*n+4*i:]))))
	}
	for i := 0; i < n; i++ {
		e.Comp = append(e.Comp, int32(binary.LittleEndian.Uint32(payload[24*n+4*i:])))
	}
	for i := 0; i < n; i++ {
		e.Sev = append(e.Sev, int32(binary.LittleEndian.Uint32(payload[28*n+4*i:])))
	}
	if err := d.validate("columns"); err != nil {
		return nil, err
	}
	return d, nil
}

// SegmentFileName names segment seq on disk; the zero-padding keeps
// lexical directory order equal to sequence order, which is what makes
// OpenCatalog's name sort a time sort.
func SegmentFileName(seq int) string {
	return fmt.Sprintf("seg-%06d.seg", seq)
}
