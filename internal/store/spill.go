package store

// Spill side of the segmented store: a sealed resident segment can
// localize itself into the on-disk form (Data), commit it, and drop its
// columns, keeping only the header-sized zone state — row count, time
// bounds, severity/component bitmaps and global-ID code/location sets —
// resident. Scans consult that zone state first, so a spilled segment
// is reopened only when the predicate leaves room for a match.

import (
	"fmt"
	"path/filepath"

	"repro/internal/symtab"
)

// Data localizes a sealed segment into its on-disk form: local code and
// location IDs assigned in first-seen row order, names resolved through
// the caller's global table. This is the per-segment symtab delta — the
// segment file carries exactly the vocabulary its rows use.
func (s *Segment) Data(codeName func(symtab.ErrcodeID) string, locName func(symtab.LocationID) string) (*SegmentData, error) {
	if !s.sealed {
		return nil, fmt.Errorf("store: Data on an unsealed segment")
	}
	if s.spilled {
		return nil, fmt.Errorf("store: Data on a spilled segment (columns are on disk)")
	}
	n := s.Events.Len()
	d := &SegmentData{
		Seq:      s.Seq,
		MinTime:  s.MinTime,
		MaxTime:  s.MaxTime,
		SevBits:  s.sevBits,
		CompBits: s.compBits,
		Events:   *NewEvents(n),
	}
	codeMap := make(map[symtab.ErrcodeID]symtab.ErrcodeID, 16)
	locMap := make(map[symtab.LocationID]symtab.LocationID, 16)
	for i := 0; i < n; i++ {
		gc, gl := s.Events.Code[i], s.Events.Loc[i]
		lc, ok := codeMap[gc]
		if !ok {
			lc = symtab.ErrcodeID(len(d.Codes))
			codeMap[gc] = lc
			d.Codes = append(d.Codes, codeName(gc))
		}
		ll, ok := locMap[gl]
		if !ok {
			ll = symtab.LocationID(len(d.Locs))
			locMap[gl] = ll
			d.Locs = append(d.Locs, locName(gl))
		}
		d.Events.Append(s.Events.RecID[i], s.Events.Time[i], lc, ll, s.Events.Comp[i], s.Events.Sev[i])
	}
	return d, nil
}

// release marks the segment spilled to path and drops its columns. The
// zone state and the seal-time row count stay resident, so Len and the
// pushdown checks keep working without the file.
func (s *Segment) release(path string) {
	s.spilled = true
	s.path = path
	s.Events = Events{}
}

// admits is the resident zone check, the in-memory counterpart of
// ZoneMap.Admits: global IDs for the query's code/location filters are
// resolved through tab without interning. A nil zone set (the active
// segment) cannot refute its predicate.
func (s *Segment) admits(q Query, tab *symtab.Table) bool {
	if s.Len() == 0 {
		return false
	}
	if q.MinTimeNS != 0 && s.MaxTime < q.MinTimeNS {
		return false
	}
	if q.MaxTimeNS != 0 && s.MinTime > q.MaxTimeNS {
		return false
	}
	if q.SevMask != 0 && s.sevBits&q.SevMask == 0 {
		return false
	}
	if q.Code != "" {
		id, ok := tab.Errcodes.Lookup(q.Code)
		if !ok {
			return false
		}
		if s.zoneCodes != nil && !s.zoneCodes.Has(id) {
			return false
		}
	}
	if q.Loc != "" {
		id, ok := tab.Locations.Lookup(q.Loc)
		if !ok {
			return false
		}
		if s.zoneLocs != nil && !s.zoneLocs.Has(id) {
			return false
		}
	}
	return true
}

// scanResident visits the segment's in-memory rows matching q in row
// order, resolving names through tab.
func (s *Segment) scanResident(q Query, tab *symtab.Table, visit func(Row) error) (int64, error) {
	codeID, locID := symtab.NoErrcode, symtab.NoLocation
	if q.Code != "" {
		codeID, _ = tab.Errcodes.Lookup(q.Code)
	}
	if q.Loc != "" {
		locID, _ = tab.Locations.Lookup(q.Loc)
	}
	var rows int64
	e := &s.Events
	for i := 0; i < e.Len(); i++ {
		t := e.Time[i]
		if q.MinTimeNS != 0 && t < q.MinTimeNS {
			continue
		}
		if q.MaxTimeNS != 0 && t > q.MaxTimeNS {
			continue
		}
		sev := e.Sev[i]
		if q.SevMask != 0 && (sev < 0 || sev > 63 || q.SevMask&(1<<uint(sev)) == 0) {
			continue
		}
		if q.Code != "" && e.Code[i] != codeID {
			continue
		}
		if q.Loc != "" && e.Loc[i] != locID {
			continue
		}
		rows++
		err := visit(Row{
			RecID:  e.RecID[i],
			TimeNS: t,
			Code:   tab.Errcodes.Name(e.Code[i]),
			Loc:    tab.Locations.Name(e.Loc[i]),
			Comp:   e.Comp[i],
			Sev:    sev,
		})
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// ResidentBytes returns the column payload currently held in memory, in
// on-disk row units (RowBytes per row): the currency of the spill
// budget.
func (ss *SegmentSet) ResidentBytes() int64 {
	var n int64
	for _, s := range ss.sealed {
		if !s.spilled {
			n += int64(s.Len()) * RowBytes
		}
	}
	if ss.active != nil {
		n += int64(ss.active.Events.Len()) * RowBytes
	}
	return n
}

// SpillOver commits resident sealed segments to dir, oldest first,
// until the resident column payload fits within budget bytes, and
// reports how many segments were spilled. Each spill is a full
// temp+fsync+rename commit (CommitSegment) before the columns are
// dropped, so a crash mid-spill leaves either the old file or the new
// one, never a torn segment.
func (ss *SegmentSet) SpillOver(budget int64, dir string, codeName func(symtab.ErrcodeID) string, locName func(symtab.LocationID) string) (int, error) {
	spilled := 0
	for _, s := range ss.sealed {
		if ss.ResidentBytes() <= budget {
			break
		}
		if s.spilled || s.Len() == 0 {
			continue
		}
		d, err := s.Data(codeName, locName)
		if err != nil {
			return spilled, err
		}
		path := filepath.Join(dir, SegmentFileName(s.Seq))
		if err := CommitSegment(path, d); err != nil {
			return spilled, err
		}
		s.release(path)
		spilled++
	}
	return spilled, nil
}

// Scan visits every row matching q across the whole set — sealed
// segments in sequence order, then the active segment — which is
// (Time, RecID) order, since the writer appends in time order. Zone
// state refutes segments without touching their columns; spilled
// segments that survive the zone check are reopened through the
// zone-map-filtered reader on demand.
func (ss *SegmentSet) Scan(q Query, tab *symtab.Table, visit func(Row) error) (ScanStats, error) {
	var stats ScanStats
	segs := make([]*Segment, 0, len(ss.sealed)+1)
	segs = append(segs, ss.sealed...)
	if ss.active != nil {
		segs = append(segs, ss.active)
	}
	for _, s := range segs {
		stats.Segments++
		if !s.admits(q, tab) {
			stats.Skipped++
			continue
		}
		stats.Scanned++
		var rows int64
		var err error
		if s.spilled {
			var sf *SegmentFile
			sf, err = OpenSegment(s.path)
			if err != nil {
				return stats, err
			}
			rows, err = sf.Scan(q, visit)
			if cerr := sf.Close(); err == nil {
				err = cerr
			}
		} else {
			rows, err = s.scanResident(q, tab, visit)
		}
		stats.Rows += rows
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
