package store

import (
	"testing"

	"repro/internal/symtab"
)

func TestSegmentSetSealAndSnapshot(t *testing.T) {
	ss := &SegmentSet{SealRows: 3}
	var sealedSeqs []int
	for i := 0; i < 7; i++ {
		if s := ss.Append(int64(i+1), int64(i)*100, symtab.ErrcodeID(i%2), symtab.LocationID(i%3), 1, 2); s != nil {
			if !s.Sealed() {
				t.Fatalf("append returned an unsealed segment")
			}
			sealedSeqs = append(sealedSeqs, s.Seq)
		}
	}
	if want := []int{0, 1}; len(sealedSeqs) != 2 || sealedSeqs[0] != want[0] || sealedSeqs[1] != want[1] {
		t.Fatalf("sealed seqs = %v, want %v", sealedSeqs, want)
	}
	if got := ss.Rows(); got != 7 {
		t.Fatalf("Rows() = %d, want 7", got)
	}

	snap := ss.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d segments, want 3 (2 sealed + active)", len(snap))
	}
	if snap[2].Sealed() {
		t.Fatal("active-tail view reports sealed")
	}
	if got := snap[2].Events.Len(); got != 1 {
		t.Fatalf("active-tail view has %d rows, want 1", got)
	}
	if snap[0].MinTime != 0 || snap[0].MaxTime != 200 {
		t.Fatalf("segment 0 zone = [%d, %d], want [0, 200]", snap[0].MinTime, snap[0].MaxTime)
	}

	// Appends after the snapshot must not disturb the frozen view, and
	// the tail view's columns must be capacity-clipped so an append
	// cannot extend them in place.
	tailLen := snap[2].Events.Len()
	for i := 7; i < 11; i++ {
		ss.Append(int64(i+1), int64(i)*100, 0, 0, 1, 2)
	}
	if got := snap[2].Events.Len(); got != tailLen {
		t.Fatalf("snapshot tail grew to %d rows after later appends", got)
	}
	if got := cap(snap[2].Events.RecID); got != tailLen {
		t.Fatalf("snapshot tail cap = %d, want %d (full slice expression)", got, tailLen)
	}
	if snap[2].Events.RecID[0] != 7 {
		t.Fatalf("snapshot tail row mutated: RecID[0] = %d, want 7", snap[2].Events.RecID[0])
	}

	// The second loop crossed the budget once more (rows 7..9 sealed as
	// seq 2), leaving a 2-row active remainder; Seal flushes it, and an
	// empty set seals to nil.
	if s := ss.Seal(); s == nil || s.Events.Len() != 2 {
		t.Fatalf("final Seal = %+v, want 2-row segment", s)
	}
	if s := ss.Seal(); s != nil {
		t.Fatalf("Seal with no active segment = %+v, want nil", s)
	}
	if got := len(ss.Sealed()); got != 4 {
		t.Fatalf("%d sealed segments, want 4", got)
	}
}

func TestSegmentSetRestore(t *testing.T) {
	var ss SegmentSet
	seg := &Segment{MinTime: 5, MaxTime: 9}
	seg.Events.Append(1, 5, 0, 0, 1, 2)
	seg.Events.Append(2, 9, 0, 0, 1, 2)
	ss.Restore(seg)
	if !seg.Sealed() || seg.Seq != 0 {
		t.Fatalf("restored segment sealed=%v seq=%d, want sealed seq 0", seg.Sealed(), seg.Seq)
	}
	// The next appended segment continues the Seq numbering.
	ss.SealRows = 1
	s := ss.Append(3, 10, 0, 0, 1, 2)
	if s == nil || s.Seq != 1 {
		t.Fatalf("segment after restore = %+v, want seq 1", s)
	}
	if got := ss.Rows(); got != 3 {
		t.Fatalf("Rows() = %d, want 3", got)
	}
}
