package store

import (
	"testing"

	"repro/internal/symtab"
)

func TestSegmentSetSealAndSnapshot(t *testing.T) {
	ss := &SegmentSet{SealRows: 3}
	var sealedSeqs []int
	for i := 0; i < 7; i++ {
		if s := ss.Append(int64(i+1), int64(i)*100, symtab.ErrcodeID(i%2), symtab.LocationID(i%3), 1, 2); s != nil {
			if !s.Sealed() {
				t.Fatalf("append returned an unsealed segment")
			}
			sealedSeqs = append(sealedSeqs, s.Seq)
		}
	}
	if want := []int{0, 1}; len(sealedSeqs) != 2 || sealedSeqs[0] != want[0] || sealedSeqs[1] != want[1] {
		t.Fatalf("sealed seqs = %v, want %v", sealedSeqs, want)
	}
	if got := ss.Rows(); got != 7 {
		t.Fatalf("Rows() = %d, want 7", got)
	}

	snap := ss.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d segments, want 3 (2 sealed + active)", len(snap))
	}
	if snap[2].Sealed() {
		t.Fatal("active-tail view reports sealed")
	}
	if got := snap[2].Events.Len(); got != 1 {
		t.Fatalf("active-tail view has %d rows, want 1", got)
	}
	if snap[0].MinTime != 0 || snap[0].MaxTime != 200 {
		t.Fatalf("segment 0 zone = [%d, %d], want [0, 200]", snap[0].MinTime, snap[0].MaxTime)
	}

	// Appends after the snapshot must not disturb the frozen view, and
	// the tail view's columns must be capacity-clipped so an append
	// cannot extend them in place.
	tailLen := snap[2].Events.Len()
	for i := 7; i < 11; i++ {
		ss.Append(int64(i+1), int64(i)*100, 0, 0, 1, 2)
	}
	if got := snap[2].Events.Len(); got != tailLen {
		t.Fatalf("snapshot tail grew to %d rows after later appends", got)
	}
	if got := cap(snap[2].Events.RecID); got != tailLen {
		t.Fatalf("snapshot tail cap = %d, want %d (full slice expression)", got, tailLen)
	}
	if snap[2].Events.RecID[0] != 7 {
		t.Fatalf("snapshot tail row mutated: RecID[0] = %d, want 7", snap[2].Events.RecID[0])
	}

	// The second loop crossed the budget once more (rows 7..9 sealed as
	// seq 2), leaving a 2-row active remainder; Seal flushes it, and an
	// empty set seals to nil.
	if s := ss.Seal(); s == nil || s.Events.Len() != 2 {
		t.Fatalf("final Seal = %+v, want 2-row segment", s)
	}
	if s := ss.Seal(); s != nil {
		t.Fatalf("Seal with no active segment = %+v, want nil", s)
	}
	if got := len(ss.Sealed()); got != 4 {
		t.Fatalf("%d sealed segments, want 4", got)
	}
}

// mustPanicAppend asserts the sealed-append contract: AppendRow on a
// sealed segment is a programmer error and must panic, whichever path
// sealed the segment.
func mustPanicAppend(t *testing.T, how string, seg *Segment) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("AppendRow on a segment sealed via %s did not panic", how)
		}
	}()
	seg.AppendRow(99, 9900, 0, 0, 1, 2)
}

// checkClipped asserts every column of a sealed segment has cap == len,
// so an append through any retained alias reallocates instead of
// writing into the shared backing arrays.
func checkClipped(t *testing.T, how string, seg *Segment) {
	t.Helper()
	e := &seg.Events
	cols := []struct {
		name string
		len  int
		cap  int
	}{
		{"RecID", len(e.RecID), cap(e.RecID)},
		{"Time", len(e.Time), cap(e.Time)},
		{"Code", len(e.Code), cap(e.Code)},
		{"Loc", len(e.Loc), cap(e.Loc)},
		{"Comp", len(e.Comp), cap(e.Comp)},
		{"Sev", len(e.Sev), cap(e.Sev)},
	}
	for _, c := range cols {
		if c.cap != c.len {
			t.Errorf("segment sealed via %s: column %s cap = %d, len = %d; sealed columns must be clipped",
				how, c.name, c.cap, c.len)
		}
	}
}

// TestSealedSegmentImmutable pins the two halves of the seal contract
// on every sealing path — Seal, Restore, and SealEmpty: appends panic,
// and the row columns are handed out capacity-clipped so no caller can
// grow them in place.
func TestSealedSegmentImmutable(t *testing.T) {
	// Path 1: organic seal after appends.
	ss := &SegmentSet{SealRows: 100}
	for i := 0; i < 3; i++ {
		ss.Append(int64(i+1), int64(i)*100, 0, 0, 1, 2)
	}
	sealed := ss.Seal()
	if sealed == nil || !sealed.Sealed() {
		t.Fatal("Seal did not return a sealed segment")
	}
	mustPanicAppend(t, "Seal", sealed)
	checkClipped(t, "Seal", sealed)

	// Path 2: recovery. The segment is rebuilt row-by-row with spare
	// capacity (exactly what append growth produces), then re-attached;
	// Restore must clip it and lock out further appends.
	seg := &Segment{}
	for i := 0; i < 3; i++ {
		seg.AppendRow(int64(i+1), int64(i)*100, 0, 0, 1, 2)
	}
	if cap(seg.Events.RecID) == len(seg.Events.RecID) {
		// Force the interesting precondition if append growth happened
		// to land exactly on len.
		seg.Events.RecID = append(make([]int64, 0, 8), seg.Events.RecID...)
	}
	var rs SegmentSet
	rs.Restore(seg)
	if !seg.Sealed() {
		t.Fatal("Restore did not seal the segment")
	}
	mustPanicAppend(t, "Restore", seg)
	checkClipped(t, "Restore", seg)

	// Path 3: the empty checkpoint segment.
	var es SegmentSet
	empty := es.SealEmpty()
	if empty == nil || !empty.Sealed() || empty.Events.Len() != 0 {
		t.Fatalf("SealEmpty = %+v, want sealed empty segment", empty)
	}
	mustPanicAppend(t, "SealEmpty", empty)
	checkClipped(t, "SealEmpty", empty)

	// The Sealed() view itself is clipped too: appending a segment to it
	// must not race the writer's next Seal.
	view := rs.Sealed()
	if cap(view) != len(view) {
		t.Fatalf("Sealed() slice cap = %d, len = %d; the view must be capacity-clipped", cap(view), len(view))
	}
	before := len(rs.sealed)
	_ = append(view, &Segment{})
	rs.SealRows = 1
	rs.Append(50, 5000, 0, 0, 1, 2)
	if len(rs.sealed) != before+1 {
		t.Fatalf("writer's sealed list has %d segments, want %d", len(rs.sealed), before+1)
	}
	if rs.sealed[before].Seq != before {
		t.Fatalf("appended-through-view segment clobbered the writer's slot: got seq %d", rs.sealed[before].Seq)
	}
}

func TestSegmentSetRestore(t *testing.T) {
	var ss SegmentSet
	seg := &Segment{MinTime: 5, MaxTime: 9}
	seg.Events.Append(1, 5, 0, 0, 1, 2)
	seg.Events.Append(2, 9, 0, 0, 1, 2)
	ss.Restore(seg)
	if !seg.Sealed() || seg.Seq != 0 {
		t.Fatalf("restored segment sealed=%v seq=%d, want sealed seq 0", seg.Sealed(), seg.Seq)
	}
	// The next appended segment continues the Seq numbering.
	ss.SealRows = 1
	s := ss.Append(3, 10, 0, 0, 1, 2)
	if s == nil || s.Seq != 1 {
		t.Fatalf("segment after restore = %+v, want seq 1", s)
	}
	if got := ss.Rows(); got != 3 {
		t.Fatalf("Rows() = %d, want 3", got)
	}
}
