//go:build linux

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. Zero-length files cannot be
// mapped; callers treat an error as "use the streamed reader".
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
