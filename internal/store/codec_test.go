package store

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/symtab"
)

// updateGolden regenerates testdata/store/golden_v1.seg; run
//
//	go test ./internal/store -run TestSegmentGolden -update
//
// ONLY together with a SegmentFormatVersion bump (see that constant).
var updateGolden = flag.Bool("update", false, "rewrite the golden segment file")

// goldenSegment is the fixed segment the format-compatibility gate
// pins: a handful of rows exercising repeated local IDs, time ties and
// several severity/component values. Never change it — a different
// golden is a different format test.
func goldenSegment() *SegmentData {
	d := &SegmentData{
		Seq:      7,
		MinTime:  1_000_000_000,
		MaxTime:  5_000_000_000,
		SevBits:  1<<6 | 1<<5,
		CompBits: 1<<1 | 1<<3,
		Codes:    []string{"_bgp_err_ddr_fatal", "_bgp_err_cns_storm", "_bgp_unit_test_code"},
		Locs:     []string{"R00-M0-N04-J12", "R01-M1-N08"},
	}
	rows := []struct {
		rec, t    int64
		code, loc int32
		comp, sev int32
	}{
		{101, 1_000_000_000, 0, 0, 1, 6},
		{102, 2_000_000_000, 1, 0, 3, 5},
		{103, 2_000_000_000, 0, 1, 1, 6},
		{105, 2_000_000_000, 1, 1, 3, 6},
		{104, 3_500_000_000, 2, 0, 1, 5},
		{106, 5_000_000_000, 0, 0, 1, 6},
	}
	for _, r := range rows {
		d.Events.Append(r.rec, r.t, symtab.ErrcodeID(r.code), symtab.LocationID(r.loc), r.comp, r.sev)
	}
	return d
}

func TestSegmentRoundTrip(t *testing.T) {
	d := goldenSegment()
	enc, err := AppendSegment(nil, d)
	if err != nil {
		t.Fatalf("AppendSegment: %v", err)
	}
	got, err := ReadSegment(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("decode mismatch:\ngot  %+v\nwant %+v", got, d)
	}
	re, err := AppendSegment(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatalf("decode→encode is not byte-identity (%d vs %d bytes)", len(re), len(enc))
	}

	// Trailing bytes after the segment are not consumed and not an
	// error: a reader of a framed stream stops at the segment boundary.
	got2, err := ReadSegment(bytes.NewReader(append(append([]byte(nil), enc...), "garbage"...)))
	if err != nil {
		t.Fatalf("ReadSegment with trailing bytes: %v", err)
	}
	if !reflect.DeepEqual(got2, d) {
		t.Fatal("decode with trailing bytes mismatch")
	}
}

func TestSegmentEmptyRoundTrip(t *testing.T) {
	d := &SegmentData{Seq: 0}
	enc, err := AppendSegment(nil, d)
	if err != nil {
		t.Fatalf("AppendSegment(empty): %v", err)
	}
	got, err := ReadSegment(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadSegment(empty): %v", err)
	}
	if got.Events.Len() != 0 || len(got.Codes) != 0 || len(got.Locs) != 0 {
		t.Fatalf("empty segment decoded to %+v", got)
	}
}

func TestSegmentEncodeRejectsNonCanonical(t *testing.T) {
	cases := map[string]func(*SegmentData){
		"unsorted rows": func(d *SegmentData) {
			d.Events.Time[0], d.Events.Time[1] = d.Events.Time[1], d.Events.Time[0]
		},
		"recid order broken on time tie": func(d *SegmentData) {
			d.Events.RecID[2], d.Events.RecID[3] = d.Events.RecID[3], d.Events.RecID[2]
		},
		"non-first-seen local code": func(d *SegmentData) {
			d.Events.Code[0] = 1
			d.Events.Code[1] = 0
		},
		"unused vocabulary entry": func(d *SegmentData) {
			d.Codes = append(d.Codes, "never_referenced")
		},
		"zone time bounds drift": func(d *SegmentData) { d.MaxTime++ },
		"zone bitmap drift":      func(d *SegmentData) { d.SevBits |= 1 << 9 },
		"severity out of range":  func(d *SegmentData) { d.Events.Sev[0] = 64 },
		"ragged columns":         func(d *SegmentData) { d.Events.Sev = d.Events.Sev[:3] },
		"negative seq":           func(d *SegmentData) { d.Seq = -1 },
	}
	for name, mutate := range cases {
		d := goldenSegment()
		mutate(d)
		if _, err := AppendSegment(nil, d); err == nil {
			t.Errorf("%s: encode accepted a non-canonical segment", name)
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Errorf("%s: error %v is not a *FormatError", name, err)
			}
		}
	}
}

// TestSegmentDecodeCorruption flips every byte of a valid encoding (and
// truncates at every length) and requires a structured *FormatError —
// never a panic, never a silent success.
func TestSegmentDecodeCorruption(t *testing.T) {
	enc, err := AppendSegment(nil, goldenSegment())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		b := append([]byte(nil), enc...)
		b[i] ^= 0x5a
		if _, err := ReadSegment(bytes.NewReader(b)); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("flip at byte %d: error %v is not a *FormatError", i, err)
			}
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := ReadSegment(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("truncation to %d: error %v is not a *FormatError", n, err)
			}
		}
	}
}

func TestSegmentVersionMismatch(t *testing.T) {
	enc, err := AppendSegment(nil, goldenSegment())
	if err != nil {
		t.Fatal(err)
	}
	// A future format would carry a different magic digit; today's
	// reader must identify it as a version problem, not random garbage.
	bumped := append([]byte(nil), enc...)
	bumped[6] = '2' // "BGPSEG2\n"
	_, err = ReadSegment(bytes.NewReader(bumped))
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Section != "version" {
		t.Fatalf("future-magic decode: got %v, want a version FormatError", err)
	}
}

func TestCommitSegment(t *testing.T) {
	dir := t.TempDir()
	d := goldenSegment()
	path := filepath.Join(dir, SegmentFileName(d.Seq))
	if err := CommitSegment(path, d); err != nil {
		t.Fatalf("CommitSegment: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	sf, err := OpenSegment(path)
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	defer sf.Close()
	if sf.Rows() != d.Events.Len() || sf.Seq() != d.Seq {
		t.Fatalf("opened segment: rows=%d seq=%d, want %d/%d", sf.Rows(), sf.Seq(), d.Events.Len(), d.Seq)
	}
	// Committing on top of an existing file replaces it atomically.
	if err := CommitSegment(path, d); err != nil {
		t.Fatalf("CommitSegment overwrite: %v", err)
	}
}

// TestSegmentGolden is the format-compatibility gate: the committed
// golden file must keep decoding, and today's writer must reproduce it
// byte for byte. If this fails after an intentional layout change, bump
// SegmentFormatVersion (and the magic digit) and regenerate with
// -update; if the change was unintentional, fix the codec.
func TestSegmentGolden(t *testing.T) {
	golden := filepath.Join("..", "..", "testdata", "store", "golden_v1.seg")
	d := goldenSegment()
	enc, err := AppendSegment(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden segment: %v (run with -update to create it)", err)
	}
	got, err := ReadSegment(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("today's reader cannot open the committed v%d golden segment: %v — bump SegmentFormatVersion and regenerate the golden instead of changing the layout in place",
			SegmentFormatVersion, err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("golden segment decodes differently than when it was written — bump SegmentFormatVersion and regenerate the golden instead of changing the layout in place")
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("today's writer does not reproduce the v%d golden bytes (%d vs %d bytes) — the on-disk format drifted; bump SegmentFormatVersion (and the magic digit) and regenerate with -update",
			SegmentFormatVersion, len(enc), len(want))
	}
}
