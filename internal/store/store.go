// Package store holds the columnar struct-of-arrays event form the
// analysis stack works over once the codec has interned its symbols:
// parallel slices of epoch timestamps, severity/component tags and
// dense typed IDs (see internal/symtab). The streaming readers build it
// directly from the decode, so the grouping-heavy stages above —
// temporal/spatial clustering, causality mining, the co-analysis maps —
// key on 32/64-bit integers instead of hashing strings per record.
//
// It also provides Set, the one shared dense-ID set utility; the
// former per-package map[string]bool helpers in internal/core collapsed
// onto it.
package store

import "repro/internal/symtab"

// Events is a columnar store of decoded RAS records: column i of every
// slice describes the same record, in the order the rows were appended
// (the pipeline appends in time-sorted record order, which is what
// makes ID numbering deterministic; see symtab).
type Events struct {
	// RecID is the record's sequence number column.
	RecID []int64
	// Time is the event-time column in Unix nanoseconds (UTC wall
	// clock); window arithmetic on it is plain int64 subtraction.
	Time []int64
	// Code is the interned ERRCODE column.
	Code []symtab.ErrcodeID
	// Loc is the interned location-code column.
	Loc []symtab.LocationID
	// Comp and Sev are the reporting component and severity tags
	// (raslog.Component / raslog.Severity values; stored as int32 so
	// this package stays below the codec in the import graph).
	Comp []int32
	Sev  []int32
}

// NewEvents returns an empty store with capacity for n rows in every
// column.
func NewEvents(n int) *Events {
	return &Events{
		RecID: make([]int64, 0, n),
		Time:  make([]int64, 0, n),
		Code:  make([]symtab.ErrcodeID, 0, n),
		Loc:   make([]symtab.LocationID, 0, n),
		Comp:  make([]int32, 0, n),
		Sev:   make([]int32, 0, n),
	}
}

// Append adds one row.
func (e *Events) Append(recID, timeNS int64, code symtab.ErrcodeID, loc symtab.LocationID, comp, sev int32) {
	e.RecID = append(e.RecID, recID)
	e.Time = append(e.Time, timeNS)
	e.Code = append(e.Code, code)
	e.Loc = append(e.Loc, loc)
	e.Comp = append(e.Comp, comp)
	e.Sev = append(e.Sev, sev)
}

// Len returns the number of rows.
func (e *Events) Len() int { return len(e.RecID) }

// Set is a bitset over dense interned IDs — the shared replacement for
// the ad-hoc map[string]bool membership helpers the analysis layers
// used to keep. The zero value is an empty set; Add grows it as needed.
type Set[T ~int32] struct {
	bits []uint64
	n    int
}

// NewSet returns an empty set pre-sized for IDs < n.
func NewSet[T ~int32](n int) *Set[T] {
	return &Set[T]{bits: make([]uint64, (n+63)/64)}
}

// Add inserts id and reports whether it was absent.
func (s *Set[T]) Add(id T) bool {
	w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
	if w >= len(s.bits) {
		grown := make([]uint64, w+1)
		copy(grown, s.bits)
		s.bits = grown
	}
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.n++
	return true
}

// Has reports whether id is in the set.
func (s *Set[T]) Has(id T) bool {
	w := int(id) >> 6
	return w < len(s.bits) && s.bits[w]&(1<<(uint(id)&63)) != 0
}

// Len returns the number of distinct IDs added.
func (s *Set[T]) Len() int { return s.n }
