//go:build !linux

package store

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("store: mmap not supported on this platform")

// mmapFile always fails on platforms without a wired-up mmap; readers
// fall back to buffered sequential column reads.
func mmapFile(_ *os.File, _ int64) ([]byte, error) { return nil, errNoMmap }

// munmapFile is unreachable when mmapFile never succeeds.
func munmapFile(_ []byte) error { return nil }
