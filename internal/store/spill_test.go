package store

import (
	"math/rand"
	"testing"

	"repro/internal/symtab"
)

// fillSet appends named rows through a global table, mirroring how the
// serving layer feeds a SegmentSet.
func fillSet(ss *SegmentSet, tab *symtab.Table, rows []testRow) {
	for _, r := range rows {
		code := tab.Errcodes.Intern(r.code)
		loc := tab.Locations.Intern(r.loc)
		ss.Append(r.recID, r.timeNS, code, loc, r.comp, r.sev)
	}
}

// scanAll drains SegmentSet.Scan into a slice.
func scanAll(t *testing.T, ss *SegmentSet, tab *symtab.Table, q Query) ([]Row, ScanStats) {
	t.Helper()
	var out []Row
	stats, err := ss.Scan(q, tab, func(r Row) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out, stats
}

// TestSpillScanEquivalence seals rows into segments, scans, spills
// everything past a tiny budget, and requires the same scan results
// from the mixed resident/spilled set — including zone skips for
// predicates the spilled segments cannot match.
func TestSpillScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := sortRows(randomRows(rng, 500))
	tab := symtab.NewTable()
	ss := &SegmentSet{SealRows: 64}
	fillSet(ss, tab, rows)

	queries := []Query{
		{},
		{SevMask: 1 << 6},
		{MinTimeNS: rows[len(rows)/3].timeNS, MaxTimeNS: rows[2*len(rows)/3].timeNS},
		{Code: rows[0].code},
		{Loc: rows[1].loc},
		{Code: "absent"},
	}
	before := make([][]Row, len(queries))
	for i, q := range queries {
		before[i], _ = scanAll(t, ss, tab, q)
	}

	dir := t.TempDir()
	resident := ss.ResidentBytes()
	n, err := ss.SpillOver(resident/4, dir, tab.Errcodes.Name, tab.Locations.Name)
	if err != nil {
		t.Fatalf("SpillOver: %v", err)
	}
	if n == 0 {
		t.Fatal("nothing spilled under a quarter budget")
	}
	if got := ss.ResidentBytes(); got > resident/4 {
		t.Fatalf("resident %d bytes after spill, budget %d", got, resident/4)
	}
	spilled := 0
	for _, s := range ss.Sealed() {
		if s.Spilled() {
			spilled++
			if s.Events.Len() != 0 {
				t.Fatal("spilled segment kept its columns")
			}
			if s.Len() == 0 {
				t.Fatal("spilled segment lost its row count")
			}
			if s.SpillPath() == "" {
				t.Fatal("spilled segment has no path")
			}
		}
	}
	if spilled != n {
		t.Fatalf("%d segments report spilled, SpillOver returned %d", spilled, n)
	}

	for i, q := range queries {
		after, stats := scanAll(t, ss, tab, q)
		if len(after) != len(before[i]) {
			t.Fatalf("query %d: %d rows after spill, %d before", i, len(after), len(before[i]))
		}
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("query %d row %d: %+v after spill, %+v before", i, j, after[j], before[i][j])
			}
		}
		if q.Code == "absent" && stats.Skipped != stats.Segments {
			t.Fatalf("absent-code query scanned %d segments", stats.Scanned)
		}
	}

	// Spilling again under the same budget is a no-op.
	if n, err := ss.SpillOver(resident/4, dir, tab.Errcodes.Name, tab.Locations.Name); err != nil || n != 0 {
		t.Fatalf("second SpillOver = %d, %v", n, err)
	}
}

func TestSpillRequiresSealed(t *testing.T) {
	ss := &SegmentSet{SealRows: 8}
	tab := symtab.NewTable()
	fillSet(ss, tab, []testRow{{1, 100, "a", "L", 1, 6}})
	if _, err := ss.active.Data(tab.Errcodes.Name, tab.Locations.Name); err == nil {
		t.Fatal("Data on an unsealed segment succeeded")
	}
	ss.Seal()
	d, err := ss.Sealed()[0].Data(tab.Errcodes.Name, tab.Locations.Name)
	if err != nil {
		t.Fatalf("Data: %v", err)
	}
	if len(d.Codes) != 1 || d.Codes[0] != "a" || d.Events.Code[0] != 0 {
		t.Fatalf("localized segment %+v", d)
	}
	ss.Sealed()[0].release("x.seg")
	if _, err := ss.Sealed()[0].Data(tab.Errcodes.Name, tab.Locations.Name); err == nil {
		t.Fatal("Data on a spilled segment succeeded")
	}
}
