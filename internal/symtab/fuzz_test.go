package symtab

import (
	"strings"
	"sync"
	"testing"
)

// FuzzSymtab drives the dictionary with arbitrary NUL-separated name
// sequences and checks the invariants every layer above relies on:
//
//   - intern/resolve identity: Intern(n) twice returns the same ID, and
//     Name(Intern(n)) == n;
//   - dense contiguity: after interning, issued IDs are exactly
//     0..Len()-1 in first-seen order;
//   - snapshot immutability: a frozen view keeps answering correctly,
//     from concurrent readers, while the live table keeps interning.
//
// The CI fuzz smoke runs this target with -race so the concurrent
// reader check is a real data-race probe.
func FuzzSymtab(f *testing.F) {
	f.Add([]byte("a\x00b\x00a\x00c"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("_bgp_err_ddr_str\x00R00-M1\x00_bgp_err_ddr_str"))
	f.Fuzz(func(t *testing.T, data []byte) {
		names := strings.Split(string(data), "\x00")
		tab := NewTable()

		want := make(map[string]ErrcodeID)
		var order []string
		for _, n := range names {
			id := tab.Errcodes.Intern(n)
			if prev, ok := want[n]; ok {
				if id != prev {
					t.Fatalf("re-Intern(%q) = %d, first gave %d", n, id, prev)
				}
				continue
			}
			if int(id) != len(order) {
				t.Fatalf("Intern(%q) = %d, want next dense ID %d", n, id, len(order))
			}
			want[n] = id
			order = append(order, n)
		}

		// Dense contiguity + round trip over everything issued.
		if tab.Errcodes.Len() != len(order) {
			t.Fatalf("Len = %d, want %d", tab.Errcodes.Len(), len(order))
		}
		for i, n := range order {
			if got := tab.Errcodes.Name(ErrcodeID(i)); got != n {
				t.Fatalf("Name(%d) = %q, want %q", i, got, n)
			}
			if id, ok := tab.Errcodes.Lookup(n); !ok || id != ErrcodeID(i) {
				t.Fatalf("Lookup(%q) = %d, %v, want %d", n, id, ok, i)
			}
		}

		// Freeze, then keep interning derived names into the live table
		// while concurrent readers verify the snapshot never moves.
		snap := tab.Freeze()
		frozen := append([]string(nil), snap.Errcodes.All()...)
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if snap.Errcodes.Len() != len(frozen) {
					t.Errorf("snapshot Len = %d, want %d", snap.Errcodes.Len(), len(frozen))
					return
				}
				for i, n := range frozen {
					if snap.Errcodes.Name(ErrcodeID(i)) != n {
						t.Errorf("snapshot Name(%d) changed", i)
						return
					}
					if id, ok := snap.Errcodes.Lookup(n); !ok || int(id) > i {
						// Duplicates in frozen can't happen (dict is a set),
						// so Lookup must give back exactly i.
						t.Errorf("snapshot Lookup(%q) = %d, %v", n, id, ok)
						return
					}
				}
			}()
		}
		for _, n := range names {
			tab.Errcodes.Intern(n + "'")
			tab.Locations.Intern(n)
			tab.Execs.Intern(n)
		}
		for i := range names {
			tab.Jobs.Intern(int64(i))
		}
		wg.Wait()

		// The live table moved; the snapshot must not have.
		if !equalStrings(snap.Errcodes.All(), frozen) {
			t.Fatal("snapshot contents changed after post-freeze interning")
		}
	})
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
