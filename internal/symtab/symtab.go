// Package symtab provides per-kind interning dictionaries that map the
// analysis stack's small closed vocabularies — ERRCODEs, location
// codes, job executables, scheduler job IDs — to dense typed integer
// IDs. Every layer above the codec groups, joins and filters by these
// fields; interning them once turns every hot grouping path from
// string-hashed to integer-keyed (see DESIGN.md "Symbol dictionaries
// and the columnar store").
//
// Determinism is load-bearing: IDs are assigned in first-seen order, so
// any two runs that intern the same names in the same sequence produce
// the same numbering. The pipeline guarantees that sequence is the
// time-sorted record order regardless of the -parallelism knob by
// interning before sharding (filter.Pipeline) and in byEnd job order
// (core.Analyze).
//
// The distinct ID types exist so the idkind analyzer (and the compiler)
// can reject cross-kind mixups like indexing an ErrcodeID-keyed column
// with a LocationID.
package symtab

// ErrcodeID identifies an interned ERRCODE (the paper's 82-entry event
// vocabulary).
type ErrcodeID int32

// LocationID identifies an interned location code string.
type LocationID int32

// ExecID identifies an interned job executable path (the distinct-job
// key).
type ExecID int32

// JobID identifies an interned scheduler job sequence number. The
// analyzer interns jobs in joblog.Log.All() (byEnd) order, so a JobID
// doubles as the job's index into that slice.
type JobID int32

// The No* sentinels mean "no symbol of this kind"; dictionaries only
// ever issue non-negative IDs.
const (
	NoErrcode  ErrcodeID  = -1
	NoLocation LocationID = -1
	NoExec     ExecID     = -1
	NoJob      JobID      = -1
)

// Dict is a string-interning dictionary producing dense IDs of type T:
// the first distinct name interned gets ID 0, the next 1, and so on.
// Intern, Lookup and Name are O(1). The zero value is ready to use.
// A Dict is not safe for concurrent mutation; Freeze the enclosing
// Table for a concurrently readable view.
type Dict[T ~int32] struct {
	ids   map[string]T
	names []string
}

// Intern returns the ID for name, assigning the next dense ID on first
// sight.
func (d *Dict[T]) Intern(name string) T {
	if id, ok := d.ids[name]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[string]T, 64)
	}
	id := T(len(d.names))
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the ID for name without interning it.
func (d *Dict[T]) Lookup(name string) (T, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name resolves an ID back to its name; it panics on an ID this Dict
// never issued (IDs are dense, so that is always a cross-table bug).
func (d *Dict[T]) Name(id T) string { return d.names[id] }

// Len returns the number of distinct names interned. Issued IDs are
// exactly 0..Len()-1.
func (d *Dict[T]) Len() int { return len(d.names) }

// Names returns the interned names in ID order (Names()[id] ==
// Name(id)). The slice is clipped (cap == len), so an append by the
// caller reallocates instead of aliasing the dictionary's backing
// array; the strings themselves are shared. The segmented store uses
// this to emit a segment's local vocabulary as its symtab delta.
func (d *Dict[T]) Names() []string { return d.names[:len(d.names):len(d.names)] }

// Int64Dict is Dict for int64-keyed vocabularies (scheduler job
// sequence numbers).
type Int64Dict[T ~int32] struct {
	ids  map[int64]T
	keys []int64
}

// Intern returns the ID for key, assigning the next dense ID on first
// sight.
func (d *Int64Dict[T]) Intern(key int64) T {
	if id, ok := d.ids[key]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[int64]T, 64)
	}
	id := T(len(d.keys))
	d.ids[key] = id
	d.keys = append(d.keys, key)
	return id
}

// Lookup returns the ID for key without interning it.
func (d *Int64Dict[T]) Lookup(key int64) (T, bool) {
	id, ok := d.ids[key]
	return id, ok
}

// Key resolves an ID back to its int64 key; it panics on an ID this
// dictionary never issued.
func (d *Int64Dict[T]) Key(id T) int64 { return d.keys[id] }

// Len returns the number of distinct keys interned.
func (d *Int64Dict[T]) Len() int { return len(d.keys) }

// Table groups the four dictionaries one analysis run shares. Create
// one per run with NewTable, intern while building, then Freeze for
// the report boundary.
type Table struct {
	Errcodes  Dict[ErrcodeID]
	Locations Dict[LocationID]
	Execs     Dict[ExecID]
	Jobs      Int64Dict[JobID]
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Clone returns an independent deep copy of the table. The serving
// layer clones the live ingest table at epoch publication so a
// published analysis can keep resolving names and lengths while the
// live table goes on interning: the clone never changes again, which
// makes it safe for the epoch's concurrent readers.
func (t *Table) Clone() *Table {
	c := NewTable()
	cloneDict(&c.Errcodes, &t.Errcodes)
	cloneDict(&c.Locations, &t.Locations)
	cloneDict(&c.Execs, &t.Execs)
	c.Jobs.keys = append([]int64(nil), t.Jobs.keys...)
	if t.Jobs.ids != nil {
		c.Jobs.ids = make(map[int64]JobID, len(t.Jobs.ids))
		for k, v := range t.Jobs.ids {
			c.Jobs.ids[k] = v
		}
	}
	return c
}

func cloneDict[T ~int32](dst, src *Dict[T]) {
	dst.names = append([]string(nil), src.names...)
	if src.ids != nil {
		dst.ids = make(map[string]T, len(src.ids))
		for k, v := range src.ids {
			dst.ids[k] = v
		}
	}
}

// Freeze returns an immutable snapshot of the table, safe for any
// number of concurrent readers even while the live table keeps
// interning. The snapshot copies the dictionaries, so it reflects
// exactly the IDs issued before the call.
func (t *Table) Freeze() *Snapshot {
	return &Snapshot{
		Errcodes:  freezeDict(&t.Errcodes),
		Locations: freezeDict(&t.Locations),
		Execs:     freezeDict(&t.Execs),
		Jobs:      freezeInt64Dict(&t.Jobs),
	}
}

// Snapshot is a frozen, read-only view of a Table. All methods are safe
// for concurrent use.
type Snapshot struct {
	Errcodes  View[ErrcodeID]
	Locations View[LocationID]
	Execs     View[ExecID]
	Jobs      Int64View[JobID]
}

// View is the read-only form of a Dict.
type View[T ~int32] struct {
	ids   map[string]T
	names []string
}

func freezeDict[T ~int32](d *Dict[T]) View[T] {
	ids := make(map[string]T, len(d.ids))
	for k, v := range d.ids {
		ids[k] = v
	}
	return View[T]{ids: ids, names: append([]string(nil), d.names...)}
}

// Lookup returns the ID for name.
func (v View[T]) Lookup(name string) (T, bool) {
	id, ok := v.ids[name]
	return id, ok
}

// Name resolves an ID back to its name; it panics on an ID the frozen
// table never issued.
func (v View[T]) Name(id T) string { return v.names[id] }

// Len returns the number of names in the view.
func (v View[T]) Len() int { return len(v.names) }

// All returns the names in ID order (All()[id] == Name(id)). The slice
// is owned by the view; callers must not mutate it.
func (v View[T]) All() []string { return v.names }

// Int64View is the read-only form of an Int64Dict.
type Int64View[T ~int32] struct {
	ids  map[int64]T
	keys []int64
}

func freezeInt64Dict[T ~int32](d *Int64Dict[T]) Int64View[T] {
	ids := make(map[int64]T, len(d.ids))
	for k, v := range d.ids {
		ids[k] = v
	}
	return Int64View[T]{ids: ids, keys: append([]int64(nil), d.keys...)}
}

// Lookup returns the ID for key.
func (v Int64View[T]) Lookup(key int64) (T, bool) {
	id, ok := v.ids[key]
	return id, ok
}

// Key resolves an ID back to its int64 key.
func (v Int64View[T]) Key(id T) int64 { return v.keys[id] }

// Len returns the number of keys in the view.
func (v Int64View[T]) Len() int { return len(v.keys) }

// All returns the keys in ID order. The slice is owned by the view;
// callers must not mutate it.
func (v Int64View[T]) All() []int64 { return v.keys }
