package symtab

import (
	"sync"
	"testing"
)

func TestDictFirstSeenOrder(t *testing.T) {
	var d Dict[ErrcodeID]
	names := []string{"b", "a", "c", "a", "b", "d"}
	want := []ErrcodeID{0, 1, 2, 1, 0, 3}
	for i, n := range names {
		if got := d.Intern(n); got != want[i] {
			t.Fatalf("Intern(%q) #%d = %d, want %d", n, i, got, want[i])
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	for _, n := range []string{"b", "a", "c", "d"} {
		id, ok := d.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if d.Name(id) != n {
			t.Fatalf("Name(Lookup(%q)) = %q", n, d.Name(id))
		}
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Fatal("Lookup of uninterned name succeeded")
	}
}

func TestInt64DictRoundTrip(t *testing.T) {
	var d Int64Dict[JobID]
	keys := []int64{42, 7, 42, -1, 7}
	want := []JobID{0, 1, 0, 2, 1}
	for i, k := range keys {
		if got := d.Intern(k); got != want[i] {
			t.Fatalf("Intern(%d) #%d = %d, want %d", k, i, got, want[i])
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for id := JobID(0); int(id) < d.Len(); id++ {
		back, ok := d.Lookup(d.Key(id))
		if !ok || back != id {
			t.Fatalf("Lookup(Key(%d)) = %d, %v", id, back, ok)
		}
	}
}

// TestFreezeIsImmutable pins the snapshot contract: interning into the
// live table after Freeze must not change what the snapshot sees.
func TestFreezeIsImmutable(t *testing.T) {
	tab := NewTable()
	tab.Errcodes.Intern("x")
	tab.Jobs.Intern(9)
	snap := tab.Freeze()

	tab.Errcodes.Intern("y")
	tab.Jobs.Intern(10)

	if snap.Errcodes.Len() != 1 {
		t.Fatalf("snapshot Errcodes.Len = %d, want 1", snap.Errcodes.Len())
	}
	if _, ok := snap.Errcodes.Lookup("y"); ok {
		t.Fatal("snapshot sees post-freeze intern")
	}
	if snap.Jobs.Len() != 1 {
		t.Fatalf("snapshot Jobs.Len = %d, want 1", snap.Jobs.Len())
	}
	if got := snap.Errcodes.All(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("snapshot All = %v, want [x]", got)
	}
}

// TestFreezeConcurrentReaders exercises the race the snapshot exists to
// prevent: readers on the frozen view while the live table keeps
// interning. Run under -race this is a hard check, not just a smoke
// test.
func TestFreezeConcurrentReaders(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 64; i++ {
		tab.Errcodes.Intern(string(rune('a' + i%26)))
	}
	snap := tab.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				for id := ErrcodeID(0); int(id) < snap.Errcodes.Len(); id++ {
					if got, ok := snap.Errcodes.Lookup(snap.Errcodes.Name(id)); !ok || got != id {
						t.Errorf("round trip failed for id %d", id)
						return
					}
				}
			}
		}()
	}
	// Keep growing the live table while the readers run.
	for i := 0; i < 10000; i++ {
		tab.Errcodes.Intern(string(rune('A' + i%26)))
		tab.Locations.Intern("R00-M0")
		tab.Jobs.Intern(int64(i))
	}
	wg.Wait()
}
