package core

import (
	"math"
	"sort"
	"time"

	"repro/internal/joblog"
	"repro/internal/stats"
	"repro/internal/symtab"
)

// Class is the inferred origin of a fatal event type (§IV-B).
type Class int

const (
	// ClassSystem marks failures of system hardware or software.
	ClassSystem Class = iota
	// ClassApplication marks errors introduced by users.
	ClassApplication
)

// String names the class.
func (c Class) String() string {
	if c == ClassApplication {
		return "application"
	}
	return "system"
}

// ClassifyRule records which §IV-B rule produced a classification.
type ClassifyRule int

const (
	// RuleIdleOnly: the type was never co-located with a running job —
	// a system failure by definition.
	RuleIdleOnly ClassifyRule = iota
	// RuleRepeatLocation: the type interrupted several distinct
	// executables at one location consecutively — the scheduler kept
	// assigning the failed nodes, so the platform is at fault.
	RuleRepeatLocation
	// RuleRelocation: the type followed one executable across locations
	// while the old location ran other jobs cleanly — the code is at
	// fault (Figure 2's pattern).
	RuleRelocation
	// RuleCorrelation: assigned by Pearson correlation with already-
	// labeled types.
	RuleCorrelation
)

// String names the rule.
func (r ClassifyRule) String() string {
	switch r {
	case RuleIdleOnly:
		return "idle-only"
	case RuleRepeatLocation:
		return "repeat-location"
	case RuleRelocation:
		return "relocation"
	default:
		return "correlation"
	}
}

// Classification is the per-ERRCODE outcome of §IV-B.
type Classification struct {
	// Class is the inferred origin.
	Class Class
	// Rule is the rule that produced it.
	Rule ClassifyRule
	// Correlation is the Pearson coefficient used (RuleCorrelation only).
	Correlation float64
	// CorrelatedWith is the labeled code matched (RuleCorrelation only;
	// symtab.NoErrcode when no labeled code correlated). Resolve the name
	// via Analysis.Syms.
	CorrelatedWith symtab.ErrcodeID
}

// classify applies the §IV-B rules to every effectively-fatal ERRCODE.
// Nonfatal types are still labeled (as system, by correlation or idle
// evidence) so downstream tables can report them, but they carry no
// interruptions.
func (a *Analysis) classify() {
	a.Classification = make(map[symtab.ErrcodeID]Classification)

	// Gather per-code interruption lists.
	byCode := make(map[symtab.ErrcodeID][]Interruption)
	for _, in := range a.Interruptions {
		byCode[in.Event.Code] = append(byCode[in.Event.Code], in)
	}

	// Rule 1: never co-located with a running job -> system.
	for code, id := range a.Identification {
		if id.Case1 == 0 && id.Case3 == 0 {
			a.Classification[code] = Classification{
				Class: ClassSystem, Rule: RuleIdleOnly, CorrelatedWith: symtab.NoErrcode}
		}
	}

	// Rule 2: two distinct executables interrupted by the code at the
	// same midplane with no clean job between them — the scheduler kept
	// reallocating failed nodes, so the fault is continuously re-reported
	// until fixed -> system. The no-clean-run requirement keeps
	// coincidental same-location kills (two different buggy codes days
	// apart) from masquerading as platform faults.
	interruptedIDs := a.InterruptedJobIDs()
	for code, ins := range byCode {
		if _, done := a.Classification[code]; done {
			continue
		}
		type hit struct {
			exec symtab.ExecID
			in   Interruption
		}
		hitsAt := make(map[int][]hit)
		for _, in := range ins {
			// Events that interrupt several jobs at once are shared-
			// infrastructure incidents (spatial propagation), not the
			// reallocate-failed-nodes pattern this rule detects; the
			// relocation rule handles their codes.
			if len(a.interByEvent[in.Event]) > 1 {
				continue
			}
			for mp := in.Job.Partition.Start; mp < in.Job.Partition.End(); mp++ {
				if !in.Event.OnMidplane(mp) {
					continue
				}
				hitsAt[mp] = append(hitsAt[mp], hit{exec: in.Exec, in: in})
			}
		}
		system := false
		for mp, hits := range hitsAt {
			sort.Slice(hits, func(i, j int) bool {
				return hits[i].in.Job.EndTime.Before(hits[j].in.Job.EndTime)
			})
			for i := 1; i < len(hits) && !system; i++ {
				prev, cur := hits[i-1], hits[i]
				if prev.exec == cur.exec {
					continue
				}
				if prev.in.Event == cur.in.Event {
					continue // one occurrence, not a persisting fault
				}
				if !a.occupancy.ranCleanBetween(mp, prev.in.Job.EndTime, cur.in.Job.EndTime, interruptedIDs) {
					system = true
				}
			}
			if system {
				break
			}
		}
		if system {
			a.Classification[code] = Classification{
				Class: ClassSystem, Rule: RuleRepeatLocation, CorrelatedWith: symtab.NoErrcode}
		}
	}

	// Rule 3: the code follows one executable across >= 2 locations in a
	// resubmission chain (no clean run of the executable in between)
	// while an old location later hosts an uninterrupted job ->
	// application (Figure 2).
	interrupted := a.InterruptedJobIDs()
	execRuns := a.execRunsByID()
	for code, ins := range byCode {
		if _, done := a.Classification[code]; done {
			continue
		}
		byExec := make(map[symtab.ExecID][]Interruption)
		for _, in := range ins {
			byExec[in.Exec] = append(byExec[in.Exec], in)
		}
		// An unlucky fault-prone job can be killed twice at different
		// locations by one popular system code and mimic the pattern, so
		// a single witness is not enough: demand two independent
		// relocation witnesses (distinct interruption pairs).
		witnesses := 0
		for exec, list := range byExec {
			if len(list) < 2 {
				continue
			}
			sort.Slice(list, func(i, j int) bool {
				return list[i].Job.EndTime.Before(list[j].Job.EndTime)
			})
			for i := 1; i < len(list); i++ {
				prev, cur := list[i-1], list[i]
				if prev.Job.Partition == cur.Job.Partition {
					continue // same location: not a relocation
				}
				// A resubmission chain: no clean run of this executable
				// between the two interrupted attempts.
				if execRanCleanBetween(execRuns[exec], prev.Job.EndTime, cur.Job.StartTime, interrupted) {
					continue
				}
				// Did the old location host a clean job after the move?
				horizon := cur.Job.EndTime.Add(7 * 24 * time.Hour)
				for mp := prev.Job.Partition.Start; mp < prev.Job.Partition.End(); mp++ {
					if a.occupancy.ranCleanBetween(mp, prev.Job.EndTime, horizon, interrupted) {
						witnesses++
						break
					}
				}
			}
		}
		if witnesses >= 2 {
			a.Classification[code] = Classification{
				Class: ClassApplication, Rule: RuleRelocation, CorrelatedWith: symtab.NoErrcode}
		}
	}

	// Rule 4: correlate remaining unlabeled codes with labeled ones over
	// daily occurrence-count vectors; inherit the class of the most
	// correlated labeled code.
	a.classifyByCorrelation()
}

// execRunsByID re-keys ByExecFile's string-keyed grouping by typed
// ExecID, so the cascade (classify Rule 3, Figure 2 extraction) looks
// runs up by interned ID rather than display name. Executables that
// never appear in an interruption have no interned ID and are dropped;
// nothing looks them up.
func (a *Analysis) execRunsByID() map[symtab.ExecID][]joblog.Job {
	byName := a.Jobs.ByExecFile()
	runs := make(map[symtab.ExecID][]joblog.Job, len(byName))
	for name, js := range byName {
		if id, ok := a.tab.Execs.Lookup(name); ok {
			runs[id] = js
		}
	}
	return runs
}

// execRanCleanBetween reports whether any run of the executable (given
// its time-ordered runs) started and ended inside (from, to) without
// being interrupted.
func execRanCleanBetween(runs []joblog.Job, from, to time.Time, interrupted map[int64]bool) bool {
	for _, j := range runs {
		if j.StartTime.After(to) {
			break
		}
		if j.StartTime.After(from) && j.EndTime.Before(to) && !interrupted[j.ID] {
			return true
		}
	}
	return false
}

// dailyCountsAll returns per-day event counts for every interned code,
// indexed by ErrcodeID, in one pass over the event stream (the old
// per-code variant re-scanned all events once per code).
func (a *Analysis) dailyCountsAll() [][]float64 {
	days := a.span.Days()
	if days <= 0 {
		days = 1
	}
	out := make([][]float64, a.tab.Errcodes.Len())
	for _, ev := range a.Events {
		d := int(ev.First.Sub(a.span.start).Hours() / 24)
		if d < 0 || d >= days {
			continue
		}
		if out[ev.Code] == nil {
			out[ev.Code] = make([]float64, days)
		}
		out[ev.Code][d]++
	}
	// Codes with no in-span events still need a zero vector to correlate
	// against.
	for id := range out {
		if out[id] == nil {
			out[id] = make([]float64, days)
		}
	}
	return out
}

func (a *Analysis) classifyByCorrelation() {
	labeled := make([]symtab.ErrcodeID, 0, len(a.Identification))
	unlabeled := make([]symtab.ErrcodeID, 0, len(a.Identification))
	for code := range a.Identification {
		if _, ok := a.Classification[code]; ok {
			labeled = append(labeled, code)
		} else {
			unlabeled = append(unlabeled, code)
		}
	}
	// Order by resolved name, exactly as the string-keyed implementation
	// did, so candidate tie-breaks (and hence the report) are unchanged.
	byName := func(ids []symtab.ErrcodeID) func(i, j int) bool {
		return func(i, j int) bool {
			return a.tab.Errcodes.Name(ids[i]) < a.tab.Errcodes.Name(ids[j])
		}
	}
	sort.Slice(labeled, byName(labeled))
	sort.Slice(unlabeled, byName(unlabeled))
	vectors := a.dailyCountsAll()
	// minCorrelation guards against assigning a class from pure noise:
	// sparse daily-count vectors correlate weakly with everything.
	const minCorrelation = 0.15
	for _, code := range unlabeled {
		type cand struct {
			lab symtab.ErrcodeID
			r   float64
		}
		cands := make([]cand, 0, len(labeled))
		for _, lab := range labeled {
			r := stats.Pearson(vectors[code], vectors[lab])
			if math.IsNaN(r) || r < minCorrelation {
				continue
			}
			cands = append(cands, cand{lab, r})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].r != cands[j].r {
				return cands[i].r > cands[j].r
			}
			return a.tab.Errcodes.Name(cands[i].lab) < a.tab.Errcodes.Name(cands[j].lab)
		})
		// Majority vote among the three most correlated labeled codes;
		// ties and empty candidate sets fall back to system, the
		// dominant class (72 of 80 types on Intrepid).
		best := Classification{Class: ClassSystem, Rule: RuleCorrelation, CorrelatedWith: symtab.NoErrcode}
		if len(cands) > 0 {
			top := cands
			if len(top) > 3 {
				top = top[:3]
			}
			appVotes := 0
			for _, c := range top {
				if a.Classification[c.lab].Class == ClassApplication {
					appVotes++
				}
			}
			best.Correlation = top[0].r
			best.CorrelatedWith = top[0].lab
			if appVotes*2 > len(top) {
				best.Class = ClassApplication
			} else {
				best.Class = ClassSystem
			}
		}
		a.Classification[code] = best
	}
}

// ClassCensus tallies types and interruption volumes by inferred class;
// the paper reports 72 system types, 8 application types, and 17.73%
// of fatal events being application errors.
type ClassCensus struct {
	SystemTypes, ApplicationTypes int
	// ApplicationEventFraction is the fraction of filtered fatal events
	// whose type is classified as an application error.
	ApplicationEventFraction float64
	// SystemInterruptions and ApplicationInterruptions count matched job
	// interruptions by cause (the paper: 206 vs 102).
	SystemInterruptions, ApplicationInterruptions int
}

// ClassificationCensus summarizes the classification outcome.
func (a *Analysis) ClassificationCensus() ClassCensus {
	var c ClassCensus
	appEvents, total := 0, 0
	for code, cl := range a.Classification {
		id := a.Identification[code]
		if cl.Class == ClassApplication {
			c.ApplicationTypes++
			appEvents += id.Events
		} else {
			c.SystemTypes++
		}
		total += id.Events
	}
	if total > 0 {
		c.ApplicationEventFraction = float64(appEvents) / float64(total)
	}
	sys, app := a.InterruptionsByClass()
	c.SystemInterruptions = len(sys)
	c.ApplicationInterruptions = len(app)
	return c
}
