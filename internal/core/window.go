package core

// Window profiling: a small core analysis that runs directly off the
// segmented store's pushdown scan instead of a published epoch. The
// profiler states its predicate as a store.Query — so the store's zone
// maps skip segments that cannot contribute — and folds the rows that
// survive into a per-errcode breakdown for the serving layer's
// /v1/scan endpoint.

import (
	"sort"
	"time"

	"repro/internal/store"
)

// WindowConfig selects the rows a window profile covers. Zero times
// mean unbounded; empty strings mean any code/location.
type WindowConfig struct {
	// From and To bound the event time, inclusive.
	From, To time.Time
	// Code and Loc, when non-empty, restrict to one ERRCODE or raw
	// location code.
	Code, Loc string
}

// Query translates the window into the store's pushdown predicate.
func (c WindowConfig) Query() store.Query {
	q := store.Query{Code: c.Code, Loc: c.Loc}
	if !c.From.IsZero() {
		q.MinTimeNS = c.From.UnixNano()
	}
	if !c.To.IsZero() {
		q.MaxTimeNS = c.To.UnixNano()
	}
	return q
}

// CodeCount is one errcode's row count within a window.
type CodeCount struct {
	Code  string `json:"code"`
	Count int64  `json:"count"`
}

// WindowProfile summarizes the rows a window scan visited.
type WindowProfile struct {
	// Rows is the number of rows in the window.
	Rows int64 `json:"rows"`
	// Locations is the number of distinct location codes seen.
	Locations int `json:"locations"`
	// Codes is the per-errcode breakdown, by count descending then
	// code ascending — a deterministic order independent of map
	// iteration.
	Codes []CodeCount `json:"codes"`
}

// WindowProfiler folds scanned rows into a WindowProfile. The zero
// value is ready to use; feed it through Observe and finish with
// Profile.
type WindowProfiler struct {
	byCode map[string]int64
	locs   map[string]struct{}
	rows   int64
}

// Observe folds one scanned row into the profile.
func (p *WindowProfiler) Observe(row store.Row) {
	if p.byCode == nil {
		p.byCode = make(map[string]int64)
		p.locs = make(map[string]struct{})
	}
	p.rows++
	p.byCode[row.Code]++
	p.locs[row.Loc] = struct{}{}
}

// Profile returns the accumulated summary.
func (p *WindowProfiler) Profile() WindowProfile {
	out := WindowProfile{
		Rows:      p.rows,
		Locations: len(p.locs),
		Codes:     make([]CodeCount, 0, len(p.byCode)),
	}
	for code, n := range p.byCode {
		out.Codes = append(out.Codes, CodeCount{Code: code, Count: n})
	}
	sort.Slice(out.Codes, func(i, j int) bool {
		if out.Codes[i].Count != out.Codes[j].Count {
			return out.Codes[i].Count > out.Codes[j].Count
		}
		return out.Codes[i].Code < out.Codes[j].Code
	})
	return out
}
