package core

import (
	"sort"

	"repro/internal/joblog"
	"repro/internal/symtab"
)

// RelocationExample is one concrete instance of the Figure 2 pattern:
// an executable interrupted by the same fatal event type at two
// different locations in a resubmission chain, while the abandoned
// location later ran another job cleanly — the evidence that the code,
// not the platform, is at fault.
type RelocationExample struct {
	// Code is the application-error ERRCODE.
	Code string
	// Exec is the executable that carried the bug.
	Exec string
	// First and Second are the two interrupted attempts.
	First, Second Interruption
	// CleanJob is the uninterrupted job that ran at the first attempt's
	// location afterwards.
	CleanJob joblog.Job
}

// RelocationExamples extracts up to max concrete Figure 2 instances
// from the analysis, in time order of the first interruption.
func (a *Analysis) RelocationExamples(max int) []RelocationExample {
	if max <= 0 {
		max = 3
	}
	interrupted := a.InterruptedJobIDs()
	execRuns := a.execRunsByID()

	byCodeExec := make(map[symtab.ErrcodeID]map[symtab.ExecID][]Interruption)
	for _, in := range a.Interruptions {
		code := in.Event.Code
		if a.Classification[code].Class != ClassApplication {
			continue
		}
		m := byCodeExec[code]
		if m == nil {
			m = make(map[symtab.ExecID][]Interruption)
			byCodeExec[code] = m
		}
		m[in.Exec] = append(m[in.Exec], in)
	}

	var out []RelocationExample
	for code, byExec := range byCodeExec {
		for exec, list := range byExec {
			if len(list) < 2 {
				continue
			}
			sort.Slice(list, func(i, j int) bool {
				return list[i].Job.EndTime.Before(list[j].Job.EndTime)
			})
			execName := a.tab.Execs.Name(exec)
			for i := 1; i < len(list); i++ {
				prev, cur := list[i-1], list[i]
				if prev.Job.Partition == cur.Job.Partition {
					continue
				}
				if execRanCleanBetween(execRuns[exec], prev.Job.EndTime, cur.Job.StartTime, interrupted) {
					continue
				}
				clean, ok := a.cleanJobAfter(prev.Job, cur.Job, interrupted)
				if !ok {
					continue
				}
				out = append(out, RelocationExample{
					Code: a.tab.Errcodes.Name(code), Exec: execName,
					First: prev, Second: cur, CleanJob: clean,
				})
				break // one example per (code, exec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].First.Job.EndTime.Before(out[j].First.Job.EndTime)
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// cleanJobAfter finds an uninterrupted job that ran on the first
// attempt's partition after its interruption.
func (a *Analysis) cleanJobAfter(prev, cur joblog.Job, interrupted map[int64]bool) (joblog.Job, bool) {
	horizon := cur.EndTime.Add(7 * 24 * 3600 * 1e9)
	for mp := prev.Partition.Start; mp < prev.Partition.End(); mp++ {
		for _, j := range a.occupancy.perMp[mp] {
			if j.StartTime.After(horizon) {
				break
			}
			if j.StartTime.After(prev.EndTime) && j.EndTime.Before(horizon) && !interrupted[j.ID] {
				return j, true
			}
		}
	}
	return joblog.Job{}, false
}
