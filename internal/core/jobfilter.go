package core

import (
	"sort"

	"repro/internal/filter"
	"repro/internal/store"
	"repro/internal/symtab"
)

// jobFilter removes job-related redundancy (§IV-C): fatal events
// re-reported because the scheduler kept allocating failed nodes to
// incoming jobs, or because users kept resubmitting buggy executables.
//
// A system-failure event B is redundant to an earlier event A of the
// same code when they share a location and no job executed successfully
// at that location between them. An application-error event is
// redundant when the same executable was already interrupted by the
// same code before. The relation is transitive, so each redundancy
// chain keeps only its first event.
func (a *Analysis) jobFilter() {
	interrupted := a.InterruptedJobIDs()

	// Events with interruptions per code, in time order.
	byCode := make(map[symtab.ErrcodeID][]*filter.Event)
	for _, ev := range a.Events {
		if len(a.interByEvent[ev]) > 0 {
			byCode[ev.Code] = append(byCode[ev.Code], ev)
		}
	}
	for _, evs := range byCode {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].First.Before(evs[j].First) })
	}

	redundant := make(map[*filter.Event]bool)

	for code, evs := range byCode {
		if a.Classification[code].Class == ClassApplication {
			// Application errors: redundant once the executable has been
			// interrupted by this code before, at any location. Check all
			// of an event's victims against the set before marking any, so
			// one event's own victims never make it redundant.
			seenExec := store.NewSet[symtab.ExecID](a.tab.Execs.Len())
			for _, ev := range evs {
				dup := false
				for _, in := range a.EventInterruptions(ev) {
					if seenExec.Has(in.Exec) {
						dup = true
					}
				}
				for _, in := range a.EventInterruptions(ev) {
					seenExec.Add(in.Exec)
				}
				if dup {
					redundant[ev] = true
				}
			}
			continue
		}
		// System failures: chain via shared location with no clean run in
		// between. Track, per midplane, the last event of this code whose
		// chain is alive there.
		lastAt := make(map[int]*filter.Event)
		for _, ev := range evs {
			dup := false
			for _, mp := range ev.Midplanes {
				prev, ok := lastAt[mp]
				if !ok {
					continue
				}
				if !a.occupancy.ranCleanBetween(mp, prev.First, ev.First, interrupted) {
					dup = true // transitively redundant to the chain head
					break
				}
			}
			for _, mp := range ev.Midplanes {
				lastAt[mp] = ev
			}
			if dup {
				redundant[ev] = true
			}
		}
	}

	a.Independent = nil
	a.JobRedundant = nil
	for _, ev := range a.Events {
		if redundant[ev] {
			a.JobRedundant = append(a.JobRedundant, ev)
		} else {
			a.Independent = append(a.Independent, ev)
		}
	}
}

// JobFilterStats summarizes the job-related filtering outcome (Obs. 3:
// a 13.1% compression on Intrepid).
type JobFilterStats struct {
	// Input is the number of events entering job-related filtering.
	Input int
	// Removed is the number of job-related redundant events.
	Removed int
	// CompressionRatio is Removed / Input.
	CompressionRatio float64
	// SameLocationResubmitFraction is the fraction of resubmitted jobs
	// the scheduler placed on the same partition as the interrupted
	// attempt (the paper: 57.44%).
	SameLocationResubmitFraction float64
	// Resubmissions is the number of resubmissions detected.
	Resubmissions int
}

// JobFilter reports the statistics of the job-related filtering stage.
func (a *Analysis) JobFilter() JobFilterStats {
	st := JobFilterStats{
		Input:   len(a.Events),
		Removed: len(a.JobRedundant),
	}
	if st.Input > 0 {
		st.CompressionRatio = float64(st.Removed) / float64(st.Input)
	}
	same, n := a.sameLocationResubmits()
	st.Resubmissions = n
	if n > 0 {
		st.SameLocationResubmitFraction = float64(same) / float64(n)
	}
	return st
}

// sameLocationResubmits scans the job log for resubmissions — the next
// submission of an executable after one of its jobs was interrupted —
// and counts how many landed on the identical partition.
func (a *Analysis) sameLocationResubmits() (same, total int) {
	interrupted := a.InterruptedJobIDs()
	for _, jobs := range a.Jobs.ByExecFile() {
		for i := 0; i < len(jobs)-1; i++ {
			if !interrupted[jobs[i].ID] {
				continue
			}
			next := jobs[i+1]
			if next.QueueTime.Before(jobs[i].EndTime) {
				continue // overlapping submissions, not a reaction
			}
			total++
			if next.Partition == jobs[i].Partition {
				same++
			}
		}
	}
	return same, total
}
