package core

import (
	"repro/internal/filter"
	"repro/internal/symtab"
)

// Verdict is the outcome of the three-case identification rule (§IV-A)
// for one ERRCODE.
type Verdict int

const (
	// VerdictInterruptionRelated: the type's events interrupt jobs
	// whenever a job runs at their location (cases 1 and 2 only).
	VerdictInterruptionRelated Verdict = iota
	// VerdictNonFatal: the type's events never interrupt co-located
	// running jobs (cases 2 and 3 only) — a false-fatal alarm.
	VerdictNonFatal
	// VerdictUndetermined: only idle occurrences were seen, or the
	// evidence conflicts (cases 1 and 3 both observed). The paper treats
	// these pessimistically as interruption-related.
	VerdictUndetermined
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictInterruptionRelated:
		return "interruption-related"
	case VerdictNonFatal:
		return "nonfatal"
	default:
		return "undetermined"
	}
}

// Identification is the per-ERRCODE outcome of §IV-A.
type Identification struct {
	// Verdict is the rule outcome.
	Verdict Verdict
	// Case1 counts events of the type that interrupted at least one job.
	Case1 int
	// Case2 counts events with no job running at their location.
	Case2 int
	// Case3 counts events whose co-located running job survived.
	Case3 int
	// Events is the total event count of the type.
	Events int
}

// EffectivelyFatal reports whether the type is treated as
// interruption-related downstream (pessimistic for undetermined types,
// following the paper).
func (id Identification) EffectivelyFatal() bool { return id.Verdict != VerdictNonFatal }

// identify applies the three-case rule to every ERRCODE.
func (a *Analysis) identify() {
	a.Identification = make(map[symtab.ErrcodeID]Identification)
	for _, ev := range a.Events {
		id := a.Identification[ev.Code]
		id.Events++
		switch {
		case len(a.interByEvent[ev]) > 0:
			id.Case1++
		case a.anyRunningAt(ev):
			id.Case3++
		default:
			id.Case2++
		}
		a.Identification[ev.Code] = id
	}
	for code, id := range a.Identification {
		switch {
		case id.Case1 > 0 && id.Case3 == 0:
			id.Verdict = VerdictInterruptionRelated
		case id.Case3 > 0 && id.Case1 == 0:
			id.Verdict = VerdictNonFatal
		default:
			id.Verdict = VerdictUndetermined
		}
		a.Identification[code] = id
	}
}

// anyRunningAt reports whether any job was running on any of the
// event's midplanes when it began.
func (a *Analysis) anyRunningAt(ev *filter.Event) bool {
	for _, mp := range ev.Midplanes {
		if _, ok := a.occupancy.runningOn(mp, ev.First); ok {
			return true
		}
	}
	return false
}

// IdentificationCensus tallies types and event volumes by verdict; the
// paper reports 31 interruption-related types, 2 nonfatal types, 49
// undetermined types, and 20.84% of fatal events not impacting jobs.
type IdentificationCensus struct {
	TypesInterruptionRelated, TypesNonFatal, TypesUndetermined int
	// NonImpactingEventFraction is the fraction of fatal events that did
	// not interrupt any job (case 2 + case 3 events), Obs. 1's 20.84%
	// counterpart computed over nonfatal-type and conflicting events.
	NonImpactingEventFraction float64
	// NonFatalEventFraction is the fraction of events belonging to
	// nonfatal types.
	NonFatalEventFraction float64
}

// Census summarizes the identification outcome.
func (a *Analysis) Census() IdentificationCensus {
	var c IdentificationCensus
	total, nonImpacting, nonFatalEvents := 0, 0, 0
	for _, id := range a.Identification {
		switch id.Verdict {
		case VerdictInterruptionRelated:
			c.TypesInterruptionRelated++
		case VerdictNonFatal:
			c.TypesNonFatal++
			nonFatalEvents += id.Events
		default:
			c.TypesUndetermined++
		}
		total += id.Events
		nonImpacting += id.Case2 + id.Case3
	}
	if total > 0 {
		c.NonImpactingEventFraction = float64(nonImpacting) / float64(total)
		c.NonFatalEventFraction = float64(nonFatalEvents) / float64(total)
	}
	return c
}
