package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/simulate"
	"repro/internal/symtab"
)

// buildStream replays a campaign's logs the way internal/serve does —
// fatal records through the incremental cascade, jobs through the
// occupancy builder in byEnd order — and returns the StreamInput a
// publication would consume.
func buildStream(t *testing.T, cfg Config, camp *simulate.Campaign) StreamInput {
	t.Helper()
	tab := symtab.NewTable()
	inc := filter.NewIncremental(cfg.Filter, tab)
	fatal := camp.RAS.Fatal()
	for i := range fatal {
		if err := inc.Feed(&fatal[i]); err != nil {
			t.Fatalf("Feed(%d): %v", i, err)
		}
	}
	var ob OccupancyBuilder
	for _, j := range camp.Jobs.All() {
		ob.Add(j)
	}
	events, stats := inc.Snapshot()
	rFirst, rLast := camp.RAS.Span()
	jFirst, jLast := camp.Jobs.Span()
	start, end := UnionSpan(rFirst, rLast, jFirst, jLast)
	return StreamInput{
		Tab:         tab.Clone(),
		Events:      events,
		FilterStats: stats,
		Jobs:        joblog.NewLog(camp.Jobs.All()),
		Occupancy:   ob.Snapshot(),
		SpanStart:   start,
		SpanEnd:     end,
	}
}

// TestAnalyzeStreamMatchesAnalyze pins the streaming analysis contract:
// an Analysis assembled from incrementally maintained state equals
// Analyze over the same campaign in every exported field and in the
// occupancy-dependent internals (including the unstable per-midplane
// sort permutation, which both sides must reproduce identically).
func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			camp, err := simulate.Run(simulate.Config{Seed: seed, Days: 10, NoisePerFatal: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			want, err := Analyze(cfg, camp.RAS, camp.Jobs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AnalyzeStream(cfg, buildStream(t, cfg, camp))
			if err != nil {
				t.Fatal(err)
			}

			if got.FilterStats != want.FilterStats {
				t.Fatalf("FilterStats = %+v, want %+v", got.FilterStats, want.FilterStats)
			}
			if len(got.Events) != len(want.Events) {
				t.Fatalf("%d events, want %d", len(got.Events), len(want.Events))
			}
			for i := range got.Events {
				if !reflect.DeepEqual(got.Events[i], want.Events[i]) {
					t.Fatalf("event %d = %+v, want %+v", i, *got.Events[i], *want.Events[i])
				}
			}
			if len(got.Interruptions) != len(want.Interruptions) {
				t.Fatalf("%d interruptions, want %d", len(got.Interruptions), len(want.Interruptions))
			}
			for i := range got.Interruptions {
				g, w := got.Interruptions[i], want.Interruptions[i]
				if g.Job.ID != w.Job.ID || g.Exec != w.Exec || g.JobID != w.JobID ||
					!reflect.DeepEqual(g.Event, w.Event) {
					t.Fatalf("interruption %d = %+v, want %+v", i, g, w)
				}
			}
			if !reflect.DeepEqual(got.Identification, want.Identification) {
				t.Fatalf("Identification diverges:\n got %+v\nwant %+v", got.Identification, want.Identification)
			}
			if !reflect.DeepEqual(got.Classification, want.Classification) {
				t.Fatalf("Classification diverges:\n got %+v\nwant %+v", got.Classification, want.Classification)
			}
			if !reflect.DeepEqual(got.Independent, want.Independent) {
				t.Fatalf("Independent diverges: %d events, want %d", len(got.Independent), len(want.Independent))
			}
			if !reflect.DeepEqual(got.JobRedundant, want.JobRedundant) {
				t.Fatalf("JobRedundant diverges: %d events, want %d", len(got.JobRedundant), len(want.JobRedundant))
			}
			if !reflect.DeepEqual(got.Syms, want.Syms) {
				t.Fatal("frozen symbol tables diverge")
			}
			gs, ge := got.Span()
			ws, we := want.Span()
			if !gs.Equal(ws) || !ge.Equal(we) {
				t.Fatalf("span = [%v, %v], want [%v, %v]", gs, ge, ws, we)
			}
			// The occupancy index permutation is observable through the
			// per-midplane lazy derivations; compare it directly.
			if !reflect.DeepEqual(got.occupancy.perMp, want.occupancy.perMp) {
				t.Fatal("occupancy per-midplane permutations diverge")
			}
			if !reflect.DeepEqual(got.occupancy.byEnd, want.occupancy.byEnd) {
				t.Fatal("occupancy byEnd diverges")
			}
		})
	}
}

// TestOccupancySnapshotIsolation pins that a snapshot never observes
// jobs added after it was taken, and that re-snapshotting without new
// adds shares the cached sorted lists.
func TestOccupancySnapshotIsolation(t *testing.T) {
	t.Parallel()
	camp, err := simulate.Run(simulate.Config{Seed: 5, Days: 6, NoisePerFatal: 0})
	if err != nil {
		t.Fatal(err)
	}
	jobs := camp.Jobs.All()
	if len(jobs) < 10 {
		t.Fatalf("campaign too quiet: %d jobs", len(jobs))
	}
	var ob OccupancyBuilder
	half := len(jobs) / 2
	for _, j := range jobs[:half] {
		ob.Add(j)
	}
	snap := ob.Snapshot()
	if got := len(snap.ix.byEnd); got != half {
		t.Fatalf("snapshot sees %d jobs, want %d", got, half)
	}
	before := make([][]joblog.Job, len(snap.ix.perMp))
	for mp := range snap.ix.perMp {
		before[mp] = append([]joblog.Job(nil), snap.ix.perMp[mp]...)
	}
	for _, j := range jobs[half:] {
		ob.Add(j)
	}
	if got := len(snap.ix.byEnd); got != half {
		t.Fatalf("snapshot grew to %d jobs after later adds", got)
	}
	for mp := range snap.ix.perMp {
		if !reflect.DeepEqual(before[mp], snap.ix.perMp[mp]) {
			t.Fatalf("midplane %d list changed under an existing snapshot", mp)
		}
	}
	// A full-log snapshot must equal the batch index.
	full := ob.Snapshot()
	want := newOccupancyIndex(camp.Jobs)
	if !reflect.DeepEqual(full.ix.perMp, want.perMp) {
		t.Fatal("full snapshot diverges from the batch index")
	}
}
