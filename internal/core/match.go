package core

import (
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/store"
	"repro/internal/symtab"
)

// occupancyIndex answers "which job ran on midplane m at time t" and
// "which jobs ended near time t on midplane m" in O(log n). Partition
// allocation is exclusive, so per-midplane intervals do not overlap
// (beyond the seconds-scale detection slack of inline kills).
type occupancyIndex struct {
	// perMp[mp] holds the jobs touching mp, sorted by StartTime.
	perMp [bgp.NumMidplanes][]joblog.Job
	// byEnd holds all jobs sorted by EndTime (the log's native order).
	byEnd []joblog.Job
}

func newOccupancyIndex(jobs *joblog.Log) *occupancyIndex {
	ix := &occupancyIndex{byEnd: jobs.All()}
	for _, j := range ix.byEnd {
		for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
			ix.perMp[mp] = append(ix.perMp[mp], j)
		}
	}
	for mp := range ix.perMp {
		js := ix.perMp[mp]
		sort.Slice(js, func(a, b int) bool { return js[a].StartTime.Before(js[b].StartTime) })
	}
	return ix
}

// runningOn returns the job running on midplane mp at time t, if any.
func (ix *occupancyIndex) runningOn(mp int, t time.Time) (joblog.Job, bool) {
	js := ix.perMp[mp]
	// Last job with StartTime <= t.
	i := sort.Search(len(js), func(k int) bool { return js[k].StartTime.After(t) }) - 1
	// Inline system kills can leave a sub-minute tail where the next
	// allocation has already started; walk back over at most a couple of
	// entries.
	for k := i; k >= 0 && k >= i-2; k-- {
		if js[k].RunningAt(t) {
			return js[k], true
		}
	}
	return joblog.Job{}, false
}

// endedWithin returns the jobs on midplane mp whose EndTime lies in
// [from, to].
func (ix *occupancyIndex) endedWithin(mp int, from, to time.Time) []joblog.Job {
	js := ix.perMp[mp]
	// Sized for the common case (a handful of jobs end inside any one
	// window) without paying len(js) capacity on every call.
	out := make([]joblog.Job, 0, min(len(js), 8))
	for _, j := range js {
		if j.StartTime.After(to) {
			break
		}
		if !j.EndTime.Before(from) && !j.EndTime.After(to) {
			out = append(out, j)
		}
	}
	return out
}

// ranCleanBetween reports whether some job ran wholly inside (from, to)
// on midplane mp and was NOT interrupted (per the provided set of
// interrupted job IDs). This is the "no job executed between these two
// events" test of the job-related filter.
func (ix *occupancyIndex) ranCleanBetween(mp int, from, to time.Time, interrupted map[int64]bool) bool {
	js := ix.perMp[mp]
	lo := sort.Search(len(js), func(k int) bool { return js[k].StartTime.After(from) })
	for k := lo; k < len(js); k++ {
		if js[k].StartTime.After(to) {
			break
		}
		if js[k].EndTime.Before(to) && !interrupted[js[k].ID] {
			return true
		}
	}
	return false
}

// match attributes job terminations to fatal events: a job is
// interrupted by an event when its partition overlaps the event's
// midplanes and its EndTime falls within the event's time span plus
// the tolerance. The window is asymmetric — a job cannot be killed
// before its killer occurs, so only a small slack precedes the event.
// Each midplane can contribute at most one victim per event (partition
// allocation is exclusive), the one whose end is nearest the event.
func (a *Analysis) match() {
	tol := a.cfg.MatchTolerance
	const preSlack = 90 * time.Second
	a.interByEvent = make(map[*filter.Event][]int)
	// A job can be claimed by at most one event (the earliest match).
	claimed := make(map[int64]bool)
	for _, ev := range a.Events {
		from := ev.First.Add(-preSlack)
		to := ev.Last.Add(tol)
		seen := make(map[int64]bool)
		for _, mp := range ev.Midplanes {
			var best joblog.Job
			bestDist := time.Duration(-1)
			for _, j := range a.occupancy.endedWithin(mp, from, to) {
				if seen[j.ID] || claimed[j.ID] {
					continue
				}
				if j.StartTime.After(to) {
					continue
				}
				d := j.EndTime.Sub(ev.First)
				if d < 0 {
					d = -d
				}
				if bestDist < 0 || d < bestDist {
					best, bestDist = j, d
				}
			}
			if bestDist < 0 {
				continue
			}
			seen[best.ID] = true
			claimed[best.ID] = true
			execID, _ := a.tab.Execs.Lookup(best.ExecFile)
			jobID, _ := a.tab.Jobs.Lookup(best.ID)
			a.Interruptions = append(a.Interruptions,
				Interruption{Job: best, Event: ev, Exec: execID, JobID: jobID})
			a.interByEvent[ev] = append(a.interByEvent[ev], len(a.Interruptions)-1)
		}
	}
}

// InterruptedJobIDs returns the set of job IDs attributed to any event.
func (a *Analysis) InterruptedJobIDs() map[int64]bool {
	out := make(map[int64]bool, len(a.Interruptions))
	for _, in := range a.Interruptions {
		out[in.Job.ID] = true
	}
	return out
}

// DistinctInterruptedJobs returns the number of distinct executables
// among interrupted jobs.
func (a *Analysis) DistinctInterruptedJobs() int {
	set := store.NewSet[symtab.ExecID](a.tab.Execs.Len())
	for _, in := range a.Interruptions {
		set.Add(in.Exec)
	}
	return set.Len()
}
