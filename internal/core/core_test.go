package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/simulate"
)

var t0 = time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)

// mkJob builds a job on one midplane-range partition.
func mkJob(id int64, exec string, start, end time.Duration, mpStart, size int) joblog.Job {
	return joblog.Job{
		ID: id, Name: "N.A.", ExecFile: exec,
		QueueTime: t0.Add(start - 10*time.Minute),
		StartTime: t0.Add(start), EndTime: t0.Add(end),
		Partition: bgp.Partition{Start: mpStart, Size: size},
		User:      "u1", Project: "p1",
	}
}

// mkFatal builds a FATAL record on a midplane.
func mkFatal(id int64, code string, at time.Duration, mp int) raslog.Record {
	return raslog.Record{
		RecID: id, MsgID: "M", Component: raslog.CompKernel, ErrCode: code,
		Severity: raslog.SevFatal, EventTime: t0.Add(at),
		Location: bgp.MidplaneLocation(mp).String(), Serial: "S", Message: "m",
	}
}

func analyze(t *testing.T, recs []raslog.Record, jobs []joblog.Job) *Analysis {
	t.Helper()
	a, err := Analyze(DefaultConfig(), raslog.NewStore(recs), joblog.NewLog(jobs))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// ident and classOf resolve a code name through the frozen symbol
// table; tests address codes by string, the analysis maps by ID.
func ident(a *Analysis, code string) Identification {
	id, ok := a.Syms.Errcodes.Lookup(code)
	if !ok {
		return Identification{}
	}
	return a.Identification[id]
}

func classOf(a *Analysis, code string) Classification {
	id, ok := a.Syms.Errcodes.Lookup(code)
	if !ok {
		return Classification{}
	}
	return a.Classification[id]
}

func TestMatchAttributesInterruption(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 1),           // interrupted at 2h by event
		mkJob(2, "/b", 0, 5*time.Hour, 2, 1),           // unrelated, far away, survives
		mkJob(3, "/c", 3*time.Hour, 4*time.Hour, 0, 1), // later on same midplane, clean
	}
	recs := []raslog.Record{
		mkFatal(1, "x", 2*time.Hour-30*time.Second, 0),
	}
	a := analyze(t, recs, jobs)
	if len(a.Interruptions) != 1 {
		t.Fatalf("interruptions = %d, want 1", len(a.Interruptions))
	}
	if a.Interruptions[0].Job.ID != 1 {
		t.Errorf("matched job %d, want 1", a.Interruptions[0].Job.ID)
	}
	if a.DistinctInterruptedJobs() != 1 {
		t.Errorf("distinct = %d", a.DistinctInterruptedJobs())
	}
}

func TestMatchRespectsLocationAndTime(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 1),
		mkJob(2, "/b", 0, 2*time.Hour, 4, 1), // ends same time, different midplane
	}
	recs := []raslog.Record{
		mkFatal(1, "x", 2*time.Hour, 0),
		mkFatal(2, "y", 30*time.Hour, 0), // long after: matches nothing
	}
	a := analyze(t, recs, jobs)
	if len(a.Interruptions) != 1 || a.Interruptions[0].Job.ID != 1 {
		t.Fatalf("interruptions = %+v", a.Interruptions)
	}
}

func TestIdentifyThreeCases(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 1),  // killed by "kills" at 2h
		mkJob(2, "/b", 0, 48*time.Hour, 2, 1), // survives "benign" at 24h
		mkJob(3, "/c", 0, 47*time.Hour, 4, 1), // unrelated long job
	}
	recs := []raslog.Record{
		mkFatal(1, "kills", 2*time.Hour, 0),
		mkFatal(2, "kills", 20*time.Hour, 10), // idle midplane: case 2
		mkFatal(3, "benign", 24*time.Hour, 2), // job 2 keeps running: case 3
		mkFatal(4, "idleonly", 30*time.Hour, 20),
	}
	a := analyze(t, recs, jobs)
	if v := ident(a, "kills").Verdict; v != VerdictInterruptionRelated {
		t.Errorf("kills verdict = %v", v)
	}
	if id := ident(a, "kills"); id.Case1 != 1 || id.Case2 != 1 || id.Case3 != 0 {
		t.Errorf("kills cases = %+v", id)
	}
	if v := ident(a, "benign").Verdict; v != VerdictNonFatal {
		t.Errorf("benign verdict = %v", v)
	}
	if v := ident(a, "idleonly").Verdict; v != VerdictUndetermined {
		t.Errorf("idleonly verdict = %v", v)
	}
	c := a.Census()
	if c.TypesInterruptionRelated != 1 || c.TypesNonFatal != 1 || c.TypesUndetermined != 1 {
		t.Errorf("census = %+v", c)
	}
	if c.NonImpactingEventFraction <= 0 || c.NonImpactingEventFraction >= 1 {
		t.Errorf("non-impacting fraction = %v", c.NonImpactingEventFraction)
	}
}

func TestClassifyRepeatLocationIsSystem(t *testing.T) {
	// Two different executables killed by the same code on the same
	// midplane, no clean run between: the scheduler reallocated failed
	// nodes -> system failure (rule 2).
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/b", 1*time.Hour+10*time.Minute, 2*time.Hour, 0, 1),
		mkJob(3, "/c", 0, 90*time.Hour, 10, 1), // background
	}
	recs := []raslog.Record{
		mkFatal(1, "sticky", 1*time.Hour, 0),
		mkFatal(2, "sticky", 2*time.Hour, 0),
	}
	a := analyze(t, recs, jobs)
	cl := classOf(a, "sticky")
	if cl.Class != ClassSystem || cl.Rule != RuleRepeatLocation {
		t.Errorf("sticky classification = %+v", cl)
	}
}

// relocationScenario builds Figure 2's pattern twice over (two
// witnesses): /buggy dies with code "bug" on midplanes 0, 4 and 8 in a
// resubmission chain while the abandoned locations host clean jobs.
func relocationScenario() ([]raslog.Record, []joblog.Job) {
	jobs := []joblog.Job{
		mkJob(1, "/buggy", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/other", 90*time.Minute, 4*time.Hour, 0, 1), // clean at location 1
		mkJob(3, "/buggy", 2*time.Hour, 3*time.Hour, 4, 1),
		mkJob(4, "/other2", 3*time.Hour+30*time.Minute, 6*time.Hour, 4, 1), // clean at location 2
		mkJob(5, "/buggy", 4*time.Hour, 5*time.Hour, 8, 1),
		mkJob(6, "/bg", 0, 90*time.Hour, 10, 1),
	}
	recs := []raslog.Record{
		mkFatal(1, "bug", 1*time.Hour, 0),
		mkFatal(2, "bug", 3*time.Hour, 4),
		mkFatal(3, "bug", 5*time.Hour, 8),
	}
	return recs, jobs
}

func TestClassifyRelocationIsApplication(t *testing.T) {
	recs, jobs := relocationScenario()
	a := analyze(t, recs, jobs)
	cl := classOf(a, "bug")
	if cl.Class != ClassApplication || cl.Rule != RuleRelocation {
		t.Errorf("bug classification = %+v", cl)
	}
}

func TestClassifyRelocationNeedsTwoWitnesses(t *testing.T) {
	// A single relocation pair (one witness) is not enough: an unlucky
	// job killed twice by one system code would match it.
	jobs := []joblog.Job{
		mkJob(1, "/buggy", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/other", 90*time.Minute, 4*time.Hour, 0, 1),
		mkJob(3, "/buggy", 2*time.Hour, 3*time.Hour, 4, 1),
		mkJob(4, "/bg", 0, 90*time.Hour, 10, 1),
	}
	recs := []raslog.Record{
		mkFatal(1, "bug", 1*time.Hour, 0),
		mkFatal(2, "bug", 3*time.Hour, 4),
	}
	a := analyze(t, recs, jobs)
	if cl := classOf(a, "bug"); cl.Rule == RuleRelocation {
		t.Errorf("single witness triggered relocation: %+v", cl)
	}
}

func TestClassifyIdleOnlyIsSystem(t *testing.T) {
	jobs := []joblog.Job{mkJob(1, "/a", 0, time.Hour, 0, 1)}
	recs := []raslog.Record{mkFatal(1, "ghost", 10*time.Hour, 20)}
	a := analyze(t, recs, jobs)
	cl := classOf(a, "ghost")
	if cl.Class != ClassSystem || cl.Rule != RuleIdleOnly {
		t.Errorf("ghost classification = %+v", cl)
	}
}

func TestClassifyByCorrelation(t *testing.T) {
	// "twin" co-occurs daily with the application-labeled "bug" type but
	// never earns a rule of its own -> inherits application by Pearson.
	// Set up the two-witness relocation pattern for "bug".
	recs, jobs := relocationScenario()
	jobs = append(jobs, mkJob(7, "/bg2", 0, 200*time.Hour, 12, 1))
	id := int64(10)
	// "twin" interrupts one executable at one fixed location on the same
	// days "bug" fires, so no per-code rule applies (not idle-only, not
	// repeat-location with two execs, not relocation) and it falls
	// through to Pearson correlation.
	nextJob := int64(10)
	for day := 2; day < 8; day += 2 {
		base := time.Duration(day) * 24 * time.Hour
		jobs = append(jobs, mkJob(nextJob, "/buggy", base, base+time.Hour, 4, 1))
		recs = append(recs, mkFatal(id, "bug", base+time.Hour, 4))
		id++
		nextJob++
		jobs = append(jobs, mkJob(nextJob, "/twinexec", base, base+2*time.Hour, 30, 1))
		recs = append(recs, mkFatal(id, "twin", base+2*time.Hour, 30))
		id++
		nextJob++
	}
	// An uncorrelated system code on other days (rule-1 labeled).
	for day := 1; day < 8; day += 2 {
		recs = append(recs, mkFatal(id, "syscode", time.Duration(day)*24*time.Hour, 40))
		id++
	}
	a := analyze(t, recs, jobs)
	if cl := classOf(a, "bug"); cl.Class != ClassApplication {
		t.Fatalf("bug class = %+v", cl)
	}
	cl := classOf(a, "twin")
	if cl.Rule != RuleCorrelation {
		t.Fatalf("twin rule = %v", cl.Rule)
	}
	bugID, _ := a.Syms.Errcodes.Lookup("bug")
	if cl.Class != ClassApplication || cl.CorrelatedWith != bugID {
		t.Errorf("twin classification = %+v", cl)
	}
}

func TestJobFilterRemovesSchedulerChains(t *testing.T) {
	// Three consecutive kills of different execs by the same code at the
	// same midplane with no clean run between: events 2 and 3 are
	// job-related redundant (transitive).
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/b", 61*time.Minute, 2*time.Hour, 0, 1),
		mkJob(3, "/c", 121*time.Minute, 3*time.Hour, 0, 1),
		mkJob(4, "/clean", 200*time.Minute, 300*time.Minute, 0, 1), // clean afterwards
		mkJob(5, "/d", 310*time.Minute, 320*time.Minute, 0, 1),
		mkJob(6, "/bg", 0, 90*time.Hour, 10, 1),
	}
	recs := []raslog.Record{
		mkFatal(1, "sticky", 1*time.Hour, 0),
		mkFatal(2, "sticky", 2*time.Hour, 0),
		mkFatal(3, "sticky", 3*time.Hour, 0),
		mkFatal(4, "sticky", 320*time.Minute, 0), // after a clean run: independent
	}
	a := analyze(t, recs, jobs)
	if len(a.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(a.Events))
	}
	if len(a.JobRedundant) != 2 {
		t.Fatalf("job-redundant = %d, want 2 (transitive chain)", len(a.JobRedundant))
	}
	if len(a.Independent) != 2 {
		t.Fatalf("independent = %d, want 2", len(a.Independent))
	}
	st := a.JobFilter()
	if st.Removed != 2 || st.Input != 4 || st.CompressionRatio != 0.5 {
		t.Errorf("job filter stats = %+v", st)
	}
}

func TestJobFilterRemovesResubmittedBuggyCode(t *testing.T) {
	// The same executable dies with the same app-classified code at
	// three different locations; the second and third events are
	// redundant.
	recs, jobs := relocationScenario()
	a := analyze(t, recs, jobs)
	if classOf(a, "bug").Class != ClassApplication {
		t.Fatal("precondition: bug must classify application")
	}
	if len(a.JobRedundant) != 2 {
		t.Fatalf("job-redundant = %d, want 2", len(a.JobRedundant))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(DefaultConfig(), nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	if _, err := Analyze(DefaultConfig(), raslog.NewStore(nil), joblog.NewLog(nil)); err == nil {
		t.Error("empty job log accepted")
	}
}

// ---- Integration against the simulated campaign and its oracle ----

var (
	campOnce sync.Once
	camp     *simulate.Campaign
	campA    *Analysis
	campErr  error
)

// campaign runs one shared 120-day campaign and its analysis.
func campaign(t *testing.T) (*simulate.Campaign, *Analysis) {
	t.Helper()
	campOnce.Do(func() {
		cfg := simulate.DefaultConfig(1)
		cfg.Days = 120
		cfg.NoisePerFatal = 2
		camp, campErr = simulate.Run(cfg)
		if campErr != nil {
			return
		}
		campA, campErr = Analyze(DefaultConfig(), camp.RAS, camp.Jobs)
	})
	if campErr != nil {
		t.Fatal(campErr)
	}
	return camp, campA
}

func TestCampaignMatchingAgainstOracle(t *testing.T) {
	c, a := campaign(t)
	truth := c.Result.Truth
	gtInterrupted := make(map[int64]bool)
	for _, id := range truth.InterruptedJobs() {
		gtInterrupted[id] = true
	}
	matched := a.InterruptedJobIDs()
	tp, fp := 0, 0
	for id := range matched {
		if gtInterrupted[id] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for id := range gtInterrupted {
		if !matched[id] {
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no true positives")
	}
	recall := float64(tp) / float64(tp+fn)
	precision := float64(tp) / float64(tp+fp)
	if recall < 0.90 {
		t.Errorf("matching recall = %.3f (tp=%d fn=%d), want >= 0.90", recall, tp, fn)
	}
	if precision < 0.85 {
		t.Errorf("matching precision = %.3f (tp=%d fp=%d), want >= 0.85", precision, tp, fp)
	}
}

func TestCampaignIdentificationAgainstOracle(t *testing.T) {
	c, a := campaign(t)
	for code, id := range a.Identification {
		name := a.Syms.Errcodes.Name(code)
		gt, ok := c.Catalog.Lookup(name)
		if !ok {
			t.Fatalf("analysis produced unknown code %q", name)
		}
		if !gt.Interrupting && id.Verdict == VerdictInterruptionRelated {
			t.Errorf("non-interrupting code %q identified as interruption-related (%+v)", name, id)
		}
	}
	// At least one of the two alarm types must be seen and not judged
	// interruption-related.
	cEn := a.Census()
	if cEn.TypesNonFatal+cEn.TypesUndetermined == 0 {
		t.Error("no nonfatal/undetermined types at all")
	}
	if cEn.NonImpactingEventFraction < 0.05 {
		t.Errorf("non-impacting event fraction = %.3f, suspiciously low (paper: 20.84%%)", cEn.NonImpactingEventFraction)
	}
}

func TestCampaignClassificationAgainstOracle(t *testing.T) {
	c, a := campaign(t)
	good, bad := 0, 0
	badEvents := 0
	for code, cl := range a.Classification {
		gt, ok := c.Catalog.Lookup(a.Syms.Errcodes.Name(code))
		if !ok {
			continue
		}
		// Score only codes that actually interrupted jobs; idle-only
		// codes default to system which is trivially right for this
		// catalog.
		if a.Identification[code].Case1 == 0 {
			continue
		}
		want := ClassSystem
		if gt.Class.String() == "application" {
			want = ClassApplication
		}
		if cl.Class == want {
			good++
		} else {
			bad++
			badEvents += a.Identification[code].Events
		}
	}
	if good == 0 {
		t.Fatal("no classified interrupting codes")
	}
	acc := float64(good) / float64(good+bad)
	if acc < 0.75 {
		t.Errorf("classification accuracy = %.3f (%d/%d), want >= 0.75", acc, good, good+bad)
	}
}

func TestCampaignJobFilterAgainstOracle(t *testing.T) {
	_, a := campaign(t)
	st := a.JobFilter()
	if st.Removed == 0 {
		t.Fatal("job-related filtering removed nothing")
	}
	if st.CompressionRatio < 0.02 || st.CompressionRatio > 0.5 {
		t.Errorf("job-filter compression = %.3f, want within (0.02, 0.5) (paper: 13.1%%)", st.CompressionRatio)
	}
	if st.Resubmissions == 0 {
		t.Fatal("no resubmissions detected")
	}
	if st.SameLocationResubmitFraction < 0.35 || st.SameLocationResubmitFraction > 0.85 {
		t.Errorf("same-location resubmits = %.3f, want ~0.57", st.SameLocationResubmitFraction)
	}
}

func TestCampaignFilterCompression(t *testing.T) {
	_, a := campaign(t)
	if a.FilterStats.CompressionRatio() < 0.90 {
		t.Errorf("temporal-spatial-causality compression = %.3f, want > 0.90 (paper: 98.35%%)",
			a.FilterStats.CompressionRatio())
	}
}

func TestJobFilterPartitionsEvents(t *testing.T) {
	// Property: Independent and JobRedundant partition Events exactly.
	_, a := campaign(t)
	if len(a.Independent)+len(a.JobRedundant) != len(a.Events) {
		t.Fatalf("%d + %d != %d", len(a.Independent), len(a.JobRedundant), len(a.Events))
	}
	seen := make(map[*filter.Event]int)
	for _, ev := range a.Independent {
		seen[ev]++
	}
	for _, ev := range a.JobRedundant {
		seen[ev]++
	}
	for _, ev := range a.Events {
		if seen[ev] != 1 {
			t.Fatalf("event at %v appears %d times across partitions", ev.First, seen[ev])
		}
	}
	// Redundant events always carry interruptions (only interruption-
	// bearing events can be job-related redundant).
	for _, ev := range a.JobRedundant {
		if len(a.EventInterruptions(ev)) == 0 {
			t.Fatal("redundant event without interruptions")
		}
	}
}
