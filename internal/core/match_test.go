package core

import (
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/raslog"
)

func TestOccupancyIndexRunningOn(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 2),
		mkJob(2, "/b", 3*time.Hour, 4*time.Hour, 0, 1),
		mkJob(3, "/c", 0, 10*time.Hour, 4, 4),
	}
	ix := newOccupancyIndex(joblog.NewLog(jobs))

	j, ok := ix.runningOn(0, t0.Add(time.Hour))
	if !ok || j.ID != 1 {
		t.Errorf("runningOn(0, 1h) = %+v, %v", j.ID, ok)
	}
	j, ok = ix.runningOn(1, t0.Add(time.Hour))
	if !ok || j.ID != 1 {
		t.Errorf("runningOn(1, 1h) = %+v, %v (partition spans mp 0-1)", j.ID, ok)
	}
	if _, ok := ix.runningOn(0, t0.Add(150*time.Minute)); ok {
		t.Error("gap between jobs reported busy")
	}
	j, ok = ix.runningOn(0, t0.Add(210*time.Minute))
	if !ok || j.ID != 2 {
		t.Errorf("runningOn(0, 3.5h) = %v, %v", j.ID, ok)
	}
	if _, ok := ix.runningOn(2, t0.Add(time.Hour)); ok {
		t.Error("idle midplane reported busy")
	}
	// End boundary is exclusive.
	if _, ok := ix.runningOn(0, t0.Add(2*time.Hour)); ok {
		t.Error("job reported running at its own end instant")
	}
}

func TestOccupancyIndexEndedWithin(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/b", 2*time.Hour, 3*time.Hour, 0, 1),
		mkJob(3, "/c", 0, 90*time.Minute, 1, 1),
	}
	ix := newOccupancyIndex(joblog.NewLog(jobs))
	got := ix.endedWithin(0, t0.Add(30*time.Minute), t0.Add(200*time.Minute))
	if len(got) != 2 {
		t.Fatalf("endedWithin = %d jobs, want 2", len(got))
	}
	got = ix.endedWithin(1, t0, t0.Add(2*time.Hour))
	if len(got) != 1 || got[0].ID != 3 {
		t.Errorf("endedWithin(1) = %+v", got)
	}
	if got := ix.endedWithin(5, t0, t0.Add(24*time.Hour)); len(got) != 0 {
		t.Errorf("idle midplane returned %d jobs", len(got))
	}
}

func TestOccupancyIndexRanCleanBetween(t *testing.T) {
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 1*time.Hour, 0, 1),
		mkJob(2, "/b", 2*time.Hour, 3*time.Hour, 0, 1),
	}
	ix := newOccupancyIndex(joblog.NewLog(jobs))
	none := map[int64]bool{}
	if !ix.ranCleanBetween(0, t0.Add(90*time.Minute), t0.Add(4*time.Hour), none) {
		t.Error("clean job 2 not detected")
	}
	// Same window but job 2 marked interrupted: no clean run.
	if ix.ranCleanBetween(0, t0.Add(90*time.Minute), t0.Add(4*time.Hour), map[int64]bool{2: true}) {
		t.Error("interrupted job counted as clean")
	}
	// Window that only partially contains job 2.
	if ix.ranCleanBetween(0, t0.Add(150*time.Minute), t0.Add(170*time.Minute), none) {
		t.Error("partially contained job counted as clean")
	}
}

func TestMatchClaimsOneJobPerMidplane(t *testing.T) {
	// Two jobs end within the window on the same midplane (sequential
	// occupancy); only the one nearest the event time may be claimed.
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 1),
		mkJob(2, "/b", 2*time.Hour+time.Minute, 2*time.Hour+3*time.Minute, 0, 1),
		mkJob(3, "/bg", 0, 40*time.Hour, 10, 1),
	}
	recs := []raslog.Record{mkFatal(1, "x", 2*time.Hour+3*time.Minute, 0)}
	a := analyze(t, recs, jobs)
	if len(a.Interruptions) != 1 {
		t.Fatalf("interruptions = %d, want 1 (one victim per event midplane)", len(a.Interruptions))
	}
	if a.Interruptions[0].Job.ID != 2 {
		t.Errorf("claimed job %d, want the nearest-ending job 2", a.Interruptions[0].Job.ID)
	}
}

func TestMatchEventCannotKillBeforeItOccurs(t *testing.T) {
	// A job ending 10 minutes before the event must not be claimed (the
	// pre-event slack is only 90 s).
	jobs := []joblog.Job{
		mkJob(1, "/a", 0, 2*time.Hour, 0, 1),
		mkJob(2, "/bg", 0, 40*time.Hour, 10, 1),
	}
	recs := []raslog.Record{mkFatal(1, "x", 2*time.Hour+10*time.Minute, 0)}
	a := analyze(t, recs, jobs)
	if len(a.Interruptions) != 0 {
		t.Fatalf("claimed %d interruptions for a post-hoc event", len(a.Interruptions))
	}
}
