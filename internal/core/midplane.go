package core

import (
	"context"
	"sort"

	"repro/internal/bgp"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// MidplaneCharacteristics carries the §V-B per-midplane analysis
// (Figure 4): fatal-event counts, raw workload, and wide-job workload
// per midplane, plus the correlations that support Observation 5.
type MidplaneCharacteristics struct {
	// FatalEvents is the independent fatal-event count per midplane
	// (Figure 4a). Events spanning several midplanes count once per
	// touched midplane.
	FatalEvents [bgp.NumMidplanes]int
	// WorkloadSec is the total job-occupancy per midplane in seconds
	// (Figure 4b).
	WorkloadSec [bgp.NumMidplanes]float64
	// WideWorkloadSec counts only jobs at least WideSize midplanes wide
	// (Figure 4c).
	WideWorkloadSec [bgp.NumMidplanes]float64
	// WideSize is the width threshold used (the paper's Figure 4c uses
	// jobs requesting no less than 32 midplanes).
	WideSize int
	// CorrWorkload and CorrWideWorkload are Pearson correlations of the
	// fatal-event counts against the two workload series. Observation 5:
	// the wide-job correlation is the strong one.
	CorrWorkload, CorrWideWorkload float64
	// TopMidplanes lists the midplane indices with the highest fatal
	// counts, descending.
	TopMidplanes []int
}

// MidplaneCharacteristics computes Figure 4's three series over the
// independent events and the job log. The three independent series
// (fatal counts, raw workload, wide workload) are computed as
// concurrent stages on the analysis worker pool; each stage writes only
// its own array, so the result is identical at any parallelism.
func (a *Analysis) MidplaneCharacteristics(wideSize int) MidplaneCharacteristics {
	if wideSize <= 0 {
		wideSize = 32
	}
	mc := MidplaneCharacteristics{WideSize: wideSize}
	parallel.Do(context.Background(), a.cfg.Parallelism,
		func() error {
			for _, ev := range a.Independent {
				for _, mp := range ev.Midplanes {
					mc.FatalEvents[mp]++
				}
			}
			return nil
		},
		func() error { mc.WorkloadSec = a.Jobs.MidplaneBusySeconds(0); return nil },
		func() error { mc.WideWorkloadSec = a.Jobs.MidplaneBusySeconds(wideSize); return nil },
	)

	fatal := make([]float64, bgp.NumMidplanes)
	for i, n := range mc.FatalEvents {
		fatal[i] = float64(n)
	}
	mc.CorrWorkload = stats.Pearson(fatal, mc.WorkloadSec[:])
	mc.CorrWideWorkload = stats.Pearson(fatal, mc.WideWorkloadSec[:])

	idx := make([]int, bgp.NumMidplanes)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return mc.FatalEvents[idx[i]] > mc.FatalEvents[idx[j]]
	})
	mc.TopMidplanes = idx
	return mc
}

// RegionFatalShare returns the fraction of per-midplane fatal counts
// falling in [lo, hi) — used to check the paper's finding that
// midplanes 33–64 (0-indexed 32–63) dominate.
func (mc MidplaneCharacteristics) RegionFatalShare(lo, hi int) float64 {
	in, total := 0, 0
	for mp, n := range mc.FatalEvents {
		total += n
		if mp >= lo && mp < hi {
			in += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// RegionWorkloadShare is the analogous share for a workload series.
func RegionWorkloadShare(series [bgp.NumMidplanes]float64, lo, hi int) float64 {
	in, total := 0.0, 0.0
	for mp, v := range series {
		total += v
		if mp >= lo && mp < hi {
			in += v
		}
	}
	if total == 0 {
		return 0
	}
	return in / total
}
