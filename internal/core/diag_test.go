package core

import (
	"fmt"
	"testing"
)

func TestDiagFeatures(t *testing.T) {
	_, a := campaign(t)
	fr := a.Features(12)
	fmt.Println("cat1:")
	for _, f := range fr.System {
		fmt.Printf("  %-10s ratio=%.5f ig=%.6f iv=%.4f\n", f.Name, f.Score.Ratio, f.Score.InfoGain, f.Score.IntrinsicValue)
	}
	fmt.Println("cat2:")
	for _, f := range fr.Application {
		fmt.Printf("  %-10s ratio=%.5f ig=%.6f iv=%.4f\n", f.Name, f.Score.Ratio, f.Score.InfoGain, f.Score.IntrinsicValue)
	}
}
