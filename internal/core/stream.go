package core

// The streaming entry point: AnalyzeStream builds an Analysis from
// state a long-running ingester (internal/serve) maintains
// incrementally — the filter cascade's Snapshot, an occupancy index
// grown job by job, and a cloned symbol table — instead of from raw
// stores. The contract, pinned by TestAnalyzeStreamMatchesAnalyze, is
// that an Analysis built this way is indistinguishable from
// Analyze(cfg, ras, jobs) over the same underlying records: every
// exported field and every lazy derivation (the renderers call dozens)
// agrees, because the downstream stages are literally the same code
// (Analysis.finish) over equal inputs.
//
// Determinism note on the occupancy index: newOccupancyIndex sorts each
// midplane's job list with the unstable sort.Slice. Two unstable sorts
// agree only if they see the same input permutation, so
// OccupancyBuilder appends jobs to each midplane's raw list in exactly
// the order newOccupancyIndex does (byEnd job order) and sorts a fresh
// copy of the whole raw list with the identical comparator. Identical
// algorithm, input and comparator give an identical output permutation,
// tie-broken runs included.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/symtab"
)

// Occupancy is an immutable occupancy index snapshot, safe to share
// with a published Analysis while the builder keeps growing.
type Occupancy struct {
	ix *occupancyIndex
}

// OccupancyBuilder grows the job-occupancy index incrementally. Add
// jobs in byEnd order — (EndTime, ID) ascending, the order
// joblog.Log.All presents — and Snapshot at publication points. Not
// safe for concurrent use; the serving layer owns it under its ingest
// lock.
type OccupancyBuilder struct {
	byEnd []joblog.Job
	// raw holds each midplane's jobs in append (byEnd) order — the exact
	// input permutation newOccupancyIndex hands to its sort.
	raw [bgp.NumMidplanes][]joblog.Job
	// sorted caches the sorted copy per midplane; dirty marks midplanes
	// whose cache is stale. A snapshot re-sorts only dirty midplanes.
	sorted [bgp.NumMidplanes][]joblog.Job
	dirty  [bgp.NumMidplanes]bool
}

// Add appends one job. Jobs must arrive in byEnd order; the serving
// layer validates that before calling.
func (b *OccupancyBuilder) Add(j joblog.Job) {
	b.byEnd = append(b.byEnd, j)
	for mp := j.Partition.Start; mp < j.Partition.End(); mp++ {
		b.raw[mp] = append(b.raw[mp], j)
		b.dirty[mp] = true
	}
}

// Len returns the number of jobs added.
func (b *OccupancyBuilder) Len() int { return len(b.byEnd) }

// Snapshot returns an immutable index over the jobs added so far. The
// per-midplane lists are fresh sorted copies (cached until the midplane
// next changes), and the byEnd view is clipped so later appends cannot
// reach it — snapshots never observe subsequent Adds.
func (b *OccupancyBuilder) Snapshot() *Occupancy {
	ix := &occupancyIndex{byEnd: b.byEnd[:len(b.byEnd):len(b.byEnd)]}
	for mp := range b.raw {
		if b.dirty[mp] {
			js := append([]joblog.Job(nil), b.raw[mp]...)
			sort.Slice(js, func(a, c int) bool { return js[a].StartTime.Before(js[c].StartTime) })
			b.sorted[mp] = js
			b.dirty[mp] = false
		}
		ix.perMp[mp] = b.sorted[mp]
	}
	return &Occupancy{ix: ix}
}

// StreamInput is the incrementally maintained state AnalyzeStream
// consumes. All of it must describe the same prefix of the event and
// job streams, and none of it may be mutated afterwards — the Analysis
// retains everything.
type StreamInput struct {
	// Tab is the symbol table holding the codes and locations the
	// incremental cascade interned, in stream order. AnalyzeStream
	// interns jobs and executables into it and freezes it, so pass a
	// private clone (symtab.Table.Clone), never the live ingest table.
	Tab *symtab.Table
	// Events and FilterStats are the incremental cascade's Snapshot.
	Events      []*filter.Event
	FilterStats filter.Stats
	// Jobs is the job log prefix, in byEnd order.
	Jobs *joblog.Log
	// Occupancy is the occupancy snapshot over exactly Jobs.
	Occupancy *Occupancy
	// SpanStart and SpanEnd delimit the campaign: the union of the RAS
	// stream's record-time span — all records, noise included, not just
	// the fatal survivors — and the job log's span, as in Analyze.
	SpanStart, SpanEnd time.Time
}

// AnalyzeStream runs the co-analysis stages downstream of the filter
// cascade over incrementally maintained state. The result is
// indistinguishable from Analyze over the same underlying records.
func AnalyzeStream(cfg Config, in StreamInput) (*Analysis, error) {
	if in.Tab == nil || in.Jobs == nil || in.Occupancy == nil {
		return nil, fmt.Errorf("core: nil stream input")
	}
	if in.Jobs.Len() == 0 {
		return nil, fmt.Errorf("core: empty job log")
	}
	if cfg.MatchTolerance <= 0 {
		cfg.MatchTolerance = 5 * time.Minute
	}
	if cfg.Filter.Parallelism == 0 {
		cfg.Filter.Parallelism = cfg.Parallelism
	}
	a := &Analysis{
		cfg:         cfg,
		Jobs:        in.Jobs,
		tab:         in.Tab,
		Events:      in.Events,
		FilterStats: in.FilterStats,
		occupancy:   in.Occupancy.ix,
		span:        campaignSpan{start: in.SpanStart, end: in.SpanEnd},
	}
	a.finish()
	return a, nil
}

// UnionSpan merges the two logs' spans the way Analyze does: the RAS
// span, widened by the job span (with the job start winning when the
// RAS side is empty).
func UnionSpan(rasFirst, rasLast, jobFirst, jobLast time.Time) (start, end time.Time) {
	start, end = rasFirst, rasLast
	if jobFirst.Before(start) || start.IsZero() {
		start = jobFirst
	}
	if jobLast.After(end) {
		end = jobLast
	}
	return start, end
}
