package core

import (
	"context"
	"fmt"

	"repro/internal/bgp"
	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// FailureCharacteristics carries the §V-A systemwide interarrival
// analysis: distribution fits before and after job-related filtering
// (Figure 3, Table IV).
type FailureCharacteristics struct {
	// Before is the fit over all filtered events (with job-related
	// redundancy); After is the fit over independent events only.
	Before, After stats.InterarrivalFit
	// BeforeECDF and AfterECDF are the empirical CDFs of the two
	// interarrival samples (Figure 3's curves).
	BeforeECDF, AfterECDF *stats.ECDF
	// MTBFRatio is After.mean / Before.mean; the paper reports roughly
	// 3x after removing job-related redundancy.
	MTBFRatio float64
}

// interarrivalsSec extracts successive gaps (seconds) from a
// time-ordered event list, dropping non-positive gaps (simultaneous
// events).
func interarrivalsSec(evs []*filter.Event) []float64 {
	var out []float64
	for i := 1; i < len(evs); i++ {
		gap := evs[i].First.Sub(evs[i-1].First).Seconds()
		if gap > 0 {
			out = append(out, gap)
		}
	}
	return out
}

// InterarrivalSamples returns the raw interarrival samples (seconds)
// before and after job-related filtering, for custom model studies.
func (a *Analysis) InterarrivalSamples() (before, after []float64) {
	return interarrivalsSec(a.Events), interarrivalsSec(a.Independent)
}

// FailureCharacteristics fits the systemwide failure interarrival
// distributions before and after job-related filtering.
func (a *Analysis) FailureCharacteristics() (FailureCharacteristics, error) {
	var fc FailureCharacteristics
	before := interarrivalsSec(a.Events)
	after := interarrivalsSec(a.Independent)
	var err error
	if fc.Before, err = stats.FitInterarrivals(before); err != nil {
		return fc, fmt.Errorf("core: before-filter fit: %w", err)
	}
	if fc.After, err = stats.FitInterarrivals(after); err != nil {
		return fc, fmt.Errorf("core: after-filter fit: %w", err)
	}
	fc.BeforeECDF = stats.NewECDF(before)
	fc.AfterECDF = stats.NewECDF(after)
	if fc.Before.Weibull.Mean() > 0 {
		fc.MTBFRatio = fc.After.Weibull.Mean() / fc.Before.Weibull.Mean()
	}
	return fc, nil
}

// MidplaneInterarrivalFit fits the failure interarrival on one midplane
// (§V-B finds Weibull still fits at midplane level). Midplanes with
// fewer than three events return an error.
func (a *Analysis) MidplaneInterarrivalFit(mp int) (stats.InterarrivalFit, error) {
	var evs []*filter.Event
	for _, ev := range a.Independent {
		if ev.OnMidplane(mp) {
			evs = append(evs, ev)
		}
	}
	gaps := interarrivalsSec(evs)
	if len(gaps) < 2 {
		return stats.InterarrivalFit{}, fmt.Errorf("core: midplane %d has %d interarrivals; need >= 2", mp, len(gaps))
	}
	return stats.FitInterarrivals(gaps)
}

// MidplaneFitCensus summarizes §V-B: per-midplane interarrival fits.
type MidplaneFitCensus struct {
	// Fitted counts midplanes with enough events to fit (>= MinEvents).
	Fitted int
	// MinEvents is the fitting threshold used.
	MinEvents int
	// WeibullPreferred counts fitted midplanes where the LRT prefers the
	// Weibull over the exponential.
	WeibullPreferred int
	// ShapeBelowOne counts fitted midplanes with decreasing hazard.
	ShapeBelowOne int
	// MeanShape is the average fitted shape across fitted midplanes.
	MeanShape float64
}

// midplaneFit is one midplane's slot in the fit census fan-out.
type midplaneFit struct {
	fitted           bool
	shape            float64
	weibullPreferred bool
}

// MidplaneFits fits the failure interarrival of every midplane with at
// least minEvents independent events and summarizes the outcome — the
// paper's finding that the Weibull still fits at midplane level. The 80
// per-midplane fits fan out across the analysis worker pool; the census
// folds the slots in midplane order, so the summary (including the
// floating-point MeanShape sum) is byte-identical at any parallelism.
func (a *Analysis) MidplaneFits(minEvents int) MidplaneFitCensus {
	if minEvents < 3 {
		minEvents = 3
	}
	fits, _ := parallel.Map(context.Background(), a.cfg.Parallelism, bgp.NumMidplanes,
		func(mp int) (midplaneFit, error) {
			n := 0
			for _, ev := range a.Independent {
				if ev.OnMidplane(mp) {
					n++
				}
			}
			if n < minEvents {
				return midplaneFit{}, nil
			}
			fit, err := a.MidplaneInterarrivalFit(mp)
			if err != nil {
				return midplaneFit{}, nil
			}
			return midplaneFit{
				fitted:           true,
				shape:            fit.Weibull.Shape,
				weibullPreferred: fit.WeibullPreferred(),
			}, nil
		})
	c := MidplaneFitCensus{MinEvents: minEvents}
	shapeSum := 0.0
	for _, f := range fits {
		if !f.fitted {
			continue
		}
		c.Fitted++
		shapeSum += f.shape
		if f.weibullPreferred {
			c.WeibullPreferred++
		}
		if f.shape < 1 {
			c.ShapeBelowOne++
		}
	}
	if c.Fitted > 0 {
		c.MeanShape = shapeSum / float64(c.Fitted)
	}
	return c
}
