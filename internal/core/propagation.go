package core

import (
	"sort"

	"repro/internal/store"
	"repro/internal/symtab"
)

// PropagationStats carries the §VI-C failure-propagation analysis
// (Obs. 8): spatial propagation (one fatal event interrupting several
// jobs at once, through shared infrastructure) versus temporal
// propagation (the scheduler reallocating failed nodes or users
// resubmitting buggy codes).
type PropagationStats struct {
	// SpatialEvents counts fatal events that interrupted more than one
	// job.
	SpatialEvents int
	// InterruptingEvents counts fatal events that interrupted at least
	// one job.
	InterruptingEvents int
	// SpatialFraction is SpatialEvents / InterruptingEvents (the paper:
	// 7.22%).
	SpatialFraction float64
	// SpatialCodes lists the ERRCODEs behind spatial propagation, sorted
	// (the paper found exactly two: bg_code_script_error and
	// CiodHungProxy, both shared-file-system mediated).
	SpatialCodes []string
	// TemporalEvents counts job-related redundant events — the temporal
	// propagation the paper describes.
	TemporalEvents int
}

// Propagation computes Observation 8's statistics.
func (a *Analysis) Propagation() PropagationStats {
	var ps PropagationStats
	codes := store.NewSet[symtab.ErrcodeID](a.tab.Errcodes.Len())
	for _, ev := range a.Events {
		n := len(a.interByEvent[ev])
		if n == 0 {
			continue
		}
		ps.InterruptingEvents++
		if n > 1 {
			ps.SpatialEvents++
			if codes.Add(ev.Code) {
				ps.SpatialCodes = append(ps.SpatialCodes, a.tab.Errcodes.Name(ev.Code))
			}
		}
	}
	if ps.InterruptingEvents > 0 {
		ps.SpatialFraction = float64(ps.SpatialEvents) / float64(ps.InterruptingEvents)
	}
	sort.Strings(ps.SpatialCodes)
	ps.TemporalEvents = len(a.JobRedundant)
	return ps
}
