package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// BurstStats carries the §VI-A burstiness analysis (Figure 5, Obs. 6).
type BurstStats struct {
	// PerDay is the number of interruptions in each campaign day.
	PerDay []int
	// TotalInterruptions and InterruptedJobFraction summarize volume
	// (the paper: 0.45% of jobs, 1.73% of distinct jobs).
	TotalInterruptions     int
	InterruptedJobFraction float64
	DistinctJobFraction    float64
	// SoonAfterPrevious counts interruptions occurring within Window of
	// the previous interruption, systemwide.
	SoonAfterPrevious int
	// Window is the "soon" threshold (the paper uses 1,000 seconds for
	// per-job re-interruptions).
	Window time.Duration
	// MaxPerJobStreak is the longest run of consecutive interruptions
	// suffered by one executable.
	MaxPerJobStreak int
	// MaxJobsPerEvent is the largest number of jobs one fatal event's
	// redundancy chain interrupted (the paper: one L1 cache parity
	// failure interrupted 28 jobs consecutively).
	MaxJobsPerEvent int
	// Fano is the variance-to-mean ratio of the daily series; > 1 means
	// burstier than Poisson.
	Fano float64
}

// Bursts computes Figure 5 and the burstiness statistics.
func (a *Analysis) Bursts(window time.Duration) BurstStats {
	if window <= 0 {
		window = 1000 * time.Second
	}
	bs := BurstStats{Window: window, TotalInterruptions: len(a.Interruptions)}

	// Daily series over the campaign span.
	days := a.span.Days()
	offsets := make([]float64, 0, len(a.Interruptions))
	times := make([]time.Time, 0, len(a.Interruptions))
	for _, in := range a.Interruptions {
		offsets = append(offsets, in.Job.EndTime.Sub(a.span.start).Seconds())
		times = append(times, in.Job.EndTime)
	}
	bs.PerDay = stats.DailyCounts(offsets, days)

	if n := a.Jobs.Len(); n > 0 {
		bs.InterruptedJobFraction = float64(len(a.InterruptedJobIDs())) / float64(n)
	}
	if d, _ := a.Jobs.DistinctExecutables(); d > 0 {
		bs.DistinctJobFraction = float64(a.DistinctInterruptedJobs()) / float64(d)
	}

	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) <= window {
			bs.SoonAfterPrevious++
		}
	}

	// Longest consecutive-interruption streak per executable.
	interrupted := a.InterruptedJobIDs()
	for _, jobs := range a.Jobs.ByExecFile() {
		streak := 0
		for _, j := range jobs {
			if interrupted[j.ID] {
				streak++
				if streak > bs.MaxPerJobStreak {
					bs.MaxPerJobStreak = streak
				}
			} else {
				streak = 0
			}
		}
	}

	// Largest single-chain victim count: an independent event plus its
	// job-related redundant followers of the same code sharing location.
	perEvent := a.chainVictimCounts()
	for _, n := range perEvent {
		if n > bs.MaxJobsPerEvent {
			bs.MaxJobsPerEvent = n
		}
	}

	daily := make([]float64, len(bs.PerDay))
	for i, n := range bs.PerDay {
		daily[i] = float64(n)
	}
	if m := stats.Mean(daily); m > 0 {
		bs.Fano = stats.Variance(daily) / m
	}
	return bs
}

// chainVictimCounts attributes each job-redundant event to its chain
// head and counts total interrupted jobs per head: the "one system
// failure consecutively interrupted 28 jobs" statistic.
func (a *Analysis) chainVictimCounts() map[*filter.Event]int {
	redundant := make(map[*filter.Event]bool, len(a.JobRedundant))
	for _, ev := range a.JobRedundant {
		redundant[ev] = true
	}
	counts := make(map[*filter.Event]int)
	// Walk events in time order; a redundant event joins the chain of
	// the most recent same-code head. IDs are dense, so the per-code head
	// table is a plain slice.
	headByCode := make([]*filter.Event, a.tab.Errcodes.Len())
	for _, ev := range a.Events {
		n := len(a.interByEvent[ev])
		if n == 0 {
			continue
		}
		if redundant[ev] {
			if head := headByCode[ev.Code]; head != nil {
				counts[head] += n
				continue
			}
		}
		counts[ev] += n
		headByCode[ev.Code] = ev
	}
	return counts
}

// InterruptionRates carries the §VI-B analysis (Figure 6, Table V,
// Obs. 7): interruption interarrival fits by cause, and the MTTI/MTBF
// comparison.
type InterruptionRates struct {
	// System and Application are the Weibull/exponential fits for the
	// two interruption categories.
	System, Application stats.InterarrivalFit
	// SystemECDF and ApplicationECDF are the empirical curves of
	// Figure 6.
	SystemECDF, ApplicationECDF *stats.ECDF
	// MTTIOverMTBF is the system-interruption mean over the independent
	// failure mean (the paper: 4.07).
	MTTIOverMTBF float64
	// AppOverSystemMTTI is Application mean over System mean (the paper:
	// about 2x).
	AppOverSystemMTTI float64
}

// InterruptionRates fits interruption interarrival distributions by
// cause and relates MTTI to MTBF. The two per-cause fits and the
// systemwide failure fit behind the MTTI/MTBF ratio run as concurrent
// stages on the analysis worker pool; errors are checked in the same
// order as the sequential code, so results and error text are
// identical at any parallelism.
func (a *Analysis) InterruptionRates() (InterruptionRates, error) {
	var ir InterruptionRates
	sys, app := a.InterruptionsByClass()
	sysGaps := interruptionGaps(sys)
	appGaps := interruptionGaps(app)
	var (
		sysErr, appErr, fcErr error
		fc                    FailureCharacteristics
	)
	parallel.Do(context.Background(), a.cfg.Parallelism,
		func() error {
			ir.System, sysErr = stats.FitInterarrivals(sysGaps)
			ir.SystemECDF = stats.NewECDF(sysGaps)
			return nil
		},
		func() error {
			ir.Application, appErr = stats.FitInterarrivals(appGaps)
			ir.ApplicationECDF = stats.NewECDF(appGaps)
			return nil
		},
		func() error { fc, fcErr = a.FailureCharacteristics(); return nil },
	)
	if sysErr != nil {
		return InterruptionRates{}, fmt.Errorf("core: system interruption fit: %w", sysErr)
	}
	if appErr != nil {
		ir.SystemECDF, ir.ApplicationECDF = nil, nil
		return InterruptionRates{System: ir.System}, fmt.Errorf("core: application interruption fit: %w", appErr)
	}
	if fcErr == nil && fc.After.Weibull.Mean() > 0 {
		ir.MTTIOverMTBF = ir.System.Weibull.Mean() / fc.After.Weibull.Mean()
	}
	if m := ir.System.Weibull.Mean(); m > 0 {
		ir.AppOverSystemMTTI = ir.Application.Weibull.Mean() / m
	}
	return ir, nil
}

func interruptionGaps(ins []Interruption) []float64 {
	times := make([]time.Time, 0, len(ins))
	for _, in := range ins {
		times = append(times, in.Job.EndTime)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	var out []float64
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1]).Seconds()
		if gap > 0 {
			out = append(out, gap)
		}
	}
	return out
}
