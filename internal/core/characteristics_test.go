package core

import (
	"testing"
	"time"
)

func TestFailureCharacteristics(t *testing.T) {
	_, a := campaign(t)
	fc, err := a.FailureCharacteristics()
	if err != nil {
		t.Fatal(err)
	}
	// Weibull beats exponential on both samples (Obs. 4 / Fig. 3).
	if !fc.Before.WeibullPreferred() {
		t.Errorf("before-filter: Weibull not preferred (p=%v, KS %v vs %v)",
			fc.Before.LRT.PValue, fc.Before.KSWeibull, fc.Before.KSExponential)
	}
	if !fc.After.WeibullPreferred() {
		t.Errorf("after-filter: Weibull not preferred (p=%v)", fc.After.LRT.PValue)
	}
	// Decreasing hazard rate both before and after (shape < 1), with the
	// after-filter shape higher (Table IV: 0.387 -> 0.573).
	if fc.Before.Weibull.Shape >= 1 {
		t.Errorf("before shape = %v, want < 1", fc.Before.Weibull.Shape)
	}
	if fc.After.Weibull.Shape >= 1 {
		t.Errorf("after shape = %v, want < 1", fc.After.Weibull.Shape)
	}
	if fc.After.Weibull.Shape <= fc.Before.Weibull.Shape {
		t.Errorf("shape did not increase after job filtering: %v -> %v",
			fc.Before.Weibull.Shape, fc.After.Weibull.Shape)
	}
	// MTBF grows substantially after job-related filtering (paper: ~3x).
	if fc.MTBFRatio <= 1.05 {
		t.Errorf("MTBF ratio = %v, want > 1 (paper ~3x)", fc.MTBFRatio)
	}
	if fc.BeforeECDF.Len() == 0 || fc.AfterECDF.Len() == 0 {
		t.Error("empty ECDFs")
	}
}

func TestMidplaneCharacteristics(t *testing.T) {
	_, a := campaign(t)
	mc := a.MidplaneCharacteristics(32)
	// Obs. 5: the wide-job region (0-indexed 32..63) carries the largest
	// share of fatal events although raw workload peaks elsewhere.
	bandFatal := mc.RegionFatalShare(32, 64)
	if bandFatal < 0.40 {
		t.Errorf("band fatal share = %.3f, want >= 0.40", bandFatal)
	}
	// Raw workload is NOT concentrated in the band (small jobs live
	// outside it).
	bandWork := RegionWorkloadShare(mc.WorkloadSec, 32, 64)
	if bandWork > 0.55 {
		t.Errorf("band raw workload share = %.3f; should not dominate", bandWork)
	}
	// Wide-job workload IS concentrated in the band.
	bandWide := RegionWorkloadShare(mc.WideWorkloadSec, 32, 64)
	if bandWide < bandWork {
		t.Errorf("band wide-workload share %.3f not above raw share %.3f", bandWide, bandWork)
	}
	// Fatal counts correlate better with wide-job workload than with raw
	// workload (the crux of Obs. 5).
	if !(mc.CorrWideWorkload > mc.CorrWorkload) {
		t.Errorf("corr(fatal, wide)=%.3f not above corr(fatal, raw)=%.3f",
			mc.CorrWideWorkload, mc.CorrWorkload)
	}
	// Top midplanes come from the band.
	inBand := 0
	for _, mp := range mc.TopMidplanes[:3] {
		if mp >= 32 && mp < 64 {
			inBand++
		}
	}
	if inBand < 2 {
		t.Errorf("top-3 midplanes %v: want >= 2 in the band", mc.TopMidplanes[:3])
	}
}

func TestMidplaneInterarrivalFit(t *testing.T) {
	_, a := campaign(t)
	mc := a.MidplaneCharacteristics(32)
	mp := mc.TopMidplanes[0]
	fit, err := a.MidplaneInterarrivalFit(mp)
	if err != nil {
		t.Fatalf("fit on hottest midplane %d: %v", mp, err)
	}
	if fit.N < 2 {
		t.Errorf("fit N = %d", fit.N)
	}
	if fit.Weibull.Shape <= 0 {
		t.Errorf("bad shape %v", fit.Weibull.Shape)
	}
	if _, err := a.MidplaneInterarrivalFit(-1); err == nil {
		t.Error("negative midplane accepted")
	}
}

func TestBursts(t *testing.T) {
	_, a := campaign(t)
	bs := a.Bursts(0)
	if bs.Window != 1000*time.Second {
		t.Errorf("default window = %v", bs.Window)
	}
	if bs.TotalInterruptions == 0 {
		t.Fatal("no interruptions")
	}
	// Interruptions are rare: well under 5% of jobs (paper: 0.45%).
	if bs.InterruptedJobFraction <= 0 || bs.InterruptedJobFraction > 0.05 {
		t.Errorf("interrupted job fraction = %v", bs.InterruptedJobFraction)
	}
	if bs.DistinctJobFraction <= bs.InterruptedJobFraction {
		t.Errorf("distinct fraction %v should exceed job fraction %v (paper: 1.73%% vs 0.45%%)",
			bs.DistinctJobFraction, bs.InterruptedJobFraction)
	}
	// Bursty: daily counts overdispersed vs Poisson, and re-interruptions
	// soon after previous ones exist (Obs. 6).
	if bs.Fano <= 1 {
		t.Errorf("Fano factor = %v, want > 1 (bursty)", bs.Fano)
	}
	if bs.SoonAfterPrevious == 0 {
		t.Error("no interruptions soon after previous ones")
	}
	if bs.MaxPerJobStreak < 2 {
		t.Errorf("max per-job streak = %d, want >= 2", bs.MaxPerJobStreak)
	}
	if bs.MaxJobsPerEvent < 2 {
		t.Errorf("max jobs per failure chain = %d, want >= 2 (paper: 28)", bs.MaxJobsPerEvent)
	}
	// Daily series sums to the interruption count (within the campaign).
	sum := 0
	for _, n := range bs.PerDay {
		sum += n
	}
	if sum > bs.TotalInterruptions {
		t.Errorf("daily sum %d exceeds total %d", sum, bs.TotalInterruptions)
	}
}

func TestInterruptionRates(t *testing.T) {
	_, a := campaign(t)
	ir, err := a.InterruptionRates()
	if err != nil {
		t.Fatal(err)
	}
	// Table V: Weibull fits with shape < 1 for both causes.
	if ir.System.Weibull.Shape >= 1 || ir.Application.Weibull.Shape >= 1 {
		t.Errorf("shapes = %v / %v, want < 1", ir.System.Weibull.Shape, ir.Application.Weibull.Shape)
	}
	if !ir.System.WeibullPreferred() {
		t.Errorf("system: Weibull not preferred (p=%v)", ir.System.LRT.PValue)
	}
	// Obs. 7: interruption rate well below failure rate.
	if ir.MTTIOverMTBF <= 1 {
		t.Errorf("MTTI/MTBF = %v, want > 1 (paper: 4.07)", ir.MTTIOverMTBF)
	}
	// App-error MTTI above system MTTI (paper: ~2x).
	if ir.AppOverSystemMTTI <= 1 {
		t.Errorf("app/system MTTI = %v, want > 1", ir.AppOverSystemMTTI)
	}
}

func TestPropagation(t *testing.T) {
	_, a := campaign(t)
	ps := a.Propagation()
	if ps.InterruptingEvents == 0 {
		t.Fatal("no interrupting events")
	}
	// Obs. 8: spatial propagation is rare (paper: 7.22%).
	if ps.SpatialFraction > 0.25 {
		t.Errorf("spatial fraction = %.3f, want small", ps.SpatialFraction)
	}
	if ps.SpatialEvents > 0 && len(ps.SpatialCodes) == 0 {
		t.Error("spatial events but no codes listed")
	}
	// The shared-file-system codes drive spatial propagation when present.
	for _, c := range ps.SpatialCodes {
		if c == "" {
			t.Error("empty spatial code")
		}
	}
	if ps.TemporalEvents == 0 {
		t.Error("no temporal propagation (job-related redundancy) observed")
	}
}

func TestResubmissions(t *testing.T) {
	_, a := campaign(t)
	rs := a.Resubmissions(3)
	if rs.MaxK != 3 {
		t.Fatalf("MaxK = %d", rs.MaxK)
	}
	// Fig. 7: resubmissions after an interruption are far riskier than
	// fresh submissions; with k >= 1 the probability is substantial.
	if rs.SystemN[1] == 0 && rs.ApplicationN[1] == 0 {
		t.Fatal("no k=1 resubmissions observed")
	}
	base := float64(len(a.Interruptions)) / float64(a.Jobs.Len())
	if rs.SystemN[1] > 0 && rs.System[1] < 3*base {
		t.Errorf("P(interrupt|k=1,system) = %.3f not well above base %.4f", rs.System[1], base)
	}
	if rs.UncoveredFraction <= 0.3 || rs.UncoveredFraction > 1 {
		t.Errorf("uncovered fraction = %.3f (paper: 83.77%%)", rs.UncoveredFraction)
	}
	for k := 1; k <= 3; k++ {
		if rs.System[k] < 0 || rs.System[k] > 1 || rs.Application[k] < 0 || rs.Application[k] > 1 {
			t.Errorf("probabilities out of range at k=%d", k)
		}
	}
}

func TestVulnerabilityTable(t *testing.T) {
	_, a := campaign(t)
	vt := a.Vulnerability()
	if len(vt.Sizes) != 9 || len(vt.BinEdges) != 4 {
		t.Fatalf("table shape = %dx%d", len(vt.Sizes), len(vt.BinEdges))
	}
	// Conservation: cells sum to the margins and the grand total.
	for i := range vt.Sizes {
		sumI, sumT := 0, 0
		for j := range vt.BinEdges {
			sumI += vt.Cells[i][j].Interrupted
			sumT += vt.Cells[i][j].Total
		}
		if sumI != vt.RowTotals[i].Interrupted || sumT != vt.RowTotals[i].Total {
			t.Fatalf("row %d margin mismatch", i)
		}
	}
	grandT := 0
	for j := range vt.BinEdges {
		grandT += vt.ColTotals[j].Total
	}
	if grandT != vt.Grand.Total {
		t.Fatalf("grand total mismatch: %d vs %d", grandT, vt.Grand.Total)
	}
	// Obs. 10: interruption proportion rises with size. Compare narrow
	// (1-2) against wide (>= 32) rows.
	narrowI, narrowT, wideI, wideT := 0, 0, 0, 0
	for i, s := range vt.Sizes {
		if s <= 2 {
			narrowI += vt.RowTotals[i].Interrupted
			narrowT += vt.RowTotals[i].Total
		}
		if s >= 32 {
			wideI += vt.RowTotals[i].Interrupted
			wideT += vt.RowTotals[i].Total
		}
	}
	if narrowT == 0 || wideT == 0 {
		t.Fatal("empty size classes")
	}
	narrowP := float64(narrowI) / float64(narrowT)
	wideP := float64(wideI) / float64(wideT)
	if wideP <= 2*narrowP {
		t.Errorf("wide proportion %.4f not well above narrow %.4f (Obs. 10)", wideP, narrowP)
	}
	// Obs. 10's flip side: runtime does not monotonically raise risk —
	// the longest-runtime column must not have the highest proportion.
	best := 0
	for j := range vt.BinEdges {
		if vt.ColTotals[j].Proportion() > vt.ColTotals[best].Proportion() {
			best = j
		}
	}
	if best == len(vt.BinEdges)-1 {
		t.Errorf("longest-runtime column has the highest interruption proportion; contradicts Obs. 10")
	}
}

func TestFeatures(t *testing.T) {
	_, a := campaign(t)
	fr := a.Features(12)
	if len(fr.UnreliableMidplanes) != 12 {
		t.Fatalf("unreliable midplanes = %d", len(fr.UnreliableMidplanes))
	}
	if len(fr.System) != 5 || len(fr.Application) != 5 {
		t.Fatalf("rankings = %d/%d features", len(fr.System), len(fr.Application))
	}
	rank := func(list []string, name string) int {
		for i, n := range list {
			if n == name {
				return i
			}
		}
		return -1
	}
	sysNames := make([]string, len(fr.System))
	for i, f := range fr.System {
		sysNames[i] = f.Name
	}
	appNames := make([]string, len(fr.Application))
	for i, f := range fr.Application {
		appNames[i] = f.Name
	}
	// Obs. 10: size (and location) dominate category-1 vulnerability;
	// size must outrank execution time.
	if rank(sysNames, "size") > rank(sysNames, "exectime") {
		t.Errorf("category 1 ranking %v: size should outrank exectime", sysNames)
	}
	// Obs. 11: execution time dominates category 2.
	if rank(appNames, "exectime") > 2 {
		t.Errorf("category 2 ranking %v: exectime should rank near the top", appNames)
	}
	// Obs. 12: suspicious users exist, but even the worst user's failed
	// fraction stays small.
	if len(fr.SuspiciousUsers) == 0 || fr.SuspiciousUserShare < 0.5 {
		t.Errorf("suspicious users = %d covering %.3f", len(fr.SuspiciousUsers), fr.SuspiciousUserShare)
	}
	if len(fr.SuspiciousProjects) == 0 {
		t.Error("no suspicious projects")
	}
	if fr.MaxFailedJobFraction > 0.25 {
		t.Errorf("max per-user failed fraction = %.3f, want small (Obs. 12)", fr.MaxFailedJobFraction)
	}
}

func TestEarlyInterruptionFraction(t *testing.T) {
	_, a := campaign(t)
	// Obs. 11: most application-error interruptions within the first hour.
	appEarly := a.EarlyInterruptionFraction(ClassApplication, time.Hour)
	if appEarly < 0.5 {
		t.Errorf("early app-interruption fraction = %.3f, want >= 0.5 (paper: 74.5%%)", appEarly)
	}
	if f := a.EarlyInterruptionFraction(ClassApplication, 0); f != 0 {
		t.Errorf("zero cutoff fraction = %v", f)
	}
}

func TestMidplaneFits(t *testing.T) {
	_, a := campaign(t)
	c := a.MidplaneFits(5)
	if c.Fitted == 0 {
		t.Fatal("no midplanes fitted")
	}
	if c.ShapeBelowOne < c.Fitted/2 {
		t.Errorf("only %d of %d fitted midplanes have decreasing hazard", c.ShapeBelowOne, c.Fitted)
	}
	if c.MeanShape <= 0 || c.MeanShape >= 2 {
		t.Errorf("mean shape = %v", c.MeanShape)
	}
	if c.MinEvents != 5 {
		t.Errorf("MinEvents = %d", c.MinEvents)
	}
	// The floor clamps.
	if got := a.MidplaneFits(0); got.MinEvents != 3 {
		t.Errorf("unclamped MinEvents = %d", got.MinEvents)
	}
}

func TestRelocationExamples(t *testing.T) {
	_, a := campaign(t)
	exs := a.RelocationExamples(3)
	if len(exs) == 0 {
		t.Fatal("no relocation examples on the campaign")
	}
	interrupted := a.InterruptedJobIDs()
	for _, ex := range exs {
		if classOf(a, ex.Code).Class != ClassApplication {
			t.Errorf("example code %s is not application-classified", ex.Code)
		}
		if ex.First.Job.ExecFile != ex.Exec || ex.Second.Job.ExecFile != ex.Exec {
			t.Error("example jobs do not match the executable")
		}
		if ex.First.Job.Partition == ex.Second.Job.Partition {
			t.Error("example is not a relocation")
		}
		if interrupted[ex.CleanJob.ID] {
			t.Error("clean job was interrupted")
		}
		if !ex.CleanJob.StartTime.After(ex.First.Job.EndTime) {
			t.Error("clean job does not postdate the first interruption")
		}
	}
	// Cap respected.
	if got := a.RelocationExamples(1); len(got) > 1 {
		t.Errorf("cap ignored: %d examples", len(got))
	}
}
