// Package core implements the paper's co-analysis methodology: matching
// filtered RAS events against job terminations to find true job
// interruptions (§IV), identifying interruption-related fatal event
// types via the three-case rule (§IV-A), separating system failures
// from application errors (§IV-B), removing job-related redundancy
// (§IV-C), and deriving the failure and job-interruption
// characteristics of §V and §VI.
//
// The package consumes only the two logs — never the generator-side
// ground truth — so its inferences can be scored against the oracle in
// tests, standing in for the paper's verification by Argonne
// administrators.
package core

import (
	"fmt"
	"time"

	"repro/internal/filter"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/symtab"
)

// Config parameterizes the co-analysis.
type Config struct {
	// Filter holds the preprocessing cascade thresholds.
	Filter filter.Config
	// MatchTolerance is the slack allowed between a job's end time and
	// the matched event's time span.
	MatchTolerance time.Duration
	// Parallelism bounds the worker count of the analysis fan-outs —
	// the per-midplane fit census, the per-midplane characteristic
	// series, and the per-cause interruption fits (0 = GOMAXPROCS,
	// 1 = sequential). Results are byte-identical at every setting:
	// workers only compute independent slots and the merge folds them
	// in a fixed order.
	Parallelism int
}

// DefaultConfig returns the thresholds used throughout the paper's
// evaluation.
func DefaultConfig() Config {
	return Config{
		Filter:         filter.DefaultConfig(),
		MatchTolerance: 5 * time.Minute,
	}
}

// Interruption is one job termination attributed to a fatal event.
type Interruption struct {
	// Job is the interrupted job.
	Job joblog.Job
	// Event is the fatal event that terminated it.
	Event *filter.Event
	// Exec and JobID are the dictionary IDs of Job.ExecFile and Job.ID;
	// the grouping stages key on these instead of re-hashing strings.
	Exec  symtab.ExecID
	JobID symtab.JobID
}

// Analysis is the result of the full co-analysis pipeline.
type Analysis struct {
	cfg Config

	// Jobs is the job log under analysis.
	Jobs *joblog.Log
	// Events are the fatal events surviving temporal-spatial-causality
	// filtering, time-ordered.
	Events []*filter.Event
	// FilterStats reports the preprocessing compression.
	FilterStats filter.Stats
	// Interruptions are the matched job interruptions, in event order.
	Interruptions []Interruption
	// Identification classifies each ERRCODE by the three-case rule,
	// keyed by the code's dictionary ID (resolve names via Syms).
	Identification map[symtab.ErrcodeID]Identification
	// Classification assigns each fatal ERRCODE a system/application
	// origin, keyed like Identification.
	Classification map[symtab.ErrcodeID]Classification
	// Independent are the events surviving job-related filtering.
	Independent []*filter.Event
	// JobRedundant are the events job-related filtering removed.
	JobRedundant []*filter.Event
	// Syms resolves every typed ID in the result (event codes, locations,
	// executables, job IDs) back to its name. Safe for concurrent
	// readers.
	Syms *symtab.Snapshot

	// internal indexes
	tab          *symtab.Table
	interByEvent map[*filter.Event][]int // indices into Interruptions
	occupancy    *occupancyIndex
	span         campaignSpan
}

type campaignSpan struct {
	start, end time.Time
}

// Days returns the campaign length in whole days (rounded up).
func (s campaignSpan) Days() int {
	d := s.end.Sub(s.start)
	days := int(d / (24 * time.Hour))
	if d%(24*time.Hour) != 0 {
		days++
	}
	return days
}

// Analyze runs the full pipeline over a RAS store and a job log.
func Analyze(cfg Config, ras *raslog.Store, jobs *joblog.Log) (*Analysis, error) {
	if ras == nil || jobs == nil {
		return nil, fmt.Errorf("core: nil input log")
	}
	if jobs.Len() == 0 {
		return nil, fmt.Errorf("core: empty job log")
	}
	if cfg.MatchTolerance <= 0 {
		cfg.MatchTolerance = 5 * time.Minute
	}
	// The analysis-level knob governs the filter cascade too, unless
	// the caller tuned the cascade separately.
	if cfg.Filter.Parallelism == 0 {
		cfg.Filter.Parallelism = cfg.Parallelism
	}
	a := &Analysis{cfg: cfg, Jobs: jobs, tab: symtab.NewTable()}

	// Campaign span: union of both logs.
	rFirst, rLast := ras.Span()
	jFirst, jLast := jobs.Span()
	a.span.start, a.span.end = UnionSpan(rFirst, rLast, jFirst, jLast)

	// Stage 1: temporal-spatial-causality filtering. The pipeline interns
	// codes and locations over the time-sorted stream before sharding, so
	// ID numbering is independent of Parallelism.
	a.Events, a.FilterStats = filter.Pipeline(cfg.Filter, a.tab, ras.Fatal())

	// Stages 2-5 are shared with the streaming entry point.
	a.occupancy = newOccupancyIndex(jobs)
	a.finish()
	return a, nil
}

// finish runs the co-analysis stages downstream of the filter cascade —
// the tail shared by Analyze and AnalyzeStream. It expects a.Events,
// a.FilterStats, a.Jobs, a.occupancy and a.span to be set, with a.tab
// holding the codes and locations the cascade interned.
func (a *Analysis) finish() {
	// Stage 2: match events against job terminations. Jobs and
	// executables are interned in byEnd order (a JobID is its job's index
	// into Jobs.All()); re-interning already-known symbols is a no-op, so
	// the numbering is the same whether the caller interned eagerly or
	// not.
	for _, j := range a.Jobs.All() {
		a.tab.Jobs.Intern(j.ID)
		a.tab.Execs.Intern(j.ExecFile)
	}
	a.match()

	// Stage 3: three-case identification.
	a.identify()

	// Stage 4: system-failure vs application-error classification.
	a.classify()

	// Stage 5: job-related filtering.
	a.jobFilter()

	a.Syms = a.tab.Freeze()
}

// EventInterruptions returns the interruptions attributed to ev.
func (a *Analysis) EventInterruptions(ev *filter.Event) []Interruption {
	idx := a.interByEvent[ev]
	out := make([]Interruption, 0, len(idx))
	for _, i := range idx {
		out = append(out, a.Interruptions[i])
	}
	return out
}

// Span returns the campaign start and end.
func (a *Analysis) Span() (start, end time.Time) { return a.span.start, a.span.end }

// ClassOf returns the inferred class of an interruption's event.
func (a *Analysis) ClassOf(in Interruption) Class {
	return a.Classification[in.Event.Code].Class
}

// InterruptionsByClass splits the matched interruptions by inferred
// cause: category 1 (system failures) and category 2 (application
// errors), per §VI-D.
func (a *Analysis) InterruptionsByClass() (system, application []Interruption) {
	for _, in := range a.Interruptions {
		if a.ClassOf(in) == ClassApplication {
			application = append(application, in)
		} else {
			system = append(system, in)
		}
	}
	return system, application
}
