package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X", "name", "value", "ratio")
	tb.AddRow("alpha", 42, 0.12345)
	tb.AddRow("b", 7, 1234567.0)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table X", "name", "alpha", "42", "0.1235", "1.235e+06"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d, want 5", len(lines))
	}
	// Columns align: header and rows have same prefix widths.
	if !strings.HasPrefix(lines[2], "-") {
		t.Errorf("separator line wrong: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `say "hi"`)
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "bars", []string{"one", "two"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bars") || !strings.Contains(out, "##########") {
		t.Errorf("chart output wrong:\n%s", out)
	}
	// The max bar is exactly width wide; the half bar is about half.
	if !strings.Contains(out, "#####") {
		t.Errorf("missing half bar:\n%s", out)
	}
}

func TestBarChartZeroMax(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []string{"z"}, []float64{0}, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#") {
		t.Error("zero values should render no bar")
	}
}

func TestLinePlot(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	var sb strings.Builder
	if err := LinePlot(&sb, "parabola", xs, ys, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "parabola") || strings.Count(out, "*") < 4 {
		t.Errorf("plot output wrong:\n%s", out)
	}
	if err := LinePlot(&sb, "", xs, ys[:2], 40, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	var empty strings.Builder
	if err := LinePlot(&empty, "none", nil, nil, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	var sb strings.Builder
	if err := LinePlot(&sb, "flat", []float64{1, 2, 3}, []float64{5, 5, 5}, 20, 5); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "*") != 3 {
		t.Errorf("flat plot stars = %d, want 3", strings.Count(sb.String(), "*"))
	}
}

func TestLogXPoints(t *testing.T) {
	lx, ly := LogXPoints([]float64{-1, 0, 10, 100}, []float64{1, 2, 3, 4})
	if len(lx) != 2 || len(ly) != 2 {
		t.Fatalf("kept %d points, want 2", len(lx))
	}
	if lx[0] != 1 || lx[1] != 2 || ly[0] != 3 || ly[1] != 4 {
		t.Errorf("log points = %v %v", lx, ly)
	}
}
