// Package report renders the paper's tables and figures as text:
// aligned tables, ASCII line/bar charts for the figure series, and CSV
// for downstream plotting. Everything writes to an io.Writer so the
// cmd tools and benchmarks can capture or discard output.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders aligned columns with a header row.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header holds the column names.
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells render with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat picks a compact representation.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoting cells that
// need it).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders a horizontal ASCII bar chart: one labeled bar per
// value, scaled to width characters.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxL, label, strings.Repeat("#", n), formatFloat(v))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// LinePlot renders an ASCII scatter of (x, y) points on a
// height×width grid with linear axes — enough to eyeball an ECDF or a
// daily series.
func LinePlot(w io.Writer, title string, xs, ys []float64, width, height int) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	if width <= 0 {
		width = 70
	}
	if height <= 0 {
		height = 16
	}
	if len(xs) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
		r := int((ys[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: %s .. %s\n", formatFloat(minY), formatFloat(maxY))
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "x: %s .. %s\n", formatFloat(minX), formatFloat(maxX))
	_, err := io.WriteString(w, b.String())
	return err
}

// LogXPoints transforms xs to log10 for plotting heavy-tailed
// interarrival ECDFs; non-positive values are dropped along with their
// ys.
func LogXPoints(xs, ys []float64) (lx, ly []float64) {
	for i := range xs {
		if xs[i] > 0 {
			lx = append(lx, math.Log10(xs[i]))
			ly = append(ly, ys[i])
		}
	}
	return lx, ly
}
