package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a continuous positive-support distribution as used by the
// failure-interarrival analyses: evaluable CDF/PDF, moments, sampling,
// and per-sample log-likelihood.
type Dist interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// PDF returns the density at x.
	PDF(x float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Variance returns the distribution variance.
	Variance() float64
	// LogLikelihood returns the total log-likelihood of the sample.
	LogLikelihood(xs []float64) float64
	// Rand draws one sample using rng.
	Rand(rng *rand.Rand) float64
	// NumParams returns the number of free parameters (for model
	// comparison).
	NumParams() int
	// Name returns a short model name.
	Name() string
}

// Exponential is the one-parameter exponential distribution with mean
// 1/Rate; the traditional failure-interarrival model.
type Exponential struct {
	// Rate is λ > 0.
	Rate float64
}

// Name implements Dist.
func (Exponential) Name() string { return "exponential" }

// NumParams implements Dist.
func (Exponential) NumParams() int { return 1 }

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// PDF implements Dist.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Variance implements Dist.
func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

// LogLikelihood implements Dist.
func (e Exponential) LogLikelihood(xs []float64) float64 {
	ll := 0.0
	logRate := math.Log(e.Rate)
	for _, x := range xs {
		if x < 0 {
			return math.Inf(-1)
		}
		ll += logRate - e.Rate*x
	}
	return ll
}

// Rand implements Dist.
func (e Exponential) Rand(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }

// FitExponential returns the maximum-likelihood exponential fit
// (rate = 1/mean). Samples must be positive.
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) == 0 {
		return Exponential{}, ErrNoData
	}
	m := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Exponential{}, fmt.Errorf("%w: exponential needs x > 0, got %v", ErrBadSample, x)
		}
		m += x
	}
	m /= float64(len(xs))
	return Exponential{Rate: 1 / m}, nil
}

// Weibull is the two-parameter Weibull distribution with CDF
// 1 - exp(-(x/Scale)^Shape). Shape < 1 means a decreasing hazard rate —
// the regime the paper finds for Blue Gene/P failure interarrivals.
type Weibull struct {
	// Shape is k > 0.
	Shape float64
	// Scale is λ > 0 (same units as the data).
	Scale float64
}

// Name implements Dist.
func (Weibull) Name() string { return "weibull" }

// NumParams implements Dist.
func (Weibull) NumParams() int { return 2 }

// CDF implements Dist.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// PDF implements Dist.
func (w Weibull) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x / w.Scale
	return (w.Shape / w.Scale) * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// Mean implements Dist: scale * Γ(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Variance implements Dist: scale² (Γ(1+2/k) − Γ(1+1/k)²).
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// Hazard returns the hazard rate h(x) = pdf/(1-cdf); decreasing in x
// iff Shape < 1.
func (w Weibull) Hazard(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return (w.Shape / w.Scale) * math.Pow(x/w.Scale, w.Shape-1)
}

// LogLikelihood implements Dist.
func (w Weibull) LogLikelihood(xs []float64) float64 {
	ll := 0.0
	logk, logl := math.Log(w.Shape), math.Log(w.Scale)
	for _, x := range xs {
		if x <= 0 {
			return math.Inf(-1)
		}
		z := x / w.Scale
		ll += logk - logl + (w.Shape-1)*(math.Log(x)-logl) - math.Pow(z, w.Shape)
	}
	return ll
}

// Rand implements Dist by inversion: scale * (-ln U)^(1/k).
func (w Weibull) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// Quantile returns the p-quantile of the Weibull distribution.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// FitWeibull returns the maximum-likelihood Weibull fit using a damped
// Newton iteration on the shape's profile-likelihood equation
//
//	g(k) = Σ xᵏ ln x / Σ xᵏ − 1/k − mean(ln x) = 0
//
// followed by the closed-form scale. Samples must be positive and not
// all identical.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) == 0 {
		return Weibull{}, ErrNoData
	}
	logs := make([]float64, len(xs))
	allEqual := true
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Weibull{}, fmt.Errorf("%w: weibull needs x > 0, got %v", ErrBadSample, x)
		}
		logs[i] = math.Log(x)
		if x != xs[0] {
			allEqual = false
		}
	}
	if allEqual {
		return Weibull{}, fmt.Errorf("%w: weibull fit needs non-constant sample", ErrBadSample)
	}
	meanLog := Mean(logs)

	// g and g' at shape k. To avoid overflow with large x^k, factor out
	// max(x)^k: x^k = max^k * (x/max)^k; ratios cancel the max^k.
	maxX := Max(xs)
	eval := func(k float64) (g, dg float64) {
		var s0, s1, s2 float64 // Σ rᵏ, Σ rᵏ ln x, Σ rᵏ (ln x)²  with r = x/max
		for i, x := range xs {
			r := math.Pow(x/maxX, k)
			s0 += r
			s1 += r * logs[i]
			s2 += r * logs[i] * logs[i]
		}
		g = s1/s0 - 1/k - meanLog
		dg = (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
		return g, dg
	}

	k := 1.0
	// A moment-style starting point improves convergence for very
	// heavy-tailed samples: k0 ≈ 1.2 / stddev(ln x).
	if sd := StdDev(logs); sd > 0 && !math.IsNaN(sd) {
		k = 1.2 / sd
	}
	const (
		tol     = 1e-10
		maxIter = 200
	)
	for i := 0; i < maxIter; i++ {
		g, dg := eval(k)
		if math.Abs(g) < tol {
			break
		}
		step := g / dg
		next := k - step
		// Damp into the positive domain.
		for next <= 0 {
			step /= 2
			next = k - step
		}
		if math.Abs(next-k) < tol*k {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return Weibull{}, fmt.Errorf("%w: weibull shape iteration diverged", ErrBadSample)
	}
	// scale = (mean(x^k))^(1/k), again factored around maxX.
	s0 := 0.0
	for _, x := range xs {
		s0 += math.Pow(x/maxX, k)
	}
	scale := maxX * math.Pow(s0/float64(len(xs)), 1/k)
	return Weibull{Shape: k, Scale: scale}, nil
}
