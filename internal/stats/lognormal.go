package stats

import (
	"math"
	"math/rand"
	"sort"
)

// LogNormal is the two-parameter lognormal distribution: ln X is
// normal with mean Mu and standard deviation Sigma. It is the third
// classic failure-interarrival model alongside the exponential and the
// Weibull.
type LogNormal struct {
	// Mu is the mean of ln X.
	Mu float64
	// Sigma is the standard deviation of ln X (> 0).
	Sigma float64
}

// Name implements Dist.
func (LogNormal) Name() string { return "lognormal" }

// NumParams implements Dist.
func (LogNormal) NumParams() int { return 2 }

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// PDF implements Dist.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// Mean implements Dist: exp(mu + sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Variance implements Dist.
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// LogLikelihood implements Dist.
func (l LogNormal) LogLikelihood(xs []float64) float64 {
	ll := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.Inf(-1)
		}
		ll += math.Log(l.PDF(x))
	}
	return ll
}

// Rand implements Dist.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// FitLogNormal returns the maximum-likelihood lognormal fit: Mu and
// Sigma are the mean and (population) standard deviation of ln x.
func FitLogNormal(xs []float64) (LogNormal, error) {
	if len(xs) == 0 {
		return LogNormal{}, ErrNoData
	}
	logs := make([]float64, len(xs))
	allEqual := true
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return LogNormal{}, ErrBadSample
		}
		logs[i] = math.Log(x)
		if x != xs[0] {
			allEqual = false
		}
	}
	if allEqual {
		return LogNormal{}, ErrBadSample
	}
	mu := Mean(logs)
	s := 0.0
	for _, lg := range logs {
		d := lg - mu
		s += d * d
	}
	sigma := math.Sqrt(s / float64(len(logs))) // MLE uses 1/n
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// AIC returns the Akaike information criterion of a fitted model on a
// sample: 2k − 2 lnL. Lower is better.
func AIC(d Dist, xs []float64) float64 {
	return 2*float64(d.NumParams()) - 2*d.LogLikelihood(xs)
}

// ModelFit pairs a fitted model with its score on the sample.
type ModelFit struct {
	Dist Dist
	AIC  float64
	KS   float64
}

// CompareModels fits the exponential, Weibull and lognormal models to
// the sample and returns them ranked by AIC (best first). Models whose
// fit fails are omitted.
func CompareModels(xs []float64) []ModelFit {
	var fits []ModelFit
	ecdf := NewECDF(xs)
	if e, err := FitExponential(xs); err == nil {
		fits = append(fits, ModelFit{Dist: e, AIC: AIC(e, xs), KS: ecdf.KolmogorovSmirnov(e.CDF)})
	}
	if w, err := FitWeibull(xs); err == nil {
		fits = append(fits, ModelFit{Dist: w, AIC: AIC(w, xs), KS: ecdf.KolmogorovSmirnov(w.CDF)})
	}
	if l, err := FitLogNormal(xs); err == nil {
		fits = append(fits, ModelFit{Dist: l, AIC: AIC(l, xs), KS: ecdf.KolmogorovSmirnov(l.CDF)})
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].AIC < fits[j].AIC })
	return fits
}
