package stats

import (
	"math"
	"sort"
)

// entropy returns the Shannon entropy (bits) of a discrete count
// distribution. Terms are accumulated in sorted key order: float
// addition is not associative, so folding in map order would drift in
// the last ulp between runs (maporder invariant).
func entropy(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, k := range sortedKeys(counts) {
		c := counts[k]
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// sortedKeys returns m's keys in sorted order, the iteration order
// every order-sensitive fold in this package must use.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GainRatioResult carries the decomposition of a gain-ratio
// computation for one feature.
type GainRatioResult struct {
	// ClassEntropy is H(class).
	ClassEntropy float64
	// ConditionalEntropy is H(class | feature).
	ConditionalEntropy float64
	// InfoGain is H(class) − H(class|feature).
	InfoGain float64
	// IntrinsicValue is H(feature), the split information.
	IntrinsicValue float64
	// Ratio is InfoGain / IntrinsicValue (0 when the feature is
	// constant).
	Ratio float64
}

// GainRatio computes the information-gain ratio of a discrete feature
// with respect to a discrete class over paired observations. It is the
// feature-ranking criterion the paper adopts (§VI-D, citing Liu & Yu).
// The two slices must have equal length.
func GainRatio(feature, class []string) GainRatioResult {
	n := len(feature)
	if n == 0 || n != len(class) {
		return GainRatioResult{}
	}
	classCounts := make(map[string]int)
	featCounts := make(map[string]int)
	joint := make(map[string]map[string]int)
	for i := 0; i < n; i++ {
		classCounts[class[i]]++
		featCounts[feature[i]]++
		m := joint[feature[i]]
		if m == nil {
			m = make(map[string]int)
			joint[feature[i]] = m
		}
		m[class[i]]++
	}
	hClass := entropy(classCounts, n)
	hCond := 0.0
	for _, f := range sortedKeys(joint) {
		hCond += float64(featCounts[f]) / float64(n) * entropy(joint[f], featCounts[f])
	}
	ig := hClass - hCond
	if ig < 0 {
		ig = 0 // numerical guard
	}
	iv := entropy(featCounts, n)
	r := GainRatioResult{
		ClassEntropy:       hClass,
		ConditionalEntropy: hCond,
		InfoGain:           ig,
		IntrinsicValue:     iv,
	}
	if iv > 0 {
		r.Ratio = ig / iv
	}
	return r
}

// RankedFeature names a feature and its gain-ratio score.
type RankedFeature struct {
	Name  string
	Score GainRatioResult
}

// RankFeatures scores every feature column against the class labels
// and returns the features sorted by descending gain ratio (stable for
// ties by name). features maps feature name to its per-observation
// values; every column must have the same length as class.
func RankFeatures(features map[string][]string, class []string) []RankedFeature {
	out := make([]RankedFeature, 0, len(features))
	for _, name := range sortedKeys(features) {
		out = append(out, RankedFeature{Name: name, Score: GainRatio(features[name], class)})
	}
	// Insertion sort by (ratio desc, name asc): tiny n.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Score.Ratio > a.Score.Ratio ||
				(b.Score.Ratio == a.Score.Ratio && b.Name < a.Name) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
