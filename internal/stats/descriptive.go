// Package stats provides the statistical machinery of the paper's
// evaluation: descriptive statistics, empirical CDFs, exponential and
// Weibull distributions with maximum-likelihood fitting, likelihood-ratio
// model comparison, Kolmogorov–Smirnov distances, Pearson correlation,
// histograms, and information-gain-ratio feature ranking. Everything is
// implemented on the standard library only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData reports an operation over an empty sample.
var ErrNoData = errors.New("stats: empty sample")

// ErrBadSample reports a sample violating a fitter's domain (e.g.
// non-positive values for a Weibull fit).
var ErrBadSample = errors.New("stats: sample outside distribution domain")

// Mean returns the arithmetic mean of xs; NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs; NaN when
// len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (average of middle two for even n).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics; NaN for an empty sample.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples xs, ys. It returns NaN when the lengths differ,
// fewer than two pairs exist, or either sample is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
