package stats

import "math"

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0. It follows the classic
// series/continued-fraction split (series for x < a+1, Lentz's
// continued fraction otherwise).
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

const (
	gammaEps     = 3e-14
	gammaMaxIter = 500
)

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by Lentz's modified
// continued fraction.
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSurvival returns P(X >= x) for a chi-square distribution
// with df degrees of freedom — the p-value of a likelihood-ratio
// statistic.
func ChiSquareSurvival(x float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return GammaQ(float64(df)/2, x/2)
}
