package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins a sample over explicit bin edges.
type Histogram struct {
	// Edges are the n+1 strictly increasing bin boundaries; bin i covers
	// [Edges[i], Edges[i+1]), except the last bin which also includes
	// its upper edge.
	Edges []float64
	// Counts are the per-bin tallies.
	Counts []int
	// Below and Above count samples outside the edge range.
	Below, Above int
}

// NewHistogram bins xs over the given edges. Edges must be strictly
// increasing with at least two entries.
func NewHistogram(xs, edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: histogram needs >= 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stats: histogram edges not strictly increasing at %d", i)
		}
	}
	h := &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)-1),
	}
	for _, x := range xs {
		switch {
		case x < edges[0]:
			h.Below++
		case x > edges[len(edges)-1]:
			h.Above++
		case x == edges[len(edges)-1]:
			h.Counts[len(h.Counts)-1]++
		default:
			// First edge index with edges[i] > x, minus one.
			i := sort.SearchFloat64s(edges, x)
			if i < len(edges) && edges[i] == x {
				h.Counts[i]++
			} else {
				h.Counts[i-1]++
			}
		}
	}
	return h, nil
}

// Total returns the in-range sample count.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// LogEdges returns n+1 logarithmically spaced edges from lo to hi
// (both > 0).
func LogEdges(lo, hi float64, n int) []float64 {
	if n < 1 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i <= n; i++ {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n))
	}
	out[0], out[n] = lo, hi
	return out
}

// DailyCounts buckets event offsets (seconds from campaign start) into
// whole days and returns counts for days 0..maxDay; the "number of
// interruptions per day" series of Figure 5.
func DailyCounts(offsetsSec []float64, days int) []int {
	out := make([]int, days)
	for _, s := range offsetsSec {
		if s < 0 {
			continue
		}
		d := int(s / 86400)
		if d < days {
			out[d]++
		}
	}
	return out
}
