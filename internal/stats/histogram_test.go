package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	// The paper's Table VI runtime bins: 10-400, 400-1600, 1600-6400, >=6400.
	edges := []float64{10, 400, 1600, 6400, 1e9}
	xs := []float64{10, 399.9, 400, 1000, 1600, 6399, 6400, 100000, 5, 2e9}
	h, err := NewHistogram(xs, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Below != 1 || h.Above != 1 {
		t.Errorf("below/above = %d/%d, want 1/1", h.Below, h.Above)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramUpperEdgeInclusive(t *testing.T) {
	h, err := NewHistogram([]float64{10}, []float64{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[1] != 1 || h.Above != 0 {
		t.Errorf("upper edge not inclusive: %+v", h)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, []float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewHistogram(nil, []float64{2, 1}); err == nil {
		t.Error("decreasing edges accepted")
	}
	if _, err := NewHistogram(nil, []float64{1, 1}); err == nil {
		t.Error("equal edges accepted")
	}
}

func TestHistogramConservationQuick(t *testing.T) {
	edges := []float64{0, 1, 2, 4, 8}
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x == x { // drop NaN
				xs = append(xs, x)
			}
		}
		h, err := NewHistogram(xs, edges)
		if err != nil {
			return false
		}
		return h.Total()+h.Below+h.Above == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogEdges(t *testing.T) {
	e := LogEdges(10, 1000, 2)
	if len(e) != 3 || e[0] != 10 || e[2] != 1000 {
		t.Fatalf("LogEdges = %v", e)
	}
	if !almostEq(e[1], 100, 1e-9) {
		t.Errorf("midpoint = %v, want 100", e[1])
	}
	if LogEdges(0, 10, 2) != nil || LogEdges(10, 5, 2) != nil || LogEdges(1, 10, 0) != nil {
		t.Error("invalid LogEdges input accepted")
	}
}

func TestDailyCounts(t *testing.T) {
	offsets := []float64{0, 100, 86399, 86400, 86401, 3 * 86400, -5, 900 * 86400}
	counts := DailyCounts(offsets, 5)
	want := []int{3, 2, 0, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("day %d = %d, want %d", i, counts[i], want[i])
		}
	}
}
