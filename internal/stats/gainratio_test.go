package stats

import (
	"math"
	"testing"
)

func TestGainRatioPerfectPredictor(t *testing.T) {
	// Feature identical to the class: IG = H(class), ratio = 1.
	class := []string{"y", "y", "n", "n"}
	r := GainRatio(class, class)
	if !almostEq(r.ClassEntropy, 1, 1e-12) {
		t.Errorf("H(class) = %v, want 1", r.ClassEntropy)
	}
	if !almostEq(r.InfoGain, 1, 1e-12) || !almostEq(r.Ratio, 1, 1e-12) {
		t.Errorf("IG=%v ratio=%v, want 1,1", r.InfoGain, r.Ratio)
	}
}

func TestGainRatioUselessFeature(t *testing.T) {
	feature := []string{"a", "b", "a", "b"}
	class := []string{"y", "y", "n", "n"}
	r := GainRatio(feature, class)
	if !almostEq(r.InfoGain, 0, 1e-12) || !almostEq(r.Ratio, 0, 1e-12) {
		t.Errorf("independent feature IG=%v ratio=%v, want 0", r.InfoGain, r.Ratio)
	}
}

func TestGainRatioConstantFeature(t *testing.T) {
	feature := []string{"a", "a", "a", "a"}
	class := []string{"y", "y", "n", "n"}
	r := GainRatio(feature, class)
	if r.Ratio != 0 || r.IntrinsicValue != 0 {
		t.Errorf("constant feature ratio=%v iv=%v, want 0", r.Ratio, r.IntrinsicValue)
	}
}

func TestGainRatioKnownValue(t *testing.T) {
	// Quinlan's weather "outlook" example: IG ≈ 0.2467, IV ≈ 1.577.
	outlook := []string{
		"sunny", "sunny", "overcast", "rain", "rain", "rain", "overcast",
		"sunny", "sunny", "rain", "sunny", "overcast", "overcast", "rain",
	}
	play := []string{
		"no", "no", "yes", "yes", "yes", "no", "yes",
		"no", "yes", "yes", "yes", "yes", "yes", "no",
	}
	r := GainRatio(outlook, play)
	if !almostEq(r.InfoGain, 0.2467, 5e-4) {
		t.Errorf("IG = %v, want ~0.2467", r.InfoGain)
	}
	if !almostEq(r.IntrinsicValue, 1.5774, 5e-4) {
		t.Errorf("IV = %v, want ~1.5774", r.IntrinsicValue)
	}
	if !almostEq(r.Ratio, 0.2467/1.5774, 1e-3) {
		t.Errorf("ratio = %v", r.Ratio)
	}
}

func TestGainRatioDegenerate(t *testing.T) {
	if r := GainRatio(nil, nil); r.Ratio != 0 {
		t.Error("empty input should be zero")
	}
	if r := GainRatio([]string{"a"}, []string{"x", "y"}); r.Ratio != 0 {
		t.Error("mismatched lengths should be zero")
	}
}

func TestGainRatioNonNegative(t *testing.T) {
	feature := []string{"a", "b", "c", "a", "b", "c", "a"}
	class := []string{"y", "n", "y", "n", "y", "n", "y"}
	r := GainRatio(feature, class)
	if r.InfoGain < 0 || r.Ratio < 0 || math.IsNaN(r.Ratio) {
		t.Errorf("negative/NaN gain: %+v", r)
	}
}

func TestRankFeatures(t *testing.T) {
	class := []string{"y", "y", "n", "n", "y", "n"}
	features := map[string][]string{
		"perfect": {"y", "y", "n", "n", "y", "n"},
		"noise":   {"a", "b", "a", "b", "a", "b"},
		"partial": {"p", "p", "p", "q", "q", "q"},
	}
	ranked := RankFeatures(features, class)
	if len(ranked) != 3 {
		t.Fatalf("len = %d", len(ranked))
	}
	if ranked[0].Name != "perfect" {
		t.Errorf("top feature = %q, want perfect", ranked[0].Name)
	}
	if ranked[len(ranked)-1].Score.Ratio > ranked[0].Score.Ratio {
		t.Error("ranking not descending")
	}
}

func TestRankFeaturesTieBreakByName(t *testing.T) {
	class := []string{"y", "n", "y", "n"}
	features := map[string][]string{
		"b_noise": {"a", "a", "a", "a"},
		"a_noise": {"c", "c", "c", "c"},
	}
	ranked := RankFeatures(features, class)
	if ranked[0].Name != "a_noise" || ranked[1].Name != "b_noise" {
		t.Errorf("tie break wrong: %v, %v", ranked[0].Name, ranked[1].Name)
	}
}
