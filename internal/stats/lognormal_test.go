package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalBasics(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.5}
	if l.Name() != "lognormal" || l.NumParams() != 2 {
		t.Error("metadata wrong")
	}
	if l.CDF(0) != 0 || l.PDF(-1) != 0 {
		t.Error("non-positive support should be zero")
	}
	// Median is exp(mu).
	if got := l.CDF(math.Exp(1)); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CDF(median) = %v", got)
	}
	// Mean/variance formulas.
	wantMean := math.Exp(1 + 0.25/2)
	if !almostEq(l.Mean(), wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", l.Mean(), wantMean)
	}
	if l.Variance() <= 0 {
		t.Error("variance should be positive")
	}
}

func TestLogNormalPDFIntegratesToCDF(t *testing.T) {
	l := LogNormal{Mu: 0.3, Sigma: 0.8}
	// Crude trapezoid check: integral of PDF over (0, x] ~= CDF(x).
	x := 3.0
	n := 20000
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += l.PDF(float64(i) * x / float64(n))
	}
	integral := sum * x / float64(n)
	if !almostEq(integral, l.CDF(x), 1e-3) {
		t.Errorf("integral %v vs CDF %v", integral, l.CDF(x))
	}
}

func TestFitLogNormalRecovers(t *testing.T) {
	truth := LogNormal{Mu: 8, Sigma: 1.4}
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	fit, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 0.05 {
		t.Errorf("Mu = %v, want %v", fit.Mu, truth.Mu)
	}
	if math.Abs(fit.Sigma-truth.Sigma)/truth.Sigma > 0.03 {
		t.Errorf("Sigma = %v, want %v", fit.Sigma, truth.Sigma)
	}
}

func TestFitLogNormalErrors(t *testing.T) {
	if _, err := FitLogNormal(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitLogNormal([]float64{1, -1}); err == nil {
		t.Error("negative accepted")
	}
	if _, err := FitLogNormal([]float64{2, 2, 2}); err == nil {
		t.Error("constant accepted")
	}
}

func TestCompareModelsPicksGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []Dist{
		Weibull{Shape: 0.5, Scale: 1000},
		LogNormal{Mu: 6, Sigma: 1.2},
		Exponential{Rate: 1e-3},
	}
	for _, truth := range cases {
		xs := make([]float64, 8000)
		for i := range xs {
			xs[i] = truth.Rand(rng)
		}
		fits := CompareModels(xs)
		if len(fits) != 3 {
			t.Fatalf("fits = %d", len(fits))
		}
		// The generating family must rank first by AIC (the exponential
		// is nested in Weibull, so allow Weibull to tie-win for it).
		best := fits[0].Dist.Name()
		want := truth.Name()
		if best != want && !(want == "exponential" && best == "weibull") {
			t.Errorf("truth %s: best fit %s (AICs: %v %v %v)", want, best,
				fits[0].AIC, fits[1].AIC, fits[2].AIC)
		}
		// AICs ascend.
		for i := 1; i < len(fits); i++ {
			if fits[i].AIC < fits[i-1].AIC {
				t.Error("AIC ranking not sorted")
			}
		}
	}
}

func TestAICPenalizesParameters(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	e, _ := FitExponential(xs)
	// AIC = 2k - 2LL.
	want := 2*1 - 2*e.LogLikelihood(xs)
	if got := AIC(e, xs); !almostEq(got, want, 1e-12) {
		t.Errorf("AIC = %v, want %v", got, want)
	}
}
