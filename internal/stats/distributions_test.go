package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	e := Exponential{Rate: 0.5}
	if !almostEq(e.Mean(), 2, 1e-12) || !almostEq(e.Variance(), 4, 1e-12) {
		t.Errorf("mean/var = %v/%v", e.Mean(), e.Variance())
	}
	if !almostEq(e.CDF(2), 1-math.Exp(-1), 1e-12) {
		t.Errorf("CDF(2) = %v", e.CDF(2))
	}
	if e.CDF(-1) != 0 || e.PDF(-1) != 0 {
		t.Error("negative support should be 0")
	}
	if e.NumParams() != 1 || e.Name() != "exponential" {
		t.Error("metadata wrong")
	}
}

func TestWeibullBasics(t *testing.T) {
	// Shape 1 reduces to exponential with rate 1/scale.
	w := Weibull{Shape: 1, Scale: 2}
	e := Exponential{Rate: 0.5}
	for _, x := range []float64{0.1, 1, 2, 5} {
		if !almostEq(w.CDF(x), e.CDF(x), 1e-12) {
			t.Errorf("Weibull(1,2).CDF(%v) = %v, want %v", x, w.CDF(x), e.CDF(x))
		}
		if !almostEq(w.PDF(x), e.PDF(x), 1e-12) {
			t.Errorf("Weibull(1,2).PDF(%v) = %v, want %v", x, w.PDF(x), e.PDF(x))
		}
	}
	if !almostEq(w.Mean(), 2, 1e-12) {
		t.Errorf("mean = %v", w.Mean())
	}
	// Decreasing hazard iff shape < 1.
	dec := Weibull{Shape: 0.5, Scale: 100}
	if !(dec.Hazard(10) > dec.Hazard(100)) {
		t.Error("shape<1 hazard should decrease")
	}
	inc := Weibull{Shape: 2, Scale: 100}
	if !(inc.Hazard(10) < inc.Hazard(100)) {
		t.Error("shape>1 hazard should increase")
	}
	if w.NumParams() != 2 || w.Name() != "weibull" {
		t.Error("metadata wrong")
	}
}

func TestWeibullQuantileInvertsCDF(t *testing.T) {
	w := Weibull{Shape: 0.7, Scale: 8000}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := w.Quantile(p)
		if !almostEq(w.CDF(x), p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, w.CDF(x))
		}
	}
	if w.Quantile(0) != 0 || !math.IsInf(w.Quantile(1), 1) {
		t.Error("quantile boundaries wrong")
	}
}

func TestFitExponentialRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := Exponential{Rate: 1.0 / 3600}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fit.Rate-truth.Rate) / truth.Rate; rel > 0.03 {
		t.Errorf("rate = %v, want %v (rel err %v)", fit.Rate, truth.Rate, rel)
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	cases := []Weibull{
		{Shape: 0.387, Scale: 8116.7},  // Table IV, before job filtering
		{Shape: 0.573, Scale: 68465.9}, // Table IV, after job filtering
		{Shape: 1.0, Scale: 100},
		{Shape: 2.5, Scale: 10},
	}
	for _, truth := range cases {
		rng := rand.New(rand.NewSource(42))
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = truth.Rand(rng)
		}
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("FitWeibull(%+v): %v", truth, err)
		}
		if rel := math.Abs(fit.Shape-truth.Shape) / truth.Shape; rel > 0.05 {
			t.Errorf("shape = %v, want %v", fit.Shape, truth.Shape)
		}
		if rel := math.Abs(fit.Scale-truth.Scale) / truth.Scale; rel > 0.08 {
			t.Errorf("scale = %v, want %v", fit.Scale, truth.Scale)
		}
	}
}

func TestFitWeibullRecoversQuick(t *testing.T) {
	// Property: for random true parameters in the regime the paper
	// reports (shape 0.3..1.2), MLE recovers shape within 10% on a
	// 5000-point sample.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Weibull{Shape: 0.3 + rng.Float64()*0.9, Scale: math.Exp(rng.Float64() * 10)}
		xs := make([]float64, 5000)
		for i := range xs {
			xs[i] = truth.Rand(rng)
		}
		fit, err := FitWeibull(xs)
		if err != nil {
			return false
		}
		return math.Abs(fit.Shape-truth.Shape)/truth.Shape < 0.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := FitWeibull([]float64{1, -2, 3}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FitWeibull([]float64{5, 5, 5}); err == nil {
		t.Error("constant sample accepted")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty sample accepted (exp)")
	}
	if _, err := FitExponential([]float64{0}); err == nil {
		t.Error("zero sample accepted (exp)")
	}
}

func TestWeibullMomentsMatchSampling(t *testing.T) {
	w := Weibull{Shape: 0.573, Scale: 68465.9}
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = w.Rand(rng)
	}
	if rel := math.Abs(Mean(xs)-w.Mean()) / w.Mean(); rel > 0.03 {
		t.Errorf("sample mean %v vs analytic %v", Mean(xs), w.Mean())
	}
	// Variance of heavy-tailed Weibull converges slowly; loose bound.
	if rel := math.Abs(Variance(xs)-w.Variance()) / w.Variance(); rel > 0.25 {
		t.Errorf("sample var %v vs analytic %v", Variance(xs), w.Variance())
	}
}

func TestLogLikelihoodMatchesPDF(t *testing.T) {
	xs := []float64{10, 200, 3000, 40000}
	w := Weibull{Shape: 0.6, Scale: 5000}
	want := 0.0
	for _, x := range xs {
		want += math.Log(w.PDF(x))
	}
	if got := w.LogLikelihood(xs); !almostEq(got, want, 1e-9) {
		t.Errorf("weibull LL = %v, want %v", got, want)
	}
	e := Exponential{Rate: 1e-4}
	want = 0
	for _, x := range xs {
		want += math.Log(e.PDF(x))
	}
	if got := e.LogLikelihood(xs); !almostEq(got, want, 1e-9) {
		t.Errorf("exp LL = %v, want %v", got, want)
	}
	if !math.IsInf(w.LogLikelihood([]float64{-1}), -1) {
		t.Error("LL of out-of-domain sample should be -Inf")
	}
}
