package stats

import (
	"math"
	"math/rand"
	"testing"
)

func weibullSample(truth Weibull, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	return xs
}

func TestLikelihoodRatioRejectsExpForWeibullData(t *testing.T) {
	// Data from a shape-0.4 Weibull: the LRT must strongly reject the
	// exponential null — this is the paper's model-selection result.
	xs := weibullSample(Weibull{Shape: 0.4, Scale: 8000}, 2000, 11)
	w, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	res := LikelihoodRatio(e, w, xs)
	if !res.Rejects(0.001) {
		t.Errorf("LRT p = %v, want << 0.001", res.PValue)
	}
	if res.Statistic <= 0 || res.DF != 1 {
		t.Errorf("statistic/df = %v/%d", res.Statistic, res.DF)
	}
	if res.AltLL < res.NullLL {
		t.Error("alternative LL below null LL for nested MLE fits")
	}
}

func TestLikelihoodRatioAcceptsExpForExpData(t *testing.T) {
	// Exponential data: the Weibull fit adds ~nothing; p should not be
	// microscopically small.
	rng := rand.New(rand.NewSource(13))
	truth := Exponential{Rate: 1e-3}
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	w, _ := FitWeibull(xs)
	e, _ := FitExponential(xs)
	res := LikelihoodRatio(e, w, xs)
	if res.PValue < 1e-4 {
		t.Errorf("LRT rejected exponential on exponential data: p = %v", res.PValue)
	}
}

func TestFitInterarrivals(t *testing.T) {
	truth := Weibull{Shape: 0.573, Scale: 68465.9} // Table IV after-filtering row
	xs := weibullSample(truth, 5000, 17)
	fit, err := FitInterarrivals(xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 5000 {
		t.Errorf("N = %d", fit.N)
	}
	if !fit.WeibullPreferred() {
		t.Error("Weibull should be preferred on Weibull data")
	}
	if fit.Weibull.Shape >= 1 {
		t.Errorf("shape = %v, want < 1 (decreasing hazard)", fit.Weibull.Shape)
	}
	if fit.KSWeibull >= fit.KSExponential {
		t.Errorf("KS: weibull %v vs exp %v", fit.KSWeibull, fit.KSExponential)
	}
	if math.Abs(fit.SampleMean-truth.Mean())/truth.Mean() > 0.1 {
		t.Errorf("sample mean %v vs truth %v", fit.SampleMean, truth.Mean())
	}
}

func TestFitInterarrivalsPropagatesErrors(t *testing.T) {
	if _, err := FitInterarrivals(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := FitInterarrivals([]float64{1, 1, 1}); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestLRTStatisticClamped(t *testing.T) {
	// If the "alternative" is worse (not truly nested/fit), D clamps to 0
	// and p = 1.
	xs := []float64{1, 2, 3, 4, 5}
	good, _ := FitExponential(xs)
	bad := Weibull{Shape: 5, Scale: 0.01}
	res := LikelihoodRatio(good, bad, xs)
	if res.Statistic != 0 || res.PValue != 1 {
		t.Errorf("clamp failed: D=%v p=%v", res.Statistic, res.PValue)
	}
}
