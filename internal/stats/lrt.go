package stats

import "math"

// LRTResult is the outcome of a likelihood-ratio comparison between a
// null model and a nested alternative model fit on the same sample.
type LRTResult struct {
	// NullLL and AltLL are the maximized log-likelihoods.
	NullLL, AltLL float64
	// Statistic is D = 2 (AltLL - NullLL), clamped at 0.
	Statistic float64
	// DF is the difference in free parameters.
	DF int
	// PValue is the chi-square tail probability of D with DF degrees of
	// freedom; small values reject the null model.
	PValue float64
}

// Rejects reports whether the null model is rejected at level alpha.
func (r LRTResult) Rejects(alpha float64) bool { return r.PValue < alpha }

// LikelihoodRatio compares a null and an alternative model on sample
// xs. The alternative must nest the null (e.g. exponential within
// Weibull at shape = 1).
func LikelihoodRatio(null, alt Dist, xs []float64) LRTResult {
	nll := null.LogLikelihood(xs)
	all := alt.LogLikelihood(xs)
	d := 2 * (all - nll)
	if d < 0 {
		d = 0
	}
	df := alt.NumParams() - null.NumParams()
	if df < 1 {
		df = 1
	}
	return LRTResult{
		NullLL:    nll,
		AltLL:     all,
		Statistic: d,
		DF:        df,
		PValue:    ChiSquareSurvival(d, df),
	}
}

// InterarrivalFit bundles the paper's standard treatment of an
// interarrival sample: MLE fits of both candidate models, the LRT
// between them, and the KS distance of each model.
type InterarrivalFit struct {
	// N is the sample size.
	N int
	// Weibull and Exponential are the MLE fits.
	Weibull     Weibull
	Exponential Exponential
	// LRT compares exponential (null) against Weibull (alternative).
	LRT LRTResult
	// KSWeibull and KSExponential are Kolmogorov–Smirnov distances.
	KSWeibull, KSExponential float64
	// SampleMean and SampleVariance are the empirical moments.
	SampleMean, SampleVariance float64
}

// WeibullPreferred reports whether the Weibull model is the better fit:
// the LRT rejects the exponential at the 0.05 level and the Weibull KS
// distance is no worse.
func (f InterarrivalFit) WeibullPreferred() bool {
	return f.LRT.Rejects(0.05) && f.KSWeibull <= f.KSExponential
}

// FitInterarrivals runs the standard treatment over a positive sample.
func FitInterarrivals(xs []float64) (InterarrivalFit, error) {
	w, err := FitWeibull(xs)
	if err != nil {
		return InterarrivalFit{}, err
	}
	e, err := FitExponential(xs)
	if err != nil {
		return InterarrivalFit{}, err
	}
	ecdf := NewECDF(xs)
	fit := InterarrivalFit{
		N:              len(xs),
		Weibull:        w,
		Exponential:    e,
		LRT:            LikelihoodRatio(e, w, xs),
		KSWeibull:      ecdf.KolmogorovSmirnov(w.CDF),
		KSExponential:  ecdf.KolmogorovSmirnov(e.CDF),
		SampleMean:     Mean(xs),
		SampleVariance: Variance(xs),
	}
	if math.IsNaN(fit.SampleVariance) {
		fit.SampleVariance = 0
	}
	return fit, nil
}
