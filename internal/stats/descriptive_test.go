package stats

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("empty/short samples should be NaN")
	}
}

func TestMinMaxMedianQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if m := Median(xs); m != 5 {
		t.Errorf("Median = %v", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Errorf("Q1 = %v", q)
	}
	if q := Quantile([]float64{1, 2, 3, 4}, 0.5); !almostEq(q, 2.5, 1e-12) {
		t.Errorf("even median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty sample should be NaN")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %v", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); !math.IsNaN(r) {
		t.Errorf("constant sample r = %v, want NaN", r)
	}
	if r := Pearson(xs, ys[:3]); !math.IsNaN(r) {
		t.Errorf("mismatched lengths r = %v, want NaN", r)
	}
	// Known value: r of (1,2,3) vs (1,3,2) is 0.5.
	if r := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); !almostEq(r, 0.5, 1e-12) {
		t.Errorf("r = %v, want 0.5", r)
	}
}

func TestGammaPQ(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEq(got, want, 1e-10) {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
		if got := GammaQ(1, x); !almostEq(got, math.Exp(-x), 1e-10) {
			t.Errorf("GammaQ(1,%v) = %v, want %v", x, got, math.Exp(-x))
		}
	}
	// P(a,0)=0, Q(a,0)=1.
	if GammaP(2.5, 0) != 0 || GammaQ(2.5, 0) != 1 {
		t.Error("boundary at x=0 wrong")
	}
	// Complementarity across the series/CF split.
	for _, a := range []float64{0.5, 1.5, 3, 10} {
		for _, x := range []float64{0.2, a, a + 2, 4 * a} {
			if s := GammaP(a, x) + GammaQ(a, x); !almostEq(s, 1, 1e-9) {
				t.Errorf("P+Q(a=%v,x=%v) = %v", a, x, s)
			}
		}
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaQ(0, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid domain should be NaN")
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Chi-square df=1: P(X >= 3.841) ≈ 0.05; df=2: P(X >= 5.991) ≈ 0.05.
	if p := ChiSquareSurvival(3.841, 1); !almostEq(p, 0.05, 5e-4) {
		t.Errorf("chi2(3.841, df1) = %v, want ~0.05", p)
	}
	if p := ChiSquareSurvival(5.991, 2); !almostEq(p, 0.05, 5e-4) {
		t.Errorf("chi2(5.991, df2) = %v, want ~0.05", p)
	}
	if p := ChiSquareSurvival(0, 1); p != 1 {
		t.Errorf("chi2(0) = %v, want 1", p)
	}
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}
