package stats

import (
	"fmt"
	"testing"
)

// TestGainRatioBitStable is the float-fold half of the maporder
// regression: H(class|feature) sums one inexact float term per
// distinct feature value, and float addition is not associative.
// Before the bgplint maporder fix the fold followed random
// map-iteration order, so repeated calls on identical input could
// differ in the last ulp — enough to flip a full-precision %v in a
// report and break byte-identical goldens. After the fix every fold
// iterates sorted keys, so results must be bit-for-bit identical.
func TestGainRatioBitStable(t *testing.T) {
	// 13 feature values × 3 classes over 97 rows: many inexact terms.
	var feature, class []string
	for i := 0; i < 97; i++ {
		feature = append(feature, fmt.Sprintf("f%02d", i%13))
		class = append(class, fmt.Sprintf("c%d", i%3))
	}
	first := GainRatio(feature, class)
	for trial := 1; trial < 100; trial++ {
		if got := GainRatio(feature, class); got != first {
			t.Fatalf("call %d: GainRatio drifted on identical input:\nfirst %+v\n got  %+v", trial, first, got)
		}
	}
}

// TestRankFeaturesStableOrder pins the ranking order across repeated
// calls, including the deliberately tied columns that exercise the
// name tie-break.
func TestRankFeaturesStableOrder(t *testing.T) {
	class := []string{"a", "a", "b", "b", "a", "b", "a", "b"}
	features := map[string][]string{
		"informative": {"x", "x", "y", "y", "x", "y", "x", "y"},
		"constant":    {"k", "k", "k", "k", "k", "k", "k", "k"},
		"tied1":       {"p", "q", "p", "q", "p", "q", "p", "q"},
		"tied2":       {"q", "p", "q", "p", "q", "p", "q", "p"},
	}
	nameSeq := func() []string {
		var out []string
		for _, rf := range RankFeatures(features, class) {
			out = append(out, rf.Name)
		}
		return out
	}
	first := nameSeq()
	for trial := 1; trial < 50; trial++ {
		got := nameSeq()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("call %d: ranking order changed: %v vs %v", trial, first, got)
			}
		}
	}
	if first[0] != "informative" {
		t.Fatalf("top feature = %q, want informative (order: %v)", first[0], first)
	}
}
