package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (the input is copied).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Eval returns Fn(x) = (#samples <= x) / n; NaN for an empty sample.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; move
	// past equal values to count <= x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the empirical p-quantile (inverse CDF).
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Points returns (x, Fn(x)) support points for plotting: one point per
// distinct sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/n)
	}
	return xs, ps
}

// KolmogorovSmirnov returns the KS statistic sup |Fn(x) - F(x)| between
// the ECDF and a model CDF, evaluated at the sample points (both sides
// of each step).
func (e *ECDF) KolmogorovSmirnov(cdf func(float64) float64) float64 {
	n := float64(len(e.sorted))
	if n == 0 {
		return math.NaN()
	}
	d := 0.0
	for i, x := range e.sorted {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}
