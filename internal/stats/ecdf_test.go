package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := map[float64]float64{0: 0, 1: 0.25, 1.5: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 4: 1}
	for x, want := range cases {
		if got := e.Eval(x); !almostEq(got, want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if !math.IsNaN(NewECDF(nil).Eval(1)) {
		t.Error("empty ECDF should be NaN")
	}
}

func TestECDFMonotoneQuick(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		e := NewECDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.Eval(lo) <= e.Eval(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if q := e.Quantile(0.25); q != 10 {
		t.Errorf("Q(0.25) = %v", q)
	}
	if q := e.Quantile(0.5); q != 20 {
		t.Errorf("Q(0.5) = %v", q)
	}
	if q := e.Quantile(1); q != 40 {
		t.Errorf("Q(1) = %v", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Errorf("Q(0) = %v", q)
	}
	if !math.IsNaN(NewECDF(nil).Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	xs, ps := e.Points()
	if len(xs) != 3 || xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Errorf("xs = %v", xs)
	}
	if !almostEq(ps[0], 0.25, 1e-12) || !almostEq(ps[1], 0.75, 1e-12) || ps[2] != 1 {
		t.Errorf("ps = %v", ps)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Error("points not sorted")
	}
}

func TestKolmogorovSmirnovSelf(t *testing.T) {
	// KS of a sample against its own generating distribution is small
	// for large n; against a wildly wrong model it is large.
	rng := rand.New(rand.NewSource(5))
	truth := Weibull{Shape: 0.6, Scale: 1000}
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = truth.Rand(rng)
	}
	e := NewECDF(xs)
	if d := e.KolmogorovSmirnov(truth.CDF); d > 0.02 {
		t.Errorf("KS against truth = %v, want small", d)
	}
	wrong := Exponential{Rate: 1}
	if d := e.KolmogorovSmirnov(wrong.CDF); d < 0.3 {
		t.Errorf("KS against wrong model = %v, want large", d)
	}
	if !math.IsNaN(NewECDF(nil).KolmogorovSmirnov(truth.CDF)) {
		t.Error("empty KS should be NaN")
	}
}
