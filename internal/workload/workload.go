// Package workload generates the synthetic Cobalt job mix that drives
// the simulated Intrepid campaign. The size and runtime marginals are
// taken from the paper's own Table VI (68,794 jobs over 237 days;
// 9,664 distinct executables of which 5,547 were submitted more than
// once), so the simulated job population fills the same size × runtime
// cells the evaluation reports.
//
// Each distinct executable carries a user, a project, a fixed job width
// and, for a small fraction, a latent bug: a ground-truth application
// error that interrupts runs of the executable until the user "fixes"
// it after a number of failed submissions. The bug metadata is ground
// truth for the analysis oracle; it never appears in the generated job
// log itself.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/errcat"
)

// Sizes lists the schedulable job widths in midplanes.
var Sizes = []int{1, 2, 4, 8, 16, 32, 48, 64, 80}

// sizeWeights is the job count per width from Table VI.
var sizeWeights = map[int]float64{
	1: 46413, 2: 11911, 4: 4822, 8: 2618, 16: 1854,
	32: 656, 48: 4, 64: 341, 80: 73,
}

// RuntimeBinEdges are the Table VI execution-time bins in seconds:
// [10,400), [400,1600), [1600,6400), [6400, max].
var RuntimeBinEdges = []float64{10, 400, 1600, 6400}

// runtimeBinWeights is, per width, the Table VI job count per runtime bin.
var runtimeBinWeights = map[int][4]float64{
	1:  {12282, 7300, 17339, 9492},
	2:  {1146, 2601, 6052, 2112},
	4:  {881, 901, 1026, 2014},
	8:  {611, 563, 636, 748},
	16: {288, 685, 466, 415},
	32: {20, 362, 195, 79},
	48: {3, 1, 0.5, 0.5}, // tiny population; avoid zero-weight bins
	64: {12, 147, 143, 39},
	80: {11, 33, 27, 2},
}

// Bug is the latent application error attached to a buggy executable.
type Bug struct {
	// Code is the application-error ERRCODE the bug raises.
	Code string
	// MeanDelaySec is the mean of the (exponential) time-to-failure of a
	// buggy run after job start. Most application errors surface within
	// the first hour (Obs. 11).
	MeanDelaySec float64
	// FailRuns is how many submissions fail before the user fixes the
	// bug; subsequent submissions run clean.
	FailRuns int
}

// Buggy reports whether a bug is present.
func (b Bug) Buggy() bool { return b.Code != "" }

// ExecSpec describes one distinct executable.
type ExecSpec struct {
	// Path is the executable path; the distinct-job key.
	Path string
	// User and Project identify the submitting entity.
	User, Project string
	// Size is the job width in midplanes (fixed per executable).
	Size int
	// Planned is the number of planned (non-resubmission) submissions.
	Planned int
	// Bug is the latent application error, if any (ground truth).
	Bug Bug
}

// Submission is one planned job submission.
type Submission struct {
	// At is the submission (queue) time.
	At time.Time
	// Exec indexes into the generator's executable table.
	Exec int
	// Runtime is the intended execution time if the job is never
	// interrupted.
	Runtime time.Duration
}

// Spec configures the generator. The zero value is not usable; call
// DefaultSpec and override.
type Spec struct {
	// Seed seeds all static draws.
	Seed int64
	// Start is the campaign start instant.
	Start time.Time
	// Days is the campaign length.
	Days int
	// JobsPerDay is the mean planned-submission rate.
	JobsPerDay float64
	// NumUsers and NumProjects size the user population.
	NumUsers, NumProjects int
	// ExecsPerUserMean controls how many distinct executables each user
	// owns on average.
	ExecsPerUserMean float64
	// BuggyFraction is the fraction of executables carrying a latent bug.
	BuggyFraction float64
	// BugMeanDelaySec is the mean time-to-failure of buggy runs.
	BugMeanDelaySec float64
	// BugMaxFailRuns bounds FailRuns (drawn uniformly in [1, max]).
	BugMaxFailRuns int
	// MaxRuntimeSec caps intended runtimes (113.5 h on Intrepid).
	MaxRuntimeSec float64
	// WideUserBias reserves the widest jobs (>= 32 midplanes) for a
	// subset of "capability" users, mirroring a capability system.
	WideUserBias float64
}

// DefaultSpec returns the Intrepid-like configuration. scale in (0, 1]
// shrinks the campaign (scale 1 is the full 237-day, ~290 jobs/day
// campaign).
func DefaultSpec(seed int64, scale float64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	days := int(math.Max(math.Round(237*scale), 7))
	return Spec{
		Seed:             seed,
		Start:            time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC),
		Days:             days,
		JobsPerDay:       290,
		NumUsers:         236,
		NumProjects:      91,
		ExecsPerUserMean: 41, // ~9,664 executables over 236 users
		BuggyFraction:    0.007,
		BugMeanDelaySec:  600, // most app errors well within the first hour
		BugMaxFailRuns:   4,
		MaxRuntimeSec:    113.5 * 3600,
		WideUserBias:     0.15,
	}
}

// Generator produces the executable population and the planned
// submission stream.
type Generator struct {
	spec  Spec
	execs []ExecSpec
	subs  []Submission
}

// New builds the population and submission stream deterministically
// from spec. appCodes supplies the application-error ERRCODEs buggy
// executables may raise, with weights; pass errcat.Intrepid()'s
// application class.
func New(spec Spec, appCodes []errcat.Code) (*Generator, error) {
	if spec.Days <= 0 || spec.JobsPerDay <= 0 {
		return nil, fmt.Errorf("workload: non-positive campaign (days=%d rate=%v)", spec.Days, spec.JobsPerDay)
	}
	if spec.NumUsers <= 0 || spec.NumProjects <= 0 {
		return nil, fmt.Errorf("workload: need users and projects")
	}
	if len(appCodes) == 0 && spec.BuggyFraction > 0 {
		return nil, fmt.Errorf("workload: buggy fraction %v but no application codes", spec.BuggyFraction)
	}
	g := &Generator{spec: spec}
	rng := rand.New(rand.NewSource(spec.Seed))
	g.buildExecs(rng, appCodes)
	g.buildSubmissions(rng)
	return g, nil
}

// Spec returns the generator's configuration.
func (g *Generator) Spec() Spec { return g.spec }

// Executables returns the executable table (shared; do not mutate).
func (g *Generator) Executables() []ExecSpec { return g.execs }

// Submissions returns the planned submissions sorted by time (shared;
// do not mutate).
func (g *Generator) Submissions() []Submission { return g.subs }

// weightedPick returns an index into weights proportional to weight.
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func (g *Generator) buildExecs(rng *rand.Rand, appCodes []errcat.Code) {
	spec := g.spec
	// Target executable count tracks the campaign size so the
	// jobs-per-executable ratio stays Intrepid-like at any scale.
	targetExecs := int(float64(spec.NumUsers) * spec.ExecsPerUserMean *
		(float64(spec.Days) * spec.JobsPerDay) / (237.0 * 290.0))
	if targetExecs < spec.NumUsers {
		targetExecs = spec.NumUsers
	}

	// Project membership: each user belongs to one project; projects get
	// users round-robin with a skewed extra share for low-index projects.
	userProject := make([]int, spec.NumUsers)
	for u := range userProject {
		userProject[u] = u % spec.NumProjects
	}

	// Capability users may submit wide jobs.
	wideUsers := make(map[int]bool)
	nWide := int(float64(spec.NumUsers) * spec.WideUserBias)
	if nWide < 1 {
		nWide = 1
	}
	for len(wideUsers) < nWide {
		wideUsers[rng.Intn(spec.NumUsers)] = true
	}

	sizeW := make([]float64, len(Sizes))
	for i, s := range Sizes {
		sizeW[i] = sizeWeights[s]
	}

	appW := make([]float64, len(appCodes))
	for i, c := range appCodes {
		appW[i] = c.Weight
	}

	wideUserList := make([]int, 0, len(wideUsers))
	for u := range wideUsers {
		wideUserList = append(wideUserList, u)
	}
	sort.Ints(wideUserList)

	g.execs = make([]ExecSpec, 0, targetExecs)
	for i := 0; i < targetExecs; i++ {
		// Executable ownership is skewed: prolific users own many
		// executables (and therefore also most of the buggy ones), which
		// keeps each user's failed-job portion small (Obs. 12).
		user := int(float64(spec.NumUsers) * math.Pow(rng.Float64(), 2.2))
		if user >= spec.NumUsers {
			user = spec.NumUsers - 1
		}
		size := Sizes[weightedPick(rng, sizeW)]
		if size >= 32 {
			// Capability jobs belong to capability users; the size
			// marginals of Table VI are preserved.
			user = wideUserList[rng.Intn(len(wideUserList))]
		}
		e := ExecSpec{
			Path:    fmt.Sprintf("/gpfs/home/u%03d/bin/app%05d.exe", user, i),
			User:    fmt.Sprintf("u%03d", user),
			Project: fmt.Sprintf("proj%02d", userProject[user]),
			Size:    size,
			Planned: drawPlannedSubmissions(rng),
		}
		// Users request capability scale only for well-debugged codes
		// (the paper: no application-error interruption on jobs wider
		// than 32 midplanes running longer than 1,000 s), so wide
		// executables are rarely buggy.
		buggyProb := spec.BuggyFraction
		if size >= 32 {
			buggyProb *= 0.15
		}
		if rng.Float64() < buggyProb {
			code := appCodes[weightedPick(rng, appW)]
			e.Bug = Bug{
				Code:         code.Name,
				MeanDelaySec: spec.BugMeanDelaySec,
				FailRuns:     1 + rng.Intn(spec.BugMaxFailRuns),
			}
		}
		g.execs = append(g.execs, e)
	}
}

// drawPlannedSubmissions draws the number of planned submissions for
// one executable: ~43% single-shot, the rest heavy-tailed, matching the
// Intrepid ratio of 68,794 jobs to 9,664 distinct executables (~7.1
// mean) with 5,547 resubmitted.
func drawPlannedSubmissions(rng *rand.Rand) int {
	if rng.Float64() < 0.43 {
		return 1
	}
	// Shifted geometric-ish tail with mean ~11.7 so the global mean is
	// ~0.43*1 + 0.57*11.7 ≈ 7.1.
	n := 2
	for rng.Float64() < 0.9116 && n < 4000 {
		n++
	}
	return n
}

func (g *Generator) buildSubmissions(rng *rand.Rand) {
	spec := g.spec
	campaign := time.Duration(spec.Days) * 24 * time.Hour
	target := int(float64(spec.Days) * spec.JobsPerDay)

	// Users work in sessions: an executable's planned submissions are
	// clustered into a few bursts (hours apart within a burst) rather
	// than scattered uniformly over the campaign. This is what makes the
	// job log exhibit the consecutive-resubmission structure behind
	// Figure 7.
	var all []Submission
	for i, e := range g.execs {
		remaining := e.Planned
		for remaining > 0 {
			size := 1 + rng.Intn(6)
			if size > remaining {
				size = remaining
			}
			remaining -= size
			at := spec.Start.Add(time.Duration(rng.Float64() * float64(campaign)))
			for k := 0; k < size; k++ {
				all = append(all, Submission{
					At:      at,
					Exec:    i,
					Runtime: g.DrawRuntime(rng, e.Size),
				})
				gap := math.Exp(math.Log(600) + rng.Float64()*(math.Log(6*3600)-math.Log(600)))
				at = at.Add(time.Duration(gap * float64(time.Second)))
			}
		}
	}
	// Trim to the campaign window and the target volume, preserving each
	// executable's share.
	kept := all[:0]
	end := spec.Start.Add(campaign)
	for _, s := range all {
		if s.At.Before(end) {
			kept = append(kept, s)
		}
	}
	all = kept
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > target {
		all = all[:target]
	}
	for len(all) < target {
		i := rng.Intn(len(g.execs))
		all = append(all, Submission{
			At:      spec.Start.Add(time.Duration(rng.Float64() * float64(campaign))),
			Exec:    i,
			Runtime: g.DrawRuntime(rng, g.execs[i].Size),
		})
	}
	g.subs = all
	sort.Slice(g.subs, func(i, j int) bool { return g.subs[i].At.Before(g.subs[j].At) })
}

// DrawRuntime draws an intended runtime for a job of the given width
// from the Table VI per-width bin distribution, log-uniform within the
// chosen bin.
func (g *Generator) DrawRuntime(rng *rand.Rand, size int) time.Duration {
	w, ok := runtimeBinWeights[size]
	if !ok {
		w = runtimeBinWeights[1]
	}
	bin := weightedPick(rng, w[:])
	lo := RuntimeBinEdges[bin]
	var hi float64
	if bin+1 < len(RuntimeBinEdges) {
		hi = RuntimeBinEdges[bin+1]
	} else {
		// Open-ended bin (>= 6400 s): the population decays quickly —
		// most such jobs finish within a work shift, with a rare tail
		// out to the 113.5 h maximum. A flat log-uniform draw to the
		// maximum would demand more midplane-hours than the machine has.
		hi = 5 * 3600
		if rng.Float64() < 0.02 {
			lo, hi = hi, g.spec.MaxRuntimeSec
		}
	}
	sec := math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	return time.Duration(sec * float64(time.Second))
}

// ResubmitDelay draws the delay between an interruption and the user's
// resubmission: minutes-scale, heavy-tailed (log-uniform 2 min – 4 h).
func ResubmitDelay(rng *rand.Rand) time.Duration {
	lo, hi := 120.0, 4*3600.0
	sec := math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	return time.Duration(sec * float64(time.Second))
}

// BugDelay draws the time-to-failure of a buggy run.
func (b Bug) BugDelay(rng *rand.Rand) time.Duration {
	d := rng.ExpFloat64() * b.MeanDelaySec
	if d < 1 {
		d = 1
	}
	return time.Duration(d * float64(time.Second))
}
