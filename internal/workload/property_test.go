package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/errcat"
)

func TestDrawRuntimeWithinBoundsQuick(t *testing.T) {
	cat := errcat.Intrepid()
	g, err := New(DefaultSpec(1, 0.1), cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	maxRuntime := time.Duration(g.Spec().MaxRuntimeSec * float64(time.Second))
	f := func(seed int64, sizeIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := Sizes[int(sizeIdx)%len(Sizes)]
		for i := 0; i < 50; i++ {
			d := g.DrawRuntime(rng, size)
			if d < 10*time.Second || d > maxRuntime+time.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawRuntimeUnknownSizeFallsBack(t *testing.T) {
	cat := errcat.Intrepid()
	g, err := New(DefaultSpec(1, 0.1), cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Size 7 is not schedulable; the generator uses the width-1 bins.
	d := g.DrawRuntime(rng, 7)
	if d < 10*time.Second {
		t.Errorf("fallback runtime %v below floor", d)
	}
}

func TestSessionsClusterSubmissions(t *testing.T) {
	cat := errcat.Intrepid()
	g, err := New(DefaultSpec(1, 0.3), cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	// Submission sessions: a meaningful fraction of an executable's
	// consecutive submissions are hours apart, not uniformly spread over
	// the campaign (the structure behind Figure 7's histories).
	byExec := make(map[int][]time.Time)
	for _, s := range g.Submissions() {
		byExec[s.Exec] = append(byExec[s.Exec], s.At)
	}
	close6h, total := 0, 0
	for _, times := range byExec {
		for i := 1; i < len(times); i++ {
			total++
			if times[i].Sub(times[i-1]) < 6*time.Hour {
				close6h++
			}
		}
	}
	if total == 0 {
		t.Fatal("no multi-submission executables")
	}
	frac := float64(close6h) / float64(total)
	if frac < 0.3 {
		t.Errorf("only %.2f of consecutive submissions within 6h; sessions not clustering", frac)
	}
}

func TestWideExecutablesRarelyBuggy(t *testing.T) {
	cat := errcat.Intrepid()
	g, err := New(DefaultSpec(1, 1), cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	wideBuggy, wide, narrowBuggy, narrow := 0, 0, 0, 0
	for _, e := range g.Executables() {
		if e.Size >= 32 {
			wide++
			if e.Bug.Buggy() {
				wideBuggy++
			}
		} else {
			narrow++
			if e.Bug.Buggy() {
				narrowBuggy++
			}
		}
	}
	if wide == 0 || narrow == 0 {
		t.Fatal("degenerate population")
	}
	wideRate := float64(wideBuggy) / float64(wide)
	narrowRate := float64(narrowBuggy) / float64(narrow)
	if wideRate >= narrowRate {
		t.Errorf("wide buggy rate %.4f not below narrow %.4f (well-debugged capability codes)",
			wideRate, narrowRate)
	}
}
