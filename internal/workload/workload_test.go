package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/errcat"
)

func testGen(t *testing.T, seed int64, scale float64) *Generator {
	t.Helper()
	cat := errcat.Intrepid()
	g, err := New(DefaultSpec(seed, scale), cat.ByClass(errcat.ClassApplication))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorDeterminism(t *testing.T) {
	a := testGen(t, 1, 0.1)
	b := testGen(t, 1, 0.1)
	if len(a.Submissions()) != len(b.Submissions()) {
		t.Fatal("submission counts differ across identical seeds")
	}
	for i := range a.Submissions() {
		if a.Submissions()[i] != b.Submissions()[i] {
			t.Fatalf("submission %d differs", i)
		}
	}
	c := testGen(t, 2, 0.1)
	same := len(a.Submissions()) == len(c.Submissions())
	if same {
		identical := true
		for i := range a.Submissions() {
			if a.Submissions()[i] != c.Submissions()[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestSubmissionsSortedAndInRange(t *testing.T) {
	g := testGen(t, 1, 0.1)
	spec := g.Spec()
	end := spec.Start.Add(time.Duration(spec.Days) * 24 * time.Hour)
	subs := g.Submissions()
	if len(subs) == 0 {
		t.Fatal("no submissions")
	}
	for i, s := range subs {
		if i > 0 && s.At.Before(subs[i-1].At) {
			t.Fatal("submissions not time-sorted")
		}
		if s.At.Before(spec.Start) || !s.At.Before(end) {
			t.Fatalf("submission %d outside campaign: %v", i, s.At)
		}
		if s.Exec < 0 || s.Exec >= len(g.Executables()) {
			t.Fatalf("submission %d has bad exec index %d", i, s.Exec)
		}
		if s.Runtime < 10*time.Second || s.Runtime > time.Duration(spec.MaxRuntimeSec*float64(time.Second))+time.Second {
			t.Fatalf("submission %d runtime %v out of range", i, s.Runtime)
		}
	}
}

func TestSubmissionVolumeMatchesRate(t *testing.T) {
	g := testGen(t, 1, 0.1)
	spec := g.Spec()
	want := float64(spec.Days) * spec.JobsPerDay
	got := float64(len(g.Submissions()))
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("submissions = %v, want ~%v", got, want)
	}
}

func TestSizeMarginalsMatchTableVI(t *testing.T) {
	g := testGen(t, 1, 0.5)
	counts := map[int]int{}
	for _, s := range g.Submissions() {
		counts[g.Executables()[s.Exec].Size]++
	}
	total := len(g.Submissions())
	// Narrow jobs dominate: width 1 is ~2/3 of jobs on Intrepid. Wide-
	// user gating shifts some mass from wide to narrow, so bounds are loose.
	frac1 := float64(counts[1]) / float64(total)
	if frac1 < 0.5 || frac1 > 0.85 {
		t.Errorf("width-1 share = %v, want ~0.675", frac1)
	}
	if counts[32]+counts[64]+counts[80] == 0 {
		t.Error("no wide jobs generated")
	}
	if float64(counts[80])/float64(total) > 0.02 {
		t.Errorf("width-80 share too large: %v", counts[80])
	}
}

func TestRuntimeBinsFollowTableVI(t *testing.T) {
	g := testGen(t, 1, 0.5)
	// Width-1 jobs: Table VI row is 12282/7300/17339/9492 → bin 2
	// (1600-6400s) is the mode.
	bins := [4]int{}
	n := 0
	for _, s := range g.Submissions() {
		if g.Executables()[s.Exec].Size != 1 {
			continue
		}
		sec := s.Runtime.Seconds()
		switch {
		case sec < 400:
			bins[0]++
		case sec < 1600:
			bins[1]++
		case sec < 6400:
			bins[2]++
		default:
			bins[3]++
		}
		n++
	}
	if n == 0 {
		t.Fatal("no width-1 jobs")
	}
	if !(bins[2] > bins[0] && bins[2] > bins[1] && bins[2] > bins[3]) {
		t.Errorf("width-1 runtime bins = %v; mode should be bin 2", bins)
	}
}

func TestExecutablePopulation(t *testing.T) {
	g := testGen(t, 1, 0.5)
	execs := g.Executables()
	if len(execs) == 0 {
		t.Fatal("no executables")
	}
	users := map[string]bool{}
	projects := map[string]bool{}
	paths := map[string]bool{}
	buggy := 0
	for _, e := range execs {
		users[e.User] = true
		projects[e.Project] = true
		if paths[e.Path] {
			t.Fatalf("duplicate executable path %q", e.Path)
		}
		paths[e.Path] = true
		if e.Bug.Buggy() {
			buggy++
			if e.Bug.FailRuns < 1 || e.Bug.FailRuns > g.Spec().BugMaxFailRuns {
				t.Errorf("bug FailRuns = %d out of range", e.Bug.FailRuns)
			}
		}
		if e.Planned < 1 {
			t.Errorf("executable %q planned %d", e.Path, e.Planned)
		}
	}
	if len(users) < 100 {
		t.Errorf("only %d users", len(users))
	}
	if len(projects) < 30 {
		t.Errorf("only %d projects", len(projects))
	}
	frac := float64(buggy) / float64(len(execs))
	if frac < 0.005 || frac > 0.04 {
		t.Errorf("buggy fraction = %v, want ~0.015", frac)
	}
}

func TestResubmissionHeavyTail(t *testing.T) {
	g := testGen(t, 1, 1.0)
	// Mean submissions per executable ~7; a large minority single-shot.
	counts := map[int]int{}
	for _, s := range g.Submissions() {
		counts[s.Exec]++
	}
	single, multi, total := 0, 0, 0
	for _, n := range counts {
		total += n
		if n == 1 {
			single++
		} else {
			multi++
		}
	}
	mean := float64(total) / float64(len(counts))
	if mean < 3 || mean > 15 {
		t.Errorf("mean submissions/executable = %v, want ~7", mean)
	}
	if multi == 0 || single == 0 {
		t.Errorf("degenerate resubmission distribution: single=%d multi=%d", single, multi)
	}
}

func TestBugDelayMostlyUnderOneHour(t *testing.T) {
	g := testGen(t, 1, 0.1)
	b := Bug{Code: "x", MeanDelaySec: g.Spec().BugMeanDelaySec, FailRuns: 1}
	rng := newRand(9)
	under := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if b.BugDelay(rng) < time.Hour {
			under++
		}
	}
	if frac := float64(under) / n; frac < 0.70 {
		t.Errorf("bug delays under 1h = %v, want >= 0.70 (Obs. 11)", frac)
	}
}

func TestResubmitDelayRange(t *testing.T) {
	rng := newRand(3)
	for i := 0; i < 1000; i++ {
		d := ResubmitDelay(rng)
		if d < 2*time.Minute || d > 4*time.Hour+time.Second {
			t.Fatalf("resubmit delay %v out of range", d)
		}
	}
}

func TestNewErrors(t *testing.T) {
	cat := errcat.Intrepid()
	app := cat.ByClass(errcat.ClassApplication)
	bad := DefaultSpec(1, 0.1)
	bad.Days = 0
	if _, err := New(bad, app); err == nil {
		t.Error("zero days accepted")
	}
	bad = DefaultSpec(1, 0.1)
	bad.NumUsers = 0
	if _, err := New(bad, app); err == nil {
		t.Error("zero users accepted")
	}
	bad = DefaultSpec(1, 0.1)
	if _, err := New(bad, nil); err == nil {
		t.Error("buggy fraction without app codes accepted")
	}
}

// newRand is a test helper for a deterministic rng.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
