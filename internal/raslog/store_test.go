package raslog

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func mkRecord(id int64, sev Severity, comp Component, code, loc string, at time.Time) Record {
	return Record{
		RecID: id, MsgID: "M", Component: comp, SubComponent: "S",
		ErrCode: code, Severity: sev, EventTime: at, Flags: "F",
		Location: loc, Serial: "SN", Message: "msg",
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	t0 := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		mkRecord(1, SevFatal, CompKernel, "a", "R00-M0", t0),
		mkRecord(2, SevInfo, CompMMCS, "b", "R00-M1", t0.Add(time.Second)),
		mkRecord(3, SevWarning, CompCard, "c", "R01", t0.Add(2*time.Second)),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReaderSkipsBlankAndReportsLine(t *testing.T) {
	line := mkRecord(1, SevFatal, CompKernel, "a", "R00-M0", time.Unix(0, 0).UTC()).MarshalLine()
	in := line + "\n\n" + "garbage\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	_, err := r.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("want parse error, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

func TestStoreOrderingAndQueries(t *testing.T) {
	t0 := time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		mkRecord(3, SevFatal, CompKernel, "x", "R00-M1", t0.Add(2*time.Hour)),
		mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", t0),
		mkRecord(2, SevInfo, CompMMCS, "y", "R00-M0", t0.Add(time.Hour)),
		mkRecord(4, SevFatal, CompCard, "z", "R01", t0.Add(3*time.Hour)),
	}
	s := NewStore(recs)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i].EventTime.Before(all[i-1].EventTime) {
			t.Fatal("store not time-ordered")
		}
	}
	if got := len(s.Fatal()); got != 3 {
		t.Errorf("Fatal count = %d, want 3", got)
	}
	if got := s.BySeverity()[SevFatal]; got != 3 {
		t.Errorf("BySeverity[FATAL] = %d", got)
	}
	if got := s.ByComponent(SevFatal)[CompKernel]; got != 2 {
		t.Errorf("ByComponent(FATAL)[KERNEL] = %d", got)
	}
	codes := s.ErrCodes(SevFatal)
	if len(codes) != 2 || codes[0] != "x" || codes[1] != "z" {
		t.Errorf("ErrCodes(FATAL) = %v", codes)
	}
	tr := s.TimeRange(t0.Add(30*time.Minute), t0.Add(150*time.Minute))
	if len(tr) != 2 {
		t.Errorf("TimeRange len = %d, want 2", len(tr))
	}
	first, last := s.Span()
	if !first.Equal(t0) || !last.Equal(t0.Add(3*time.Hour)) {
		t.Errorf("Span = %v..%v", first, last)
	}
}

func TestStoreSpanEmpty(t *testing.T) {
	s := NewStore(nil)
	first, last := s.Span()
	if !first.IsZero() || !last.IsZero() {
		t.Error("empty span should be zero")
	}
}

func TestCountByMidplane(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	recs := []Record{
		mkRecord(1, SevFatal, CompKernel, "x", "R00-M0", t0),         // mp 0
		mkRecord(2, SevFatal, CompKernel, "x", "R00-M0-N03-J01", t0), // mp 0
		mkRecord(3, SevFatal, CompKernel, "x", "R01", t0),            // mps 2,3
		mkRecord(4, SevFatal, CompKernel, "x", "not-a-location", t0), // none
		mkRecord(5, SevInfo, CompKernel, "x", "R00-M1", t0),          // filtered out
	}
	s := NewStore(recs)
	counts := s.CountByMidplane(SevFatal)
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 || counts[3] != 1 {
		t.Errorf("counts[0..3] = %d %d %d %d", counts[0], counts[1], counts[2], counts[3])
	}
}
