package raslog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		RecID:        13718190,
		MsgID:        "CARD_0411",
		Component:    CompCard,
		SubComponent: "PALOMINO_S",
		ErrCode:      "DetectedClockCardErrors",
		Severity:     SevFatal,
		EventTime:    time.Date(2008, 4, 14, 15, 8, 12, 285324000, time.UTC),
		Flags:        "DefaultControlEventListener",
		Location:     "R04-M0-S",
		Serial:       "44V4173YL11K8021017",
		Message:      "An error(s) was detected by the Clock card : Error=Loss of reference input",
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	line := r.MarshalLine()
	got, err := UnmarshalLine(line)
	if err != nil {
		t.Fatalf("UnmarshalLine: %v", err)
	}
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordRoundTripEscaping(t *testing.T) {
	r := sampleRecord()
	r.Message = `pipe | in message \ and backslash` + "\nnewline"
	r.SubComponent = "a|b"
	got, err := UnmarshalLine(r.MarshalLine())
	if err != nil {
		t.Fatalf("UnmarshalLine: %v", err)
	}
	if got != r {
		t.Errorf("escaped round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if strings.Contains(r.MarshalLine(), "\n") {
		t.Error("marshaled line contains raw newline")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	comps := []Component{CompApplication, CompKernel, CompMC, CompMMCS, CompBareMetal, CompCard, CompDiags}
	sevs := []Severity{SevInfo, SevWarning, SevError, SevFatal}
	f := func(seed int64, msg string) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Record{
			RecID:        rng.Int63n(1 << 40),
			MsgID:        "KERN_0802",
			Component:    comps[rng.Intn(len(comps))],
			SubComponent: "SUB",
			ErrCode:      "code_x",
			Severity:     sevs[rng.Intn(len(sevs))],
			EventTime:    time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)/1000*1000).UTC(),
			Flags:        "L",
			Location:     "R00-M0",
			Serial:       "SN",
			Message:      msg,
		}
		got, err := UnmarshalLine(r.MarshalLine())
		if err != nil {
			return false
		}
		// EventTime is serialized at microsecond precision.
		return got.Message == r.Message && got.RecID == r.RecID &&
			got.Severity == r.Severity && got.Component == r.Component &&
			got.EventTime.Equal(r.EventTime.Truncate(time.Microsecond))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalLineErrors(t *testing.T) {
	bad := []string{
		"",
		"1|2|3",
		"x|MSG|KERNEL|S|E|FATAL|2008-04-14-15.08.12.285324|F|L|SN|M",
		"1|MSG|NOSUCH|S|E|FATAL|2008-04-14-15.08.12.285324|F|L|SN|M",
		"1|MSG|KERNEL|S|E|NOSUCH|2008-04-14-15.08.12.285324|F|L|SN|M",
		"1|MSG|KERNEL|S|E|FATAL|yesterday|F|L|SN|M",
	}
	for _, line := range bad {
		if _, err := UnmarshalLine(line); err == nil {
			t.Errorf("UnmarshalLine(%q): want error", line)
		}
	}
}

func TestSeverityParse(t *testing.T) {
	for _, s := range []Severity{SevDebug, SevTrace, SevInfo, SevWarning, SevError, SevFatal} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("lowercase severity accepted")
	}
	if SevUnknown.String() != "UNKNOWN" {
		t.Error("SevUnknown.String()")
	}
}

func TestComponentParse(t *testing.T) {
	for _, c := range Components {
		got, err := ParseComponent(c.String())
		if err != nil || got != c {
			t.Errorf("ParseComponent(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseComponent("OTHER"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestEventTimeFormat(t *testing.T) {
	in := "2008-04-14-15.08.12.285324"
	tt, err := ParseEventTime(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatEventTime(tt); got != in {
		t.Errorf("FormatEventTime = %q, want %q", got, in)
	}
}

func TestFatal(t *testing.T) {
	r := sampleRecord()
	if !r.Fatal() {
		t.Error("sample record should be fatal")
	}
	r.Severity = SevWarning
	if r.Fatal() {
		t.Error("warning record reported fatal")
	}
}
