package raslog

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseRecord drives UnmarshalLine with arbitrary lines. The
// contract under fuzzing: malformed input returns an error (never
// panics), and any line the parser accepts must re-marshal to a line
// the parser accepts again with an identical record — the stability the
// filter cascade and the golden report rely on.
func FuzzParseRecord(f *testing.F) {
	// Seed corpus: the round-trip fixtures plus near-miss malformed lines.
	f.Add(sampleRecord().MarshalLine())
	esc := sampleRecord()
	esc.Message = `pipe | in message \ and backslash` + "\nnewline"
	esc.SubComponent = "a|b"
	f.Add(esc.MarshalLine())
	bare := Record{Severity: SevFatal, Component: CompKernel, EventTime: time.Unix(0, 0).UTC()}
	f.Add(bare.MarshalLine())
	f.Add("")
	f.Add("1|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn") // 10 fields
	f.Add("x|M|KERNEL|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg")
	f.Add("1|M|NOPE|s|c|FATAL|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg")
	f.Add("1|M|KERNEL|s|c|LOUD|2008-04-14-15.08.12.285324|f|R00-M0|sn|msg")
	f.Add("1|M|KERNEL|s|c|FATAL|not-a-time|f|R00-M0|sn|msg")
	f.Add(strings.Repeat("|", 10))
	f.Add(`1|\p|KERNEL|\\|\n|FATAL|2008-04-14-15.08.12.285324|\x|R00|sn|m`)

	f.Fuzz(func(t *testing.T, line string) {
		r, err := UnmarshalLine(line)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		line2 := r.MarshalLine()
		r2, err := UnmarshalLine(line2)
		if err != nil {
			t.Fatalf("re-parse of own marshaling failed: %v\ninput: %q\nmarshaled: %q", err, line, line2)
		}
		if r2 != r {
			t.Fatalf("unstable round trip:\ninput: %q\nfirst: %+v\nsecond: %+v", line, r, r2)
		}
	})
}
