package raslog

import (
	"bufio"
	"math/rand"
	"strings"
	"testing"
)

// benchCorpus builds a realistic in-memory RAS log: a few thousand
// records drawn from a small vocabulary of MsgIDs/ErrCodes/locations,
// the redundancy profile the intern table is designed for.
func benchCorpus(n int) string {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for i := 0; i < n; i++ {
		r := randomRecord(rng)
		r.RecID = int64(i + 1)
		b.WriteString(legacyMarshalLine(r))
		b.WriteString("\n")
	}
	return b.String()
}

const benchRecords = 8192

// BenchmarkRASUnmarshal measures the streaming Reader's per-record
// decode cost (scan + parse + intern), the number the ≥10× allocs/op
// acceptance criterion is judged on.
func BenchmarkRASUnmarshal(b *testing.B) {
	in := benchCorpus(benchRecords)
	b.SetBytes(int64(len(in) / benchRecords))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(strings.NewReader(in))
	for i := 0; i < b.N; i++ {
		if !r.Next() {
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			r = NewReader(strings.NewReader(in))
			b.StartTimer()
			if !r.Next() {
				b.Fatal(r.Err())
			}
		}
	}
}

// BenchmarkRASUnmarshalFields measures the raw field scanner without a
// reader or intern table: every retained field is a fresh allocation.
func BenchmarkRASUnmarshalFields(b *testing.B) {
	line := []byte(sampleRecord().MarshalLine())
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	b.ResetTimer()
	var r Record
	for i := 0; i < b.N; i++ {
		if err := r.UnmarshalFields(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRASUnmarshalLegacy is the pre-rewrite baseline: a
// bufio.Scanner Text() walk through the strings.Split parser.
func BenchmarkRASUnmarshalLegacy(b *testing.B) {
	in := benchCorpus(benchRecords)
	b.SetBytes(int64(len(in) / benchRecords))
	b.ReportAllocs()
	b.ResetTimer()
	s := bufio.NewScanner(strings.NewReader(in))
	for i := 0; i < b.N; i++ {
		if !s.Scan() {
			b.StopTimer()
			s = bufio.NewScanner(strings.NewReader(in))
			b.StartTimer()
			if !s.Scan() {
				b.Fatal("empty corpus")
			}
		}
		if _, err := legacyUnmarshalLine(s.Text()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRASMarshal measures AppendLine into a reused buffer.
func BenchmarkRASMarshal(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, 0, 256)
	b.SetBytes(int64(len(r.MarshalLine())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendLine(buf[:0])
	}
	_ = buf
}

// BenchmarkRASMarshalLegacy is the Sprintf+Join baseline for
// BenchmarkRASMarshal.
func BenchmarkRASMarshalLegacy(b *testing.B) {
	r := sampleRecord()
	b.SetBytes(int64(len(r.MarshalLine())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = legacyMarshalLine(r)
	}
}

// BenchmarkRASDecodeParallel measures the sharded streaming decode
// end-to-end (chunking + parse + merge) at GOMAXPROCS workers.
func BenchmarkRASDecodeParallel(b *testing.B) {
	in := benchCorpus(benchRecords)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := ReadAllParallel(strings.NewReader(in), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != benchRecords {
			b.Fatalf("decoded %d records, want %d", len(recs), benchRecords)
		}
	}
}
