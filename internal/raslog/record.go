// Package raslog models the Blue Gene/P RAS (Reliability, Availability,
// Serviceability) event log produced by the Core Monitoring and Control
// System (CMCS): the record schema, the event-time format, a streaming
// line-oriented serialization, and an in-memory store with the query
// operations the co-analysis pipeline needs.
//
// The line codec is allocation-conscious: UnmarshalFields parses a
// []byte line with an index-based field scanner (no strings.Split, no
// fmt scanning), AppendLine marshals into a caller-supplied buffer, and
// the streaming Reader amortizes the remaining per-record string
// allocations through a field intern table — RAS streams repeat MsgIDs,
// ERRCODEs, locations and flags millions of times.
package raslog

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Severity is the RAS severity ladder. DEBUG and TRACE exist in the
// CMCS schema but do not occur in the Intrepid log studied by the
// paper; only FATAL presumably leads to application or system crash.
type Severity int

const (
	// SevUnknown is the zero value.
	SevUnknown Severity = iota
	// SevDebug designates code-debugging information (absent on Intrepid).
	SevDebug
	// SevTrace designates tracing information (absent on Intrepid).
	SevTrace
	// SevInfo reports system-software progress, e.g. automatic recovery.
	SevInfo
	// SevWarning reports recoverable soft errors, e.g. ECC-correctable
	// single-symbol errors.
	SevWarning
	// SevError reports harmful events that may still let the application
	// continue, e.g. failure of a redundant component.
	SevError
	// SevFatal reports events that presumably crash the application or
	// system. The co-analysis pipeline consumes only these.
	SevFatal
)

var severityNames = map[Severity]string{
	SevDebug: "DEBUG", SevTrace: "TRACE", SevInfo: "INFO",
	SevWarning: "WARNING", SevError: "ERROR", SevFatal: "FATAL",
}

// String returns the CMCS spelling of the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return "UNKNOWN"
}

// parseSeverityBytes matches the CMCS severity spellings without
// allocating (the compiler optimizes the string(b) switch).
func parseSeverityBytes(b []byte) (Severity, bool) {
	switch string(b) {
	case "DEBUG":
		return SevDebug, true
	case "TRACE":
		return SevTrace, true
	case "INFO":
		return SevInfo, true
	case "WARNING":
		return SevWarning, true
	case "ERROR":
		return SevError, true
	case "FATAL":
		return SevFatal, true
	}
	return SevUnknown, false
}

// ParseSeverity parses the CMCS spelling of a severity.
func ParseSeverity(s string) (Severity, error) {
	if sev, ok := parseSeverityBytes([]byte(s)); ok {
		return sev, nil
	}
	return SevUnknown, fmt.Errorf("raslog: unknown severity %q", s)
}

// Component is the software component that detected and reported an
// event.
type Component int

const (
	// CompUnknown is the zero value.
	CompUnknown Component = iota
	// CompApplication indicates the running job.
	CompApplication
	// CompKernel indicates the OS kernel domain (compute-node kernel).
	CompKernel
	// CompMC designates the machine controller.
	CompMC
	// CompMMCS designates the control system on the service node.
	CompMMCS
	// CompBareMetal designates service-related facilities.
	CompBareMetal
	// CompCard indicates a card controller.
	CompCard
	// CompDiags refers to diagnostic functions on compute or service nodes.
	CompDiags
)

var componentNames = map[Component]string{
	CompApplication: "APPLICATION", CompKernel: "KERNEL", CompMC: "MC",
	CompMMCS: "MMCS", CompBareMetal: "BAREMETAL", CompCard: "CARD",
	CompDiags: "DIAGS",
}

// Components lists all reporting components in a stable order.
var Components = []Component{
	CompApplication, CompKernel, CompMC, CompMMCS, CompBareMetal, CompCard, CompDiags,
}

// String returns the CMCS spelling of the component.
func (c Component) String() string {
	if n, ok := componentNames[c]; ok {
		return n
	}
	return "UNKNOWN"
}

// parseComponentBytes matches the CMCS component spellings without
// allocating.
func parseComponentBytes(b []byte) (Component, bool) {
	switch string(b) {
	case "APPLICATION":
		return CompApplication, true
	case "KERNEL":
		return CompKernel, true
	case "MC":
		return CompMC, true
	case "MMCS":
		return CompMMCS, true
	case "BAREMETAL":
		return CompBareMetal, true
	case "CARD":
		return CompCard, true
	case "DIAGS":
		return CompDiags, true
	}
	return CompUnknown, false
}

// ParseComponent parses the CMCS spelling of a component.
func ParseComponent(s string) (Component, error) {
	if c, ok := parseComponentBytes([]byte(s)); ok {
		return c, nil
	}
	return CompUnknown, fmt.Errorf("raslog: unknown component %q", s)
}

// EventTimeLayout is the CMCS timestamp format, e.g.
// "2008-04-14-15.08.12.285324".
const EventTimeLayout = "2006-01-02-15.04.05.000000"

// FormatEventTime renders t in the CMCS timestamp format (UTC).
func FormatEventTime(t time.Time) string {
	return t.UTC().Format(EventTimeLayout)
}

// ParseEventTime parses a CMCS timestamp.
func ParseEventTime(s string) (time.Time, error) {
	return time.Parse(EventTimeLayout, s)
}

// parseEventTimeBytes is the allocation-free fast path for the
// fixed-width CMCS timestamp. It accepts exactly what time.Parse
// accepts for EventTimeLayout (fixed-width digits, in-range calendar
// fields); callers fall back to ParseEventTime when it reports !ok.
func parseEventTimeBytes(b []byte) (time.Time, bool) {
	// 2006-01-02-15.04.05.000000 — 26 bytes, separators at fixed offsets.
	if len(b) != 26 || b[4] != '-' || b[7] != '-' || b[10] != '-' || b[13] != '.' || b[16] != '.' || b[19] != '.' {
		return time.Time{}, false
	}
	year, ok1 := atoiFixed(b[0:4])
	month, ok2 := atoiFixed(b[5:7])
	day, ok3 := atoiFixed(b[8:10])
	hour, ok4 := atoiFixed(b[11:13])
	min, ok5 := atoiFixed(b[14:16])
	sec, ok6 := atoiFixed(b[17:19])
	micro, ok7 := atoiFixed(b[20:26])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	t := time.Date(year, time.Month(month), day, hour, min, sec, micro*1000, time.UTC)
	// time.Date normalizes out-of-range days (Feb 30 → Mar 2); time.Parse
	// rejects them, so detect normalization and report !ok.
	if t.Day() != day || t.Month() != time.Month(month) || t.Year() != year {
		return time.Time{}, false
	}
	return t, true
}

// atoiFixed parses an all-digit field.
func atoiFixed(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// parseInt64Bytes parses a full-field base-10 integer with optional
// sign. It is stricter than the fmt scanning it replaced (no leading
// whitespace, no trailing junk); marshaled logs were never affected.
func parseInt64Bytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if len(b) == 1 {
			return 0, false
		}
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n > (1<<63)/10 { // would overflow uint64 below
			return 0, false
		}
		n = n*10 + uint64(c)
		if neg && n > 1<<63 {
			return 0, false
		}
		if !neg && n > 1<<63-1 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// Record is one RAS event record, mirroring the fields of the Intrepid
// DB2 schema the paper enumerates (Table II).
type Record struct {
	// RecID is the sequence number of the record in the log.
	RecID int64
	// MsgID indicates the source of the message, e.g. "KERN_0802".
	MsgID string
	// Component is the reporting software component.
	Component Component
	// SubComponent is the functional area within the component.
	SubComponent string
	// ErrCode is the fine-grained event type, e.g.
	// "_bgp_err_cns_ras_storm_fatal". Events sharing an ErrCode are one
	// event type for the purposes of the methodology.
	ErrCode string
	// Severity is the reported severity level.
	Severity Severity
	// EventTime is the start time of the event.
	EventTime time.Time
	// Flags carries the control-system event listener, e.g.
	// "DefaultControlEventListener".
	Flags string
	// Location is the raw CMCS location code where the event occurred,
	// e.g. "R23-M0-N08-J09".
	Location string
	// Serial is the serial number of the implicated hardware.
	Serial string
	// Message is a brief prose description of the event condition.
	Message string
}

// Fatal reports whether the record carries FATAL severity.
func (r Record) Fatal() bool { return r.Severity == SevFatal }

const numFields = 11

// fieldSep separates fields in the line serialization. The message
// field is last so embedded separators would be unambiguous anyway, but
// we escape them for robustness.
const fieldSep = "|"

// appendEscaped appends s with the field escaping: backslash doubled,
// '|' as `\p`, newline as `\n`.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '|':
			dst = append(dst, '\\', 'p')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// unescapeInto decodes the field escaping of b into dst (reused as
// scratch) and returns the decoded bytes. The escaping rules mirror
// appendEscaped, with the historical leniencies kept: an unknown escape
// drops the backslash, a trailing lone backslash survives.
func unescapeInto(dst []byte, b []byte) []byte {
	dst = dst[:0]
	for i := 0; i < len(b); i++ {
		if b[i] == '\\' && i+1 < len(b) {
			switch b[i+1] {
			case 'p':
				dst = append(dst, '|')
			case 'n':
				dst = append(dst, '\n')
			case '\\':
				dst = append(dst, '\\')
			default:
				dst = append(dst, b[i+1])
			}
			i++
			continue
		}
		dst = append(dst, b[i])
	}
	return dst
}

// intern deduplicates the retained field strings of a decode stream.
// RAS logs repeat MsgIDs, ERRCODEs, locations, flags and even messages
// millions of times; handing out one shared string per distinct value
// removes nearly every per-record allocation. The table is bounded so
// adversarial input degrades to plain allocation, never to unbounded
// memory.
type intern struct {
	m map[string]string
}

const (
	internMaxEntries  = 1 << 15
	internMaxValueLen = 512
)

func newIntern() *intern { return &intern{m: make(map[string]string, 256)} }

// str returns a string for b, shared across records when possible.
func (it *intern) str(b []byte) string {
	if it == nil || len(b) > internMaxValueLen {
		return string(b)
	}
	if s, ok := it.m[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(it.m) < internMaxEntries {
		it.m[s] = s
	}
	return s
}

// fieldScratch is the per-decoder reusable state: the unescape buffer
// and the intern table.
type fieldScratch struct {
	buf []byte
	it  *intern
}

// str decodes field b (unescaping only when needed) into a retained
// string.
func (fs *fieldScratch) str(b []byte) string {
	if bytes.IndexByte(b, '\\') < 0 {
		return fs.it.str(b)
	}
	fs.buf = unescapeInto(fs.buf, b)
	return fs.it.str(fs.buf)
}

// AppendLine appends the record's one-line serialization to dst and
// returns the extended buffer. It allocates only when dst lacks
// capacity; the output is byte-identical to MarshalLine.
func (r *Record) AppendLine(dst []byte) []byte {
	dst = strconv.AppendInt(dst, r.RecID, 10)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.MsgID)
	dst = append(dst, '|')
	dst = append(dst, r.Component.String()...)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.SubComponent)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.ErrCode)
	dst = append(dst, '|')
	dst = append(dst, r.Severity.String()...)
	dst = append(dst, '|')
	dst = r.EventTime.UTC().AppendFormat(dst, EventTimeLayout)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.Flags)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.Location)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.Serial)
	dst = append(dst, '|')
	dst = appendEscaped(dst, r.Message)
	return dst
}

// MarshalLine renders the record as one line of the log file.
func (r Record) MarshalLine() string {
	return string(r.AppendLine(make([]byte, 0, 160)))
}

// ErrBadRecord reports an unparseable RAS log line.
var ErrBadRecord = errors.New("raslog: bad record line")

// UnmarshalFields parses one line of the log file into r using an
// index-based field scanner over the raw bytes: no field slice, no fmt
// scanning, no intermediate strings except the retained fields. The
// streaming Reader amortizes even those through its intern table.
func (r *Record) UnmarshalFields(line []byte) error {
	return r.unmarshalFields(line, &fieldScratch{})
}

func (r *Record) unmarshalFields(line []byte, fs *fieldScratch) error {
	var f [numFields][]byte
	n := 0
	rest := line
	for {
		i := bytes.IndexByte(rest, '|')
		if i < 0 {
			if n < numFields {
				f[n] = rest
			}
			n++
			break
		}
		if n < numFields {
			f[n] = rest[:i]
		}
		n++
		rest = rest[i+1:]
	}
	if n != numFields {
		return fmt.Errorf("%w: %d fields, want %d", ErrBadRecord, n, numFields)
	}
	id, ok := parseInt64Bytes(f[0])
	if !ok {
		return fmt.Errorf("%w: recid %q", ErrBadRecord, f[0])
	}
	comp, ok := parseComponentBytes(f[2])
	if !ok {
		return fmt.Errorf("%w: raslog: unknown component %q", ErrBadRecord, f[2])
	}
	sev, ok := parseSeverityBytes(f[5])
	if !ok {
		return fmt.Errorf("%w: raslog: unknown severity %q", ErrBadRecord, f[5])
	}
	t, ok := parseEventTimeBytes(f[6])
	if !ok {
		// The fast path is exact for well-formed timestamps; delegate
		// near-misses to time.Parse so acceptance matches it bit for bit.
		var err error
		if t, err = ParseEventTime(string(f[6])); err != nil {
			return fmt.Errorf("%w: event time %q", ErrBadRecord, f[6])
		}
	}
	r.RecID = id
	r.Component = comp
	r.Severity = sev
	r.EventTime = t
	r.MsgID = fs.str(f[1])
	r.SubComponent = fs.str(f[3])
	r.ErrCode = fs.str(f[4])
	r.Flags = fs.str(f[7])
	r.Location = fs.str(f[8])
	r.Serial = fs.str(f[9])
	r.Message = fs.str(f[10])
	return nil
}

// UnmarshalLine parses one line of the log file.
func UnmarshalLine(line string) (Record, error) {
	var r Record
	if err := r.UnmarshalFields([]byte(line)); err != nil {
		return Record{}, err
	}
	return r, nil
}
