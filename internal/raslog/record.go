// Package raslog models the Blue Gene/P RAS (Reliability, Availability,
// Serviceability) event log produced by the Core Monitoring and Control
// System (CMCS): the record schema, the event-time format, a streaming
// line-oriented serialization, and an in-memory store with the query
// operations the co-analysis pipeline needs.
package raslog

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Severity is the RAS severity ladder. DEBUG and TRACE exist in the
// CMCS schema but do not occur in the Intrepid log studied by the
// paper; only FATAL presumably leads to application or system crash.
type Severity int

const (
	// SevUnknown is the zero value.
	SevUnknown Severity = iota
	// SevDebug designates code-debugging information (absent on Intrepid).
	SevDebug
	// SevTrace designates tracing information (absent on Intrepid).
	SevTrace
	// SevInfo reports system-software progress, e.g. automatic recovery.
	SevInfo
	// SevWarning reports recoverable soft errors, e.g. ECC-correctable
	// single-symbol errors.
	SevWarning
	// SevError reports harmful events that may still let the application
	// continue, e.g. failure of a redundant component.
	SevError
	// SevFatal reports events that presumably crash the application or
	// system. The co-analysis pipeline consumes only these.
	SevFatal
)

var severityNames = map[Severity]string{
	SevDebug: "DEBUG", SevTrace: "TRACE", SevInfo: "INFO",
	SevWarning: "WARNING", SevError: "ERROR", SevFatal: "FATAL",
}

// String returns the CMCS spelling of the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return "UNKNOWN"
}

// ParseSeverity parses the CMCS spelling of a severity.
func ParseSeverity(s string) (Severity, error) {
	for sev, name := range severityNames {
		if name == s {
			return sev, nil
		}
	}
	return SevUnknown, fmt.Errorf("raslog: unknown severity %q", s)
}

// Component is the software component that detected and reported an
// event.
type Component int

const (
	// CompUnknown is the zero value.
	CompUnknown Component = iota
	// CompApplication indicates the running job.
	CompApplication
	// CompKernel indicates the OS kernel domain (compute-node kernel).
	CompKernel
	// CompMC designates the machine controller.
	CompMC
	// CompMMCS designates the control system on the service node.
	CompMMCS
	// CompBareMetal designates service-related facilities.
	CompBareMetal
	// CompCard indicates a card controller.
	CompCard
	// CompDiags refers to diagnostic functions on compute or service nodes.
	CompDiags
)

var componentNames = map[Component]string{
	CompApplication: "APPLICATION", CompKernel: "KERNEL", CompMC: "MC",
	CompMMCS: "MMCS", CompBareMetal: "BAREMETAL", CompCard: "CARD",
	CompDiags: "DIAGS",
}

// Components lists all reporting components in a stable order.
var Components = []Component{
	CompApplication, CompKernel, CompMC, CompMMCS, CompBareMetal, CompCard, CompDiags,
}

// String returns the CMCS spelling of the component.
func (c Component) String() string {
	if n, ok := componentNames[c]; ok {
		return n
	}
	return "UNKNOWN"
}

// ParseComponent parses the CMCS spelling of a component.
func ParseComponent(s string) (Component, error) {
	for c, name := range componentNames {
		if name == s {
			return c, nil
		}
	}
	return CompUnknown, fmt.Errorf("raslog: unknown component %q", s)
}

// EventTimeLayout is the CMCS timestamp format, e.g.
// "2008-04-14-15.08.12.285324".
const EventTimeLayout = "2006-01-02-15.04.05.000000"

// FormatEventTime renders t in the CMCS timestamp format (UTC).
func FormatEventTime(t time.Time) string {
	return t.UTC().Format(EventTimeLayout)
}

// ParseEventTime parses a CMCS timestamp.
func ParseEventTime(s string) (time.Time, error) {
	return time.Parse(EventTimeLayout, s)
}

// Record is one RAS event record, mirroring the fields of the Intrepid
// DB2 schema the paper enumerates (Table II).
type Record struct {
	// RecID is the sequence number of the record in the log.
	RecID int64
	// MsgID indicates the source of the message, e.g. "KERN_0802".
	MsgID string
	// Component is the reporting software component.
	Component Component
	// SubComponent is the functional area within the component.
	SubComponent string
	// ErrCode is the fine-grained event type, e.g.
	// "_bgp_err_cns_ras_storm_fatal". Events sharing an ErrCode are one
	// event type for the purposes of the methodology.
	ErrCode string
	// Severity is the reported severity level.
	Severity Severity
	// EventTime is the start time of the event.
	EventTime time.Time
	// Flags carries the control-system event listener, e.g.
	// "DefaultControlEventListener".
	Flags string
	// Location is the raw CMCS location code where the event occurred,
	// e.g. "R23-M0-N08-J09".
	Location string
	// Serial is the serial number of the implicated hardware.
	Serial string
	// Message is a brief prose description of the event condition.
	Message string
}

// Fatal reports whether the record carries FATAL severity.
func (r Record) Fatal() bool { return r.Severity == SevFatal }

const numFields = 11

// fieldSep separates fields in the line serialization. The message
// field is last so embedded separators would be unambiguous anyway, but
// we escape them for robustness.
const fieldSep = "|"

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, fieldSep, `\p`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'p':
				b.WriteString(fieldSep)
			case 'n':
				b.WriteString("\n")
			case '\\':
				b.WriteString(`\`)
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// MarshalLine renders the record as one line of the log file.
func (r Record) MarshalLine() string {
	fields := []string{
		fmt.Sprintf("%d", r.RecID),
		escape(r.MsgID),
		r.Component.String(),
		escape(r.SubComponent),
		escape(r.ErrCode),
		r.Severity.String(),
		FormatEventTime(r.EventTime),
		escape(r.Flags),
		escape(r.Location),
		escape(r.Serial),
		escape(r.Message),
	}
	return strings.Join(fields, fieldSep)
}

// ErrBadRecord reports an unparseable RAS log line.
var ErrBadRecord = errors.New("raslog: bad record line")

// UnmarshalLine parses one line of the log file.
func UnmarshalLine(line string) (Record, error) {
	parts := strings.Split(line, fieldSep)
	if len(parts) != numFields {
		return Record{}, fmt.Errorf("%w: %d fields, want %d", ErrBadRecord, len(parts), numFields)
	}
	var r Record
	if _, err := fmt.Sscanf(parts[0], "%d", &r.RecID); err != nil {
		return Record{}, fmt.Errorf("%w: recid %q", ErrBadRecord, parts[0])
	}
	r.MsgID = unescape(parts[1])
	comp, err := ParseComponent(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	r.Component = comp
	r.SubComponent = unescape(parts[3])
	r.ErrCode = unescape(parts[4])
	sev, err := ParseSeverity(parts[5])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	r.Severity = sev
	t, err := ParseEventTime(parts[6])
	if err != nil {
		return Record{}, fmt.Errorf("%w: event time %q", ErrBadRecord, parts[6])
	}
	r.EventTime = t
	r.Flags = unescape(parts[7])
	r.Location = unescape(parts[8])
	r.Serial = unescape(parts[9])
	r.Message = unescape(parts[10])
	return r, nil
}
