package raslog

import (
	"fmt"
	"io"

	"repro/internal/linescan"
)

// ReadAllParallel decodes a RAS log stream with workers parallel shards
// (0 = GOMAXPROCS, 1 = sequential; the module-wide convention). The
// stream is cut into line-aligned chunks, each shard parses its chunks
// with its own intern table, and the results merge in chunk order — the
// returned records and error are byte-identical to ReadAll on the same
// input for any worker count.
func ReadAllParallel(r io.Reader, workers int) ([]Record, error) {
	return ReadMatchingParallel(r, workers, nil)
}

// ReadMatchingParallel is ReadAllParallel with a per-record filter
// applied inside the shards, so records the caller would drop (e.g.
// everything below FATAL in the co-analysis pipeline) never reach the
// merged slice. A nil keep retains every record. keep runs concurrently
// and must not touch shared mutable state.
func ReadMatchingParallel(r io.Reader, workers int, keep func(*Record) bool) ([]Record, error) {
	return linescan.DecodeAll(r, linescan.Options{Workers: workers}, func() linescan.ShardFunc[Record] {
		fs := fieldScratch{it: newIntern()}
		return func(chunk []byte, firstLine int) ([]Record, error) {
			var out []Record
			err := linescan.ForEachLine(chunk, firstLine, func(line []byte, n int) error {
				if len(line) == 0 {
					return nil
				}
				var rec Record
				if err := rec.unmarshalFields(line, &fs); err != nil {
					return fmt.Errorf("line %d: %w", n, err)
				}
				if keep == nil || keep(&rec) {
					out = append(out, rec)
				}
				return nil
			})
			return out, err
		}
	})
}
