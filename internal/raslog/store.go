package raslog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bgp"
)

// Writer streams records to an underlying io.Writer, one line each.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record. Errors are sticky.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(r.MarshalLine()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams records from an underlying io.Reader.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 4*1024*1024)
	return &Reader{s: s}
}

// Read returns the next record, or io.EOF at end of input.
func (r *Reader) Read() (Record, error) {
	for r.s.Scan() {
		r.line++
		line := r.s.Text()
		if line == "" {
			continue
		}
		rec, err := UnmarshalLine(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Store is an in-memory ordered collection of RAS records with the
// query operations the pipeline needs. It stands in for the DB2
// backend of the real CMCS.
type Store struct {
	recs []Record
}

// NewStore returns a store over recs; the records are sorted by
// (EventTime, RecID) so downstream interarrival analysis sees a
// time-ordered stream.
func NewStore(recs []Record) *Store {
	s := &Store{recs: append([]Record(nil), recs...)}
	sort.SliceStable(s.recs, func(i, j int) bool {
		if !s.recs[i].EventTime.Equal(s.recs[j].EventTime) {
			return s.recs[i].EventTime.Before(s.recs[j].EventTime)
		}
		return s.recs[i].RecID < s.recs[j].RecID
	})
	return s
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.recs) }

// All returns the time-ordered records (shared slice; callers must not
// mutate).
func (s *Store) All() []Record { return s.recs }

// Fatal returns the time-ordered records with FATAL severity.
func (s *Store) Fatal() []Record {
	var out []Record
	for _, r := range s.recs {
		if r.Fatal() {
			out = append(out, r)
		}
	}
	return out
}

// BySeverity returns a count per severity.
func (s *Store) BySeverity() map[Severity]int {
	m := make(map[Severity]int)
	for _, r := range s.recs {
		m[r.Severity]++
	}
	return m
}

// ByComponent returns a count per component over records matching sev
// (use SevUnknown for all severities).
func (s *Store) ByComponent(sev Severity) map[Component]int {
	m := make(map[Component]int)
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		m[r.Component]++
	}
	return m
}

// ErrCodes returns the distinct ErrCodes among records matching sev
// (use SevUnknown for all), sorted.
func (s *Store) ErrCodes(sev Severity) []string {
	set := make(map[string]bool)
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		set[r.ErrCode] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TimeRange returns records with EventTime in [from, to).
func (s *Store) TimeRange(from, to time.Time) []Record {
	lo := sort.Search(len(s.recs), func(i int) bool {
		return !s.recs[i].EventTime.Before(from)
	})
	hi := sort.Search(len(s.recs), func(i int) bool {
		return !s.recs[i].EventTime.Before(to)
	})
	return s.recs[lo:hi]
}

// Span returns the first and last event times, or zero times if empty.
func (s *Store) Span() (first, last time.Time) {
	if len(s.recs) == 0 {
		return
	}
	return s.recs[0].EventTime, s.recs[len(s.recs)-1].EventTime
}

// Midplanes maps each record index to the global midplane indices the
// record's location touches; records with unparseable or rack-level
// locations resolve via bgp.Location.Midplanes semantics, and records
// whose location cannot be parsed at all yield nil.
func RecordMidplanes(r Record) []int {
	loc, err := bgp.ParseLocation(r.Location)
	if err != nil {
		return nil
	}
	return loc.Midplanes()
}

// CountByMidplane tallies records per global midplane index. Records
// spanning a rack count toward both midplanes.
func (s *Store) CountByMidplane(sev Severity) [bgp.NumMidplanes]int {
	var out [bgp.NumMidplanes]int
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		for _, mp := range RecordMidplanes(r) {
			out[mp]++
		}
	}
	return out
}
