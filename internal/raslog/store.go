package raslog

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/linescan"
	"repro/internal/store"
	"repro/internal/symtab"
	"repro/internal/tailio"
)

// Writer streams records to an underlying io.Writer, one line each.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record. Errors are sticky.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	w.buf = r.AppendLine(w.buf[:0])
	w.buf = append(w.buf, '\n')
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams records from an underlying io.Reader. The idiomatic
// loop is iterator-style, with a record that is reused across calls:
//
//	r := raslog.NewReader(f)
//	for r.Next() {
//	    use(r.Record()) // valid until the next call to Next
//	}
//	if err := r.Err(); err != nil { ... }
//
// Field strings are interned per reader, so holding on to a record's
// fields (but not the *Record itself) past Next is cheap and safe.
type Reader struct {
	s    *bufio.Scanner
	line int
	rec  Record
	fs   fieldScratch
	err  error
	done bool
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), linescan.MaxLineBytes)
	return &Reader{s: s, fs: fieldScratch{it: newIntern()}}
}

// NewTailReader returns a Reader that follows a growing log: at end of
// input it polls for more bytes (every poll interval; non-positive
// means tailio.DefaultPoll) instead of stopping, until ctx is
// cancelled — then it drains what is already readable and ends
// cleanly. Partial trailing lines simply block Next until the writer
// completes them; the decode path is identical to NewReader's.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *Reader {
	return NewReader(tailio.NewReader(ctx, r, poll))
}

// Next advances to the next record, skipping blank lines. It returns
// false at end of input or on the first error; Err distinguishes the
// two.
func (r *Reader) Next() bool {
	if r.done {
		return false
	}
	for r.s.Scan() {
		r.line++
		line := r.s.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := r.rec.unmarshalFields(line, &r.fs); err != nil {
			r.err = fmt.Errorf("line %d: %w", r.line, err)
			r.done = true
			return false
		}
		return true
	}
	r.done = true
	if err := r.s.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stalls at the over-long line without consuming
			// it, so the offending line is the one after the last good one.
			err = linescan.TooLongError(r.line + 1)
		}
		r.err = err
	}
	return false
}

// Record returns the current record. The pointee is reused by Next;
// copy the Record (its field strings are immutable and shared) to
// retain it.
func (r *Reader) Record() *Record { return &r.rec }

// Err returns the first error encountered, if any. It never returns
// io.EOF.
func (r *Reader) Err() error { return r.err }

// Line returns the 1-based line number of the current record.
func (r *Reader) Line() int { return r.line }

// Read returns the next record, or io.EOF at end of input. It is the
// pre-streaming API, kept as a thin wrapper over Next.
func (r *Reader) Read() (Record, error) {
	if r.Next() {
		return r.rec, nil
	}
	if err := r.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for r.Next() {
		out = append(out, r.rec)
	}
	return out, r.Err()
}

// Store is an in-memory ordered collection of RAS records with the
// query operations the pipeline needs. It stands in for the DB2
// backend of the real CMCS.
type Store struct {
	recs []Record
}

// NewStore returns a store over recs; the records are sorted by
// (EventTime, RecID) so downstream interarrival analysis sees a
// time-ordered stream.
func NewStore(recs []Record) *Store {
	s := &Store{recs: append([]Record(nil), recs...)}
	sort.SliceStable(s.recs, func(i, j int) bool {
		if !s.recs[i].EventTime.Equal(s.recs[j].EventTime) {
			return s.recs[i].EventTime.Before(s.recs[j].EventTime)
		}
		return s.recs[i].RecID < s.recs[j].RecID
	})
	return s
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.recs) }

// All returns the time-ordered records (shared slice; callers must not
// mutate).
func (s *Store) All() []Record { return s.recs }

// Fatal returns the time-ordered records with FATAL severity.
func (s *Store) Fatal() []Record {
	var out []Record
	for _, r := range s.recs {
		if r.Fatal() {
			out = append(out, r)
		}
	}
	return out
}

// BySeverity returns a count per severity.
func (s *Store) BySeverity() map[Severity]int {
	m := make(map[Severity]int)
	for _, r := range s.recs {
		m[r.Severity]++
	}
	return m
}

// ByComponent returns a count per component over records matching sev
// (use SevUnknown for all severities).
func (s *Store) ByComponent(sev Severity) map[Component]int {
	m := make(map[Component]int)
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		m[r.Component]++
	}
	return m
}

// ErrCodes returns the distinct ErrCodes among records matching sev
// (use SevUnknown for all), sorted.
func (s *Store) ErrCodes(sev Severity) []string {
	set := make(map[string]bool)
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		set[r.ErrCode] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TimeRange returns records with EventTime in [from, to).
func (s *Store) TimeRange(from, to time.Time) []Record {
	lo := sort.Search(len(s.recs), func(i int) bool {
		return !s.recs[i].EventTime.Before(from)
	})
	hi := sort.Search(len(s.recs), func(i int) bool {
		return !s.recs[i].EventTime.Before(to)
	})
	return s.recs[lo:hi]
}

// Span returns the first and last event times, or zero times if empty.
func (s *Store) Span() (first, last time.Time) {
	if len(s.recs) == 0 {
		return
	}
	return s.recs[0].EventTime, s.recs[len(s.recs)-1].EventTime
}

// Midplanes maps each record index to the global midplane indices the
// record's location touches; records with unparseable or rack-level
// locations resolve via bgp.Location.Midplanes semantics, and records
// whose location cannot be parsed at all yield nil.
func RecordMidplanes(r Record) []int {
	return LocationMidplanes(r.Location)
}

// LocationMidplanes resolves a location-code string to its global
// midplane indices (nil when unparseable). With interned locations the
// filter cascade parses each distinct location once per run instead of
// once per record.
func LocationMidplanes(loc string) []int {
	l, err := bgp.ParseLocation(loc)
	if err != nil {
		return nil
	}
	return l.Midplanes()
}

// Columnarize interns each record's ERRCODE and location into tab and
// appends one row per record to a fresh columnar store. It runs
// sequentially over recs in the order given — the pipeline passes the
// time-sorted (EventTime, RecID) stream here before any sharding, which
// is what makes symtab ID numbering independent of the -parallelism
// knob. The retained strings were already interned per-stream by the
// decoder, so decode→store adds no copies of them.
func Columnarize(tab *symtab.Table, recs []Record) *store.Events {
	ev := store.NewEvents(len(recs))
	for i := range recs {
		r := &recs[i]
		ev.Append(r.RecID, r.EventTime.UnixNano(),
			tab.Errcodes.Intern(r.ErrCode), tab.Locations.Intern(r.Location),
			int32(r.Component), int32(r.Severity))
	}
	return ev
}

// CountByMidplane tallies records per global midplane index. Records
// spanning a rack count toward both midplanes.
func (s *Store) CountByMidplane(sev Severity) [bgp.NumMidplanes]int {
	var out [bgp.NumMidplanes]int
	for _, r := range s.recs {
		if sev != SevUnknown && r.Severity != sev {
			continue
		}
		for _, mp := range RecordMidplanes(r) {
			out[mp]++
		}
	}
	return out
}
